/**
 * @file
 * snfsim — command-line front end to the simulator: run any bundled
 * workload under any persistence mode and print the full statistics,
 * optionally crashing mid-run and recovering.
 *
 * Usage:
 *   snfsim [options]
 *     --workload NAME    (default sps; see --list)
 *     --mode NAME        (default fwb: non-pers, unsafe-redo,
 *                         unsafe-undo, redo-clwb, undo-clwb,
 *                         hw-rlog, hw-ulog, hwl, fwb)
 *     --threads N        (default 2)
 *     --tx N             transactions per thread (default 1000)
 *     --footprint N      elements in the initial structure (>= 1)
 *     --warehouses N     oltp-tpcc warehouse count (>= 1)
 *     --zipf-theta X     oltp-ycsb Zipf skew, strictly in (0,1)
 *     --seed N           workload RNG seed
 *     --strings          string (multi-word) values
 *     --distributed-log  per-thread log partitions
 *     --paper            paper-sized caches (default: scaled)
 *     --crash-at TICK    crash, recover, verify
 *     --log-full P       log-full policy: reclaim (default), stall,
 *                        abort-retry
 *     --log-shards N     slice the log NVRAM across N shards with
 *                        the cross-shard commit protocol (default 1)
 *     --fault-bitflip P  faultlab: live NVRAM media faults on the
 *     --fault-multibit P accepted-write path, probability per
 *     --fault-drop P     64-byte line written (single/double bit
 *     --fault-torn P     flips, dropped writes, torn lines, stuck
 *     --fault-stuck P    rows)
 *     --fault-seed N     fault-model seed (default 1)
 *     --fault-preset X   light | heavy (canned fault mixes; must
 *                        precede explicit --fault-* rates, which may
 *                        then tune but not zero its fields)
 *     --scrub            lifelab: enable bad-line remapping and the
 *                        online log scrubber (prints the scrub
 *                        traffic stats)
 *     --dump-stats       dump every component counter
 *     --list             list workloads and exit
 *     --bench-json FILE  perf-bench mode: run the reference
 *                        workload×mode matrix with the current
 *                        --threads/--tx/--seed and write a
 *                        snf-bench-sim-v1 JSON report (simulated
 *                        tx/sec, events/sec, allocations/event, plus
 *                        the deterministic counters CI gates on);
 *                        "-" writes to stdout
 *     --bench-repeats N  repeat each bench cell N times: wall-clock
 *                        is the minimum, counters must be identical
 *                        across repeats (default 1)
 *
 * Every value flag also accepts --flag=value.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/fault_flags.hh"
#include "sim/logging.hh"
#include "workloads/driver.hh"

using namespace snf;
using namespace snf::workloads;

namespace
{

PersistMode
parseMode(const char *name)
{
    for (PersistMode m : kAllModes)
        if (std::strcmp(persistModeName(m), name) == 0)
            return m;
    fatal("unknown mode '%s'", name);
}

void
usage()
{
    std::printf("usage: snfsim [--workload W] [--mode M] "
                "[--threads N] [--tx N] [--footprint N]\n"
                "              [--warehouses N] [--zipf-theta X]\n"
                "              [--seed N] [--strings] "
                "[--distributed-log] [--paper]\n"
                "              [--crash-at TICK] "
                "[--log-full reclaim|stall|abort-retry]\n"
                "              [--log-shards N]\n"
                "              [--fault-bitflip P] [--fault-multibit "
                "P] [--fault-drop P]\n"
                "              [--fault-torn P] [--fault-stuck P] "
                "[--fault-seed N]\n"
                "              [--fault-preset light|heavy] "
                "[--scrub] [--dump-stats] [--list]\n"
                "              [--bench-json FILE] "
                "[--bench-repeats N]\n");
}

LogFullPolicy
parseLogFullPolicy(const char *name)
{
    for (LogFullPolicy p : {LogFullPolicy::Reclaim,
                            LogFullPolicy::Stall,
                            LogFullPolicy::AbortRetry})
        if (std::strcmp(logFullPolicyName(p), name) == 0)
            return p;
    fatal("unknown log-full policy '%s'", name);
}

/**
 * Perf-bench mode: run the reference workload×mode matrix and write a
 * snf-bench-sim-v1 report. The counters block must repeat exactly
 * (the simulator is deterministic); wall-clock rates live in a
 * separate "perf" block so CI strips them before diffing.
 */
int
runBenchMatrix(const RunSpec &base, bool paper, std::uint64_t repeats,
               const std::string &path)
{
    static const char *kWorkloads[] = {"sps", "hash", "btree", "ycsb",
                                       "tpcc"};
    static const PersistMode kModes[] = {
        PersistMode::Fwb, PersistMode::UndoClwb, PersistMode::RedoClwb,
        PersistMode::NonPers};

    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": \"snf-bench-sim-v1\",\n";
    out << "  \"tool\": \"snfsim\",\n";
    out << "  \"threads\": " << base.params.threads << ",\n";
    out << "  \"tx_per_thread\": " << base.params.txPerThread << ",\n";
    out << "  \"seed\": " << base.params.seed << ",\n";
    out << "  \"cells\": [";
    bool firstCell = true;
    for (const char *w : kWorkloads) {
        for (PersistMode m : kModes) {
            RunSpec spec = base;
            spec.workload = w;
            spec.mode = m;
            // Journal NVRAM writes like a crash sweep would, so the
            // journal-entries counter is live and gateable.
            spec.sys = paper
                           ? SystemConfig::paper(spec.params.threads)
                           : SystemConfig::scaled(spec.params.threads);
            spec.sys.persist.distributedLogs =
                base.sys.persist.distributedLogs;
            spec.sys.persist.logFullPolicy =
                base.sys.persist.logFullPolicy;
            spec.sys.persist.logShards = base.sys.persist.logShards;
            spec.sys.persist.crashJournal = true;

            RunStats s;
            bool verified = false;
            double bestSec = 0.0;
            for (std::uint64_t r = 0; r < repeats; ++r) {
                auto t0 = std::chrono::steady_clock::now();
                auto o = runWorkload(spec);
                auto t1 = std::chrono::steady_clock::now();
                double sec =
                    std::chrono::duration<double>(t1 - t0).count();
                if (r == 0) {
                    s = o.stats;
                    verified = o.verified;
                    bestSec = sec;
                } else {
                    bestSec = std::min(bestSec, sec);
                    if (o.stats.cycles != s.cycles ||
                        o.stats.eventsScheduled != s.eventsScheduled ||
                        o.stats.eventsExecuted != s.eventsExecuted ||
                        o.stats.callbackHeapAllocs !=
                            s.callbackHeapAllocs ||
                        o.stats.journalEntries != s.journalEntries)
                        fatal("bench cell %s/%s not deterministic "
                              "across repeats",
                              w, persistModeName(m));
                }
            }
            if (!verified)
                fatal("bench cell %s/%s failed verification", w,
                      persistModeName(m));

            double allocsPerEvent =
                s.eventsScheduled == 0
                    ? 0.0
                    : static_cast<double>(s.callbackHeapAllocs) /
                          static_cast<double>(s.eventsScheduled);
            out << (firstCell ? "\n" : ",\n");
            firstCell = false;
            out << "    {\n";
            out << "      \"workload\": \"" << w << "\",\n";
            out << "      \"mode\": \"" << persistModeName(m)
                << "\",\n";
            out << "      \"counters\": {\n";
            out << "        \"cycles\": " << s.cycles << ",\n";
            out << "        \"committed_tx\": " << s.committedTx
                << ",\n";
            out << "        \"instructions\": " << s.instr.total
                << ",\n";
            out << "        \"events_scheduled\": "
                << s.eventsScheduled << ",\n";
            out << "        \"events_executed\": " << s.eventsExecuted
                << ",\n";
            out << "        \"event_heap_spills\": "
                << s.eventHeapSpills << ",\n";
            out << "        \"callback_heap_allocs\": "
                << s.callbackHeapAllocs << ",\n";
            out << "        \"journal_entries\": " << s.journalEntries
                << "\n";
            out << "      },\n";
            out << "      \"perf\": {\n";
            out << "        \"wall_sec\": " << bestSec << ",\n";
            out << "        \"sim_tx_per_sec\": "
                << (bestSec > 0.0
                        ? static_cast<double>(s.committedTx) / bestSec
                        : 0.0)
                << ",\n";
            out << "        \"events_per_sec\": "
                << (bestSec > 0.0
                        ? static_cast<double>(s.eventsExecuted) /
                              bestSec
                        : 0.0)
                << ",\n";
            out << "        \"allocs_per_event\": " << allocsPerEvent
                << "\n";
            out << "      }\n";
            out << "    }";
        }
    }
    out << "\n  ]\n";
    out << "}\n";

    if (path == "-") {
        std::cout << out.str();
    } else {
        std::ofstream f(path);
        if (!f)
            fatal("cannot write '%s'", path.c_str());
        f << out.str();
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    RunSpec spec;
    spec.workload = "sps";
    spec.mode = PersistMode::Fwb;
    spec.params.threads = 2;
    spec.params.txPerThread = 1000;
    bool dump = false;
    bool paper = false;
    std::uint32_t threads = 2;
    std::optional<Tick> crash_at;
    bool distributed = false;
    FaultModelConfig faults;
    faults.seed = 1;
    LogFullPolicy logFull = LogFullPolicy::Reclaim;
    std::uint32_t logShards = 1;
    bool scrub = false;
    std::string benchJsonPath;
    std::uint64_t benchRepeats = 1;

    // The live-fault flag family shares its ordering rules (and the
    // contradiction diagnostics) with snfcrash/snfsoak.
    FaultFlagSet faultFlags;
    faultFlags.addRate("--fault-bitflip", &faults.bitFlipProb);
    faultFlags.addRate("--fault-multibit", &faults.multiBitProb);
    faultFlags.addRate("--fault-drop", &faults.dropWriteProb);
    faultFlags.addRate("--fault-torn", &faults.tornLineProb);
    faultFlags.addRate("--fault-stuck", &faults.stuckRowProb);
    faultFlags.addSeed("--fault-seed", &faults.seed);
    faultFlags.setPresetFlag("--fault-preset");
    faultFlags.addPreset("light", {{&faults.bitFlipProb, 1e-4}});
    faultFlags.addPreset("heavy", {{&faults.bitFlipProb, 1e-3},
                                   {&faults.multiBitProb, 2e-4},
                                   {&faults.dropWriteProb, 2e-4},
                                   {&faults.tornLineProb, 2e-4}});

    std::vector<std::string> args(argv + 1, argv + argc);
    for (std::size_t i = 0; i < args.size(); ++i) {
        std::string err;
        switch (faultFlags.consume(args, i, &err)) {
          case FlagParse::Ok:
            continue;
          case FlagParse::Error:
            fatal("%s", err.c_str());
          case FlagParse::NotMine:
            break;
        }
        auto arg = [&](const char *flag) -> const char * {
            std::size_t n = std::strlen(flag);
            if (std::strncmp(args[i].c_str(), flag, n) == 0 &&
                args[i][n] == '=')
                return args[i].c_str() + n + 1;
            if (args[i] != flag)
                return nullptr;
            if (i + 1 >= args.size())
                fatal("%s needs a value", flag);
            return args[++i].c_str();
        };
        if (const char *v = arg("--workload")) {
            spec.workload = v;
        } else if (const char *v = arg("--mode")) {
            spec.mode = parseMode(v);
        } else if (const char *v = arg("--threads")) {
            threads = static_cast<std::uint32_t>(
                parsePositiveCountFlag("--threads", v));
        } else if (const char *v = arg("--tx")) {
            spec.params.txPerThread = parseCountFlag("--tx", v);
        } else if (const char *v = arg("--footprint")) {
            // Strictly positive: a 0 (e.g. from a typo'd value) used
            // to fall through to each workload's built-in default,
            // silently ignoring what the user asked for.
            spec.params.footprint =
                parsePositiveCountFlag("--footprint", v);
        } else if (const char *v = arg("--warehouses")) {
            spec.params.warehouses =
                parsePositiveCountFlag("--warehouses", v);
        } else if (const char *v = arg("--zipf-theta")) {
            spec.params.zipfTheta =
                parseOpenUnitFlag("--zipf-theta", v);
        } else if (const char *v = arg("--seed")) {
            spec.params.seed = parseCountFlag("--seed", v);
        } else if (const char *v = arg("--crash-at")) {
            crash_at = static_cast<Tick>(
                parseCountFlag("--crash-at", v));
        } else if (const char *v = arg("--bench-json")) {
            benchJsonPath = v;
        } else if (const char *v = arg("--bench-repeats")) {
            benchRepeats = parsePositiveCountFlag("--bench-repeats", v);
        } else if (const char *v = arg("--log-full")) {
            logFull = parseLogFullPolicy(v);
        } else if (const char *v = arg("--log-shards")) {
            logShards = parseLogShardsFlag("--log-shards", v);
        } else if (args[i] == "--strings") {
            spec.params.stringValues = true;
        } else if (args[i] == "--distributed-log") {
            distributed = true;
        } else if (args[i] == "--paper") {
            paper = true;
        } else if (args[i] == "--scrub") {
            scrub = true;
        } else if (args[i] == "--dump-stats") {
            dump = true;
        } else if (args[i] == "--list") {
            for (const auto &w : allWorkloadNames())
                std::printf("%s\n", w.c_str());
            return 0;
        } else {
            usage();
            return args[i] == "--help" ? 0 : 1;
        }
    }

    if (threads == 0 || threads > 64)
        fatal("bad thread count");
    spec.params.threads = threads;
    spec.sys = paper ? SystemConfig::paper(threads)
                     : SystemConfig::scaled(threads);
    spec.sys.persist.distributedLogs = distributed;
    spec.sys.persist.logFullPolicy = logFull;
    spec.sys.persist.logShards = logShards;
    spec.sys.nvram.faults = faults;
    if (scrub) {
        spec.sys.persist.scrub = true;
        if (spec.sys.map.remapSize == 0) {
            spec.sys.map.remapSize = 16 * 1024;
            spec.sys.map.spareSize = 32 * 1024;
        }
    }
    if (crash_at) {
        spec.sys.persist.crashJournal = true;
        spec.crashAt = crash_at;
    }

    if (!benchJsonPath.empty())
        return runBenchMatrix(spec, paper, benchRepeats,
                              benchJsonPath);

    auto o = runWorkload(spec);
    const RunStats &s = o.stats;
    std::printf("workload=%s mode=%s threads=%u tx/thread=%llu%s\n",
                spec.workload.c_str(), persistModeName(spec.mode),
                spec.params.threads,
                static_cast<unsigned long long>(
                    spec.params.txPerThread),
                o.crashed ? " (CRASHED + RECOVERED)" : "");
    std::printf("  cycles          %llu\n",
                static_cast<unsigned long long>(s.cycles));
    std::printf("  committed tx    %llu  (%.1f tx/Mcycle)\n",
                static_cast<unsigned long long>(s.committedTx),
                s.txPerMcycle);
    if (s.abortedTx != 0)
        std::printf("  aborted tx      %llu\n",
                    static_cast<unsigned long long>(s.abortedTx));
    std::printf("  instructions    %llu  (ipc/core %.3f)\n",
                static_cast<unsigned long long>(s.instr.total),
                s.ipc);
    std::printf("    loads=%llu stores=%llu log-stores=%llu "
                "log-loads=%llu clwb=%llu fences=%llu\n",
                static_cast<unsigned long long>(s.instr.loads),
                static_cast<unsigned long long>(s.instr.stores),
                static_cast<unsigned long long>(s.instr.logStores),
                static_cast<unsigned long long>(s.instr.logLoads),
                static_cast<unsigned long long>(s.instr.clwbs),
                static_cast<unsigned long long>(s.instr.fences));
    std::printf("  NVRAM           %llu reads / %llu writes "
                "(%llu / %llu bytes)\n",
                static_cast<unsigned long long>(s.nvramReads),
                static_cast<unsigned long long>(s.nvramWrites),
                static_cast<unsigned long long>(s.nvramReadBytes),
                static_cast<unsigned long long>(s.nvramWriteBytes));
    std::printf("  log             %llu records, %llu wraps, "
                "%llu buffer stalls\n",
                static_cast<unsigned long long>(s.logRecords),
                static_cast<unsigned long long>(s.logWraps),
                static_cast<unsigned long long>(s.logBufferStalls));
    std::printf("  fwb             %llu scans, %llu forced "
                "write-backs\n",
                static_cast<unsigned long long>(s.fwbScans),
                static_cast<unsigned long long>(s.fwbWritebacks));
    if (s.logFullStalls != 0 || s.forcedWritebacks != 0 ||
        s.logFullEscalations != 0)
        std::printf("  log-full        %llu stalls, %llu forced "
                    "write-backs, %llu abort escalations (%s)\n",
                    static_cast<unsigned long long>(s.logFullStalls),
                    static_cast<unsigned long long>(
                        s.forcedWritebacks),
                    static_cast<unsigned long long>(
                        s.logFullEscalations),
                    logFullPolicyName(logFull));
    if (s.faultsInjected != 0)
        std::printf("  media faults    %llu injected (seed %llu)\n",
                    static_cast<unsigned long long>(s.faultsInjected),
                    static_cast<unsigned long long>(faults.seed));
    if (scrub) {
        std::uint64_t traffic = s.nvramReadBytes + s.nvramWriteBytes;
        double overhead =
            traffic == 0
                ? 0.0
                : 100.0 *
                      static_cast<double>(s.scrubReadBytes +
                                          s.scrubWriteBytes) /
                      static_cast<double>(traffic);
        std::printf("  scrub           %llu slots scanned, %llu "
                    "repaired, %llu lines promoted\n",
                    static_cast<unsigned long long>(
                        s.scrubSlotsScanned),
                    static_cast<unsigned long long>(s.scrubRepairs),
                    static_cast<unsigned long long>(
                        s.scrubPromotions));
        std::printf("  scrub traffic   %llu read / %llu written bytes "
                    "(%.2f%% of NVRAM traffic), %llu lines "
                    "remapped\n",
                    static_cast<unsigned long long>(s.scrubReadBytes),
                    static_cast<unsigned long long>(s.scrubWriteBytes),
                    overhead,
                    static_cast<unsigned long long>(s.remappedLines));
    }
    std::printf("  invariants      %llu order violations, %llu "
                "overwrite hazards\n",
                static_cast<unsigned long long>(s.orderViolations),
                static_cast<unsigned long long>(s.overwriteHazards));
    std::printf("  energy          %.1f nJ memory dynamic, %.1f nJ "
                "processor dynamic\n",
                s.energy.memoryDynamicPj() / 1e3,
                s.energy.processorDynamicPj() / 1e3);
    if (o.crashed) {
        std::printf("  recovery        %llu records, %llu redone, "
                    "%llu rolled back\n",
                    static_cast<unsigned long long>(
                        o.recovery.validRecords),
                    static_cast<unsigned long long>(
                        o.recovery.committedTxns),
                    static_cast<unsigned long long>(
                        o.recovery.uncommittedTxns));
        if (o.recovery.damagedSlots() != 0 ||
            o.recovery.quarantinedTxns != 0)
            std::printf("  salvage         %llu salvaged, %llu "
                        "quarantined; %llu torn / %llu crc-fail / "
                        "%llu stale slots\n",
                        static_cast<unsigned long long>(
                            o.recovery.salvagedTxns),
                        static_cast<unsigned long long>(
                            o.recovery.quarantinedTxns),
                        static_cast<unsigned long long>(
                            o.recovery.tornSlots),
                        static_cast<unsigned long long>(
                            o.recovery.crcFailSlots),
                        static_cast<unsigned long long>(
                            o.recovery.stalePassSlots));
    }
    std::printf("  verified        %s%s%s\n",
                o.verified ? "yes" : "NO",
                o.verifyMessage.empty() ? "" : " - ",
                o.verifyMessage.c_str());

    if (dump) {
        // Re-run the same spec with a live System so every component
        // counter can be dumped (the driver tears its System down).
        System sys(spec.sys, spec.mode);
        auto wl = makeWorkload(spec.workload);
        wl->setup(sys, spec.params);
        for (CoreId c = 0; c < spec.params.threads; ++c) {
            sys.spawn(c, [&](Thread &t) {
                return wl->thread(sys, t, spec.params);
            });
        }
        sys.run(spec.crashAt ? *spec.crashAt : kTickNever);
        std::printf("\n(component statistics)\n");
        sys.dumpStats(std::cout);
    }
    return o.verified ? 0 : 1;
}
