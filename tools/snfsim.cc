/**
 * @file
 * snfsim — command-line front end to the simulator: run any bundled
 * workload under any persistence mode and print the full statistics,
 * optionally crashing mid-run and recovering.
 *
 * Usage:
 *   snfsim [options]
 *     --workload NAME    (default sps; see --list)
 *     --mode NAME        (default fwb: non-pers, unsafe-redo,
 *                         unsafe-undo, redo-clwb, undo-clwb,
 *                         hw-rlog, hw-ulog, hwl, fwb)
 *     --threads N        (default 2)
 *     --tx N             transactions per thread (default 1000)
 *     --footprint N      elements in the initial structure
 *     --seed N           workload RNG seed
 *     --strings          string (multi-word) values
 *     --distributed-log  per-thread log partitions
 *     --paper            paper-sized caches (default: scaled)
 *     --crash-at TICK    crash, recover, verify
 *     --dump-stats       dump every component counter
 *     --list             list workloads and exit
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "sim/logging.hh"
#include "workloads/driver.hh"

using namespace snf;
using namespace snf::workloads;

namespace
{

PersistMode
parseMode(const char *name)
{
    for (PersistMode m : kAllModes)
        if (std::strcmp(persistModeName(m), name) == 0)
            return m;
    fatal("unknown mode '%s'", name);
}

void
usage()
{
    std::printf("usage: snfsim [--workload W] [--mode M] "
                "[--threads N] [--tx N] [--footprint N]\n"
                "              [--seed N] [--strings] "
                "[--distributed-log] [--paper]\n"
                "              [--crash-at TICK] [--dump-stats] "
                "[--list]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    RunSpec spec;
    spec.workload = "sps";
    spec.mode = PersistMode::Fwb;
    spec.params.threads = 2;
    spec.params.txPerThread = 1000;
    bool dump = false;
    bool paper = false;
    std::uint32_t threads = 2;
    std::optional<Tick> crash_at;
    bool distributed = false;

    for (int i = 1; i < argc; ++i) {
        auto arg = [&](const char *flag) {
            if (std::strcmp(argv[i], flag) != 0)
                return static_cast<const char *>(nullptr);
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
            return static_cast<const char *>(argv[++i]);
        };
        if (const char *v = arg("--workload")) {
            spec.workload = v;
        } else if (const char *v = arg("--mode")) {
            spec.mode = parseMode(v);
        } else if (const char *v = arg("--threads")) {
            threads = static_cast<std::uint32_t>(std::atoi(v));
        } else if (const char *v = arg("--tx")) {
            spec.params.txPerThread =
                static_cast<std::uint64_t>(std::atoll(v));
        } else if (const char *v = arg("--footprint")) {
            spec.params.footprint =
                static_cast<std::uint64_t>(std::atoll(v));
        } else if (const char *v = arg("--seed")) {
            spec.params.seed =
                static_cast<std::uint64_t>(std::atoll(v));
        } else if (const char *v = arg("--crash-at")) {
            crash_at = static_cast<Tick>(std::atoll(v));
        } else if (std::strcmp(argv[i], "--strings") == 0) {
            spec.params.stringValues = true;
        } else if (std::strcmp(argv[i], "--distributed-log") == 0) {
            distributed = true;
        } else if (std::strcmp(argv[i], "--paper") == 0) {
            paper = true;
        } else if (std::strcmp(argv[i], "--dump-stats") == 0) {
            dump = true;
        } else if (std::strcmp(argv[i], "--list") == 0) {
            for (const auto &w : allWorkloadNames())
                std::printf("%s\n", w.c_str());
            return 0;
        } else {
            usage();
            return std::strcmp(argv[i], "--help") == 0 ? 0 : 1;
        }
    }

    if (threads == 0 || threads > 64)
        fatal("bad thread count");
    spec.params.threads = threads;
    spec.sys = paper ? SystemConfig::paper(threads)
                     : SystemConfig::scaled(threads);
    spec.sys.persist.distributedLogs = distributed;
    if (crash_at) {
        spec.sys.persist.crashJournal = true;
        spec.crashAt = crash_at;
    }

    auto o = runWorkload(spec);
    const RunStats &s = o.stats;
    std::printf("workload=%s mode=%s threads=%u tx/thread=%llu%s\n",
                spec.workload.c_str(), persistModeName(spec.mode),
                spec.params.threads,
                static_cast<unsigned long long>(
                    spec.params.txPerThread),
                o.crashed ? " (CRASHED + RECOVERED)" : "");
    std::printf("  cycles          %llu\n",
                static_cast<unsigned long long>(s.cycles));
    std::printf("  committed tx    %llu  (%.1f tx/Mcycle)\n",
                static_cast<unsigned long long>(s.committedTx),
                s.txPerMcycle);
    std::printf("  instructions    %llu  (ipc/core %.3f)\n",
                static_cast<unsigned long long>(s.instr.total),
                s.ipc);
    std::printf("    loads=%llu stores=%llu log-stores=%llu "
                "log-loads=%llu clwb=%llu fences=%llu\n",
                static_cast<unsigned long long>(s.instr.loads),
                static_cast<unsigned long long>(s.instr.stores),
                static_cast<unsigned long long>(s.instr.logStores),
                static_cast<unsigned long long>(s.instr.logLoads),
                static_cast<unsigned long long>(s.instr.clwbs),
                static_cast<unsigned long long>(s.instr.fences));
    std::printf("  NVRAM           %llu reads / %llu writes "
                "(%llu / %llu bytes)\n",
                static_cast<unsigned long long>(s.nvramReads),
                static_cast<unsigned long long>(s.nvramWrites),
                static_cast<unsigned long long>(s.nvramReadBytes),
                static_cast<unsigned long long>(s.nvramWriteBytes));
    std::printf("  log             %llu records, %llu wraps, "
                "%llu buffer stalls\n",
                static_cast<unsigned long long>(s.logRecords),
                static_cast<unsigned long long>(s.logWraps),
                static_cast<unsigned long long>(s.logBufferStalls));
    std::printf("  fwb             %llu scans, %llu forced "
                "write-backs\n",
                static_cast<unsigned long long>(s.fwbScans),
                static_cast<unsigned long long>(s.fwbWritebacks));
    std::printf("  invariants      %llu order violations, %llu "
                "overwrite hazards\n",
                static_cast<unsigned long long>(s.orderViolations),
                static_cast<unsigned long long>(s.overwriteHazards));
    std::printf("  energy          %.1f nJ memory dynamic, %.1f nJ "
                "processor dynamic\n",
                s.energy.memoryDynamicPj() / 1e3,
                s.energy.processorDynamicPj() / 1e3);
    if (o.crashed)
        std::printf("  recovery        %llu records, %llu redone, "
                    "%llu rolled back\n",
                    static_cast<unsigned long long>(
                        o.recovery.validRecords),
                    static_cast<unsigned long long>(
                        o.recovery.committedTxns),
                    static_cast<unsigned long long>(
                        o.recovery.uncommittedTxns));
    std::printf("  verified        %s%s%s\n",
                o.verified ? "yes" : "NO",
                o.verifyMessage.empty() ? "" : " - ",
                o.verifyMessage.c_str());

    if (dump) {
        // Re-run the same spec with a live System so every component
        // counter can be dumped (the driver tears its System down).
        System sys(spec.sys, spec.mode);
        auto wl = makeWorkload(spec.workload);
        wl->setup(sys, spec.params);
        for (CoreId c = 0; c < spec.params.threads; ++c) {
            sys.spawn(c, [&](Thread &t) {
                return wl->thread(sys, t, spec.params);
            });
        }
        sys.run(spec.crashAt ? *spec.crashAt : kTickNever);
        std::printf("\n(component statistics)\n");
        sys.dumpStats(std::cout);
    }
    return o.verified ? 0 : 1;
}
