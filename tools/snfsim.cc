/**
 * @file
 * snfsim — command-line front end to the simulator: run any bundled
 * workload under any persistence mode and print the full statistics,
 * optionally crashing mid-run and recovering.
 *
 * Usage:
 *   snfsim [options]
 *     --workload NAME    (default sps; see --list)
 *     --mode NAME        (default fwb: non-pers, unsafe-redo,
 *                         unsafe-undo, redo-clwb, undo-clwb,
 *                         hw-rlog, hw-ulog, hwl, fwb)
 *     --threads N        (default 2)
 *     --tx N             transactions per thread (default 1000)
 *     --footprint N      elements in the initial structure
 *     --seed N           workload RNG seed
 *     --strings          string (multi-word) values
 *     --distributed-log  per-thread log partitions
 *     --paper            paper-sized caches (default: scaled)
 *     --crash-at TICK    crash, recover, verify
 *     --log-full P       log-full policy: reclaim (default), stall,
 *                        abort-retry
 *     --fault-bitflip P  faultlab: live NVRAM media faults on the
 *     --fault-multibit P accepted-write path, probability per
 *     --fault-drop P     64-byte line written (single/double bit
 *     --fault-torn P     flips, dropped writes, torn lines, stuck
 *     --fault-stuck P    rows)
 *     --fault-seed N     fault-model seed (default 1)
 *     --fault-preset X   light | heavy (canned fault mixes)
 *     --dump-stats       dump every component counter
 *     --list             list workloads and exit
 *
 * Every value flag also accepts --flag=value.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "sim/logging.hh"
#include "workloads/driver.hh"

using namespace snf;
using namespace snf::workloads;

namespace
{

PersistMode
parseMode(const char *name)
{
    for (PersistMode m : kAllModes)
        if (std::strcmp(persistModeName(m), name) == 0)
            return m;
    fatal("unknown mode '%s'", name);
}

void
usage()
{
    std::printf("usage: snfsim [--workload W] [--mode M] "
                "[--threads N] [--tx N] [--footprint N]\n"
                "              [--seed N] [--strings] "
                "[--distributed-log] [--paper]\n"
                "              [--crash-at TICK] "
                "[--log-full reclaim|stall|abort-retry]\n"
                "              [--fault-bitflip P] [--fault-multibit "
                "P] [--fault-drop P]\n"
                "              [--fault-torn P] [--fault-stuck P] "
                "[--fault-seed N]\n"
                "              [--fault-preset light|heavy] "
                "[--dump-stats] [--list]\n");
}

LogFullPolicy
parseLogFullPolicy(const char *name)
{
    for (LogFullPolicy p : {LogFullPolicy::Reclaim,
                            LogFullPolicy::Stall,
                            LogFullPolicy::AbortRetry})
        if (std::strcmp(logFullPolicyName(p), name) == 0)
            return p;
    fatal("unknown log-full policy '%s'", name);
}

} // namespace

int
main(int argc, char **argv)
{
    RunSpec spec;
    spec.workload = "sps";
    spec.mode = PersistMode::Fwb;
    spec.params.threads = 2;
    spec.params.txPerThread = 1000;
    bool dump = false;
    bool paper = false;
    std::uint32_t threads = 2;
    std::optional<Tick> crash_at;
    bool distributed = false;
    FaultModelConfig faults;
    faults.seed = 1;
    LogFullPolicy logFull = LogFullPolicy::Reclaim;

    for (int i = 1; i < argc; ++i) {
        auto arg = [&](const char *flag) -> const char * {
            std::size_t n = std::strlen(flag);
            if (std::strncmp(argv[i], flag, n) == 0 &&
                argv[i][n] == '=')
                return argv[i] + n + 1;
            if (std::strcmp(argv[i], flag) != 0)
                return nullptr;
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (const char *v = arg("--workload")) {
            spec.workload = v;
        } else if (const char *v = arg("--mode")) {
            spec.mode = parseMode(v);
        } else if (const char *v = arg("--threads")) {
            threads = static_cast<std::uint32_t>(std::atoi(v));
        } else if (const char *v = arg("--tx")) {
            spec.params.txPerThread =
                static_cast<std::uint64_t>(std::atoll(v));
        } else if (const char *v = arg("--footprint")) {
            spec.params.footprint =
                static_cast<std::uint64_t>(std::atoll(v));
        } else if (const char *v = arg("--seed")) {
            spec.params.seed =
                static_cast<std::uint64_t>(std::atoll(v));
        } else if (const char *v = arg("--crash-at")) {
            crash_at = static_cast<Tick>(std::atoll(v));
        } else if (const char *v = arg("--log-full")) {
            logFull = parseLogFullPolicy(v);
        } else if (const char *v = arg("--fault-bitflip")) {
            faults.bitFlipProb = std::atof(v);
        } else if (const char *v = arg("--fault-multibit")) {
            faults.multiBitProb = std::atof(v);
        } else if (const char *v = arg("--fault-drop")) {
            faults.dropWriteProb = std::atof(v);
        } else if (const char *v = arg("--fault-torn")) {
            faults.tornLineProb = std::atof(v);
        } else if (const char *v = arg("--fault-stuck")) {
            faults.stuckRowProb = std::atof(v);
        } else if (const char *v = arg("--fault-seed")) {
            faults.seed = std::strtoull(v, nullptr, 0);
        } else if (const char *v = arg("--fault-preset")) {
            std::uint64_t seed = faults.seed;
            if (std::strcmp(v, "light") == 0)
                faults = FaultModelConfig::light(seed);
            else if (std::strcmp(v, "heavy") == 0)
                faults = FaultModelConfig::heavy(seed);
            else
                fatal("unknown fault preset '%s'", v);
        } else if (std::strcmp(argv[i], "--strings") == 0) {
            spec.params.stringValues = true;
        } else if (std::strcmp(argv[i], "--distributed-log") == 0) {
            distributed = true;
        } else if (std::strcmp(argv[i], "--paper") == 0) {
            paper = true;
        } else if (std::strcmp(argv[i], "--dump-stats") == 0) {
            dump = true;
        } else if (std::strcmp(argv[i], "--list") == 0) {
            for (const auto &w : allWorkloadNames())
                std::printf("%s\n", w.c_str());
            return 0;
        } else {
            usage();
            return std::strcmp(argv[i], "--help") == 0 ? 0 : 1;
        }
    }

    if (threads == 0 || threads > 64)
        fatal("bad thread count");
    spec.params.threads = threads;
    spec.sys = paper ? SystemConfig::paper(threads)
                     : SystemConfig::scaled(threads);
    spec.sys.persist.distributedLogs = distributed;
    spec.sys.persist.logFullPolicy = logFull;
    spec.sys.nvram.faults = faults;
    if (crash_at) {
        spec.sys.persist.crashJournal = true;
        spec.crashAt = crash_at;
    }

    auto o = runWorkload(spec);
    const RunStats &s = o.stats;
    std::printf("workload=%s mode=%s threads=%u tx/thread=%llu%s\n",
                spec.workload.c_str(), persistModeName(spec.mode),
                spec.params.threads,
                static_cast<unsigned long long>(
                    spec.params.txPerThread),
                o.crashed ? " (CRASHED + RECOVERED)" : "");
    std::printf("  cycles          %llu\n",
                static_cast<unsigned long long>(s.cycles));
    std::printf("  committed tx    %llu  (%.1f tx/Mcycle)\n",
                static_cast<unsigned long long>(s.committedTx),
                s.txPerMcycle);
    if (s.abortedTx != 0)
        std::printf("  aborted tx      %llu\n",
                    static_cast<unsigned long long>(s.abortedTx));
    std::printf("  instructions    %llu  (ipc/core %.3f)\n",
                static_cast<unsigned long long>(s.instr.total),
                s.ipc);
    std::printf("    loads=%llu stores=%llu log-stores=%llu "
                "log-loads=%llu clwb=%llu fences=%llu\n",
                static_cast<unsigned long long>(s.instr.loads),
                static_cast<unsigned long long>(s.instr.stores),
                static_cast<unsigned long long>(s.instr.logStores),
                static_cast<unsigned long long>(s.instr.logLoads),
                static_cast<unsigned long long>(s.instr.clwbs),
                static_cast<unsigned long long>(s.instr.fences));
    std::printf("  NVRAM           %llu reads / %llu writes "
                "(%llu / %llu bytes)\n",
                static_cast<unsigned long long>(s.nvramReads),
                static_cast<unsigned long long>(s.nvramWrites),
                static_cast<unsigned long long>(s.nvramReadBytes),
                static_cast<unsigned long long>(s.nvramWriteBytes));
    std::printf("  log             %llu records, %llu wraps, "
                "%llu buffer stalls\n",
                static_cast<unsigned long long>(s.logRecords),
                static_cast<unsigned long long>(s.logWraps),
                static_cast<unsigned long long>(s.logBufferStalls));
    std::printf("  fwb             %llu scans, %llu forced "
                "write-backs\n",
                static_cast<unsigned long long>(s.fwbScans),
                static_cast<unsigned long long>(s.fwbWritebacks));
    if (s.logFullStalls != 0 || s.forcedWritebacks != 0)
        std::printf("  log-full        %llu stalls, %llu forced "
                    "write-backs (%s)\n",
                    static_cast<unsigned long long>(s.logFullStalls),
                    static_cast<unsigned long long>(
                        s.forcedWritebacks),
                    logFullPolicyName(logFull));
    if (s.faultsInjected != 0)
        std::printf("  media faults    %llu injected (seed %llu)\n",
                    static_cast<unsigned long long>(s.faultsInjected),
                    static_cast<unsigned long long>(faults.seed));
    std::printf("  invariants      %llu order violations, %llu "
                "overwrite hazards\n",
                static_cast<unsigned long long>(s.orderViolations),
                static_cast<unsigned long long>(s.overwriteHazards));
    std::printf("  energy          %.1f nJ memory dynamic, %.1f nJ "
                "processor dynamic\n",
                s.energy.memoryDynamicPj() / 1e3,
                s.energy.processorDynamicPj() / 1e3);
    if (o.crashed) {
        std::printf("  recovery        %llu records, %llu redone, "
                    "%llu rolled back\n",
                    static_cast<unsigned long long>(
                        o.recovery.validRecords),
                    static_cast<unsigned long long>(
                        o.recovery.committedTxns),
                    static_cast<unsigned long long>(
                        o.recovery.uncommittedTxns));
        if (o.recovery.damagedSlots() != 0 ||
            o.recovery.quarantinedTxns != 0)
            std::printf("  salvage         %llu salvaged, %llu "
                        "quarantined; %llu torn / %llu crc-fail / "
                        "%llu stale slots\n",
                        static_cast<unsigned long long>(
                            o.recovery.salvagedTxns),
                        static_cast<unsigned long long>(
                            o.recovery.quarantinedTxns),
                        static_cast<unsigned long long>(
                            o.recovery.tornSlots),
                        static_cast<unsigned long long>(
                            o.recovery.crcFailSlots),
                        static_cast<unsigned long long>(
                            o.recovery.stalePassSlots));
    }
    std::printf("  verified        %s%s%s\n",
                o.verified ? "yes" : "NO",
                o.verifyMessage.empty() ? "" : " - ",
                o.verifyMessage.c_str());

    if (dump) {
        // Re-run the same spec with a live System so every component
        // counter can be dumped (the driver tears its System down).
        System sys(spec.sys, spec.mode);
        auto wl = makeWorkload(spec.workload);
        wl->setup(sys, spec.params);
        for (CoreId c = 0; c < spec.params.threads; ++c) {
            sys.spawn(c, [&](Thread &t) {
                return wl->thread(sys, t, spec.params);
            });
        }
        sys.run(spec.crashAt ? *spec.crashAt : kTickNever);
        std::printf("\n(component statistics)\n");
        sys.dumpStats(std::cout);
    }
    return o.verified ? 0 : 1;
}
