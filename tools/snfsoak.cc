/**
 * @file
 * snfsoak — multi-generation crash → recover → resume soak driver
 * (lifelab). Each generation runs a resumable workload on the image
 * the previous generation's recovery left behind, crashes it at a
 * deterministically chosen instant, optionally damages the snapshot
 * (faultlab image faults), recovers with bad-line promotion, and
 * re-checks I1–I8 plus the lifecycle invariants: recovery
 * re-entrancy, recovered-durability (I9), remap-table validity and
 * superblock continuity.
 *
 * Usage:
 *   snfsoak [options]
 *     --workload W         (default sps; must be resumable)
 *     --mode M             persistence mode (default fwb)
 *     --threads N          workload threads (default 2)
 *     --tx N               transactions per thread per generation
 *                          (default 300)
 *     --footprint N        elements in the initial structure
 *     --seed N             base seed (workload + crash choice)
 *     --generations N      generations to run (default 5)
 *     --jobs N             worker threads for the re-entrancy budget
 *                          probes; 0 or omitted = one per hardware
 *                          thread (resolved count in the header)
 *     --log-shards N       slice the log NVRAM across N shards with
 *                          the cross-shard commit protocol (default
 *                          1 = classic single-region layout)
 *     --bench-json FILE    write the perf trajectory (phase timings
 *                          + snapshot-engine counters, same schema
 *                          as snfcrash) to FILE ("-" = stdout)
 *     --fault-bitflip P    faultlab image damage per generation
 *     --fault-multibit P   (per-slot probabilities; the resulting
 *     --fault-drop-slot P  bad lines persist across generations via
 *     --fault-torn-slot P  the remap table)
 *     --fault-seed N       seed of the deterministic damage
 *     --fault-preset X     light | heavy canned damage mixes (must
 *                          precede explicit --fault-* rates, which
 *                          may tune but not zero its fields)
 *     --sabotage-remap G   WILL_FAIL self-test: corrupt both remap
 *                          banks at generation G; the soak must
 *                          detect it and exit nonzero
 *     --no-reentrancy      skip the interrupted-recovery check
 *     --reentrancy-budgets N  interior write budgets probed (def. 4)
 *     --no-scrub           disable the online log scrubber
 *     --list               list workloads and modes, then exit
 *
 * Every value flag also accepts --flag=value. Exit status: 0 when
 * every generation passed every invariant, 1 otherwise (CI gates on
 * it).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/fault_flags.hh"
#include "crashlab/lifecycle.hh"
#include "crashlab/report.hh"
#include "sim/logging.hh"
#include "workloads/driver.hh"

using namespace snf;
using namespace snf::crashlab;
using namespace snf::workloads;

namespace
{

PersistMode
parseMode(const char *name)
{
    for (PersistMode m : kAllModes)
        if (std::strcmp(persistModeName(m), name) == 0)
            return m;
    fatal("unknown mode '%s'", name);
}

void
usage()
{
    std::printf(
        "usage: snfsoak [--workload W] [--mode M] [--threads N] "
        "[--tx N]\n"
        "               [--footprint N] [--seed N] [--generations N]\n"
        "               [--jobs N] [--log-shards N] "
        "[--bench-json FILE]\n"
        "               [--fault-bitflip P] [--fault-multibit P]\n"
        "               [--fault-drop-slot P] [--fault-torn-slot P] "
        "[--fault-seed N]\n"
        "               [--fault-preset light|heavy] "
        "[--sabotage-remap G]\n"
        "               [--no-reentrancy] [--reentrancy-budgets N] "
        "[--no-scrub] [--list]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    LifecycleConfig cfg;
    cfg.run.workload = "sps";
    cfg.run.mode = PersistMode::Fwb;
    cfg.run.params.threads = 2;
    cfg.run.params.txPerThread = 300;
    std::uint32_t threads = 2;
    std::uint32_t logShards = 1;
    bool scrub = true;
    std::string benchJsonPath;

    // The image-damage flag family shares its ordering rules (and the
    // contradiction diagnostics) with snfsim/snfcrash.
    FaultFlagSet faultFlags;
    faultFlags.addRate("--fault-bitflip", &cfg.imageFaults.bitFlipProb);
    faultFlags.addRate("--fault-multibit",
                       &cfg.imageFaults.multiBitProb);
    faultFlags.addRate("--fault-drop-slot",
                       &cfg.imageFaults.dropSlotProb);
    faultFlags.addRate("--fault-torn-slot",
                       &cfg.imageFaults.tornSlotProb);
    faultFlags.addSeed("--fault-seed", &cfg.imageFaults.seed);
    faultFlags.setPresetFlag("--fault-preset");
    faultFlags.addPreset("light",
                         {{&cfg.imageFaults.bitFlipProb, 5e-3}});
    faultFlags.addPreset("heavy",
                         {{&cfg.imageFaults.bitFlipProb, 2e-2},
                          {&cfg.imageFaults.multiBitProb, 5e-3},
                          {&cfg.imageFaults.dropSlotProb, 5e-3},
                          {&cfg.imageFaults.tornSlotProb, 5e-3}});

    std::vector<std::string> args(argv + 1, argv + argc);
    for (std::size_t i = 0; i < args.size(); ++i) {
        std::string err;
        switch (faultFlags.consume(args, i, &err)) {
          case FlagParse::Ok:
            continue;
          case FlagParse::Error:
            fatal("%s", err.c_str());
          case FlagParse::NotMine:
            break;
        }
        auto arg = [&](const char *flag) -> const char * {
            std::size_t n = std::strlen(flag);
            if (std::strncmp(args[i].c_str(), flag, n) == 0 &&
                args[i][n] == '=')
                return args[i].c_str() + n + 1;
            if (args[i] != flag)
                return nullptr;
            if (i + 1 >= args.size())
                fatal("%s needs a value", flag);
            return args[++i].c_str();
        };
        if (const char *v = arg("--workload")) {
            cfg.run.workload = v;
        } else if (const char *v = arg("--mode")) {
            cfg.run.mode = parseMode(v);
        } else if (const char *v = arg("--jobs")) {
            cfg.jobs =
                static_cast<std::size_t>(parseCountFlag("--jobs", v));
        } else if (const char *v = arg("--log-shards")) {
            logShards = parseLogShardsFlag("--log-shards", v);
        } else if (const char *v = arg("--bench-json")) {
            benchJsonPath = v;
        } else if (const char *v = arg("--threads")) {
            threads = static_cast<std::uint32_t>(std::atoi(v));
        } else if (const char *v = arg("--tx")) {
            cfg.run.params.txPerThread =
                std::strtoull(v, nullptr, 0);
        } else if (const char *v = arg("--footprint")) {
            // Strict and positive (see snfsim): a typo'd value used
            // to silently become the workload's default size.
            cfg.run.params.footprint =
                parsePositiveCountFlag("--footprint", v);
        } else if (const char *v = arg("--seed")) {
            cfg.run.params.seed = std::strtoull(v, nullptr, 0);
            cfg.seed = cfg.run.params.seed;
        } else if (const char *v = arg("--generations")) {
            cfg.generations =
                static_cast<std::uint32_t>(std::atoi(v));
        } else if (const char *v = arg("--sabotage-remap")) {
            cfg.sabotageGeneration =
                static_cast<std::uint32_t>(std::atoi(v));
        } else if (const char *v = arg("--reentrancy-budgets")) {
            cfg.reentrancyBudgets = std::strtoull(v, nullptr, 0);
        } else if (args[i] == "--no-reentrancy") {
            cfg.checkReentrancy = false;
        } else if (args[i] == "--no-scrub") {
            scrub = false;
        } else if (args[i] == "--list") {
            std::printf("workloads:");
            for (const auto &w : allWorkloadNames())
                std::printf(" %s", w.c_str());
            std::printf("\nmodes:");
            for (PersistMode m : kAllModes)
                std::printf(" %s", persistModeName(m));
            std::printf("\n");
            return 0;
        } else if (args[i] == "--help") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown argument '%s'", args[i].c_str());
        }
    }

    if (threads == 0 || threads > 64)
        fatal("bad thread count");
    if (cfg.generations == 0)
        fatal("need at least one generation");
    cfg.run.params.threads = threads;
    cfg.run.sys = SystemConfig::scaled(threads);
    cfg.run.sys.persist.scrub = scrub;
    cfg.run.sys.persist.logShards = logShards;

    std::printf("snfsoak: workload=%s mode=%s threads=%u tx/gen=%llu "
                "generations=%u jobs=%zu%s%s%s\n",
                cfg.run.workload.c_str(),
                persistModeName(cfg.run.mode), threads,
                static_cast<unsigned long long>(
                    cfg.run.params.txPerThread * threads),
                cfg.generations, resolveJobs(cfg.jobs),
                cfg.jobs == 0 ? " (auto)" : "",
                cfg.imageFaults.enabled() ? " (image faults)" : "",
                cfg.sabotageGeneration != LifecycleConfig::kNoSabotage
                    ? " (SABOTAGE self-test)"
                    : "");

    LifecycleResult res = runLifecycle(cfg);

    for (const GenerationResult &g : res.generations) {
        std::printf(
            "gen %u: crash@%llu/%llu committed=%llu wraps=%llu "
            "faulted=%llu salvaged=%llu quarantined=%llu "
            "remap=%llu scrub-repairs=%llu violations=%zu\n",
            g.generation,
            static_cast<unsigned long long>(g.crashTick),
            static_cast<unsigned long long>(g.endTick),
            static_cast<unsigned long long>(g.committedTx),
            static_cast<unsigned long long>(g.logWraps),
            static_cast<unsigned long long>(g.slotsFaulted),
            static_cast<unsigned long long>(g.recovery.salvagedTxns),
            static_cast<unsigned long long>(
                g.recovery.quarantinedTxns),
            static_cast<unsigned long long>(g.remapEntries),
            static_cast<unsigned long long>(g.scrubRepairs),
            g.violations.size());
        for (const Violation &v : g.violations)
            std::printf("  VIOLATION %s: %s\n", v.invariant.c_str(),
                        v.detail.c_str());
    }

    if (!benchJsonPath.empty()) {
        // Same BENCH_sweep.json schema as snfcrash: one cell whose
        // perf block is the soak's whole-lifecycle totals.
        CellResult cell;
        cell.workload = cfg.run.workload;
        cell.mode = cfg.run.mode;
        cell.seed = cfg.seed;
        cell.threads = threads;
        cell.txPerThread = cfg.run.params.txPerThread;
        cell.sweep.pointsTested = res.generations.size();
        cell.sweep.perf = res.perf;
        std::vector<CellResult> cells;
        cells.push_back(std::move(cell));
        writePerfSummary(std::cout, cells.front());
        if (benchJsonPath == "-") {
            writeBenchJson(std::cout, "snfsoak", cells);
        } else {
            std::ofstream f(benchJsonPath);
            if (!f)
                fatal("cannot write '%s'", benchJsonPath.c_str());
            writeBenchJson(f, "snfsoak", cells);
        }
    }

    std::printf("snfsoak: %zu generation(s), %llu violation(s)%s\n",
                res.generations.size(),
                static_cast<unsigned long long>(res.totalViolations()),
                res.aborted ? " — ABORTED (untrusted remap table)"
                            : "");
    return res.passed() ? 0 : 1;
}
