/**
 * @file
 * snfcrash — systematic crash-point sweep and failure-atomicity
 * checker. Runs each (workload, mode, seed) cell once with full
 * instrumentation, harvests every interesting crash instant
 * (log-buffer drains, cache/WCB write-backs, FWB pass boundaries,
 * transaction commits), then recovers and verifies the NVRAM image
 * at each of them in parallel. Failures are minimized to the
 * earliest failing tick.
 *
 * Usage:
 *   snfcrash [options]
 *     --workload W[,W...]  (default sps; see --list)
 *     --mode M[,M...]      persistence mode(s); "all" = every
 *                          failure-atomic mode (default: fwb)
 *     --seed N[,N...]      workload RNG seed(s) (default 1)
 *     --threads N          workload threads (default 2)
 *     --tx N               transactions per thread (default 50)
 *     --footprint N        elements in the initial structure (>= 1)
 *     --warehouses N       oltp-tpcc warehouse count (>= 1)
 *     --zipf-theta X       oltp-ycsb Zipf skew, strictly in (0,1)
 *     --conflict-rate R    prog workload only: probability each op
 *                          targets the shared conflict region
 *                          (enables 2PL concurrency control unless
 *                          --cc overrides it)
 *     --cc 2pl|tl2|none    concurrency-control scheme for contended
 *                          transactions
 *     --jobs N             parallel crash-point workers; 0 or
 *                          omitted = one per hardware thread (the
 *                          resolved count is printed in the header)
 *     --max-points N       sample N crash points per cell (0 = all)
 *     --sample-seed N      seed of the crash-point sampling
 *     --json FILE          write the JSON report to FILE ("-" =
 *                          stdout)
 *     --bench-json FILE    write the perf trajectory (phase timings
 *                          + snapshot-engine counters per cell, e.g.
 *                          BENCH_sweep.json) to FILE ("-" = stdout)
 *                          and print the per-cell perf summary
 *     --no-minimize        skip bisection of failing points
 *     --fault-bitflip P    faultlab: damage each crash snapshot's log
 *     --fault-multibit P   slots with the given per-slot probability
 *     --fault-drop-slot P  (single/double bit flips, lost writes,
 *     --fault-torn-slot P  torn header words), then check salvage
 *                          idempotence, quarantine soundness and the
 *                          undamaged-set oracle instead of the clean
 *                          invariants
 *     --fault-seed N       seed of the deterministic damage (default 1)
 *     --fault-preset X     light | heavy canned image-damage mixes
 *                          (must precede explicit --fault-* rates,
 *                          which may tune but not zero its fields)
 *     --sweep-recovery N   lifelab (extends I8): at every evaluated
 *                          crash point, also interrupt recovery at
 *                          every N-th interior NVRAM write, re-run
 *                          it, and require byte-for-byte convergence
 *                          with the uninterrupted pass (1 = every
 *                          interior write)
 *     --reorder            reorderlab: at every evaluated crash
 *                          point, also test every legal completion
 *                          order of the in-flight persist set —
 *                          exhaustive order ideals when the pending
 *                          set is small, seeded random linearization
 *                          cuts otherwise — through the same checkers
 *     --reorder-samples N  sampled linearization cuts per point when
 *                          the pending set exceeds the exhaustive
 *                          bound (default 32)
 *     --reorder-bound N    exhaustive order-ideal enumeration up to N
 *                          pending persists (default 6, max 19)
 *     --reorder-seed N     seed of the sampled linearizations
 *     --torn-lines 0|1     also tear the last pending persist of each
 *                          reorder image at 8-byte write boundaries
 *                          (default 1)
 *     --inject-skip-wb-barrier
 *                          fault injection: the controller posts data
 *                          write-backs into the ADR domain without
 *                          waiting for log-drain acceptance (cycle
 *                          timing unchanged, so the completion order
 *                          and hence the plain prefix sweep see
 *                          nothing; only --reorder, which explores
 *                          legal orders of concurrently pending
 *                          writes, catches the skipped edge)
 *     --inject-skip-undo   fault injection: recovery skips the undo
 *     --inject-skip-redo   phase / the redo phase (self-test: the
 *                          sweep must catch and minimize these)
 *     --inject-ignore-crc  fault injection: recovery trusts slots
 *                          without CRC verification (the faulted
 *                          sweeps must catch the garbage replays)
 *     --log-shards N       shardlab: split the log into N
 *                          address-interleaved shards with the
 *                          cross-shard two-phase commit protocol
 *                          (default 1 = the classic single log)
 *     --fault-kill-shard N faultlab + shardlab: wipe shard N's log
 *                          header in every evaluated crash snapshot,
 *                          forcing degraded-mode recovery (needs
 *                          --log-shards > N)
 *     --inject-skip-shard-mask
 *                          fault injection: cross-shard commit
 *                          records name only the owner shard in
 *                          their participation mask, so recovery
 *                          rolls the other shards' slices back while
 *                          redoing the owner's — a mixed image the
 *                          sweep must catch (needs --log-shards > 1)
 *     --list               list workloads and modes, then exit
 *
 * Every value flag also accepts --flag=value. Exit status: 0 when
 * every cell passed, 1 otherwise (CI gates on it).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/fault_flags.hh"
#include "crashlab/report.hh"
#include "crashlab/sweep.hh"
#include "sim/logging.hh"
#include "workloads/driver.hh"

using namespace snf;
using namespace snf::crashlab;
using namespace snf::workloads;

namespace
{

std::vector<std::string>
splitCsv(const char *s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

PersistMode
parseMode(const std::string &name)
{
    for (PersistMode m : kAllModes)
        if (name == persistModeName(m))
            return m;
    fatal("unknown mode '%s'", name.c_str());
}

void
usage()
{
    std::printf(
        "usage: snfcrash [--workload W[,W]] [--mode M[,M]|all] "
        "[--seed N[,N]]\n"
        "                [--threads N] [--tx N] [--footprint N] "
        "[--jobs N]\n"
        "                [--warehouses N] [--zipf-theta X]\n"
        "                [--conflict-rate R] [--cc 2pl|tl2|none]\n"
        "                [--max-points N] [--sample-seed N] "
        "[--json FILE]\n"
        "                [--bench-json FILE]\n"
        "                [--fault-bitflip P] [--fault-multibit P]\n"
        "                [--fault-drop-slot P] [--fault-torn-slot P] "
        "[--fault-seed N]\n"
        "                [--fault-preset light|heavy] "
        "[--sweep-recovery N]\n"
        "                [--reorder] [--reorder-samples N] "
        "[--reorder-bound N]\n"
        "                [--reorder-seed N] [--torn-lines 0|1]\n"
        "                [--log-shards N] [--fault-kill-shard N]\n"
        "                [--no-minimize] [--inject-skip-undo] "
        "[--inject-skip-redo]\n"
        "                [--inject-ignore-crc] "
        "[--inject-skip-wb-barrier]\n"
        "                [--inject-skip-shard-mask] [--list]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> workloadNames{"sps"};
    std::vector<PersistMode> modes{PersistMode::Fwb};
    std::vector<std::uint64_t> seeds{1};
    WorkloadParams params;
    params.threads = 2;
    params.txPerThread = 50;
    SweepConfig base;
    std::string jsonPath;
    std::string benchJsonPath;

    // The image-damage flag family shares its ordering rules (and the
    // contradiction diagnostics) with snfsim/snfsoak.
    FaultFlagSet faultFlags;
    faultFlags.addRate("--fault-bitflip",
                       &base.imageFaults.bitFlipProb);
    faultFlags.addRate("--fault-multibit",
                       &base.imageFaults.multiBitProb);
    faultFlags.addRate("--fault-drop-slot",
                       &base.imageFaults.dropSlotProb);
    faultFlags.addRate("--fault-torn-slot",
                       &base.imageFaults.tornSlotProb);
    faultFlags.addSeed("--fault-seed", &base.imageFaults.seed);
    faultFlags.setPresetFlag("--fault-preset");
    faultFlags.addPreset(
        "light", {{&base.imageFaults.bitFlipProb, 5e-3}});
    faultFlags.addPreset(
        "heavy", {{&base.imageFaults.bitFlipProb, 2e-2},
                  {&base.imageFaults.multiBitProb, 5e-3},
                  {&base.imageFaults.dropSlotProb, 5e-3},
                  {&base.imageFaults.tornSlotProb, 5e-3}});

    std::vector<std::string> args(argv + 1, argv + argc);
    for (std::size_t i = 0; i < args.size(); ++i) {
        std::string err;
        switch (faultFlags.consume(args, i, &err)) {
          case FlagParse::Ok:
            continue;
          case FlagParse::Error:
            fatal("%s", err.c_str());
          case FlagParse::NotMine:
            break;
        }
        auto arg = [&](const char *flag) -> const char * {
            std::size_t n = std::strlen(flag);
            if (std::strncmp(args[i].c_str(), flag, n) == 0 &&
                args[i][n] == '=')
                return args[i].c_str() + n + 1;
            if (args[i] != flag)
                return nullptr;
            if (i + 1 >= args.size())
                fatal("%s needs a value", flag);
            return args[++i].c_str();
        };
        if (const char *v = arg("--workload")) {
            workloadNames = splitCsv(v);
        } else if (const char *v = arg("--mode")) {
            modes.clear();
            for (const auto &name : splitCsv(v)) {
                if (name == "all") {
                    for (PersistMode m : kAllModes)
                        if (guaranteesFailureAtomicity(m))
                            modes.push_back(m);
                } else {
                    modes.push_back(parseMode(name));
                }
            }
        } else if (const char *v = arg("--seed")) {
            seeds.clear();
            for (const auto &s : splitCsv(v))
                seeds.push_back(std::strtoull(s.c_str(), nullptr, 0));
        } else if (const char *v = arg("--threads")) {
            params.threads =
                static_cast<std::uint32_t>(std::atoi(v));
        } else if (const char *v = arg("--tx")) {
            params.txPerThread = std::strtoull(v, nullptr, 0);
        } else if (const char *v = arg("--footprint")) {
            // Strict and positive: the old strtoull turned a typo'd
            // value into 0, which every workload silently replaced
            // with its built-in default record count.
            params.footprint =
                parsePositiveCountFlag("--footprint", v);
        } else if (const char *v = arg("--warehouses")) {
            params.warehouses =
                parsePositiveCountFlag("--warehouses", v);
        } else if (const char *v = arg("--zipf-theta")) {
            params.zipfTheta = parseOpenUnitFlag("--zipf-theta", v);
        } else if (const char *v = arg("--conflict-rate")) {
            params.conflictRate = std::atof(v);
            if (params.conflictRate < 0.0 ||
                params.conflictRate > 1.0)
                fatal("--conflict-rate needs a probability");
            // Contended programs need a CC scheme to serialize.
            if (base.run.sys.persist.ccMode == CcMode::None)
                base.run.sys.persist.ccMode = CcMode::TwoPhase;
        } else if (const char *v = arg("--cc")) {
            if (std::strcmp(v, "2pl") == 0)
                base.run.sys.persist.ccMode = CcMode::TwoPhase;
            else if (std::strcmp(v, "tl2") == 0)
                base.run.sys.persist.ccMode = CcMode::Tl2;
            else if (std::strcmp(v, "none") == 0)
                base.run.sys.persist.ccMode = CcMode::None;
            else
                fatal("--cc wants 2pl, tl2, or none");
        } else if (const char *v = arg("--log-shards")) {
            base.run.sys.persist.logShards =
                parseLogShardsFlag("--log-shards", v);
        } else if (const char *v = arg("--fault-kill-shard")) {
            base.imageFaults.killShard = static_cast<std::int32_t>(
                parseCountFlag("--fault-kill-shard", v));
        } else if (const char *v = arg("--jobs")) {
            base.jobs =
                static_cast<std::size_t>(parseCountFlag("--jobs", v));
        } else if (const char *v = arg("--max-points")) {
            base.maxPoints = static_cast<std::size_t>(
                parseCountFlag("--max-points", v));
        } else if (const char *v = arg("--sample-seed")) {
            base.sampleSeed = std::strtoull(v, nullptr, 0);
        } else if (const char *v = arg("--sweep-recovery")) {
            base.recoverySweepStride = std::strtoull(v, nullptr, 0);
        } else if (args[i] == "--reorder") {
            base.reorder.enabled = true;
        } else if (const char *v = arg("--reorder-samples")) {
            base.reorder.samples = static_cast<std::size_t>(
                parseCountFlag("--reorder-samples", v));
        } else if (const char *v = arg("--reorder-bound")) {
            base.reorder.exhaustiveBound = static_cast<std::size_t>(
                parseCountFlag("--reorder-bound", v));
        } else if (const char *v = arg("--reorder-seed")) {
            base.reorder.seed = parseCountFlag("--reorder-seed", v);
        } else if (const char *v = arg("--torn-lines")) {
            base.reorder.tornLines =
                parseCountFlag("--torn-lines", v) != 0;
        } else if (const char *v = arg("--json")) {
            jsonPath = v;
        } else if (const char *v = arg("--bench-json")) {
            benchJsonPath = v;
        } else if (args[i] == "--no-minimize") {
            base.minimizeFailures = false;
        } else if (args[i] == "--inject-skip-undo") {
            base.recovery.faultSkipUndo = true;
        } else if (args[i] == "--inject-skip-redo") {
            base.recovery.faultSkipRedo = true;
        } else if (args[i] == "--inject-ignore-crc") {
            base.recovery.faultIgnoreCrc = true;
        } else if (args[i] == "--inject-skip-wb-barrier") {
            base.run.sys.persist.injectSkipWbBarrier = true;
        } else if (args[i] == "--inject-skip-shard-mask") {
            base.run.sys.persist.injectSkipShardMask = true;
        } else if (args[i] == "--list") {
            std::printf("workloads:");
            for (const auto &w : allWorkloadNames())
                std::printf(" %s", w.c_str());
            std::printf("\nmodes:");
            for (PersistMode m : kAllModes)
                std::printf(" %s%s", persistModeName(m),
                            guaranteesFailureAtomicity(m) ? "*" : "");
            std::printf("\n(* = failure-atomic, covered by "
                        "--mode all)\n");
            return 0;
        } else if (args[i] == "--help") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown argument '%s'", args[i].c_str());
        }
    }

    if (base.run.sys.persist.injectSkipShardMask &&
        base.run.sys.persist.logShards < 2)
        fatal("--inject-skip-shard-mask needs --log-shards > 1");
    if (base.imageFaults.killShard >= 0 &&
        static_cast<std::uint32_t>(base.imageFaults.killShard) >=
            base.run.sys.persist.logShards)
        fatal("--fault-kill-shard %d needs --log-shards > %d",
              base.imageFaults.killShard, base.imageFaults.killShard);

    std::printf("snfcrash: jobs=%zu%s\n", resolveJobs(base.jobs),
                base.jobs == 0 ? " (auto: one per hardware thread)"
                               : "");

    std::vector<CellResult> cells;
    for (const auto &wl : workloadNames) {
        for (PersistMode mode : modes) {
            for (std::uint64_t seed : seeds) {
                SweepConfig cfg = base;
                cfg.run.workload = wl;
                cfg.run.mode = mode;
                cfg.run.params = params;
                cfg.run.params.seed = seed;

                CellResult cell;
                cell.workload = wl;
                cell.mode = mode;
                cell.seed = seed;
                cell.threads = params.threads;
                cell.txPerThread = params.txPerThread;
                cell.sweep = runCrashSweep(cfg);
                writeTextSummary(std::cout, cell);
                if (!benchJsonPath.empty())
                    writePerfSummary(std::cout, cell);
                cells.push_back(std::move(cell));
            }
        }
    }

    if (!jsonPath.empty()) {
        if (jsonPath == "-") {
            writeJsonReport(std::cout, cells);
        } else {
            std::ofstream f(jsonPath);
            if (!f)
                fatal("cannot write '%s'", jsonPath.c_str());
            writeJsonReport(f, cells);
        }
    }

    if (!benchJsonPath.empty()) {
        if (benchJsonPath == "-") {
            writeBenchJson(std::cout, "snfcrash", cells);
        } else {
            std::ofstream f(benchJsonPath);
            if (!f)
                fatal("cannot write '%s'", benchJsonPath.c_str());
            writeBenchJson(f, "snfcrash", cells);
        }
    }

    std::size_t failed = 0;
    for (const auto &c : cells)
        if (!c.sweep.passed())
            ++failed;
    std::printf("%zu/%zu cells passed\n", cells.size() - failed,
                cells.size());
    return failed == 0 ? 0 : 1;
}
