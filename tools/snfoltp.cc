/**
 * @file
 * snfoltp — production-scale OLTP driver (DESIGN §8): runs the
 * multi-warehouse TPC-C and Zipf-skewed YCSB engines across the
 * {fwb, undo-clwb, redo-clwb} × {2pl, tl2} matrix and reports
 * throughput, commit-latency quantiles (p50/p99/p999), abort/retry
 * rates, and log-buffer / WCB occupancy per mode.
 *
 * Usage:
 *   snfoltp [options]
 *     --threads N        simulated cores (default 4)
 *     --tx N             transactions per thread (default 50)
 *     --seed N           workload RNG seed (default 11)
 *     --warehouses N     TPC-C warehouses (>= 1, default 2)
 *     --customers N      TPC-C customers per district (default 64)
 *     --keys N           YCSB keyspace size (>= 1, default 8192)
 *     --zipf-theta X     YCSB Zipf skew, strictly in (0,1)
 *                        (default 0.9)
 *     --log-shards N     shard the log across N regions (default 1)
 *     --oltp-seconds S   wall-clock budget per cell: after
 *                        --bench-repeats, keep re-running (and
 *                        re-checking counter identity) until S
 *                        seconds of measured time accumulate
 *     --bench-repeats N  minimum timed repeats per cell (default 1);
 *                        counters must be byte-identical across all
 *                        repeats or the run aborts
 *     --jobs N           run cells on N host threads (default 1);
 *                        counters are independent of this
 *     --bench-json FILE  write the snf-bench-oltp-v1 report
 *                        ("-" = stdout) instead of the table
 *
 * Every value flag also accepts --flag=value. All counts are strict:
 * a malformed or zero value is a hard error, never a silent default.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/fault_flags.hh"
#include "oltp/bench.hh"
#include "sim/logging.hh"

using namespace snf;
using namespace snf::oltp;

namespace
{

void
usage()
{
    std::printf(
        "usage: snfoltp [--threads N] [--tx N] [--seed N]\n"
        "               [--warehouses N] [--customers N] [--keys N]\n"
        "               [--zipf-theta X] [--log-shards N]\n"
        "               [--oltp-seconds S] [--bench-repeats N]\n"
        "               [--jobs N] [--bench-json FILE]\n");
}

double
parsePositiveSecondsFlag(const char *flag, const char *value)
{
    char *end = nullptr;
    double s = std::strtod(value, &end);
    if (end == value || *end != '\0')
        fatal("%s needs a number, got '%s'", flag, value);
    if (!(s > 0.0))
        fatal("%s needs a positive duration, got '%s'", flag, value);
    return s;
}

void
printTable(const std::vector<OltpCellResult> &results)
{
    std::printf("%-9s %-9s %-4s %9s %9s %8s %8s %9s %7s %7s\n",
                "workload", "mode", "cc", "commits", "tx/Mcyc",
                "aborts", "retries", "log-recs", "logocc", "wcbocc");
    for (const OltpCellResult &r : results) {
        double txPerMcycle =
            r.cycles == 0 ? 0.0
                          : 1e6 * static_cast<double>(r.committedTx) /
                                static_cast<double>(r.cycles);
        double logOccAvg =
            r.occSamples == 0
                ? 0.0
                : static_cast<double>(r.logOccSum) /
                      static_cast<double>(r.occSamples);
        double wcbOccAvg =
            r.occSamples == 0
                ? 0.0
                : static_cast<double>(r.wcbOccSum) /
                      static_cast<double>(r.occSamples);
        std::printf(
            "%-9s %-9s %-4s %9llu %9.1f %8llu %8llu %9llu %7.1f "
            "%7.1f\n",
            r.spec.engine.c_str(), persistModeName(r.spec.mode),
            ccModeName(r.spec.cc),
            static_cast<unsigned long long>(r.committedTx),
            txPerMcycle,
            static_cast<unsigned long long>(r.abortedTx),
            static_cast<unsigned long long>(r.retries),
            static_cast<unsigned long long>(r.logRecords), logOccAvg,
            wcbOccAvg);
        for (const OltpTypeCounters &t : r.types)
            std::printf("    %-12s commits=%-7llu p50=%-6llu "
                        "p99=%-6llu p999=%-6llu max=%llu\n",
                        t.type.c_str(),
                        static_cast<unsigned long long>(t.committed),
                        static_cast<unsigned long long>(t.latP50),
                        static_cast<unsigned long long>(t.latP99),
                        static_cast<unsigned long long>(t.latP999),
                        static_cast<unsigned long long>(t.latMax));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    OltpMatrixConfig cfg;
    std::string benchJsonPath;

    std::vector<std::string> args(argv + 1, argv + argc);
    for (std::size_t i = 0; i < args.size(); ++i) {
        auto arg = [&](const char *flag) -> const char * {
            std::size_t n = std::strlen(flag);
            if (std::strncmp(args[i].c_str(), flag, n) == 0 &&
                args[i][n] == '=')
                return args[i].c_str() + n + 1;
            if (args[i] != flag)
                return nullptr;
            if (i + 1 >= args.size())
                fatal("%s needs a value", flag);
            return args[++i].c_str();
        };
        if (const char *v = arg("--threads")) {
            cfg.threads = static_cast<std::uint32_t>(
                parsePositiveCountFlag("--threads", v));
        } else if (const char *v = arg("--tx")) {
            cfg.txPerThread = parsePositiveCountFlag("--tx", v);
        } else if (const char *v = arg("--seed")) {
            cfg.seed = parseCountFlag("--seed", v);
        } else if (const char *v = arg("--warehouses")) {
            cfg.warehouses =
                parsePositiveCountFlag("--warehouses", v);
        } else if (const char *v = arg("--customers")) {
            cfg.customers = parsePositiveCountFlag("--customers", v);
        } else if (const char *v = arg("--keys")) {
            cfg.keys = parsePositiveCountFlag("--keys", v);
        } else if (const char *v = arg("--zipf-theta")) {
            cfg.zipfTheta = parseOpenUnitFlag("--zipf-theta", v);
        } else if (const char *v = arg("--log-shards")) {
            cfg.logShards = parseLogShardsFlag("--log-shards", v);
        } else if (const char *v = arg("--oltp-seconds")) {
            cfg.secondsPerCell =
                parsePositiveSecondsFlag("--oltp-seconds", v);
        } else if (const char *v = arg("--bench-repeats")) {
            cfg.minRepeats =
                parsePositiveCountFlag("--bench-repeats", v);
        } else if (const char *v = arg("--jobs")) {
            cfg.jobs = static_cast<unsigned>(
                parsePositiveCountFlag("--jobs", v));
        } else if (const char *v = arg("--bench-json")) {
            benchJsonPath = v;
        } else {
            usage();
            return args[i] == "--help" ? 0 : 1;
        }
    }

    if (cfg.threads > 64)
        fatal("bad thread count");

    std::vector<OltpCellSpec> cells = oltpReferenceCells();
    std::vector<OltpCellResult> results = runOltpMatrix(cells, cfg);

    if (!benchJsonPath.empty()) {
        std::string json = oltpBenchJson(cfg, results);
        if (benchJsonPath == "-") {
            std::cout << json;
        } else {
            std::ofstream f(benchJsonPath);
            if (!f)
                fatal("cannot write '%s'", benchJsonPath.c_str());
            f << json;
        }
        return 0;
    }

    printTable(results);
    return 0;
}
