/**
 * @file
 * snfdiff — conformlab front end: generate seeded random transaction
 * programs and check each one differentially across the hardware
 * HWL+FWB backend, the software-logging reference, and the pure
 * model oracle (final images plus crash-point recovery consistency).
 *
 * Usage:
 *   snfdiff [options]
 *     --programs N        seeded programs to run (default 50)
 *     --seed N            base seed; program i uses seed base+i
 *     --jobs N            worker threads (default: hardware)
 *     --replay FILE       replay one .snfprog repro instead
 *     --corpus DIR        replay every *.snfprog in DIR (sorted)
 *     --max-crash-points N  harvested crash points per backend
 *     --reorder-samples N reorderlab: at every crash point, also
 *                         recover up to N legal completion orders of
 *                         the pending persist set and require each to
 *                         stay model-consistent (0 = prefix only)
 *     --log-shards N      run both backends with the log NVRAM
 *                         sliced across N shards and the cross-shard
 *                         commit protocol (default 1)
 *     --no-crash          final-image differential only
 *     --no-shrink         report the first failure unminimized
 *     --out FILE          failing-program repro path
 *                         (default snfdiff-failure.snfprog)
 *     --conflict-rate R   generate shared-data conflicts: each op
 *                         targets the shared region with probability
 *                         R; judged by the serializability oracle
 *     --load-rate R       per-op load probability for conflicting
 *                         programs (default 0.25)
 *     --cc 2pl|tl2|none   CC scheme for conflicting programs
 *                         (default 2pl)
 *     --inject-skip-undo  self-test: sabotage the hardware backend's
 *     --inject-skip-redo  recovery (skip a replay phase / trust bad
 *     --inject-ignore-crc CRCs) so the differential has a real bug
 *                         to catch and shrink
 *     --inject-lost-update  self-test: run conflicting programs with
 *                         CC disabled so racing transactions produce
 *                         the anomalies the serializability oracle
 *                         must catch and shrink
 *
 * Exit status 0 iff every program agreed. Every value flag also
 * accepts --flag=value.
 */

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "conformlab/diffrun.hh"
#include "conformlab/proggen.hh"
#include "conformlab/shrink.hh"
#include "core/fault_flags.hh"
#include "sim/logging.hh"

using namespace snf;
using namespace snf::conformlab;

namespace
{

void
usage()
{
    std::printf("usage: snfdiff [--programs N] [--seed N] [--jobs N]\n"
                "               [--replay FILE] [--corpus DIR] "
                "[--max-crash-points N]\n"
                "               [--reorder-samples N] "
                "[--log-shards N]\n"
                "               [--no-crash] [--no-shrink] "
                "[--out FILE]\n"
                "               [--conflict-rate R] [--load-rate R] "
                "[--cc 2pl|tl2|none]\n"
                "               [--inject-skip-undo] "
                "[--inject-skip-redo] [--inject-ignore-crc]\n"
                "               [--inject-lost-update]\n");
}

struct Failure
{
    Program program;
    DiffResult result;
    std::string source; // "seed 42" or a file path
};

/** Shrink a failure and write the .snfprog repro. */
void
reportFailure(const Failure &f, const DiffConfig &cfg, bool shrink,
              const std::string &outPath)
{
    std::fprintf(stderr, "FAIL %s: %s\n", f.source.c_str(),
                 f.result.detail.c_str());
    Program repro = f.program;
    if (shrink) {
        ShrinkStats stats;
        repro = shrinkProgram(
            f.program,
            [&](const Program &cand) {
                return !runDiff(cand, cfg).passed;
            },
            ShrinkOptions{}, &stats);
        DiffResult minimal = runDiff(repro, cfg);
        std::fprintf(stderr,
                     "  shrunk to %zu operations after %zu "
                     "evaluations%s: %s\n",
                     repro.operationCount(), stats.evals,
                     stats.budgetExhausted ? " (budget exhausted)"
                                           : "",
                     minimal.detail.c_str());
    }
    if (!saveProgramFile(outPath, repro))
        std::fprintf(stderr, "  cannot write repro to %s\n",
                     outPath.c_str());
    else
        std::fprintf(stderr, "  repro written to %s\n",
                     outPath.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t programs = 50;
    std::uint64_t baseSeed = 1;
    unsigned jobs = std::max(1u, std::thread::hardware_concurrency());
    std::optional<std::string> replayPath;
    std::optional<std::string> corpusDir;
    bool shrink = true;
    std::string outPath = "snfdiff-failure.snfprog";
    DiffConfig cfg;
    ProgGenConfig gen;

    std::vector<std::string> args(argv + 1, argv + argc);
    for (std::size_t i = 0; i < args.size(); ++i) {
        auto arg = [&](const char *flag) -> const char * {
            std::size_t n = std::strlen(flag);
            if (std::strncmp(args[i].c_str(), flag, n) == 0 &&
                args[i][n] == '=')
                return args[i].c_str() + n + 1;
            if (args[i] != flag)
                return nullptr;
            if (i + 1 >= args.size())
                fatal("%s needs a value", flag);
            return args[++i].c_str();
        };
        if (const char *v = arg("--programs")) {
            programs = static_cast<std::size_t>(std::atoll(v));
        } else if (const char *v = arg("--seed")) {
            baseSeed = static_cast<std::uint64_t>(std::atoll(v));
        } else if (const char *v = arg("--jobs")) {
            jobs = std::max(1, std::atoi(v));
        } else if (const char *v = arg("--replay")) {
            replayPath = v;
        } else if (const char *v = arg("--corpus")) {
            corpusDir = v;
        } else if (const char *v = arg("--max-crash-points")) {
            cfg.maxCrashPoints =
                static_cast<std::size_t>(std::atoll(v));
        } else if (const char *v = arg("--reorder-samples")) {
            cfg.reorderSamples =
                static_cast<std::size_t>(std::atoll(v));
        } else if (const char *v = arg("--log-shards")) {
            cfg.logShards = parseLogShardsFlag("--log-shards", v);
        } else if (const char *v = arg("--out")) {
            outPath = v;
        } else if (const char *v = arg("--conflict-rate")) {
            gen.conflictRate = std::atof(v);
            if (gen.conflictRate < 0.0 || gen.conflictRate > 1.0)
                fatal("--conflict-rate wants a probability");
        } else if (const char *v = arg("--load-rate")) {
            gen.loadRate = std::atof(v);
            if (gen.loadRate < 0.0 || gen.loadRate > 1.0)
                fatal("--load-rate wants a probability");
        } else if (const char *v = arg("--cc")) {
            if (std::strcmp(v, "2pl") == 0)
                cfg.ccMode = CcMode::TwoPhase;
            else if (std::strcmp(v, "tl2") == 0)
                cfg.ccMode = CcMode::Tl2;
            else if (std::strcmp(v, "none") == 0)
                cfg.ccMode = CcMode::None;
            else
                fatal("--cc wants 2pl, tl2, or none");
        } else if (args[i] == "--inject-lost-update") {
            cfg.injectLostUpdate = true;
        } else if (args[i] == "--no-crash") {
            cfg.crashDifferential = false;
        } else if (args[i] == "--no-shrink") {
            shrink = false;
        } else if (args[i] == "--inject-skip-undo") {
            cfg.hwRecovery.faultSkipUndo = true;
        } else if (args[i] == "--inject-skip-redo") {
            cfg.hwRecovery.faultSkipRedo = true;
        } else if (args[i] == "--inject-ignore-crc") {
            cfg.hwRecovery.faultIgnoreCrc = true;
        } else {
            usage();
            return args[i] == "--help" ? 0 : 2;
        }
    }

    // --- Replay paths: one repro file, or a whole corpus ---------
    std::vector<std::pair<std::string, Program>> fixed;
    if (replayPath) {
        Program p;
        std::string err;
        if (!loadProgramFile(*replayPath, &p, &err))
            fatal("%s", err.c_str());
        fixed.emplace_back(*replayPath, p);
    }
    if (corpusDir) {
        std::vector<std::string> files;
        for (const auto &e :
             std::filesystem::directory_iterator(*corpusDir))
            if (e.path().extension() == ".snfprog")
                files.push_back(e.path().string());
        std::sort(files.begin(), files.end());
        if (files.empty())
            fatal("no .snfprog files in %s", corpusDir->c_str());
        for (const auto &f : files) {
            Program p;
            std::string err;
            if (!loadProgramFile(f, &p, &err))
                fatal("%s", err.c_str());
            fixed.emplace_back(f, p);
        }
    }

    // --- Work list -----------------------------------------------
    struct Job
    {
        std::string source;
        Program program;
    };
    std::vector<Job> work;
    for (auto &[src, p] : fixed)
        work.push_back({src, std::move(p)});
    if (fixed.empty()) {
        for (std::size_t i = 0; i < programs; ++i) {
            std::uint64_t seed = baseSeed + i;
            work.push_back(
                {strfmt("seed %llu",
                        static_cast<unsigned long long>(seed)),
                 generateProgram(seed, gen)});
        }
    }

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> crashPoints{0};
    std::atomic<std::size_t> committed{0};
    std::mutex failLock;
    std::optional<Failure> firstFailure;

    auto worker = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= work.size())
                return;
            {
                std::lock_guard<std::mutex> g(failLock);
                if (firstFailure)
                    return; // stop the fleet on first divergence
            }
            DiffResult r = runDiff(work[i].program, cfg);
            crashPoints += r.crashPointsChecked;
            committed += r.committedTx;
            if (!r.passed) {
                std::lock_guard<std::mutex> g(failLock);
                if (!firstFailure)
                    firstFailure =
                        Failure{work[i].program, r, work[i].source};
                return;
            }
        }
    };
    std::vector<std::thread> pool;
    for (unsigned t = 1; t < jobs; ++t)
        pool.emplace_back(worker);
    worker();
    for (auto &t : pool)
        t.join();

    if (firstFailure) {
        reportFailure(*firstFailure, cfg, shrink, outPath);
        return 1;
    }
    std::printf("snfdiff: %zu programs agreed (%zu committed tx, "
                "%zu crash points recovered)\n",
                work.size(), committed.load(), crashPoints.load());
    return 0;
}
