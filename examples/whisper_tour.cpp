/**
 * @file
 * Tour of the bundled workloads: runs every microbenchmark and
 * WHISPER-style workload once under the full design (fwb) and under
 * the best software baseline, printing throughput side by side and
 * verifying structural consistency of each persistent structure.
 *
 *   ./whisper_tour [threads]
 */

#include <cstdio>
#include <cstdlib>

#include "workloads/driver.hh"

using namespace snf;
using namespace snf::workloads;

int
main(int argc, char **argv)
{
    std::uint32_t threads =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 2;
    if (threads == 0 || threads > 16)
        threads = 2;

    std::printf("%-10s %14s %14s %8s %10s\n", "workload",
                "undo-clwb tx/Mc", "fwb tx/Mc", "speedup",
                "verified");

    for (const auto &name : allWorkloadNames()) {
        RunSpec spec;
        spec.workload = name;
        spec.params.threads = threads;
        spec.params.txPerThread = 300;
        spec.params.footprint = 2048;
        spec.sys = SystemConfig::scaled(threads);

        spec.mode = PersistMode::UndoClwb;
        auto sw = runWorkload(spec);

        spec.mode = PersistMode::Fwb;
        auto hw = runWorkload(spec);

        std::printf("%-10s %14.1f %14.1f %7.2fx %10s\n",
                    name.c_str(), sw.stats.txPerMcycle,
                    hw.stats.txPerMcycle,
                    hw.stats.txPerMcycle / sw.stats.txPerMcycle,
                    (sw.verified && hw.verified) ? "yes" : "NO");
        if (!sw.verified || !hw.verified) {
            std::printf("  verification failed: %s%s\n",
                        sw.verifyMessage.c_str(),
                        hw.verifyMessage.c_str());
            return 1;
        }
    }
    std::printf("\nAll structures verified under both schemes.\n");
    return 0;
}
