/**
 * @file
 * Crash and recovery end to end: a small persistent key-value store
 * runs under the hardware undo+redo design, the machine loses power
 * mid-transaction (all caches, the log buffer, and in-flight state
 * vanish), and recovery replays the NVRAM log — redoing committed
 * transactions and rolling back the interrupted one.
 *
 *   ./kvstore_recovery
 */

#include <cstdio>

#include "core/system.hh"
#include "persist/recovery.hh"
#include "sim/rng.hh"

using namespace snf;

namespace
{

constexpr std::uint64_t kSlots = 64;

/** kv[i] layout: value(8) | stamp(8); invariant: stamp == value^0xA5. */
sim::Co<void>
kvThread(Thread &t, Addr table, std::uint64_t ops)
{
    sim::Rng rng(17 + t.id());
    for (std::uint64_t i = 0; i < ops; ++i) {
        std::uint64_t k = rng.below(kSlots / 2) + t.id() * kSlots / 2;
        Addr rec = table + k * 16;
        co_await t.txBegin();
        std::uint64_t v = co_await t.load64(rec);
        std::uint64_t nv = v + k + 1;
        co_await t.store64(rec, nv);
        if (i % 16 == 0) {
            // Model an unlucky eviction: the half-updated record
            // "steals" its way into NVRAM mid-transaction. The
            // undo log makes this safe.
            co_await t.clwb(rec);
            co_await t.fence();
        }
        co_await t.compute(25);
        co_await t.store64(rec + 8, nv ^ 0xa5);
        co_await t.txCommit();
    }
}

bool
consistent(const mem::BackingStore &img, Addr table, const char *when)
{
    std::uint64_t bad = 0;
    for (std::uint64_t k = 0; k < kSlots; ++k) {
        std::uint64_t v = img.read64(table + k * 16);
        std::uint64_t s = img.read64(table + k * 16 + 8);
        if (s != (v ^ 0xa5))
            ++bad;
    }
    std::printf("  [%s] %llu/%llu records consistent\n", when,
                static_cast<unsigned long long>(kSlots - bad),
                static_cast<unsigned long long>(kSlots));
    return bad == 0;
}

} // namespace

int
main()
{
    SystemConfig cfg = SystemConfig::scaled(2);
    cfg.persist.crashJournal = true; // record NVRAM write times
    System sys(cfg, PersistMode::Fwb);

    Addr table = sys.heap().alloc(kSlots * 16, 64);
    for (std::uint64_t k = 0; k < kSlots; ++k) {
        sys.heap().prewrite64(table + k * 16, 0);
        sys.heap().prewrite64(table + k * 16 + 8, 0xa5);
    }

    for (CoreId c = 0; c < 2; ++c) {
        sys.spawn(c, [&](Thread &t) {
            return kvThread(t, table, 100000);
        });
    }

    // Pull the plug mid-run.
    const Tick crash_tick = 120000;
    sys.run(crash_tick);
    std::printf("power failure at tick %llu!\n",
                static_cast<unsigned long long>(crash_tick));
    std::printf("  committed so far: %llu transactions\n",
                static_cast<unsigned long long>(
                    sys.txns().committed.value()));

    // The NVRAM image as the power failure left it: caches, store
    // buffers, and the log buffer are gone.
    mem::BackingStore image = sys.crashSnapshot(crash_tick);
    bool before = consistent(image, table, "before recovery");

    auto report = persist::Recovery::run(image, cfg.map);
    std::printf("recovery: %llu log records in window, %llu txns "
                "redone, %llu rolled back,\n"
                "          %llu redo writes, %llu undo writes\n",
                static_cast<unsigned long long>(report.validRecords),
                static_cast<unsigned long long>(
                    report.committedTxns),
                static_cast<unsigned long long>(
                    report.uncommittedTxns),
                static_cast<unsigned long long>(report.redoApplied),
                static_cast<unsigned long long>(report.undoApplied));

    bool after = consistent(image, table, "after recovery");
    if (!after) {
        std::printf("FAILED: store inconsistent after recovery\n");
        return 1;
    }
    std::printf("OK: every record satisfies its invariant%s\n",
                before ? " (crash landed between transactions)"
                       : " (recovery repaired the crash damage)");
    return 0;
}
