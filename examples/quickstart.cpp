/**
 * @file
 * Quickstart: build a simulated persistent-memory system with the
 * full hardware undo+redo logging design (HWL + FWB), run a few
 * transactions against a persistent counter from two threads, and
 * inspect the statistics the paper reports.
 *
 *   ./quickstart
 */

#include <cstdio>

#include "core/system.hh"

using namespace snf;

namespace
{

/** One workload thread: transactionally increment a shared counter
 *  slot (per-thread slot, so no locking is needed). */
sim::Co<void>
counterThread(Thread &t, Addr slots, int iters)
{
    Addr my_slot = slots + t.id() * 8;
    for (int i = 0; i < iters; ++i) {
        co_await t.txBegin();             // tx_begin(txid)
        std::uint64_t v = co_await t.load64(my_slot);
        co_await t.compute(10);           // some computation
        co_await t.store64(my_slot, v + 1);
        co_await t.txCommit();            // tx_commit(): free ride!
    }
}

} // namespace

int
main()
{
    // 1. Configure the machine (paper Table II, scaled preset) and
    //    pick the persistence scheme: Fwb = HWL + cache force
    //    write-back, the paper's full design.
    SystemConfig cfg = SystemConfig::scaled(/*cores=*/2);
    System sys(cfg, PersistMode::Fwb);

    // 2. Allocate persistent data in simulated NVRAM.
    Addr slots = sys.heap().alloc(2 * 8, 64);

    // 3. Spawn one workload coroutine per core.
    for (CoreId c = 0; c < 2; ++c) {
        sys.spawn(c, [&](Thread &t) {
            return counterThread(t, slots, 1000);
        });
    }

    // 4. Run to completion and collect statistics.
    Tick end = sys.run();
    RunStats stats = sys.collectStats(end);

    std::printf("simulated cycles     : %llu\n",
                static_cast<unsigned long long>(stats.cycles));
    std::printf("committed txns       : %llu\n",
                static_cast<unsigned long long>(stats.committedTx));
    std::printf("instructions         : %llu (0 logging, 0 clwb, "
                "0 fences!)\n",
                static_cast<unsigned long long>(stats.instr.total));
    std::printf("log records (by HWL) : %llu\n",
                static_cast<unsigned long long>(stats.logRecords));
    std::printf("NVRAM writes         : %llu (%llu bytes)\n",
                static_cast<unsigned long long>(stats.nvramWrites),
                static_cast<unsigned long long>(
                    stats.nvramWriteBytes));
    std::printf("order violations     : %llu (log-before-data held)\n",
                static_cast<unsigned long long>(
                    stats.orderViolations));
    std::printf("memory dynamic energy: %.1f nJ\n",
                stats.energy.memoryDynamicPj() / 1000.0);

    // 5. The counters are still cached; flush and read them back.
    sys.flushAll(end);
    std::printf("final counters       : %llu, %llu\n",
                static_cast<unsigned long long>(
                    sys.heap().peek64(slots)),
                static_cast<unsigned long long>(
                    sys.heap().peek64(slots + 8)));
    return 0;
}
