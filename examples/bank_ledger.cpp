/**
 * @file
 * Failure-atomic multi-record updates: a bank ledger where every
 * transfer debits one account and credits another inside one
 * persistent transaction. The example compares persistence schemes:
 * under unsafe software logging a crash can lose money; under the
 * paper's hardware undo+redo design the total balance is conserved
 * across any crash point.
 *
 *   ./bank_ledger
 */

#include <cstdio>

#include "core/system.hh"
#include "persist/recovery.hh"
#include "sim/rng.hh"

using namespace snf;

namespace
{

constexpr std::uint64_t kAccounts = 128;
constexpr std::uint64_t kInitialBalance = 1000;

sim::Co<void>
tellerThread(Thread &t, Addr accounts, std::uint64_t transfers,
             std::uint32_t nthreads)
{
    sim::Rng rng(91 + t.id());
    std::uint64_t share = kAccounts / nthreads;
    std::uint64_t lo = t.id() * share;
    for (std::uint64_t i = 0; i < transfers; ++i) {
        std::uint64_t from = lo + rng.below(share);
        std::uint64_t to = lo + rng.below(share);
        if (from == to)
            continue;
        co_await t.txBegin();
        std::uint64_t a = co_await t.load64(accounts + from * 8);
        std::uint64_t b = co_await t.load64(accounts + to * 8);
        std::uint64_t amount = rng.below(a / 2 + 1);
        co_await t.compute(20); // fees, limits, fraud checks
        co_await t.store64(accounts + from * 8, a - amount);
        // A crash here is the dangerous window: the debit may have
        // stolen its way into NVRAM while the credit has not.
        co_await t.store64(accounts + to * 8, b + amount);
        co_await t.txCommit();
    }
}

std::uint64_t
totalBalance(const mem::BackingStore &img, Addr accounts)
{
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < kAccounts; ++i)
        sum += img.read64(accounts + i * 8);
    return sum;
}

bool
runOnce(PersistMode mode)
{
    SystemConfig cfg = SystemConfig::scaled(2);
    cfg.persist.crashJournal = true;
    System sys(cfg, mode);

    Addr accounts = sys.heap().alloc(kAccounts * 8, 64);
    for (std::uint64_t i = 0; i < kAccounts; ++i)
        sys.heap().prewrite64(accounts + i * 8, kInitialBalance);

    for (CoreId c = 0; c < 2; ++c) {
        sys.spawn(c, [&](Thread &t) {
            return tellerThread(t, accounts, 100000, 2);
        });
    }

    const Tick crash_tick = 90000;
    sys.run(crash_tick);
    mem::BackingStore image = sys.crashSnapshot(crash_tick);
    persist::Recovery::run(image, cfg.map);

    std::uint64_t total = totalBalance(image, accounts);
    std::uint64_t expected = kAccounts * kInitialBalance;
    std::printf("  %-12s total after crash+recovery: %8llu "
                "(expected %llu) %s\n",
                persistModeName(mode),
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(expected),
                total == expected ? "CONSERVED" : "MONEY LOST!");
    return total == expected;
}

} // namespace

int
main()
{
    std::printf("Bank ledger: %llu accounts x %llu, crash mid-run, "
                "recover, audit the books.\n",
                static_cast<unsigned long long>(kAccounts),
                static_cast<unsigned long long>(kInitialBalance));

    // The guaranteed schemes must always conserve the total.
    bool ok = true;
    for (PersistMode m :
         {PersistMode::UndoClwb, PersistMode::Hwl, PersistMode::Fwb})
        ok &= runOnce(m);

    // The unsafe baseline (no forced write-backs) may or may not
    // lose money depending on where the crash lands — that is why
    // it is called unsafe.
    std::printf("  (reference run without persistence guarantee:)\n");
    runOnce(PersistMode::UnsafeRedo);

    if (!ok) {
        std::printf("FAILED: a guaranteed mode lost money\n");
        return 1;
    }
    std::printf("OK: undo-clwb, hwl, and fwb all conserved the "
                "total balance.\n");
    return 0;
}
