file(REMOVE_RECURSE
  "CMakeFiles/whisper_tour.dir/whisper_tour.cpp.o"
  "CMakeFiles/whisper_tour.dir/whisper_tour.cpp.o.d"
  "whisper_tour"
  "whisper_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
