# Empty compiler generated dependencies file for whisper_tour.
# This may be replaced when dependencies are built.
