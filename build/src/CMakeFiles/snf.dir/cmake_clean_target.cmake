file(REMOVE_RECURSE
  "libsnf.a"
)
