# Empty compiler generated dependencies file for snf.
# This may be replaced when dependencies are built.
