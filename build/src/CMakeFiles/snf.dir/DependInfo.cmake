
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/pheap.cc" "src/CMakeFiles/snf.dir/core/pheap.cc.o" "gcc" "src/CMakeFiles/snf.dir/core/pheap.cc.o.d"
  "/root/repo/src/core/system.cc" "src/CMakeFiles/snf.dir/core/system.cc.o" "gcc" "src/CMakeFiles/snf.dir/core/system.cc.o.d"
  "/root/repo/src/core/system_config.cc" "src/CMakeFiles/snf.dir/core/system_config.cc.o" "gcc" "src/CMakeFiles/snf.dir/core/system_config.cc.o.d"
  "/root/repo/src/core/thread_api.cc" "src/CMakeFiles/snf.dir/core/thread_api.cc.o" "gcc" "src/CMakeFiles/snf.dir/core/thread_api.cc.o.d"
  "/root/repo/src/cpu/scheduler.cc" "src/CMakeFiles/snf.dir/cpu/scheduler.cc.o" "gcc" "src/CMakeFiles/snf.dir/cpu/scheduler.cc.o.d"
  "/root/repo/src/cpu/thread_context.cc" "src/CMakeFiles/snf.dir/cpu/thread_context.cc.o" "gcc" "src/CMakeFiles/snf.dir/cpu/thread_context.cc.o.d"
  "/root/repo/src/energy/energy_model.cc" "src/CMakeFiles/snf.dir/energy/energy_model.cc.o" "gcc" "src/CMakeFiles/snf.dir/energy/energy_model.cc.o.d"
  "/root/repo/src/mem/backing_store.cc" "src/CMakeFiles/snf.dir/mem/backing_store.cc.o" "gcc" "src/CMakeFiles/snf.dir/mem/backing_store.cc.o.d"
  "/root/repo/src/mem/bus_monitor.cc" "src/CMakeFiles/snf.dir/mem/bus_monitor.cc.o" "gcc" "src/CMakeFiles/snf.dir/mem/bus_monitor.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/snf.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/snf.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/mem_device.cc" "src/CMakeFiles/snf.dir/mem/mem_device.cc.o" "gcc" "src/CMakeFiles/snf.dir/mem/mem_device.cc.o.d"
  "/root/repo/src/mem/memory_system.cc" "src/CMakeFiles/snf.dir/mem/memory_system.cc.o" "gcc" "src/CMakeFiles/snf.dir/mem/memory_system.cc.o.d"
  "/root/repo/src/mem/write_combine_buffer.cc" "src/CMakeFiles/snf.dir/mem/write_combine_buffer.cc.o" "gcc" "src/CMakeFiles/snf.dir/mem/write_combine_buffer.cc.o.d"
  "/root/repo/src/persist/fwb_engine.cc" "src/CMakeFiles/snf.dir/persist/fwb_engine.cc.o" "gcc" "src/CMakeFiles/snf.dir/persist/fwb_engine.cc.o.d"
  "/root/repo/src/persist/hwl_engine.cc" "src/CMakeFiles/snf.dir/persist/hwl_engine.cc.o" "gcc" "src/CMakeFiles/snf.dir/persist/hwl_engine.cc.o.d"
  "/root/repo/src/persist/log_buffer.cc" "src/CMakeFiles/snf.dir/persist/log_buffer.cc.o" "gcc" "src/CMakeFiles/snf.dir/persist/log_buffer.cc.o.d"
  "/root/repo/src/persist/log_record.cc" "src/CMakeFiles/snf.dir/persist/log_record.cc.o" "gcc" "src/CMakeFiles/snf.dir/persist/log_record.cc.o.d"
  "/root/repo/src/persist/log_region.cc" "src/CMakeFiles/snf.dir/persist/log_region.cc.o" "gcc" "src/CMakeFiles/snf.dir/persist/log_region.cc.o.d"
  "/root/repo/src/persist/recovery.cc" "src/CMakeFiles/snf.dir/persist/recovery.cc.o" "gcc" "src/CMakeFiles/snf.dir/persist/recovery.cc.o.d"
  "/root/repo/src/persist/sw_logging.cc" "src/CMakeFiles/snf.dir/persist/sw_logging.cc.o" "gcc" "src/CMakeFiles/snf.dir/persist/sw_logging.cc.o.d"
  "/root/repo/src/persist/txn_tracker.cc" "src/CMakeFiles/snf.dir/persist/txn_tracker.cc.o" "gcc" "src/CMakeFiles/snf.dir/persist/txn_tracker.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/snf.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/snf.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/snf.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/snf.dir/sim/logging.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/snf.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/snf.dir/sim/rng.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/snf.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/snf.dir/sim/stats.cc.o.d"
  "/root/repo/src/workloads/btree.cc" "src/CMakeFiles/snf.dir/workloads/btree.cc.o" "gcc" "src/CMakeFiles/snf.dir/workloads/btree.cc.o.d"
  "/root/repo/src/workloads/driver.cc" "src/CMakeFiles/snf.dir/workloads/driver.cc.o" "gcc" "src/CMakeFiles/snf.dir/workloads/driver.cc.o.d"
  "/root/repo/src/workloads/hash.cc" "src/CMakeFiles/snf.dir/workloads/hash.cc.o" "gcc" "src/CMakeFiles/snf.dir/workloads/hash.cc.o.d"
  "/root/repo/src/workloads/rbtree.cc" "src/CMakeFiles/snf.dir/workloads/rbtree.cc.o" "gcc" "src/CMakeFiles/snf.dir/workloads/rbtree.cc.o.d"
  "/root/repo/src/workloads/sps.cc" "src/CMakeFiles/snf.dir/workloads/sps.cc.o" "gcc" "src/CMakeFiles/snf.dir/workloads/sps.cc.o.d"
  "/root/repo/src/workloads/ssca2.cc" "src/CMakeFiles/snf.dir/workloads/ssca2.cc.o" "gcc" "src/CMakeFiles/snf.dir/workloads/ssca2.cc.o.d"
  "/root/repo/src/workloads/whisper_ctree.cc" "src/CMakeFiles/snf.dir/workloads/whisper_ctree.cc.o" "gcc" "src/CMakeFiles/snf.dir/workloads/whisper_ctree.cc.o.d"
  "/root/repo/src/workloads/whisper_echo.cc" "src/CMakeFiles/snf.dir/workloads/whisper_echo.cc.o" "gcc" "src/CMakeFiles/snf.dir/workloads/whisper_echo.cc.o.d"
  "/root/repo/src/workloads/whisper_hashmap.cc" "src/CMakeFiles/snf.dir/workloads/whisper_hashmap.cc.o" "gcc" "src/CMakeFiles/snf.dir/workloads/whisper_hashmap.cc.o.d"
  "/root/repo/src/workloads/whisper_tpcc.cc" "src/CMakeFiles/snf.dir/workloads/whisper_tpcc.cc.o" "gcc" "src/CMakeFiles/snf.dir/workloads/whisper_tpcc.cc.o.d"
  "/root/repo/src/workloads/whisper_vacation.cc" "src/CMakeFiles/snf.dir/workloads/whisper_vacation.cc.o" "gcc" "src/CMakeFiles/snf.dir/workloads/whisper_vacation.cc.o.d"
  "/root/repo/src/workloads/whisper_ycsb.cc" "src/CMakeFiles/snf.dir/workloads/whisper_ycsb.cc.o" "gcc" "src/CMakeFiles/snf.dir/workloads/whisper_ycsb.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/snf.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/snf.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
