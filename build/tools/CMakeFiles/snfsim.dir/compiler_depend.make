# Empty compiler generated dependencies file for snfsim.
# This may be replaced when dependencies are built.
