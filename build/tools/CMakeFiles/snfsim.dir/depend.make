# Empty dependencies file for snfsim.
# This may be replaced when dependencies are built.
