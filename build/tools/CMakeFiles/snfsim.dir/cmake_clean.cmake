file(REMOVE_RECURSE
  "CMakeFiles/snfsim.dir/snfsim.cc.o"
  "CMakeFiles/snfsim.dir/snfsim.cc.o.d"
  "snfsim"
  "snfsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snfsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
