# Empty compiler generated dependencies file for fig7_ipc_instr.
# This may be replaced when dependencies are built.
