file(REMOVE_RECURSE
  "CMakeFiles/fig7_ipc_instr.dir/fig7_ipc_instr.cc.o"
  "CMakeFiles/fig7_ipc_instr.dir/fig7_ipc_instr.cc.o.d"
  "fig7_ipc_instr"
  "fig7_ipc_instr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_ipc_instr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
