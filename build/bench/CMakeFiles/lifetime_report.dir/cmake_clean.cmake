file(REMOVE_RECURSE
  "CMakeFiles/lifetime_report.dir/lifetime_report.cc.o"
  "CMakeFiles/lifetime_report.dir/lifetime_report.cc.o.d"
  "lifetime_report"
  "lifetime_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifetime_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
