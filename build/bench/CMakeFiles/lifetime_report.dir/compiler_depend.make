# Empty compiler generated dependencies file for lifetime_report.
# This may be replaced when dependencies are built.
