# Empty compiler generated dependencies file for fig11b_fwb_freq.
# This may be replaced when dependencies are built.
