file(REMOVE_RECURSE
  "CMakeFiles/fig11b_fwb_freq.dir/fig11b_fwb_freq.cc.o"
  "CMakeFiles/fig11b_fwb_freq.dir/fig11b_fwb_freq.cc.o.d"
  "fig11b_fwb_freq"
  "fig11b_fwb_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11b_fwb_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
