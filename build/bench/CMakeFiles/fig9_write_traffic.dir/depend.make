# Empty dependencies file for fig9_write_traffic.
# This may be replaced when dependencies are built.
