file(REMOVE_RECURSE
  "CMakeFiles/fig9_write_traffic.dir/fig9_write_traffic.cc.o"
  "CMakeFiles/fig9_write_traffic.dir/fig9_write_traffic.cc.o.d"
  "fig9_write_traffic"
  "fig9_write_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_write_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
