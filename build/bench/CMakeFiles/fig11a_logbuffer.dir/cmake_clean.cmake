file(REMOVE_RECURSE
  "CMakeFiles/fig11a_logbuffer.dir/fig11a_logbuffer.cc.o"
  "CMakeFiles/fig11a_logbuffer.dir/fig11a_logbuffer.cc.o.d"
  "fig11a_logbuffer"
  "fig11a_logbuffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_logbuffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
