# Empty dependencies file for fig11a_logbuffer.
# This may be replaced when dependencies are built.
