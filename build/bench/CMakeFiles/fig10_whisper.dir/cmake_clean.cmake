file(REMOVE_RECURSE
  "CMakeFiles/fig10_whisper.dir/fig10_whisper.cc.o"
  "CMakeFiles/fig10_whisper.dir/fig10_whisper.cc.o.d"
  "fig10_whisper"
  "fig10_whisper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_whisper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
