# Empty compiler generated dependencies file for fig10_whisper.
# This may be replaced when dependencies are built.
