# Empty dependencies file for ablation_distributed_log.
# This may be replaced when dependencies are built.
