file(REMOVE_RECURSE
  "CMakeFiles/ablation_distributed_log.dir/ablation_distributed_log.cc.o"
  "CMakeFiles/ablation_distributed_log.dir/ablation_distributed_log.cc.o.d"
  "ablation_distributed_log"
  "ablation_distributed_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_distributed_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
