file(REMOVE_RECURSE
  "CMakeFiles/test_txn_recovery.dir/test_txn_recovery.cc.o"
  "CMakeFiles/test_txn_recovery.dir/test_txn_recovery.cc.o.d"
  "test_txn_recovery"
  "test_txn_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_txn_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
