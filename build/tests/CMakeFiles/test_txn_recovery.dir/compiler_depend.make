# Empty compiler generated dependencies file for test_txn_recovery.
# This may be replaced when dependencies are built.
