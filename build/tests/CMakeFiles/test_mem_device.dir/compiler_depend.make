# Empty compiler generated dependencies file for test_mem_device.
# This may be replaced when dependencies are built.
