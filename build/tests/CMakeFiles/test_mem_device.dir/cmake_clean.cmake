file(REMOVE_RECURSE
  "CMakeFiles/test_mem_device.dir/test_mem_device.cc.o"
  "CMakeFiles/test_mem_device.dir/test_mem_device.cc.o.d"
  "test_mem_device"
  "test_mem_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
