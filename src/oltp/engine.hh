/**
 * @file
 * Shared machinery of the production-scale OLTP engines (DESIGN §8):
 * per-transaction-type metrics (commit counts + latency histograms)
 * and TxExec, the per-attempt transactional access adapter that
 * implements the two commit disciplines:
 *
 *  - steal (modes with undo values, supportsAbort): encounter-time
 *    txLoad64/txStore64; conflicts roll back via tx_abort's in-log
 *    undo replay and the attempt is retried.
 *  - no-steal (redo-only modes under a CC scheme): reads run
 *    encounter-time, stores are buffered in the engine; at finish()
 *    the write-set's lines are locked (txLock64), the read-set is
 *    early-validated (txValidate), and only then do the buffered
 *    stores execute. Every conflict is thus discovered while the
 *    transaction's write-set is still empty, so rollback never needs
 *    the undo values redo-only logging doesn't have — the paper's
 *    §II-B no-steal requirement, enforced at the engine layer.
 */

#ifndef SNF_OLTP_ENGINE_HH
#define SNF_OLTP_ENGINE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "oltp/latency.hh"
#include "workloads/workload.hh"

namespace snf::oltp
{

using workloads::WorkloadParams;

/** Commit count + latency distribution of one transaction type. */
struct TxTypeMetrics
{
    std::uint64_t committed = 0;
    /** First-tx_begin-to-commit latency in ticks, retries included. */
    LatencyHistogram latency;
};

/** Workload with engine-level OLTP metrics (see file comment). */
class OltpEngine : public workloads::Workload
{
  public:
    /** Per-type metrics in registration order (deterministic). */
    const std::vector<std::pair<std::string, TxTypeMetrics>> &
    txMetrics() const
    {
        return types;
    }

    /** Conflict-driven abort-retry attempts across all threads. */
    std::uint64_t retries() const { return retriesCount; }

    /** Business aborts (e.g. TPC-C's 1% NewOrder rollback). */
    std::uint64_t userAborts() const { return userAbortCount; }

  protected:
    /** Register the engine's transaction types (called in setup). */
    void
    resetMetrics(std::initializer_list<const char *> names)
    {
        types.clear();
        for (const char *n : names)
            types.emplace_back(n, TxTypeMetrics{});
        retriesCount = 0;
        userAbortCount = 0;
    }

    TxTypeMetrics &typeMetrics(std::size_t i) { return types[i].second; }

    std::uint64_t retriesCount = 0;
    std::uint64_t userAbortCount = 0;

  private:
    std::vector<std::pair<std::string, TxTypeMetrics>> types;
};

/** See file comment. One instance per transaction attempt. */
class TxExec
{
  public:
    TxExec(System &system, Thread &thread, bool noSteal)
        : sys(system), th(thread), defer(noSteal)
    {
    }

    /** Did any access hit a conflict the CC layer resolved against
     *  this transaction (deadlock doom or failed validation)? The
     *  caller must then tx_abort and retry the attempt. */
    bool doomed() const { return isDoomed; }

    /** Transactional read; *out is zeroed when doomed. */
    sim::Co<void> load(Addr a, std::uint64_t *out);

    /** Transactional write: immediate (steal) or buffered. */
    sim::Co<void> store(Addr a, std::uint64_t v);

    /**
     * No-steal commit prologue: lock the buffered write-set's lines
     * (sorted, deduplicated), early-validate the read-set, then
     * flush the buffered stores. No-op under the steal discipline.
     * Must run before txCommit() unless doomed().
     */
    sim::Co<void> finish();

  private:
    System &sys;
    Thread &th;
    bool defer;
    bool isDoomed = false;
    std::vector<std::pair<Addr, std::uint64_t>> buf;
};

} // namespace snf::oltp

#endif // SNF_OLTP_ENGINE_HH
