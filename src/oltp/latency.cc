#include "oltp/latency.hh"

#include <bit>

namespace snf::oltp
{

std::size_t
LatencyHistogram::bucketOf(std::uint64_t v)
{
    if (v < kSub)
        return static_cast<std::size_t>(v);
    // Octave = position of the most significant bit; the kSubBits
    // bits below it select the sub-bucket.
    unsigned msb = 63 - static_cast<unsigned>(std::countl_zero(v));
    std::uint64_t sub = (v >> (msb - kSubBits)) & (kSub - 1);
    return kSub + (msb - kSubBits) * kSub +
           static_cast<std::size_t>(sub);
}

std::uint64_t
LatencyHistogram::bucketUpper(std::size_t b)
{
    if (b < kSub)
        return b;
    std::size_t octave = (b - kSub) / kSub;
    std::uint64_t sub = (b - kSub) % kSub;
    unsigned msb = static_cast<unsigned>(octave) + kSubBits;
    std::uint64_t base = (1ULL << msb) | (sub << (msb - kSubBits));
    std::uint64_t width = 1ULL << (msb - kSubBits);
    return base + width - 1;
}

void
LatencyHistogram::record(std::uint64_t v)
{
    ++counts[bucketOf(v)];
    if (total == 0 || v < minV)
        minV = v;
    if (total == 0 || v > maxV)
        maxV = v;
    sumV += v;
    ++total;
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    if (other.total == 0)
        return;
    if (total == 0 || other.minV < minV)
        minV = other.minV;
    if (total == 0 || other.maxV > maxV)
        maxV = other.maxV;
    for (std::size_t b = 0; b < kBuckets; ++b)
        counts[b] += other.counts[b];
    sumV += other.sumV;
    total += other.total;
}

std::uint64_t
LatencyHistogram::quantile(double q) const
{
    if (total == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the target sample, 1-based; ceil without float drift
    // for the common exact cases.
    std::uint64_t rank =
        static_cast<std::uint64_t>(q * static_cast<double>(total));
    if (static_cast<double>(rank) < q * static_cast<double>(total))
        ++rank;
    if (rank == 0)
        rank = 1;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        seen += counts[b];
        if (seen >= rank) {
            // Never report beyond the true extremes.
            std::uint64_t u = bucketUpper(b);
            return u > maxV ? maxV : u;
        }
    }
    return maxV;
}

} // namespace snf::oltp
