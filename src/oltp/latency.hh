/**
 * @file
 * Deterministic log-bucketed latency histogram for the OLTP engines
 * (DESIGN §8): commit latencies in simulated ticks are recorded into
 * power-of-two octaves subdivided into 8 sub-buckets (HdrHistogram
 * style, <= 12.5% relative quantile error). Quantiles report the
 * recorded bucket's upper bound, so p50/p99/p999 are pure functions
 * of the recorded multiset — byte-identical across runs and across
 * --jobs settings, which is what lets BENCH_oltp.json gate them in
 * the counters block instead of the wall-clock perf block.
 */

#ifndef SNF_OLTP_LATENCY_HH
#define SNF_OLTP_LATENCY_HH

#include <array>
#include <cstdint>

namespace snf::oltp
{

/** See file comment. */
class LatencyHistogram
{
  public:
    /** Sub-buckets per octave = 2^kSubBits. */
    static constexpr unsigned kSubBits = 3;
    static constexpr unsigned kSub = 1u << kSubBits;
    /** Values 0..2^kSubBits-1 get exact buckets; octaves above. */
    static constexpr std::size_t kBuckets = kSub + (64 - kSubBits) * kSub;

    void record(std::uint64_t v);

    void merge(const LatencyHistogram &other);

    std::uint64_t count() const { return total; }

    std::uint64_t min() const { return total == 0 ? 0 : minV; }

    std::uint64_t max() const { return total == 0 ? 0 : maxV; }

    std::uint64_t sum() const { return sumV; }

    /** Mean, rounded down; 0 when empty. */
    std::uint64_t mean() const
    {
        return total == 0 ? 0 : sumV / total;
    }

    /**
     * Quantile @p q in [0, 1]: the upper bound of the bucket holding
     * the ceil(q * count)-th smallest recorded value (0 when empty).
     */
    std::uint64_t quantile(double q) const;

    std::uint64_t p50() const { return quantile(0.50); }

    std::uint64_t p99() const { return quantile(0.99); }

    std::uint64_t p999() const { return quantile(0.999); }

  private:
    static std::size_t bucketOf(std::uint64_t v);

    /** Largest value mapping into bucket @p b. */
    static std::uint64_t bucketUpper(std::size_t b);

    std::array<std::uint64_t, kBuckets> counts{};
    std::uint64_t total = 0;
    std::uint64_t minV = 0;
    std::uint64_t maxV = 0;
    std::uint64_t sumV = 0;
};

} // namespace snf::oltp

#endif // SNF_OLTP_LATENCY_HH
