/**
 * @file
 * Production-scale YCSB engine (DESIGN §8): 50/50 read/update over a
 * keyspace of up to millions of 64-byte records, with Zipf-skewed key
 * selection (--zipf-theta). Without a CC scheme the keyspace is
 * partitioned round-robin across threads and the skew applies within
 * each partition; with CC every thread samples the full keyspace, so
 * high theta concentrates conflicts on a handful of hot records.
 *
 * A record is version word + 4 payload words, every payload word
 * written equal to the version — verify() detects torn or lost
 * updates on the (possibly recovered) image.
 */

#ifndef SNF_OLTP_YCSB_HH
#define SNF_OLTP_YCSB_HH

#include "oltp/engine.hh"

namespace snf::oltp
{

/** See file comment. */
class YcsbEngine : public OltpEngine
{
  public:
    std::string name() const override { return "oltp-ycsb"; }

    void setup(System &sys, const WorkloadParams &params) override;

    sim::Co<void> thread(System &sys, Thread &t,
                         const WorkloadParams &params) override;

    bool verify(const mem::BackingStore &nvram,
                std::string *why) const override;

    std::uint64_t keys() const { return nkeys; }

  private:
    enum TxType : std::size_t
    {
        kRead = 0,
        kUpdate = 1,
    };

    static constexpr std::uint64_t kRecordBytes = 64;
    static constexpr std::uint64_t kPayloadWords = 4;

    Addr recordAddr(std::uint64_t k) const
    {
        return records + k * kRecordBytes;
    }

    Addr records = 0;
    Addr dramIndex = 0;
    std::uint64_t nkeys = 0;
    double theta = 0.0;
    bool ccOn = false;
};

} // namespace snf::oltp

#endif // SNF_OLTP_YCSB_HH
