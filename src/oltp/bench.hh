/**
 * @file
 * OLTP bench harness (DESIGN §8): runs engine × mode × CC cells to
 * completion, harvesting simulator counters, engine metrics (per-type
 * commit counts and latency quantiles), and log-buffer / WCB
 * occupancy sampled at every tx_commit probe event. Everything in a
 * cell's counters block is a pure function of the cell spec — the
 * committed BENCH_oltp.json regenerates byte-identically on any host
 * and at any --jobs setting, which is what the oltp-smoke CI lane
 * diffs; wall-clock rates live in the separate perf block CI strips.
 */

#ifndef SNF_OLTP_BENCH_HH
#define SNF_OLTP_BENCH_HH

#include <string>
#include <vector>

#include "oltp/engine.hh"

namespace snf::oltp
{

/** Shared knobs for a bench matrix run. */
struct OltpMatrixConfig
{
    std::uint32_t threads = 4;
    std::uint64_t txPerThread = 50;
    std::uint64_t seed = 11;
    /** TPC-C warehouses (< threads so warehouses are contended). */
    std::uint64_t warehouses = 2;
    /** TPC-C customers per district. */
    std::uint64_t customers = 64;
    /** YCSB keyspace size. */
    std::uint64_t keys = 8192;
    /** YCSB Zipf skew. */
    double zipfTheta = 0.9;
    std::uint32_t logShards = 1;
    /** Minimum timed repeats per cell (first sets the counters). */
    std::uint64_t minRepeats = 1;
    /**
     * Wall-clock budget per cell in seconds (--oltp-seconds): after
     * minRepeats, keep re-running (and re-checking counter identity)
     * while the cell's total measured time is below this. 0 = only
     * minRepeats.
     */
    double secondsPerCell = 0.0;
    /** Host worker threads running independent cells concurrently. */
    unsigned jobs = 1;
};

/** One cell of the matrix. */
struct OltpCellSpec
{
    std::string engine; ///< "oltp-tpcc" or "oltp-ycsb"
    PersistMode mode = PersistMode::Fwb;
    CcMode cc = CcMode::TwoPhase;
};

/** Deterministic per-transaction-type counters of one cell. */
struct OltpTypeCounters
{
    std::string type;
    std::uint64_t committed = 0;
    std::uint64_t latP50 = 0;
    std::uint64_t latP99 = 0;
    std::uint64_t latP999 = 0;
    std::uint64_t latMean = 0;
    std::uint64_t latMax = 0;
    std::uint64_t latSum = 0;

    bool operator==(const OltpTypeCounters &) const = default;
};

/** Result of one cell: counters (deterministic) + perf (wall). */
struct OltpCellResult
{
    OltpCellSpec spec;

    Tick cycles = 0;
    std::uint64_t committedTx = 0;
    std::uint64_t abortedTx = 0;
    std::uint64_t instructions = 0;
    std::uint64_t retries = 0;
    std::uint64_t userAborts = 0;
    std::uint64_t logRecords = 0;
    std::uint64_t nvramWrites = 0;
    /** tx_commit-sampled occupancies (sum/max over samples). */
    std::uint64_t occSamples = 0;
    std::uint64_t logOccSum = 0;
    std::uint64_t logOccMax = 0;
    std::uint64_t wcbOccSum = 0;
    std::uint64_t wcbOccMax = 0;
    std::vector<OltpTypeCounters> types;

    double wallSec = 0.0;
    std::uint64_t repeats = 0;

    /** Equality of the deterministic counters block only. */
    bool countersEqual(const OltpCellResult &o) const;
};

/**
 * The committed reference matrix behind BENCH_oltp.json:
 * {oltp-tpcc, oltp-ycsb} × {fwb, undo-clwb, redo-clwb} × {2pl, tl2}.
 */
std::vector<OltpCellSpec> oltpReferenceCells();

/**
 * Run one cell to completion (cfg.minRepeats+ timed repeats).
 * fatal() on verification failure or counter drift across repeats.
 */
OltpCellResult runOltpCell(const OltpCellSpec &cell,
                           const OltpMatrixConfig &cfg);

/** Run cells (cfg.jobs-way parallel), results in spec order. */
std::vector<OltpCellResult>
runOltpMatrix(const std::vector<OltpCellSpec> &cells,
              const OltpMatrixConfig &cfg);

/** Serialize a snf-bench-oltp-v1 report. */
std::string oltpBenchJson(const OltpMatrixConfig &cfg,
                          const std::vector<OltpCellResult> &results);

} // namespace snf::oltp

#endif // SNF_OLTP_BENCH_HH
