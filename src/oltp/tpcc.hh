/**
 * @file
 * Production-scale multi-warehouse TPC-C engine (DESIGN §8): NewOrder
 * + Payment + OrderStatus transactions over warehouse, district,
 * customer, stock and order tables in the persistent heap, with the
 * volatile item catalog in DRAM. Runs under every logging mode and
 * both CC schemes; with redo-only logging (no undo values to roll
 * back with) the engine switches to the no-steal commit discipline
 * (oltp::TxExec).
 *
 * The consistency oracle checkTpccConsistency() is a pure function of
 * the NVRAM image, reusable from tests after a clean run or after
 * crash + recovery. It asserts TPC-C §3.3-style invariants:
 *   - per warehouse, w_ytd equals the sum of its districts' d_ytd;
 *   - per district, orders [0, d_next_o_id) are dense, stamped, with
 *     5..15 lines whose stored amounts are qty * price(item) and sum
 *     to the stored order total; the next slot is unstamped;
 *   - per customer, c_balance = -c_ytd_payment (two's complement),
 *     and c_payment_cnt is consistent with c_ytd_payment;
 *   - globally, the sum of d_ytd equals the sum of c_ytd_payment
 *     (remote payments book ytd at the home warehouse);
 *   - per stock row, s_order_cnt / s_ytd / s_remote_cnt equal the
 *     values recomputed from every committed order line, and
 *     s_quantity obeys the 91-replenishment rule
 *     ((s_quantity + s_ytd) % 91 == 9, 10 <= s_quantity <= 100).
 */

#ifndef SNF_OLTP_TPCC_HH
#define SNF_OLTP_TPCC_HH

#include "oltp/engine.hh"

namespace snf::oltp
{

/** Table geometry + base addresses; filled in by TpccEngine::setup. */
struct TpccLayout
{
    static constexpr std::uint64_t kRowBytes = 64;
    static constexpr std::uint64_t kMinLines = 5;
    static constexpr std::uint64_t kMaxLines = 15;
    static constexpr std::uint64_t kOrderHeaderBytes = 32;
    static constexpr std::uint64_t kOrderLineBytes = 16;
    /** Header + 15 lines, rounded to a line multiple. */
    static constexpr std::uint64_t kOrderBytes = 320;
    static constexpr std::uint64_t kInitQuantity = 100;

    std::uint64_t warehouses = 0;
    /** Districts per warehouse (TPC-C fixes this at 10). */
    std::uint64_t districts = 10;
    /** Customers per district. */
    std::uint64_t customers = 0;
    /** Item catalog size (shared across warehouses). */
    std::uint64_t items = 0;
    /** Order-table capacity per district. */
    std::uint64_t maxOrders = 0;

    Addr warehouseBase = 0;
    Addr districtBase = 0;
    Addr customerBase = 0;
    Addr stockBase = 0;
    Addr orderBase = 0;

    // Row field offsets (all fields are 8-byte words):
    //  warehouse: +0 w_ytd
    //  district:  +0 d_next_o_id, +8 d_ytd
    //  customer:  +0 c_balance (two's complement), +8 c_ytd_payment,
    //             +16 c_payment_cnt
    //  stock:     +0 s_quantity, +8 s_ytd, +16 s_order_cnt,
    //             +24 s_remote_cnt
    //  order:     +0 stamp (= o_id + 1), +8 o_c_id, +16 o_ol_cnt,
    //             +24 o_total; lines at +32 + l*16 packed as
    //             word0 = item | supply_w << 32,
    //             word1 = qty | amount << 32

    Addr warehouseAddr(std::uint64_t w) const
    {
        return warehouseBase + w * kRowBytes;
    }

    Addr districtAddr(std::uint64_t w, std::uint64_t d) const
    {
        return districtBase + (w * districts + d) * kRowBytes;
    }

    Addr customerAddr(std::uint64_t w, std::uint64_t d,
                      std::uint64_t c) const
    {
        return customerBase +
               ((w * districts + d) * customers + c) * kRowBytes;
    }

    Addr stockAddr(std::uint64_t w, std::uint64_t i) const
    {
        return stockBase + (w * items + i) * kRowBytes;
    }

    Addr orderAddr(std::uint64_t w, std::uint64_t d,
                   std::uint64_t o) const
    {
        return orderBase +
               ((w * districts + d) * maxOrders + o) * kOrderBytes;
    }

    /**
     * Deterministic catalog price of item @p i in [1, 9999]: a pure
     * function of the id, so the oracle can recompute stored line
     * amounts without a persistent item table.
     */
    static std::uint64_t itemPrice(std::uint64_t i)
    {
        return 1 + ((i * 2654435761ULL) >> 16) % 9999;
    }
};

/**
 * The reusable consistency oracle (see file comment). Pure function
 * of the image; safe on a recovered post-crash image because every
 * invariant is closed under whole committed transactions.
 */
bool checkTpccConsistency(const mem::BackingStore &nvram,
                          const TpccLayout &lay, std::string *why);

/** See file comment. */
class TpccEngine : public OltpEngine
{
  public:
    std::string name() const override { return "oltp-tpcc"; }

    void setup(System &sys, const WorkloadParams &params) override;

    sim::Co<void> thread(System &sys, Thread &t,
                         const WorkloadParams &params) override;

    bool verify(const mem::BackingStore &nvram,
                std::string *why) const override;

    const TpccLayout &layout() const { return lay; }

  private:
    enum TxType : std::size_t
    {
        kNewOrder = 0,
        kPayment = 1,
        kOrderStatus = 2,
    };

    struct OrderLine
    {
        std::uint64_t item = 0;
        std::uint64_t supply = 0;
        std::uint64_t qty = 0;
    };

    /** All randomness for one NewOrder, drawn before the attempt
     *  loop so every retry replays identical parameters. */
    struct NewOrderArg
    {
        std::uint64_t w = 0, d = 0, c = 0;
        std::uint64_t nlines = 0;
        bool userAbort = false;
        OrderLine lines[TpccLayout::kMaxLines];
    };

    struct PaymentArg
    {
        std::uint64_t w = 0, d = 0;
        /** Customer's home (differs from w/d on remote payments). */
        std::uint64_t cw = 0, cd = 0, c = 0;
        std::uint64_t amount = 0;
    };

    struct StatusArg
    {
        std::uint64_t w = 0, d = 0, c = 0;
    };

    sim::Co<void> newOrder(Thread &t, TxExec &x, const NewOrderArg &a);
    sim::Co<void> payment(Thread &t, TxExec &x, const PaymentArg &a);
    sim::Co<void> orderStatus(Thread &t, TxExec &x, const StatusArg &a);

    TpccLayout lay;
    Addr itemTable = 0;
    bool ccOn = false;
};

} // namespace snf::oltp

#endif // SNF_OLTP_TPCC_HH
