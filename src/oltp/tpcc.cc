#include "oltp/tpcc.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "mem/backing_store.hh"
#include "sim/logging.hh"

namespace snf::oltp
{

namespace
{

/** Abort-retry ceiling per transaction before declaring starvation. */
constexpr unsigned kMaxTxAttempts = 200;

/** Retry backoff ceiling (ticks). */
constexpr std::uint64_t kMaxBackoff = 2048;

bool
fail(std::string *why, const char *fmt, ...)
{
    if (why) {
        char buf[256];
        va_list ap;
        va_start(ap, fmt);
        std::vsnprintf(buf, sizeof(buf), fmt, ap);
        va_end(ap);
        *why = buf;
    }
    return false;
}

} // namespace

void
TpccEngine::setup(System &sys, const WorkloadParams &params)
{
    lay = TpccLayout{};
    lay.warehouses =
        params.warehouses ? params.warehouses : params.threads;
    lay.customers = params.footprint ? params.footprint : 96;
    lay.items = std::clamp<std::uint64_t>(lay.customers * 33, 1024,
                                          100000);
    std::uint64_t threadsPerWh =
        (params.threads + lay.warehouses - 1) / lay.warehouses;
    lay.maxOrders = threadsPerWh * params.txPerThread + 1;

    ccOn = sys.config().persist.ccMode != CcMode::None;
    SNF_ASSERT(ccOn || lay.warehouses >= params.threads,
               "oltp-tpcc: %u threads over %" PRIu64
               " warehouses contend on shared rows and require a CC "
               "scheme (--cc 2pl|tl2)",
               params.threads, lay.warehouses);

    auto &heap = sys.heap();
    lay.warehouseBase =
        heap.alloc(lay.warehouses * TpccLayout::kRowBytes, 64);
    lay.districtBase = heap.alloc(
        lay.warehouses * lay.districts * TpccLayout::kRowBytes, 64);
    lay.customerBase =
        heap.alloc(lay.warehouses * lay.districts * lay.customers *
                       TpccLayout::kRowBytes,
                   64);
    lay.stockBase = heap.alloc(
        lay.warehouses * lay.items * TpccLayout::kRowBytes, 64);
    lay.orderBase =
        heap.alloc(lay.warehouses * lay.districts * lay.maxOrders *
                       TpccLayout::kOrderBytes,
                   64);
    // Volatile item catalog: prices are recomputed functionally
    // (TpccLayout::itemPrice); the DRAM table only models the lookup
    // traffic.
    itemTable = sys.dramHeap().alloc(lay.items * 8, 64);

    // Everything starts zero (pages are zero-filled lazily) except
    // stock quantities.
    for (std::uint64_t w = 0; w < lay.warehouses; ++w)
        for (std::uint64_t i = 0; i < lay.items; ++i)
            heap.prewrite64(lay.stockAddr(w, i) + 0,
                            TpccLayout::kInitQuantity);

    resetMetrics({"neworder", "payment", "orderstatus"});
}

sim::Co<void>
TpccEngine::newOrder(Thread &t, TxExec &x, const NewOrderArg &a)
{
    co_await t.compute(120); // input parsing, customer credit lookup

    std::uint64_t oid = 0;
    co_await x.load(lay.districtAddr(a.w, a.d) + 0, &oid);
    if (x.doomed())
        co_return;
    SNF_ASSERT(oid < lay.maxOrders,
               "oltp-tpcc: district (%" PRIu64 ",%" PRIu64
               ") order table overflow",
               a.w, a.d);

    Addr order = lay.orderAddr(a.w, a.d, oid);
    std::uint64_t total = 0;
    for (std::uint64_t l = 0; l < a.nlines; ++l) {
        const OrderLine &ln = a.lines[l];
        Addr stock = lay.stockAddr(ln.supply, ln.item);

        // Item catalog probe in volatile DRAM.
        co_await t.load64(itemTable + ln.item * 8);
        co_await t.compute(45); // pricing, tax, stock math

        std::uint64_t qty = 0, sytd = 0, scnt = 0, srem = 0;
        co_await x.load(stock + 0, &qty);
        co_await x.load(stock + 8, &sytd);
        co_await x.load(stock + 16, &scnt);
        bool remote = ln.supply != a.w;
        if (remote)
            co_await x.load(stock + 24, &srem);
        if (x.doomed())
            co_return;

        // TPC-C replenishment: drop below 10 and the warehouse
        // restocks 91 units, preserving
        // (s_quantity + s_ytd) % 91 == 100 % 91.
        std::uint64_t newQty = qty - ln.qty;
        if (qty < ln.qty + 10)
            newQty += 91;
        co_await x.store(stock + 0, newQty);
        co_await x.store(stock + 8, sytd + ln.qty);
        co_await x.store(stock + 16, scnt + 1);
        if (remote)
            co_await x.store(stock + 24, srem + 1);

        std::uint64_t price = TpccLayout::itemPrice(ln.item);
        std::uint64_t amount = ln.qty * price;
        total += amount;
        Addr line = order + TpccLayout::kOrderHeaderBytes +
                    l * TpccLayout::kOrderLineBytes;
        co_await x.store(line + 0, ln.item | (ln.supply << 32));
        co_await x.store(line + 8, ln.qty | (amount << 32));
        if (x.doomed())
            co_return;
    }

    co_await x.store(order + 8, a.c);
    co_await x.store(order + 16, a.nlines);
    co_await x.store(order + 24, total);
    co_await x.store(order + 0, oid + 1); // stamp: committed marker
    co_await x.store(lay.districtAddr(a.w, a.d) + 0, oid + 1);
}

sim::Co<void>
TpccEngine::payment(Thread &t, TxExec &x, const PaymentArg &a)
{
    co_await t.compute(60); // input parsing, customer lookup

    Addr wh = lay.warehouseAddr(a.w);
    Addr dist = lay.districtAddr(a.w, a.d);
    Addr cust = lay.customerAddr(a.cw, a.cd, a.c);

    std::uint64_t wytd = 0, dytd = 0, bal = 0, cytd = 0, ccnt = 0;
    co_await x.load(wh + 0, &wytd);
    co_await x.load(dist + 8, &dytd);
    co_await x.load(cust + 0, &bal);
    co_await x.load(cust + 8, &cytd);
    co_await x.load(cust + 16, &ccnt);
    if (x.doomed())
        co_return;

    co_await t.compute(30); // history record formatting
    co_await x.store(wh + 0, wytd + a.amount);
    co_await x.store(dist + 8, dytd + a.amount);
    co_await x.store(cust + 0, bal - a.amount);
    co_await x.store(cust + 8, cytd + a.amount);
    co_await x.store(cust + 16, ccnt + 1);
}

sim::Co<void>
TpccEngine::orderStatus(Thread &t, TxExec &x, const StatusArg &a)
{
    co_await t.compute(50); // customer lookup by name

    std::uint64_t bal = 0;
    co_await x.load(lay.customerAddr(a.w, a.d, a.c) + 0, &bal);

    std::uint64_t next = 0;
    co_await x.load(lay.districtAddr(a.w, a.d) + 0, &next);
    if (x.doomed() || next == 0)
        co_return;

    Addr order = lay.orderAddr(a.w, a.d, next - 1);
    std::uint64_t stamp = 0, cid = 0, nlines = 0, total = 0;
    co_await x.load(order + 0, &stamp);
    co_await x.load(order + 8, &cid);
    co_await x.load(order + 16, &nlines);
    co_await x.load(order + 24, &total);
    if (x.doomed())
        co_return;
    // A stale snapshot (caught at validation) can pair this header
    // with an older district counter; clamp instead of asserting.
    if (nlines < TpccLayout::kMinLines ||
        nlines > TpccLayout::kMaxLines)
        nlines = TpccLayout::kMinLines;
    for (std::uint64_t l = 0; l < nlines; ++l) {
        Addr line = order + TpccLayout::kOrderHeaderBytes +
                    l * TpccLayout::kOrderLineBytes;
        std::uint64_t w0 = 0, w1 = 0;
        co_await x.load(line + 0, &w0);
        co_await x.load(line + 8, &w1);
        if (x.doomed())
            co_return;
        co_await t.compute(5);
    }
}

sim::Co<void>
TpccEngine::thread(System &sys, Thread &t,
                   const WorkloadParams &params)
{
    sim::Rng rng(params.seed * 9176 + t.id() * 131 + 7);
    const bool canAbort = supportsAbort(sys.mode());
    const bool noSteal = ccOn && !canAbort;
    const bool contended = ccOn && lay.warehouses > 1;
    const std::uint64_t home = t.id() % lay.warehouses;

    for (std::uint64_t n = 0; n < params.txPerThread; ++n) {
        // Draw every random parameter up front so retries replay the
        // same transaction.
        std::uint64_t kind = rng.below(100);
        std::size_t type;
        NewOrderArg no;
        PaymentArg pay;
        StatusArg st;
        if (kind < 45) {
            type = kNewOrder;
            no.w = home;
            no.d = rng.below(lay.districts);
            no.c = rng.below(lay.customers);
            no.nlines = rng.range(TpccLayout::kMinLines,
                                  TpccLayout::kMaxLines);
            no.userAbort = rng.below(100) == 0;
            for (std::uint64_t l = 0; l < no.nlines; ++l) {
                // Distinct items per order (linear probe): a repeat
                // would read its own not-yet-flushed stock update
                // under the no-steal discipline.
                std::uint64_t item = rng.below(lay.items);
                for (bool dup = true; dup;) {
                    dup = false;
                    for (std::uint64_t k = 0; k < l; ++k)
                        if (no.lines[k].item == item) {
                            item = (item + 1) % lay.items;
                            dup = true;
                            break;
                        }
                }
                no.lines[l].item = item;
                no.lines[l].supply =
                    (contended && rng.below(100) == 0)
                        ? (home + 1 + rng.below(lay.warehouses - 1)) %
                              lay.warehouses
                        : home;
                no.lines[l].qty = rng.range(1, 10);
            }
        } else if (kind < 88) {
            type = kPayment;
            pay.w = home;
            pay.d = rng.below(lay.districts);
            if (contended && rng.below(100) < 15) {
                pay.cw = (home + 1 + rng.below(lay.warehouses - 1)) %
                         lay.warehouses;
                pay.cd = rng.below(lay.districts);
            } else {
                pay.cw = home;
                pay.cd = pay.d;
            }
            pay.c = rng.below(lay.customers);
            pay.amount = rng.range(1, 5000);
        } else {
            type = kOrderStatus;
            st.w = home;
            st.d = rng.below(lay.districts);
            st.c = rng.below(lay.customers);
        }

        Tick start = t.context().localTime;
        std::uint64_t backoff = 16;
        bool done = false;
        for (unsigned attempt = 0; attempt < kMaxTxAttempts;
             ++attempt) {
            TxExec x(sys, t, noSteal);
            co_await t.txBegin();
            if (type == kNewOrder)
                co_await newOrder(t, x, no);
            else if (type == kPayment)
                co_await payment(t, x, pay);
            else
                co_await orderStatus(t, x, st);
            if (!x.doomed())
                co_await x.finish();
            if (x.doomed()) {
                co_await t.txAbort();
                ++retriesCount;
                co_await t.compute(backoff + t.id());
                if (backoff < kMaxBackoff)
                    backoff *= 2;
                continue;
            }
            if (type == kNewOrder && no.userAbort && canAbort) {
                // TPC-C's 1% invalid-item business rollback.
                co_await t.txAbort();
                ++userAbortCount;
                done = true;
                break;
            }
            co_await t.txCommit();
            bool aborted = t.lastTxAborted();
            if (aborted) {
                ++retriesCount;
                co_await t.compute(backoff + t.id());
                if (backoff < kMaxBackoff)
                    backoff *= 2;
                continue;
            }
            TxTypeMetrics &m = typeMetrics(type);
            ++m.committed;
            m.latency.record(t.context().localTime - start);
            done = true;
            break;
        }
        SNF_ASSERT(done,
                   "oltp-tpcc: transaction starved after %u attempts "
                   "on core %u",
                   kMaxTxAttempts, t.id());
    }
}

bool
TpccEngine::verify(const mem::BackingStore &nvram,
                   std::string *why) const
{
    return checkTpccConsistency(nvram, lay, why);
}

bool
checkTpccConsistency(const mem::BackingStore &nvram,
                     const TpccLayout &lay, std::string *why)
{
    const std::uint64_t nstock = lay.warehouses * lay.items;
    std::vector<std::uint64_t> wantCnt(nstock, 0);
    std::vector<std::uint64_t> wantQty(nstock, 0);
    std::vector<std::uint64_t> wantRemote(nstock, 0);

    std::uint64_t allDistrictYtd = 0;

    for (std::uint64_t w = 0; w < lay.warehouses; ++w) {
        std::uint64_t districtYtd = 0;
        for (std::uint64_t d = 0; d < lay.districts; ++d) {
            Addr dist = lay.districtAddr(w, d);
            std::uint64_t next = nvram.read64(dist + 0);
            districtYtd += nvram.read64(dist + 8);
            if (next > lay.maxOrders)
                return fail(why,
                            "district (%" PRIu64 ",%" PRIu64
                            "): next_o_id %" PRIu64 " beyond capacity",
                            w, d, next);

            for (std::uint64_t o = 0; o < next; ++o) {
                Addr order = lay.orderAddr(w, d, o);
                std::uint64_t stamp = nvram.read64(order + 0);
                if (stamp != o + 1)
                    return fail(why,
                                "order (%" PRIu64 ",%" PRIu64
                                ",%" PRIu64 "): stamp %" PRIu64
                                " != %" PRIu64 " (lost or torn order)",
                                w, d, o, stamp, o + 1);
                std::uint64_t cid = nvram.read64(order + 8);
                std::uint64_t nlines = nvram.read64(order + 16);
                std::uint64_t total = nvram.read64(order + 24);
                if (cid >= lay.customers)
                    return fail(why,
                                "order (%" PRIu64 ",%" PRIu64
                                ",%" PRIu64 "): customer %" PRIu64
                                " out of range",
                                w, d, o, cid);
                if (nlines < TpccLayout::kMinLines ||
                    nlines > TpccLayout::kMaxLines)
                    return fail(why,
                                "order (%" PRIu64 ",%" PRIu64
                                ",%" PRIu64 "): line count %" PRIu64,
                                w, d, o, nlines);
                std::uint64_t sum = 0;
                for (std::uint64_t l = 0; l < nlines; ++l) {
                    Addr line = order + TpccLayout::kOrderHeaderBytes +
                                l * TpccLayout::kOrderLineBytes;
                    std::uint64_t w0 = nvram.read64(line + 0);
                    std::uint64_t w1 = nvram.read64(line + 8);
                    std::uint64_t item = w0 & 0xffffffffu;
                    std::uint64_t supply = w0 >> 32;
                    std::uint64_t qty = w1 & 0xffffffffu;
                    std::uint64_t amount = w1 >> 32;
                    if (item >= lay.items || supply >= lay.warehouses)
                        return fail(why,
                                    "order (%" PRIu64 ",%" PRIu64
                                    ",%" PRIu64 ") line %" PRIu64
                                    ": item %" PRIu64
                                    " / supplier %" PRIu64
                                    " out of range",
                                    w, d, o, l, item, supply);
                    if (qty < 1 || qty > 10)
                        return fail(why,
                                    "order (%" PRIu64 ",%" PRIu64
                                    ",%" PRIu64 ") line %" PRIu64
                                    ": quantity %" PRIu64,
                                    w, d, o, l, qty);
                    if (amount !=
                        qty * TpccLayout::itemPrice(item))
                        return fail(why,
                                    "order (%" PRIu64 ",%" PRIu64
                                    ",%" PRIu64 ") line %" PRIu64
                                    ": amount %" PRIu64
                                    " != qty * price",
                                    w, d, o, l, amount);
                    sum += amount;
                    std::uint64_t s = supply * lay.items + item;
                    ++wantCnt[s];
                    wantQty[s] += qty;
                    if (supply != w)
                        ++wantRemote[s];
                }
                if (sum != total)
                    return fail(why,
                                "order (%" PRIu64 ",%" PRIu64
                                ",%" PRIu64 "): line sum %" PRIu64
                                " != total %" PRIu64,
                                w, d, o, sum, total);
            }
            // No phantom order beyond the committed counter.
            if (next < lay.maxOrders &&
                nvram.read64(lay.orderAddr(w, d, next)) != 0)
                return fail(why,
                            "district (%" PRIu64 ",%" PRIu64
                            "): phantom order at %" PRIu64,
                            w, d, next);
        }
        std::uint64_t wytd = nvram.read64(lay.warehouseAddr(w));
        if (wytd != districtYtd)
            return fail(why,
                        "warehouse %" PRIu64 ": w_ytd %" PRIu64
                        " != sum of district ytd %" PRIu64,
                        w, wytd, districtYtd);
        allDistrictYtd += districtYtd;
    }

    std::uint64_t allCustomerYtd = 0;
    for (std::uint64_t w = 0; w < lay.warehouses; ++w)
        for (std::uint64_t d = 0; d < lay.districts; ++d)
            for (std::uint64_t c = 0; c < lay.customers; ++c) {
                Addr cust = lay.customerAddr(w, d, c);
                std::uint64_t bal = nvram.read64(cust + 0);
                std::uint64_t ytd = nvram.read64(cust + 8);
                std::uint64_t cnt = nvram.read64(cust + 16);
                if (bal + ytd != 0)
                    return fail(why,
                                "customer (%" PRIu64 ",%" PRIu64
                                ",%" PRIu64 "): balance %" PRIu64
                                " + ytd_payment %" PRIu64 " != 0",
                                w, d, c, bal, ytd);
                if (cnt > ytd || (cnt == 0) != (ytd == 0))
                    return fail(why,
                                "customer (%" PRIu64 ",%" PRIu64
                                ",%" PRIu64 "): payment_cnt %" PRIu64
                                " inconsistent with ytd %" PRIu64,
                                w, d, c, cnt, ytd);
                allCustomerYtd += ytd;
            }
    if (allDistrictYtd != allCustomerYtd)
        return fail(why,
                    "global: sum d_ytd %" PRIu64
                    " != sum c_ytd_payment %" PRIu64,
                    allDistrictYtd, allCustomerYtd);

    for (std::uint64_t w = 0; w < lay.warehouses; ++w)
        for (std::uint64_t i = 0; i < lay.items; ++i) {
            Addr stock = lay.stockAddr(w, i);
            std::uint64_t qty = nvram.read64(stock + 0);
            std::uint64_t ytd = nvram.read64(stock + 8);
            std::uint64_t cnt = nvram.read64(stock + 16);
            std::uint64_t rem = nvram.read64(stock + 24);
            std::uint64_t s = w * lay.items + i;
            if (cnt != wantCnt[s] || ytd != wantQty[s] ||
                rem != wantRemote[s])
                return fail(why,
                            "stock (%" PRIu64 ",%" PRIu64
                            "): cnt/ytd/remote %" PRIu64 "/%" PRIu64
                            "/%" PRIu64 " != recomputed %" PRIu64
                            "/%" PRIu64 "/%" PRIu64,
                            w, i, cnt, ytd, rem, wantCnt[s],
                            wantQty[s], wantRemote[s]);
            if (cnt == 0) {
                if (qty != TpccLayout::kInitQuantity || ytd != 0)
                    return fail(why,
                                "stock (%" PRIu64 ",%" PRIu64
                                "): untouched row mutated",
                                w, i);
                continue;
            }
            if (qty < 10 || qty > 100)
                return fail(why,
                            "stock (%" PRIu64 ",%" PRIu64
                            "): quantity %" PRIu64 " out of range",
                            w, i, qty);
            if ((qty + ytd) % 91 != TpccLayout::kInitQuantity % 91)
                return fail(why,
                            "stock (%" PRIu64 ",%" PRIu64
                            "): quantity %" PRIu64
                            " violates replenishment rule (ytd "
                            "%" PRIu64 ")",
                            w, i, qty, ytd);
        }

    return true;
}

} // namespace snf::oltp
