#include "oltp/engine.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace snf::oltp
{

sim::Co<void>
TxExec::load(Addr a, std::uint64_t *out)
{
    *out = 0;
    if (isDoomed)
        co_return;
    bool ok = co_await th.txLoad64(a, out);
    if (!ok) {
        isDoomed = true;
        *out = 0;
    }
}

sim::Co<void>
TxExec::store(Addr a, std::uint64_t v)
{
    if (isDoomed)
        co_return;
    if (defer) {
        buf.emplace_back(a, v);
        co_return;
    }
    bool ok = co_await th.txStore64(a, v);
    if (!ok)
        isDoomed = true;
}

sim::Co<void>
TxExec::finish()
{
    if (isDoomed || !defer)
        co_return;
    // Lock the write-set in sorted line order (deadlock-free among
    // no-steal transactions, and deterministic).
    std::vector<Addr> lines;
    lines.reserve(buf.size());
    for (const auto &w : buf)
        lines.push_back(sys.mem().lineOf(w.first));
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    for (Addr line : lines) {
        bool granted = co_await th.txLock64(line);
        if (!granted) {
            isDoomed = true;
            co_return;
        }
    }
    // Serialization point: read-set still valid while every write
    // line is exclusively held.
    bool valid = co_await th.txValidate();
    if (!valid) {
        isDoomed = true;
        co_return;
    }
    for (const auto &w : buf) {
        bool ok = co_await th.txStore64(w.first, w.second);
        SNF_ASSERT(ok, "no-steal buffered store lost its lock");
    }
}

} // namespace snf::oltp
