#include "oltp/ycsb.hh"

#include <cinttypes>
#include <cstdio>

#include "mem/backing_store.hh"
#include "sim/logging.hh"

namespace snf::oltp
{

namespace
{

constexpr unsigned kMaxTxAttempts = 200;
constexpr std::uint64_t kMaxBackoff = 2048;

} // namespace

void
YcsbEngine::setup(System &sys, const WorkloadParams &params)
{
    nkeys = params.footprint ? params.footprint : 65536;
    theta = params.zipfTheta != 0.0 ? params.zipfTheta : 0.8;
    SNF_ASSERT(theta > 0.0 && theta < 1.0,
               "oltp-ycsb: zipf theta %.3f outside (0, 1)", theta);
    ccOn = sys.config().persist.ccMode != CcMode::None;
    SNF_ASSERT(ccOn || nkeys >= params.threads,
               "oltp-ycsb: %u threads need at least one key each "
               "(%" PRIu64 " keys) without a CC scheme",
               params.threads, nkeys);

    // Records start all-zero (version 0, payload 0), which already
    // satisfies the payload == version invariant — no prewrites, so
    // setup stays O(1) even for millions of keys.
    records = sys.heap().alloc(nkeys * kRecordBytes, 64);
    dramIndex = sys.dramHeap().alloc(nkeys * 8, 64);

    resetMetrics({"read", "update"});
}

sim::Co<void>
YcsbEngine::thread(System &sys, Thread &t,
                   const WorkloadParams &params)
{
    sim::Rng rng(params.seed * 5519 + t.id() * 257 + 3);
    const bool canAbort = supportsAbort(sys.mode());
    const bool noSteal = ccOn && !canAbort;

    // With CC, all threads sample the shared keyspace; without, each
    // thread owns the keys congruent to its id.
    const std::uint64_t perThread =
        ccOn ? nkeys : nkeys / params.threads;
    sim::Zipf zipf(perThread, theta);

    for (std::uint64_t n = 0; n < params.txPerThread; ++n) {
        std::uint64_t s = zipf.sample(rng);
        std::uint64_t key = ccOn ? s : s * params.threads + t.id();
        bool update = rng.below(2) == 0;
        std::size_t type = update ? kUpdate : kRead;
        Addr rec = recordAddr(key);

        Tick start = t.context().localTime;
        std::uint64_t backoff = 16;
        bool done = false;
        for (unsigned attempt = 0; attempt < kMaxTxAttempts;
             ++attempt) {
            TxExec x(sys, t, noSteal);
            co_await t.txBegin();
            // Hash-index probe in volatile DRAM.
            co_await t.load64(dramIndex + key * 8);
            co_await t.compute(70); // key hashing, request parsing

            std::uint64_t ver = 0;
            co_await x.load(rec + 0, &ver);
            if (update && !x.doomed()) {
                co_await t.compute(12); // payload formatting
                co_await x.store(rec + 0, ver + 1);
                for (std::uint64_t p = 0; p < kPayloadWords; ++p)
                    co_await x.store(rec + 8 + p * 8, ver + 1);
            } else if (!x.doomed()) {
                std::uint64_t payload = 0;
                for (std::uint64_t p = 0; p < kPayloadWords; ++p)
                    co_await x.load(rec + 8 + p * 8, &payload);
                co_await t.compute(8); // response serialization
            }

            if (!x.doomed())
                co_await x.finish();
            if (x.doomed()) {
                co_await t.txAbort();
                ++retriesCount;
                co_await t.compute(backoff + t.id());
                if (backoff < kMaxBackoff)
                    backoff *= 2;
                continue;
            }
            co_await t.txCommit();
            bool aborted = t.lastTxAborted();
            if (aborted) {
                ++retriesCount;
                co_await t.compute(backoff + t.id());
                if (backoff < kMaxBackoff)
                    backoff *= 2;
                continue;
            }
            TxTypeMetrics &m = typeMetrics(type);
            ++m.committed;
            m.latency.record(t.context().localTime - start);
            done = true;
            break;
        }
        SNF_ASSERT(done,
                   "oltp-ycsb: transaction starved after %u attempts "
                   "on core %u",
                   kMaxTxAttempts, t.id());
        (void)canAbort;
    }
}

bool
YcsbEngine::verify(const mem::BackingStore &nvram,
                   std::string *why) const
{
    for (std::uint64_t k = 0; k < nkeys; ++k) {
        Addr rec = recordAddr(k);
        std::uint64_t ver = nvram.read64(rec + 0);
        for (std::uint64_t p = 0; p < kPayloadWords; ++p) {
            std::uint64_t v = nvram.read64(rec + 8 + p * 8);
            if (v != ver) {
                if (why) {
                    char buf[128];
                    std::snprintf(buf, sizeof(buf),
                                  "key %" PRIu64 ": payload word "
                                  "%" PRIu64 " = %" PRIu64
                                  " but version %" PRIu64
                                  " (torn update)",
                                  k, p, v, ver);
                    *why = buf;
                }
                return false;
            }
        }
    }
    return true;
}

} // namespace snf::oltp
