#include "oltp/bench.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "persist/log_buffer.hh"
#include "sim/logging.hh"
#include "sim/probe.hh"

namespace snf::oltp
{

namespace
{

/** One timed end-to-end simulation of a cell. */
OltpCellResult
runOnce(const OltpCellSpec &cell, const OltpMatrixConfig &cfg,
        double *wallSec)
{
    workloads::WorkloadParams params;
    params.threads = cfg.threads;
    params.txPerThread = cfg.txPerThread;
    params.seed = cfg.seed;
    params.warehouses = cfg.warehouses;
    params.zipfTheta = cfg.zipfTheta;
    params.footprint =
        cell.engine == "oltp-tpcc" ? cfg.customers : cfg.keys;

    SystemConfig sysCfg = SystemConfig::scaled(cfg.threads);
    sysCfg.persist.ccMode = cell.cc;
    sysCfg.persist.logShards = cfg.logShards;

    auto t0 = std::chrono::steady_clock::now();

    System sys(sysCfg, cell.mode);
    auto workload = workloads::makeWorkload(cell.engine);
    auto *engine = dynamic_cast<OltpEngine *>(workload.get());
    SNF_ASSERT(engine, "'%s' is not an OLTP engine",
               cell.engine.c_str());
    workload->setup(sys, params);

    OltpCellResult r;
    r.spec = cell;
    sys.setProbe([&](sim::ProbeEvent e, Tick now, std::uint64_t) {
        if (e != sim::ProbeEvent::TxCommit)
            return;
        ++r.occSamples;
        if (persist::LogBuffer *lb = sys.logBuffer()) {
            std::uint64_t occ = lb->occupancy(now);
            r.logOccSum += occ;
            r.logOccMax = std::max(r.logOccMax, occ);
        }
        std::uint64_t wocc = sys.mem().wcb().occupancy();
        r.wcbOccSum += wocc;
        r.wcbOccMax = std::max(r.wcbOccMax, wocc);
    });

    for (CoreId c = 0; c < params.threads; ++c) {
        sys.spawn(c, [&](Thread &t) -> sim::Co<void> {
            return workload->thread(sys, t, params);
        });
    }
    Tick end = sys.run(kTickNever);

    // Stats reflect the measured run; the final flush only exposes a
    // complete image for the oracle (as in workloads::runWorkload).
    RunStats s = sys.collectStats(end);
    sys.flushAll(end);
    std::string why;
    if (!workload->verify(sys.mem().nvram().store(), &why))
        fatal("oltp bench cell %s/%s/%s failed verification: %s",
              cell.engine.c_str(), persistModeName(cell.mode),
              ccModeName(cell.cc), why.c_str());

    auto t1 = std::chrono::steady_clock::now();
    *wallSec = std::chrono::duration<double>(t1 - t0).count();

    r.cycles = s.cycles;
    r.committedTx = s.committedTx;
    r.abortedTx = s.abortedTx;
    r.instructions = s.instr.total;
    r.retries = engine->retries();
    r.userAborts = engine->userAborts();
    r.logRecords = s.logRecords;
    r.nvramWrites = s.nvramWrites;
    for (const auto &[name, m] : engine->txMetrics()) {
        OltpTypeCounters tc;
        tc.type = name;
        tc.committed = m.committed;
        tc.latP50 = m.latency.p50();
        tc.latP99 = m.latency.p99();
        tc.latP999 = m.latency.p999();
        tc.latMean = m.latency.mean();
        tc.latMax = m.latency.max();
        tc.latSum = m.latency.sum();
        r.types.push_back(std::move(tc));
    }
    return r;
}

} // namespace

bool
OltpCellResult::countersEqual(const OltpCellResult &o) const
{
    return cycles == o.cycles && committedTx == o.committedTx &&
           abortedTx == o.abortedTx &&
           instructions == o.instructions && retries == o.retries &&
           userAborts == o.userAborts && logRecords == o.logRecords &&
           nvramWrites == o.nvramWrites &&
           occSamples == o.occSamples && logOccSum == o.logOccSum &&
           logOccMax == o.logOccMax && wcbOccSum == o.wcbOccSum &&
           wcbOccMax == o.wcbOccMax && types == o.types;
}

std::vector<OltpCellSpec>
oltpReferenceCells()
{
    std::vector<OltpCellSpec> cells;
    for (const char *engine : {"oltp-tpcc", "oltp-ycsb"})
        for (PersistMode mode :
             {PersistMode::Fwb, PersistMode::UndoClwb,
              PersistMode::RedoClwb})
            for (CcMode cc : {CcMode::TwoPhase, CcMode::Tl2})
                cells.push_back({engine, mode, cc});
    return cells;
}

OltpCellResult
runOltpCell(const OltpCellSpec &cell, const OltpMatrixConfig &cfg)
{
    OltpCellResult best;
    double total = 0.0;
    for (std::uint64_t r = 0;
         r < cfg.minRepeats ||
         (cfg.secondsPerCell > 0.0 && total < cfg.secondsPerCell);
         ++r) {
        double sec = 0.0;
        OltpCellResult cur = runOnce(cell, cfg, &sec);
        total += sec;
        if (r == 0) {
            best = std::move(cur);
            best.wallSec = sec;
        } else {
            if (!best.countersEqual(cur))
                fatal("oltp bench cell %s/%s/%s not deterministic "
                      "across repeats",
                      cell.engine.c_str(),
                      persistModeName(cell.mode),
                      ccModeName(cell.cc));
            best.wallSec = std::min(best.wallSec, sec);
        }
        ++best.repeats;
    }
    return best;
}

std::vector<OltpCellResult>
runOltpMatrix(const std::vector<OltpCellSpec> &cells,
              const OltpMatrixConfig &cfg)
{
    std::vector<OltpCellResult> results(cells.size());
    unsigned jobs = std::max(1u, cfg.jobs);
    if (jobs == 1) {
        for (std::size_t i = 0; i < cells.size(); ++i)
            results[i] = runOltpCell(cells[i], cfg);
        return results;
    }
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    for (unsigned j = 0; j < jobs; ++j)
        pool.emplace_back([&] {
            for (;;) {
                std::size_t i = next.fetch_add(1);
                if (i >= cells.size())
                    return;
                results[i] = runOltpCell(cells[i], cfg);
            }
        });
    for (auto &t : pool)
        t.join();
    return results;
}

std::string
oltpBenchJson(const OltpMatrixConfig &cfg,
              const std::vector<OltpCellResult> &results)
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": \"snf-bench-oltp-v1\",\n";
    out << "  \"tool\": \"snfoltp\",\n";
    out << "  \"threads\": " << cfg.threads << ",\n";
    out << "  \"tx_per_thread\": " << cfg.txPerThread << ",\n";
    out << "  \"seed\": " << cfg.seed << ",\n";
    out << "  \"warehouses\": " << cfg.warehouses << ",\n";
    out << "  \"customers\": " << cfg.customers << ",\n";
    out << "  \"keys\": " << cfg.keys << ",\n";
    out << "  \"zipf_theta\": " << cfg.zipfTheta << ",\n";
    out << "  \"log_shards\": " << cfg.logShards << ",\n";
    out << "  \"cells\": [";
    bool first = true;
    for (const OltpCellResult &r : results) {
        out << (first ? "\n" : ",\n");
        first = false;
        out << "    {\n";
        out << "      \"workload\": \"" << r.spec.engine << "\",\n";
        out << "      \"mode\": \"" << persistModeName(r.spec.mode)
            << "\",\n";
        out << "      \"cc\": \"" << ccModeName(r.spec.cc) << "\",\n";
        out << "      \"counters\": {\n";
        out << "        \"cycles\": " << r.cycles << ",\n";
        out << "        \"committed_tx\": " << r.committedTx << ",\n";
        out << "        \"aborted_tx\": " << r.abortedTx << ",\n";
        out << "        \"instructions\": " << r.instructions
            << ",\n";
        out << "        \"retries\": " << r.retries << ",\n";
        out << "        \"user_aborts\": " << r.userAborts << ",\n";
        out << "        \"log_records\": " << r.logRecords << ",\n";
        out << "        \"nvram_writes\": " << r.nvramWrites << ",\n";
        out << "        \"occ_samples\": " << r.occSamples << ",\n";
        out << "        \"log_occ_sum\": " << r.logOccSum << ",\n";
        out << "        \"log_occ_max\": " << r.logOccMax << ",\n";
        out << "        \"wcb_occ_sum\": " << r.wcbOccSum << ",\n";
        out << "        \"wcb_occ_max\": " << r.wcbOccMax << ",\n";
        out << "        \"tx_types\": [";
        bool firstType = true;
        for (const OltpTypeCounters &t : r.types) {
            out << (firstType ? "\n" : ",\n");
            firstType = false;
            out << "          {\"type\": \"" << t.type
                << "\", \"committed\": " << t.committed
                << ", \"lat_p50\": " << t.latP50
                << ", \"lat_p99\": " << t.latP99
                << ", \"lat_p999\": " << t.latP999
                << ", \"lat_mean\": " << t.latMean
                << ", \"lat_max\": " << t.latMax
                << ", \"lat_sum\": " << t.latSum << "}";
        }
        out << "\n        ]\n";
        out << "      },\n";
        out << "      \"perf\": {\n";
        out << "        \"wall_sec\": " << r.wallSec << ",\n";
        out << "        \"sim_tx_per_sec\": "
            << (r.wallSec > 0.0
                    ? static_cast<double>(r.committedTx) / r.wallSec
                    : 0.0)
            << ",\n";
        out << "        \"repeats\": " << r.repeats << "\n";
        out << "      }\n";
        out << "    }";
    }
    out << "\n  ]\n";
    out << "}\n";
    return out.str();
}

} // namespace snf::oltp
