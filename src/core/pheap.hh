/**
 * @file
 * Bump allocators over the simulated physical address space: a
 * persistent heap in NVRAM (above the log region) and a volatile
 * scratch heap in DRAM (locks, thread-private buffers).
 *
 * Allocation is a pure bump with no reuse: workload-visible node
 * recycling under crashes would require logging the allocator itself
 * (as real persistent-memory allocators do), which is orthogonal to
 * the paper's mechanisms. Leaked nodes after a crash are benign.
 */

#ifndef SNF_CORE_PHEAP_HH
#define SNF_CORE_PHEAP_HH

#include <cstdint>

#include "core/system_config.hh"
#include "sim/types.hh"

namespace snf::mem
{
class MemDevice;
} // namespace snf::mem

namespace snf
{

/** A bump allocator over a device-backed address range. */
class BumpAllocator
{
  public:
    BumpAllocator(Addr base, std::uint64_t size);

    /** Allocate @p size bytes at @p align alignment; fatal on OOM. */
    Addr alloc(std::uint64_t size, std::uint64_t align = 8);

    std::uint64_t allocated() const { return cursor - rangeBase; }

    std::uint64_t capacity() const { return rangeSize; }

    Addr base() const { return rangeBase; }

    /** Reset to empty (between runs sharing a System). */
    void reset() { cursor = rangeBase; }

    /**
     * Resume with @p allocatedBytes already in use — the lifecycle
     * driver restores the cursor recorded in the NVRAM superblock
     * when restarting on a recovered image, so prior allocations
     * stay owned and new ones land above them.
     */
    void resumeTo(std::uint64_t allocatedBytes);

  private:
    Addr rangeBase;
    std::uint64_t rangeSize;
    Addr cursor;
};

/**
 * The persistent heap: a BumpAllocator over NVRAM plus zero-time
 * functional preload helpers used by workload setup (modeling data
 * that existed before the measured run).
 */
class PersistentHeap : public BumpAllocator
{
  public:
    PersistentHeap(const AddressMap &map, mem::MemDevice &nvram);

    /** Functionally write preload data (no simulated time/traffic). */
    void prewrite(Addr addr, const void *data, std::uint64_t size);

    /** Functionally write a 64-bit preload value. */
    void prewrite64(Addr addr, std::uint64_t value);

    /** Functional read (verification helpers). */
    std::uint64_t peek64(Addr addr) const;

  private:
    mem::MemDevice &nvram;
};

} // namespace snf

#endif // SNF_CORE_PHEAP_HH
