/**
 * @file
 * System configuration structures and the paper's Table II presets.
 *
 * All timing is expressed in core clock cycles at 2.5 GHz (0.4 ns per
 * cycle), matching the paper's processor configuration.
 */

#ifndef SNF_CORE_SYSTEM_CONFIG_HH
#define SNF_CORE_SYSTEM_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace snf
{

/** The persistence scheme a run executes under (paper Section VI). */
enum class PersistMode
{
    NonPers,    ///< no persistence, no logging (ideal bound)
    UnsafeRedo, ///< software redo logging, no clwb (no guarantee)
    UnsafeUndo, ///< software undo logging, no clwb (no guarantee)
    RedoClwb,   ///< software redo logging + clwb + fences
    UndoClwb,   ///< software undo logging + clwb at commit
    HwRlog,     ///< hardware redo-only logging, no persistence guarantee
    HwUlog,     ///< hardware undo-only logging, no persistence guarantee
    Hwl,        ///< hardware undo+redo logging + software clwb at commit
    Fwb,        ///< full design: HWL + hardware force write-back
};

/** Human-readable short name, matching the paper's legend. */
const char *persistModeName(PersistMode mode);

/** All modes in paper presentation order. */
inline constexpr PersistMode kAllModes[] = {
    PersistMode::NonPers,   PersistMode::UnsafeRedo,
    PersistMode::UnsafeUndo, PersistMode::RedoClwb,
    PersistMode::UndoClwb,  PersistMode::HwRlog,
    PersistMode::HwUlog,    PersistMode::Hwl,
    PersistMode::Fwb,
};

/** True for modes whose logging runs in hardware (HWL paths). */
bool isHardwareLogging(PersistMode mode);

/** True for modes that inject software logging instructions. */
bool isSoftwareLogging(PersistMode mode);

/** True for modes that issue clwb over the transaction write-set. */
bool usesCommitClwb(PersistMode mode);

/**
 * True for modes whose log carries undo values, i.e. the only modes
 * where tx_abort() can roll stolen data back (Section II-B: redo-only
 * logging cannot tolerate steal). Workloads with aborting
 * transactions must skip them under the other modes.
 */
bool supportsAbort(PersistMode mode);

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    std::uint32_t sizeBytes = 32 * 1024;
    std::uint32_t ways = 8;
    std::uint32_t lineBytes = 64;
    std::uint32_t latency = 4; ///< access latency in cycles

    std::uint32_t numLines() const { return sizeBytes / lineBytes; }

    std::uint32_t numSets() const { return numLines() / ways; }
};

/**
 * Deterministic NVRAM media-fault model (faultlab). All decisions are
 * pure hashes of (seed, line address, tick), so a run is bit-exact
 * reproducible per seed. Faults apply to the accepted-write path of a
 * device: the timing/energy model still charges the access, but the
 * bytes that land in the backing store may be damaged. Probabilities
 * are per 64-byte line written.
 */
struct FaultModelConfig
{
    std::uint64_t seed = 0;
    double bitFlipProb = 0.0;   ///< flip one bit in a written line
    double multiBitProb = 0.0;  ///< flip two distinct bits in a line
    double stuckRowProb = 0.0;  ///< row sticks: one word wedged per row
    double dropWriteProb = 0.0; ///< accepted write silently dropped
    double tornLineProb = 0.0;  ///< only the first 32 B of a line land
    /** Restrict injection to [regionBase, regionBase+regionSize). */
    Addr regionBase = 0;
    std::uint64_t regionSize = 0; ///< 0 = whole device
    /** Restrict injection to ticks in [windowStart, windowEnd). */
    Tick windowStart = 0;
    Tick windowEnd = 0; ///< 0 = no upper bound

    bool
    enabled() const
    {
        return bitFlipProb > 0.0 || multiBitProb > 0.0 ||
               stuckRowProb > 0.0 || dropWriteProb > 0.0 ||
               tornLineProb > 0.0;
    }

    /** No injected faults (the default). */
    static FaultModelConfig none() { return FaultModelConfig{}; }

    /** Rare single-bit upsets, the common PCM field-failure mode. */
    static FaultModelConfig
    light(std::uint64_t seed)
    {
        FaultModelConfig f;
        f.seed = seed;
        f.bitFlipProb = 1e-4;
        return f;
    }

    /** Aggressive mixed-mode damage for stress testing recovery. */
    static FaultModelConfig
    heavy(std::uint64_t seed)
    {
        FaultModelConfig f;
        f.seed = seed;
        f.bitFlipProb = 1e-3;
        f.multiBitProb = 2e-4;
        f.dropWriteProb = 2e-4;
        f.tornLineProb = 2e-4;
        return f;
    }
};

/** Timing/energy model of a memory device (DRAM or NVRAM DIMM). */
struct MemDeviceConfig
{
    std::uint64_t sizeBytes = 8ULL << 30;
    std::uint32_t banks = 8;
    std::uint32_t rowBytes = 2048;
    std::uint32_t rowHitLat = 90;        ///< 36 ns row-buffer hit
    std::uint32_t readConflictLat = 250; ///< 100 ns read conflict
    std::uint32_t writeConflictLat = 750;///< 300 ns write conflict
    std::uint32_t burstCycles = 8;       ///< channel occupancy / 64B

    // Energy coefficients, pJ per bit (paper Table II, PCM [44]).
    double rowReadPjBit = 0.93;
    double rowWritePjBit = 1.02;
    double arrayReadPjBit = 2.47;
    double arrayWritePjBit = 16.82;

    /** Media-fault injection (faultlab); disabled by default. */
    FaultModelConfig faults;

    /**
     * Bad-line remapping (lifelab): geometry of the persistent remap
     * table and its spare-line area on this device. Zero sizes (the
     * default) disable remapping entirely. Populated by the System
     * from AddressMap::remapBase()/spareBase() for the NVRAM device.
     */
    Addr remapBase = 0;
    std::uint64_t remapSize = 0;
    Addr spareBase = 0;
    std::uint64_t spareSize = 0;
};

/** Simulated core (timing model) parameters. */
struct CoreConfig
{
    std::uint32_t issueWidth = 4;      ///< non-mem ops retired per cycle
    std::uint32_t storeBufferEntries = 32;
    std::uint32_t l1HitLat = 4;        ///< 1.6 ns at 2.5 GHz
};

/** Memory-controller queue model. */
struct McConfig
{
    std::uint32_t readQueue = 64;
    std::uint32_t writeQueue = 64;
};

/**
 * What a hardware log region does when an append finds no safely
 * reclaimable slot (every candidate still belongs to an active
 * transaction or covers data not yet written back).
 */
enum class LogFullPolicy
{
    /**
     * Legacy behavior: reclaim the slot anyway and count a hazard.
     * Keeps the paper's measured-overhead surface intact.
     */
    Reclaim,
    /**
     * Force the blocking data line back to NVRAM and retry with
     * bounded exponential backoff in simulated ticks; falls back to
     * Reclaim only once retries are exhausted.
     */
    Stall,
    /**
     * Like Stall, but when the blocker is an active transaction,
     * request its abort; the victim rolls back via its in-log undo
     * entries and retries.
     */
    AbortRetry,
};

/** Printable name of a LogFullPolicy. */
const char *logFullPolicyName(LogFullPolicy policy);

/**
 * Concurrency control over shared transactional data (the tx_load64 /
 * tx_store64 thread API). The paper's evaluation keeps transaction
 * footprints thread-disjoint, so the seed workloads ran without any
 * CC; workloads that contend on cache lines must pick a scheme, since
 * in-place updates with steal mean two writers to one line would
 * corrupt each other's undo values.
 */
enum class CcMode
{
    /**
     * No concurrency control: tx_store64/tx_load64 degenerate to the
     * plain ops. Only sound for thread-disjoint footprints.
     */
    None,
    /**
     * Strict two-phase locking at cache-line granularity: reads and
     * writes take the line's exclusive lock at encounter time and
     * hold it to commit/abort. A lock wait that would close a cycle
     * in the waits-for graph aborts the requester (deadlock
     * avoidance with guaranteed progress).
     */
    TwoPhase,
    /**
     * TL2-style optimistic reads: writes still take encounter-time
     * exclusive line locks (steal makes that mandatory), but reads
     * only record the line's commit version and revalidate at
     * commit, diverting to tx_abort() on conflict.
     */
    Tl2,
};

/** Printable name of a CcMode. */
const char *ccModeName(CcMode mode);

/** Persistence machinery parameters (Sections III and IV). */
struct PersistConfig
{
    std::uint64_t logBytes = 4ULL << 20;  ///< circular log size (4 MB)
    std::uint32_t logBufferEntries = 15;  ///< volatile FIFO in the MC
    std::uint32_t wcbEntries = 6;         ///< write-combining buffer
    /**
     * FWB scan period in cycles; 0 selects the automatic derivation
     * from log size and NVRAM write bandwidth (Section IV-D).
     */
    Tick fwbPeriod = 0;
    /** Cycles of cache-port busy time charged per scanned line. */
    double fwbScanCostPerLine = 0.05;
    /** Record write journal in NVRAM for crash snapshots. */
    bool crashJournal = false;
    /**
     * Journal-checkpoint interval of the snapshot engine: the store
     * materializes a copy-on-write image every K journal entries so
     * snapshotAt(t) replays only the delta past the nearest
     * checkpoint. 0 disables checkpoints (full replay per snapshot —
     * the naive reference mode bench/sweep_perf compares against).
     * Only meaningful with crashJournal.
     */
    std::size_t snapshotCheckpointK = 1024;
    /**
     * Distributed per-thread logs (paper Section III-F): the log
     * area is partitioned into one circular region per core, each
     * with its own log buffer. Only meaningful for hardware-logging
     * modes; software baselines stay centralized.
     *
     * Constraint: partitions recover independently, so persistent
     * data written by transactions must be thread-private (the
     * paper's one-transaction-stream-per-thread model, Figure 4);
     * committed writes to shared addresses from different partitions
     * have no recovery-time order without a global LSN.
     */
    bool distributedLogs = false;
    /**
     * Ablation only: drop the memory controller's FIFO ordering of
     * log writes ahead of data write-backs. Violates the inherent
     * log-before-data guarantee (bench/ablation_ordering).
     */
    bool disableWbBarrier = false;
    /**
     * Crash-tooling self-test only: keep the write-back barrier's
     * timing (the run is cycle-identical) but journal each NVRAM data
     * write-back as issued *before* the barrier wait — modeling a
     * controller that posts the write-back into the ADR domain
     * without waiting for log-drain acceptance. Completion order
     * still happens to be log-first, so the linear-prefix crash sweep
     * sees nothing; only the persist-ordering adversary (reorderlab),
     * which explores legal completion orders of concurrently pending
     * writes, can catch the skipped ordering edge.
     */
    bool injectSkipWbBarrier = false;
    /**
     * Multi-controller log sharding (shardlab): the log area is split
     * into logShards equal circular regions, each modeling one memory
     * controller's slice of the line-address space. Every update
     * record for a data line lands in the shard owning that line
     * (shard = (line >> 6) mod logShards), so per-address record
     * order is preserved within one shard. A transaction touching
     * more than one shard commits through a two-phase protocol:
     * prepare records in every participant shard, then one commit
     * record in the owner shard carrying the participation mask.
     * 1 (the default) keeps the single centralized log byte-identical
     * to the pre-shard layout. Mutually exclusive with
     * distributedLogs (which partitions per core, not per address).
     */
    std::uint32_t logShards = 1;
    /**
     * Crash-tooling self-test only: the owner-shard commit record of
     * a cross-shard transaction is written with a participation mask
     * naming only the owner shard (cycle timing unchanged). Recovery
     * then redoes the owner shard's updates but treats every other
     * participant's prepared generation as unresolved and undoes it —
     * a mixed half-committed image the sharded crash sweep and the
     * conformlab differential must catch.
     */
    bool injectSkipShardMask = false;
    /** Behavior when a log append finds no reclaimable slot. */
    LogFullPolicy logFullPolicy = LogFullPolicy::Reclaim;
    /** Stall/AbortRetry: attempts before falling back to Reclaim. */
    std::uint32_t logFullRetries = 8;
    /** Stall/AbortRetry: base backoff in ticks (doubles per try). */
    Tick logFullBackoffBase = 64;
    /**
     * AbortRetry livelock guard: once the same thread has been made
     * the abort victim this many consecutive times without managing
     * to commit, further abort requests against it are denied and the
     * append escalates to the Stall policy for that slot (counted in
     * TxnTracker's escalations stat). 0 disables the cap.
     */
    std::uint32_t abortRetryCap = 8;

    /** Concurrency control for the tx_load64/tx_store64 API. */
    CcMode ccMode = CcMode::None;
    /** CC acquire-retry backoff in instructions (doubles per try). */
    std::uint32_t ccBackoffBase = 8;
    /** Cap on the CC acquire-retry backoff. */
    std::uint32_t ccBackoffCap = 1024;

    /**
     * Online log scrubber (lifelab): piggybacks on the FWB cadence
     * (or an equivalent self-scheduled period under non-FWB modes) to
     * CRC-walk a chunk of the log window in the background, rewriting
     * correctable slots, retiring uncorrectable dead ones, and
     * promoting repeat-offender lines into the bad-line remap table.
     */
    bool scrub = false;
    /** Slots checked per scrub step; 0 = slots/256 (one full walk of
     *  the log every 256 scan periods, bounding scrub reads to a
     *  sub-percent slice of device bandwidth). */
    std::uint64_t scrubChunkSlots = 0;
    /** Error observations on one line before it is promoted into the
     *  remap table. */
    std::uint32_t scrubPromoteThreshold = 3;
};

/** Physical address map of the simulated machine. */
struct AddressMap
{
    Addr dramBase = 0;
    std::uint64_t dramSize = 1ULL << 30;
    Addr nvramBase = 0x100000000ULL; ///< 4 GB boundary
    std::uint64_t nvramSize = 8ULL << 30;
    /** Log region lives at the bottom of NVRAM. */
    std::uint64_t logSize = 4ULL << 20;
    /** Number of log partitions (1 = centralized). */
    std::uint32_t logPartitions = 1;
    /**
     * Number of address-interleaved log shards (shardlab); 1 =
     * centralized. Exclusive with logPartitions > 1: partitions
     * split the log per core, shards split it per line address.
     */
    std::uint32_t logShards = 1;
    /**
     * Bad-line remap table region (lifelab), directly above the log:
     * two CRC-protected banks of mapping entries. 0 (the default)
     * disables remapping and keeps the pre-lifelab address map.
     */
    std::uint64_t remapSize = 0;
    /** Spare-line area the remap table hands lines out of. */
    std::uint64_t spareSize = 0;

    bool
    isNvram(Addr a) const
    {
        return a >= nvramBase && a < nvramBase + nvramSize;
    }

    bool
    isDram(Addr a) const
    {
        return a >= dramBase && a < dramBase + dramSize;
    }

    Addr logBase() const { return nvramBase; }

    /**
     * Number of independent circular log regions in the log area —
     * per-core partitions and address-interleaved shards both slice
     * the same area, and they are mutually exclusive, so the count is
     * simply the larger of the two (minimum 1). Recovery, the
     * invariant checkers, and faultlab iterate regions through this.
     */
    std::uint32_t
    logRegionCount() const
    {
        std::uint32_t n = logPartitions > logShards ? logPartitions
                                                    : logShards;
        return n > 0 ? n : 1;
    }

    /** Remap-table region: NVRAM after the log. */
    Addr remapBase() const { return nvramBase + logSize; }

    /** Spare-line area: after the remap table. */
    Addr spareBase() const { return remapBase() + remapSize; }

    /** First heap address: NVRAM after log + remap + spares. */
    Addr heapBase() const { return spareBase() + spareSize; }
};

/** Complete configuration of one simulated system. */
struct SystemConfig
{
    std::string name = "paper";
    std::uint32_t numCores = 4;
    double clockGhz = 2.5;

    CoreConfig core;
    CacheConfig l1;
    CacheConfig l2;
    McConfig mc;
    MemDeviceConfig nvram;
    MemDeviceConfig dram;
    PersistConfig persist;
    AddressMap map;

    /** Paper Table II configuration (4 cores, 32 KB L1, 8 MB L2). */
    static SystemConfig paper(std::uint32_t cores = 4);

    /**
     * Proportionally scaled-down configuration for fast tests and
     * sweeps: smaller caches and log, same ratios and latencies.
     */
    static SystemConfig scaled(std::uint32_t cores = 4);

    /** Validate internal consistency; fatal() on bad values. */
    void validate() const;
};

} // namespace snf

#endif // SNF_CORE_SYSTEM_CONFIG_HH
