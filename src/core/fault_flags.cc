#include "core/fault_flags.hh"

#include <algorithm>
#include <cstdlib>

#include "sim/logging.hh"

namespace snf
{

std::uint64_t
parseCountFlag(const char *flag, const char *value)
{
    char *end = nullptr;
    std::uint64_t n = std::strtoull(value, &end, 0);
    if (end == value || *end != '\0')
        fatal("%s needs a number, got '%s'", flag, value);
    return n;
}

std::uint32_t
parseLogShardsFlag(const char *flag, const char *value)
{
    std::uint64_t n = parseCountFlag(flag, value);
    if (n == 0 || n > 64)
        fatal("%s needs a shard count in [1,64], got '%s'", flag,
              value);
    return static_cast<std::uint32_t>(n);
}

std::uint64_t
parsePositiveCountFlag(const char *flag, const char *value)
{
    std::uint64_t n = parseCountFlag(flag, value);
    if (n == 0)
        fatal("%s needs a count >= 1, got '%s'", flag, value);
    return n;
}

double
parseOpenUnitFlag(const char *flag, const char *value)
{
    char *end = nullptr;
    double x = std::strtod(value, &end);
    if (end == value || *end != '\0')
        fatal("%s needs a number, got '%s'", flag, value);
    if (!(x > 0.0 && x < 1.0))
        fatal("%s needs a value strictly inside (0,1), got '%s'",
              flag, value);
    return x;
}

void
FaultFlagSet::addRate(const std::string &flag, double *target)
{
    rates.push_back(RateFlag{flag, target});
}

void
FaultFlagSet::addSeed(const std::string &flag, std::uint64_t *target)
{
    seedFlag = flag;
    seedTarget = target;
}

void
FaultFlagSet::setPresetFlag(const std::string &flag)
{
    presetFlag = flag;
}

void
FaultFlagSet::addPreset(const std::string &name,
                        std::vector<std::pair<double *, double>> values)
{
    presets.push_back(Preset{name, std::move(values)});
}

bool
FaultFlagSet::takeValue(const std::vector<std::string> &args,
                        std::size_t &i, const std::string &flag,
                        std::string &valueOut, std::string *err) const
{
    const std::string &tok = args[i];
    if (tok.size() > flag.size() && tok[flag.size()] == '=') {
        valueOut = tok.substr(flag.size() + 1);
        return true;
    }
    if (i + 1 >= args.size()) {
        if (err)
            *err = flag + " needs a value";
        return false;
    }
    valueOut = args[++i];
    return true;
}

FlagParse
FaultFlagSet::consume(const std::vector<std::string> &args,
                      std::size_t &i, std::string *err)
{
    const std::string &tok = args[i];
    auto matches = [&tok](const std::string &flag) {
        return tok == flag ||
               (tok.size() > flag.size() &&
                tok.compare(0, flag.size(), flag) == 0 &&
                tok[flag.size()] == '=');
    };

    if (seedTarget && matches(seedFlag)) {
        std::string v;
        if (!takeValue(args, i, seedFlag, v, err))
            return FlagParse::Error;
        *seedTarget = std::strtoull(v.c_str(), nullptr, 0);
        return FlagParse::Ok;
    }

    if (!presetFlag.empty() && matches(presetFlag)) {
        std::string v;
        if (!takeValue(args, i, presetFlag, v, err))
            return FlagParse::Error;
        if (!explicitRates.empty()) {
            if (err)
                *err = presetFlag + " " + v +
                       " would overwrite earlier explicit fault "
                       "rates; put the preset first and tune after it";
            return FlagParse::Error;
        }
        auto it = std::find_if(presets.begin(), presets.end(),
                               [&v](const Preset &p) {
                                   return p.name == v;
                               });
        if (it == presets.end()) {
            if (err) {
                *err = "unknown preset '" + v + "' (expected";
                for (const Preset &p : presets)
                    *err += " " + p.name;
                *err += ")";
            }
            return FlagParse::Error;
        }
        for (const auto &[field, value] : it->values)
            *field = value;
        presetName = v;
        return FlagParse::Ok;
    }

    for (const RateFlag &rf : rates) {
        if (!matches(rf.flag))
            continue;
        std::string v;
        if (!takeValue(args, i, rf.flag, v, err))
            return FlagParse::Error;
        double rate = std::strtod(v.c_str(), nullptr);
        if (rate < 0.0 || rate > 1.0) {
            if (err)
                *err = rf.flag + " " + v +
                       " is not a probability in [0,1]";
            return FlagParse::Error;
        }
        if (!presetName.empty() && rate == 0.0) {
            const Preset &p = *std::find_if(
                presets.begin(), presets.end(),
                [this](const Preset &q) {
                    return q.name == presetName;
                });
            bool preset_sets = std::any_of(
                p.values.begin(), p.values.end(),
                [&rf](const std::pair<double *, double> &fv) {
                    return fv.first == rf.target && fv.second > 0.0;
                });
            if (preset_sets) {
                if (err)
                    *err = rf.flag + " 0 contradicts " + presetFlag +
                           " '" + presetName +
                           "' which enables that fault class; drop "
                           "the preset or the override";
                return FlagParse::Error;
            }
        }
        *rf.target = rate;
        explicitRates.push_back(rf.target);
        return FlagParse::Ok;
    }
    return FlagParse::NotMine;
}

} // namespace snf
