/**
 * @file
 * snf::System — the top-level facade binding the simulated machine
 * together: cores/threads, cache hierarchy, memory devices, the
 * circular NVRAM log, and the persistence machinery selected by
 * PersistMode (HWL, FWB, or the software-logging baselines).
 *
 * Typical use:
 * @code
 *   snf::System sys(snf::SystemConfig::scaled(), snf::PersistMode::Fwb);
 *   snf::Addr counter = sys.heap().alloc(8);
 *   sys.spawn(0, [&](snf::Thread &t) -> snf::sim::Co<void> {
 *       co_await t.txBegin();
 *       co_await t.store64(counter, 42);
 *       co_await t.txCommit();
 *   });
 *   snf::Tick end = sys.run();
 *   snf::RunStats stats = sys.collectStats(end);
 * @endcode
 */

#ifndef SNF_CORE_SYSTEM_HH
#define SNF_CORE_SYSTEM_HH

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/pheap.hh"
#include "core/system_config.hh"
#include "core/thread_api.hh"
#include "cpu/scheduler.hh"
#include "energy/energy_model.hh"
#include "mem/memory_system.hh"
#include "persist/fwb_engine.hh"
#include "persist/hwl_engine.hh"
#include "persist/log_buffer.hh"
#include "persist/log_region.hh"
#include "persist/log_scrubber.hh"
#include "persist/recovery.hh"
#include "persist/sw_logging.hh"
#include "persist/txn_tracker.hh"
#include "sim/coro.hh"
#include "sim/event_queue.hh"
#include "sim/probe.hh"

namespace snf
{

/** Aggregated result statistics of one simulated run. */
struct RunStats
{
    Tick cycles = 0;
    std::uint64_t committedTx = 0;
    std::uint64_t abortedTx = 0;
    cpu::InstructionCounts instr;
    double ipc = 0.0;
    double txPerMcycle = 0.0;

    std::uint64_t nvramReads = 0;
    std::uint64_t nvramWrites = 0;
    std::uint64_t nvramReadBytes = 0;
    std::uint64_t nvramWriteBytes = 0;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;

    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;

    std::uint64_t logRecords = 0;
    std::uint64_t logWraps = 0;
    std::uint64_t logBufferStalls = 0;
    std::uint64_t fwbScans = 0;
    std::uint64_t fwbWritebacks = 0;

    std::uint64_t orderViolations = 0;
    std::uint64_t overwriteHazards = 0;

    // Log-full policy activity (zero under the legacy Reclaim policy).
    std::uint64_t logFullStalls = 0;
    std::uint64_t forcedWritebacks = 0;
    /** Abort requests denied by the livelock guard (escalated to
     *  stall-style waiting). */
    std::uint64_t logFullEscalations = 0;

    // Concurrency-control layer (zero unless PersistConfig::ccMode).
    std::uint64_t ccLockWaits = 0;
    std::uint64_t ccDeadlockAborts = 0;
    std::uint64_t ccValidationFailures = 0;

    // NVRAM media faults injected by the fault model (zero unless
    // MemDeviceConfig::faults is enabled).
    std::uint64_t faultsInjected = 0;
    /** Bytes the enabled injector examined inside its scope — a
     *  write path that bypasses it examines nothing, so parity tests
     *  can assert coverage structurally. */
    std::uint64_t faultExaminedBytes = 0;

    // Online log scrubber (lifelab; zero unless PersistConfig::scrub).
    std::uint64_t scrubSlotsScanned = 0;
    std::uint64_t scrubReadBytes = 0;
    std::uint64_t scrubWriteBytes = 0;
    std::uint64_t scrubRepairs = 0;
    std::uint64_t scrubPromotions = 0;
    /** Lines promoted into the persistent bad-line remap table. */
    std::uint64_t remappedLines = 0;

    // Simulator internals (speedlab): host-side hot-path activity of
    // the run. Deterministic for a given spec, so the perf bench
    // gates on these instead of wall-clock.
    std::uint64_t eventsScheduled = 0;
    std::uint64_t eventsExecuted = 0;
    std::uint64_t eventHeapSpills = 0;
    std::uint64_t callbackHeapAllocs = 0;
    /** Crash-journal entries accumulated (0 unless crashJournal). */
    std::uint64_t journalEntries = 0;

    energy::EnergyBreakdown energy;
};

/** See file comment. */
class System
{
  public:
    System(const SystemConfig &config, PersistMode mode);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    PersistMode mode() const { return persistMode; }

    const SystemConfig &config() const { return cfg; }

    mem::MemorySystem &mem() { return *memory; }

    const mem::MemorySystem &mem() const { return *memory; }

    PersistentHeap &heap() { return *pheap; }

    BumpAllocator &dramHeap() { return *dheap; }

    persist::LogRegion &log() { return *logRegions[0]; }

    /** Log regions (1 unless PersistConfig::distributedLogs splits
     *  per core or PersistConfig::logShards splits per address). */
    std::size_t logPartitionCount() const { return logRegions.size(); }

    persist::LogRegion &logPartition(std::size_t i)
    {
        return *logRegions[i];
    }

    persist::TxnTracker &txns() { return txnTracker; }

    sim::EventQueue &events() { return eventQueue; }

    Thread &thread(CoreId id) { return *threads[id]; }

    std::uint32_t numCores() const { return cfg.numCores; }

    /** Bind a workload coroutine to core @p id. */
    void spawn(CoreId id,
               const std::function<sim::Co<void>(Thread &)> &fn);

    /**
     * Run to completion of all spawned threads, or to @p stopAt
     * (crash instant). @return the final simulated tick.
     */
    Tick run(Tick stopAt = kTickNever);

    /** Write back all volatile state (graceful shutdown). */
    Tick flushAll(Tick now);

    /**
     * Snapshot the NVRAM image as of @p at (requires
     * PersistConfig::crashJournal).
     */
    mem::BackingStore crashSnapshot(Tick at) const;

    /**
     * Adopt @p image as this system's NVRAM contents (lifelab resume
     * path): the backing store takes the recovered image, the remap
     * table is reloaded from it, and every log region re-installs a
     * pristine header matching its (empty) volatile state. Caches and
     * the crash journal restart cold, so the adopted image is the
     * tick-0 state of the new generation.
     */
    void adoptNvramImage(const mem::BackingStore &image);

    /**
     * Install a crash-tooling probe across every event source: the
     * log buffers (LogDrain, CommitDurable), the bus monitor
     * (DataWriteback), the WCB (WcbFlush), the FWB engine (FwbScan)
     * and the thread API (TxBegin, TxCommit, CommitDurable for the
     * clwb+fence software modes). Pass an empty function to detach.
     */
    void setProbe(sim::ProbeFn p);

    /** The installed probe (empty unless setProbe was called). */
    const sim::ProbeFn &probe() const { return probeFn; }

    /** Aggregate statistics as of tick @p cycles. */
    RunStats collectStats(Tick cycles) const;

    /** Dump every component's statistics. */
    void dumpStats(std::ostream &os);

    // --- internal accessors for Thread ---------------------------

    /**
     * Drain every volatile log staging structure (hardware log-buffer
     * FIFOs, software WCB) so all appended records are readable from
     * NVRAM. Used by tx_abort before collecting undo values.
     */
    Tick drainLogs(Tick now);

    /** Undo entries of @p txSeq across all log partitions, newest
     *  first (see LogRegion::collectUndo). */
    std::vector<persist::LogRegion::UndoEntry>
    collectUndo(std::uint64_t txSeq) const;

    persist::HwlEngine *hwl() { return hwlEngine.get(); }

    persist::SwLogging *swlog() { return swLogging.get(); }

    persist::FwbEngine *fwb() { return fwbEngine.get(); }

    persist::LogScrubber *scrub() { return scrubber.get(); }

    persist::LogBuffer *logBuffer()
    {
        return logBufs.empty() ? nullptr : logBufs[0].get();
    }

  private:
    SystemConfig cfg;
    PersistMode persistMode;
    sim::EventQueue eventQueue;
    std::unique_ptr<mem::MemorySystem> memory;
    std::unique_ptr<PersistentHeap> pheap;
    std::unique_ptr<BumpAllocator> dheap;
    persist::TxnTracker txnTracker;
    std::vector<std::unique_ptr<persist::LogRegion>> logRegions;
    std::vector<std::unique_ptr<persist::LogBuffer>> logBufs;
    std::unique_ptr<persist::HwlEngine> hwlEngine;
    std::unique_ptr<persist::SwLogging> swLogging;
    std::unique_ptr<persist::FwbEngine> fwbEngine;
    std::unique_ptr<persist::LogScrubber> scrubber;
    cpu::Scheduler scheduler;
    std::vector<std::unique_ptr<Thread>> threads;
    std::vector<sim::Co<void>> rootCoros;
    sim::ProbeFn probeFn;
};

} // namespace snf

#endif // SNF_CORE_SYSTEM_HH
