/**
 * @file
 * The workload-facing thread API: coroutine awaitables for simulated
 * loads, stores, compute, atomics, and persistent-memory transactions
 * (tx_begin / tx_commit of paper Section IV-A).
 *
 * Every awaited operation suspends the workload coroutine back to the
 * scheduler, which executes it when this thread is globally earliest.
 * Under software-logging modes the transaction operations expand into
 * the extra logging instructions of Figure 2(a); under hardware modes
 * they reduce to the register writes of Figure 2(b).
 */

#ifndef SNF_CORE_THREAD_API_HH
#define SNF_CORE_THREAD_API_HH

#include <cstdint>

#include "cpu/thread_context.hh"
#include "core/system_config.hh"
#include "mem/memory_system.hh"
#include "persist/hwl_engine.hh"
#include "persist/sw_logging.hh"
#include "persist/txn_tracker.hh"
#include "sim/coro.hh"
#include "sim/types.hh"

namespace snf
{

class System;

/** See file comment. */
class Thread
{
  public:
    Thread(CoreId id, System &system);

    Thread(const Thread &) = delete;
    Thread &operator=(const Thread &) = delete;

    CoreId id() const { return ctx.id(); }

    cpu::ThreadContext &context() { return ctx; }

    bool inTransaction() const { return inTx; }

    // ----- awaitable operations ----------------------------------

    /** Common awaiter plumbing: parks the op and suspends. */
    template <typename Derived, typename Result>
    struct OpAwaiter : cpu::PendingOp
    {
        Thread *t;
        Result result{};

        explicit OpAwaiter(Thread *thread) : t(thread) {}

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h) noexcept
        {
            t->ctx.pending = this;
            t->ctx.resumePoint = h;
        }

        Result await_resume() const noexcept { return result; }

        void
        execute() override
        {
            static_cast<Derived *>(this)->run();
        }
    };

    struct VoidAwaiter : cpu::PendingOp
    {
        Thread *t;

        explicit VoidAwaiter(Thread *thread) : t(thread) {}

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h) noexcept
        {
            t->ctx.pending = this;
            t->ctx.resumePoint = h;
        }

        void await_resume() const noexcept {}
    };

    struct LoadOp : OpAwaiter<LoadOp, std::uint64_t>
    {
        Addr addr;
        std::uint32_t size;

        LoadOp(Thread *t, Addr a, std::uint32_t s)
            : OpAwaiter(t), addr(a), size(s)
        {
        }

        void run() { result = t->execLoad(addr, size); }
    };

    struct StoreOp : VoidAwaiter
    {
        Addr addr;
        std::uint64_t value;
        std::uint32_t size;

        StoreOp(Thread *t, Addr a, std::uint64_t v, std::uint32_t s)
            : VoidAwaiter(t), addr(a), value(v), size(s)
        {
        }

        void execute() override { t->execStore(addr, size, value); }
    };

    struct ComputeOp : VoidAwaiter
    {
        std::uint64_t amount;

        ComputeOp(Thread *t, std::uint64_t n)
            : VoidAwaiter(t), amount(n)
        {
        }

        void execute() override { t->execCompute(amount); }
    };

    struct TxBeginOp : VoidAwaiter
    {
        using VoidAwaiter::VoidAwaiter;

        void execute() override { t->execTxBegin(); }
    };

    struct TxCommitOp : VoidAwaiter
    {
        using VoidAwaiter::VoidAwaiter;

        void execute() override { t->execTxCommit(); }
    };

    struct TxAbortOp : VoidAwaiter
    {
        using VoidAwaiter::VoidAwaiter;

        void execute() override { t->execTxAbort(); }
    };

    struct ClwbOp : VoidAwaiter
    {
        Addr addr;

        ClwbOp(Thread *t, Addr a) : VoidAwaiter(t), addr(a) {}

        void execute() override { t->execClwb(addr); }
    };

    struct FenceOp : VoidAwaiter
    {
        using VoidAwaiter::VoidAwaiter;

        void execute() override { t->execFence(); }
    };

    struct CcAcquireOp : OpAwaiter<CcAcquireOp, persist::CcDecision>
    {
        Addr addr;
        bool forWrite;

        CcAcquireOp(Thread *t, Addr a, bool w)
            : OpAwaiter(t), addr(a), forWrite(w)
        {
        }

        void run() { result = t->execCcAcquire(addr, forWrite); }
    };

    struct TxValidateOp : OpAwaiter<TxValidateOp, bool>
    {
        using OpAwaiter::OpAwaiter;

        void run() { result = t->execTxValidate(); }
    };

    struct CasOp : OpAwaiter<CasOp, std::uint64_t>
    {
        Addr addr;
        std::uint64_t expected;
        std::uint64_t desired;

        CasOp(Thread *t, Addr a, std::uint64_t e, std::uint64_t d)
            : OpAwaiter(t), addr(a), expected(e), desired(d)
        {
        }

        void run() { result = t->execCas(addr, expected, desired); }
    };

    LoadOp load64(Addr a) { return LoadOp(this, a, 8); }

    LoadOp load32(Addr a) { return LoadOp(this, a, 4); }

    StoreOp store64(Addr a, std::uint64_t v)
    {
        return StoreOp(this, a, v, 8);
    }

    StoreOp store32(Addr a, std::uint32_t v)
    {
        return StoreOp(this, a, v, 4);
    }

    /** Retire @p n generic (non-memory) instructions. */
    ComputeOp compute(std::uint64_t n) { return ComputeOp(this, n); }

    /** tx_begin(txid): open a persistent-memory transaction. */
    TxBeginOp txBegin() { return TxBeginOp(this); }

    /** tx_commit(): close the transaction (mode-dependent cost). */
    TxCommitOp txCommit() { return TxCommitOp(this); }

    /**
     * tx_abort(): roll the transaction back via its in-log undo
     * values and discard it. Only legal when supportsAbort(mode):
     * redo-only and non-persistent modes have no undo values to roll
     * back with (the limitation motivating combined undo+redo
     * logging, paper Section II-B), so awaiting this under one of
     * them panics instead of silently leaving the stolen stores in
     * place.
     */
    TxAbortOp txAbort() { return TxAbortOp(this); }

    /**
     * Did the last awaited txCommit()/txAbort() end in a rollback?
     * txCommit() aborts instead of committing when the log-full
     * abort-retry policy marked this transaction a victim; the
     * workload checks this flag and retries the transaction.
     */
    bool lastTxAborted() const { return lastAborted; }

    /** Sequence number of the transaction in progress (0 = none). */
    std::uint64_t currentTxSeq() const { return inTx ? txSeq : 0; }

    /** Explicit cache-line write-back (clwb). */
    ClwbOp clwb(Addr a) { return ClwbOp(this, a); }

    /** Memory barrier (sfence-like). */
    FenceOp fence() { return FenceOp(this); }

    /** Atomic compare-and-swap; returns the old value. */
    CasOp cas64(Addr a, std::uint64_t expected, std::uint64_t desired)
    {
        return CasOp(this, a, expected, desired);
    }

    // ----- concurrency-controlled transactional accesses ---------

    /**
     * Transactional 64-bit store under the configured CC scheme
     * (PersistConfig::ccMode): acquires the line's exclusive lock at
     * encounter time (retrying with bounded exponential backoff
     * while another transaction holds it), then performs the store.
     * Returns false when waiting would deadlock — the transaction
     * must then roll back via txAbort() and may retry from
     * tx_begin. With CC disabled this is exactly store64().
     */
    sim::Co<bool> txStore64(Addr a, std::uint64_t v);

    /**
     * Transactional 64-bit load into @p out. Under 2PL the line's
     * exclusive lock is taken like a write; under TL2 the line's
     * commit version is recorded instead and revalidated at
     * txCommit(), which diverts to rollback on conflict. Returns
     * false when waiting would deadlock (see txStore64).
     */
    sim::Co<bool> txLoad64(Addr a, std::uint64_t *out);

    /**
     * Declare write intent on @p a's line without storing: acquires
     * the line's exclusive CC lock exactly like txStore64 but leaves
     * the data untouched. The OLTP engines' no-steal commit
     * discipline (DESIGN §8) locks the whole write-set up front,
     * validates, and only then stores — so under redo-only modes
     * every conflict is discovered while the write-set is still
     * empty and rollback needs no undo values. Returns false when
     * waiting would deadlock. With CC disabled this is a no-op
     * returning true.
     */
    sim::Co<bool> txLock64(Addr a);

    /**
     * TL2 early validation: run commit-time read validation now,
     * with the write locks already held. On success the transaction
     * is marked pre-validated and txCommit() skips revalidation —
     * the validation instant (reads valid, write-set locked) is the
     * transaction's serialization point, so stores performed after
     * it commute with later conflicting commits. The caller must not
     * issue further transactional loads after a successful
     * txValidate(). Returns false (the validation work is charged
     * either way) on conflict; the transaction must then roll back.
     * Trivially true under 2PL and with CC disabled.
     */
    TxValidateOp txValidate() { return TxValidateOp(this); }

    /** Multi-word load into @p out (splits at 8-byte boundaries). */
    sim::Co<void> loadBytes(Addr a, void *out, std::uint32_t len);

    /** Multi-word store from @p in (splits at 8-byte boundaries). */
    sim::Co<void> storeBytes(Addr a, const void *in, std::uint32_t len);

    /** Spin until the 64-bit lock word at @p a is acquired. */
    sim::Co<void> lockAcquire(Addr a);

    /** Release the lock word at @p a. */
    sim::Co<void> lockRelease(Addr a);

  private:
    friend class System;

    /** The CC acquire loop shared by txStore64/txLoad64. */
    sim::Co<bool> ccAcquire(Addr a, bool forWrite);

    std::uint64_t execLoad(Addr a, std::uint32_t size);
    void execStore(Addr a, std::uint32_t size, std::uint64_t v);
    persist::CcDecision execCcAcquire(Addr a, bool forWrite);
    void execCompute(std::uint64_t n);
    void execTxBegin();
    void execTxCommit();
    void execTxAbort();
    bool execTxValidate();
    void execClwb(Addr a);
    void execFence();
    std::uint64_t execCas(Addr a, std::uint64_t expected,
                          std::uint64_t desired);

    /** The mode-specific commit-record sequence (shared by commit
     *  and the rollback-closing record of abort). */
    void writeCommitRecord();

    cpu::ThreadContext ctx;
    System &sys;
    bool inTx = false;
    bool lastAborted = false;
    /** txValidate() succeeded for the open tx: commit skips TL2
     *  revalidation (the validation was the serialization point). */
    bool txPreValidated = false;
    std::uint64_t txSeq = 0;
};

} // namespace snf

#endif // SNF_CORE_THREAD_API_HH
