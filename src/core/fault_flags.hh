/**
 * @file
 * Shared CLI parsing for fault-injection flag families (snfsim,
 * snfcrash, snfsoak), fixing the silent-clobber bug: previously
 * `--fault-bitflip 1e-3 --fault-preset heavy` wholesale-overwrote the
 * config and the explicit rate silently vanished, and
 * `--fault-preset heavy --fault-bitflip 0` silently neutered the
 * preset the user just asked for. Both contradictions are now hard
 * errors with a diagnostic; deliberate nonzero tweaks after a preset
 * remain valid overrides.
 */

#ifndef SNF_CORE_FAULT_FLAGS_HH
#define SNF_CORE_FAULT_FLAGS_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace snf
{

/**
 * Strict unsigned flag-value parse shared by the tools: the whole
 * value must be a number (base prefix allowed); empty values and
 * trailing garbage are fatal with a diagnostic naming the flag.
 */
std::uint64_t parseCountFlag(const char *flag, const char *value);

/**
 * Parse a --log-shards value: a strict count that must additionally
 * lie in [1, 64] (0 shards is meaningless, 64 is the participation
 * mask width). fatal() with a diagnostic otherwise.
 */
std::uint32_t parseLogShardsFlag(const char *flag, const char *value);

/**
 * Strict count that must be >= 1 (thread counts, transaction counts,
 * bench repeats — places where 0 silently degenerates the run).
 * fatal() with a diagnostic naming the flag otherwise.
 */
std::uint64_t parsePositiveCountFlag(const char *flag,
                                     const char *value);

/**
 * Strict real value that must lie strictly inside (0, 1) — Zipf skew
 * exponents and similar open-unit parameters where 0 degenerates to
 * uniform and 1 is outside the distribution's validity range. The
 * whole value must parse; fatal() with a diagnostic naming the flag
 * otherwise.
 */
double parseOpenUnitFlag(const char *flag, const char *value);

/** Outcome of FaultFlagSet::consume() for one argv position. */
enum class FlagParse
{
    NotMine, ///< not a flag this set owns; caller handles it
    Ok,      ///< consumed (index advanced past any value)
    Error,   ///< owned flag but invalid/contradictory; *err explains
};

/**
 * A family of fault flags over double rate fields, an integer seed,
 * and named presets that assign several rates at once. Flags accept
 * both `--flag value` and `--flag=value` spellings.
 *
 * Ordering contract (enforced):
 *  - a preset flag must precede every explicit rate flag, because it
 *    assigns the whole family (error: "put the preset first");
 *  - after a preset, an explicit rate may *tune* a field but not
 *    zero one the preset set nonzero (error: contradiction — drop
 *    the preset instead);
 *  - the seed flag is exempt and may appear anywhere.
 */
class FaultFlagSet
{
  public:
    /** Register a rate flag, e.g. ("--fault-bitflip", &f.bitFlipProb). */
    void addRate(const std::string &flag, double *target);

    /** Register the (order-exempt) seed flag. */
    void addSeed(const std::string &flag, std::uint64_t *target);

    /** Register the preset flag name, e.g. "--fault-preset". */
    void setPresetFlag(const std::string &flag);

    /** Register a named preset as (field, value) assignments. */
    void addPreset(const std::string &name,
                   std::vector<std::pair<double *, double>> values);

    /**
     * Try to consume args[i] (and its value). On Ok, @p i is left on
     * the last consumed position (callers' loops then ++i past it).
     * On Error, @p err receives the diagnostic.
     */
    FlagParse consume(const std::vector<std::string> &args,
                      std::size_t &i, std::string *err);

    /** Name of the preset applied so far ("" = none). */
    const std::string &activePreset() const { return presetName; }

  private:
    struct RateFlag
    {
        std::string flag;
        double *target;
    };

    struct Preset
    {
        std::string name;
        std::vector<std::pair<double *, double>> values;
    };

    bool takeValue(const std::vector<std::string> &args,
                   std::size_t &i, const std::string &flag,
                   std::string &valueOut, std::string *err) const;

    std::vector<RateFlag> rates;
    std::string seedFlag;
    std::uint64_t *seedTarget = nullptr;
    std::string presetFlag;
    std::vector<Preset> presets;

    std::string presetName;
    std::vector<double *> explicitRates;
};

} // namespace snf

#endif // SNF_CORE_FAULT_FLAGS_HH
