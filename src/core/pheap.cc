#include "core/pheap.hh"

#include "mem/mem_device.hh"
#include "sim/logging.hh"

namespace snf
{

BumpAllocator::BumpAllocator(Addr base, std::uint64_t size)
    : rangeBase(base), rangeSize(size), cursor(base)
{
}

Addr
BumpAllocator::alloc(std::uint64_t size, std::uint64_t align)
{
    SNF_ASSERT(align != 0 && (align & (align - 1)) == 0,
               "bad alignment %llu",
               static_cast<unsigned long long>(align));
    Addr a = (cursor + align - 1) & ~(align - 1);
    if (a + size > rangeBase + rangeSize)
        fatal("heap exhausted: %llu bytes requested, %llu available",
              static_cast<unsigned long long>(size),
              static_cast<unsigned long long>(rangeBase + rangeSize -
                                              a));
    cursor = a + size;
    return a;
}

void
BumpAllocator::resumeTo(std::uint64_t allocatedBytes)
{
    SNF_ASSERT(allocatedBytes <= rangeSize,
               "resume cursor %llu beyond heap size %llu",
               static_cast<unsigned long long>(allocatedBytes),
               static_cast<unsigned long long>(rangeSize));
    cursor = rangeBase + allocatedBytes;
}

PersistentHeap::PersistentHeap(const AddressMap &map,
                               mem::MemDevice &dev)
    : BumpAllocator(map.heapBase(),
                    map.nvramBase + map.nvramSize - map.heapBase()),
      nvram(dev)
{
}

void
PersistentHeap::prewrite(Addr addr, const void *data, std::uint64_t size)
{
    nvram.functionalWrite(addr, size, data);
}

void
PersistentHeap::prewrite64(Addr addr, std::uint64_t value)
{
    nvram.functionalWrite(addr, 8, &value);
}

std::uint64_t
PersistentHeap::peek64(Addr addr) const
{
    std::uint64_t v = 0;
    nvram.functionalRead(addr, 8, &v);
    return v;
}

} // namespace snf
