#include "core/system.hh"

#include <algorithm>
#include <ostream>

#include "sim/logging.hh"

namespace snf
{

System::System(const SystemConfig &config, PersistMode m)
    : cfg(config),
      persistMode(m),
      scheduler(eventQueue)
{
    cfg.validate();
    // Hand the NVRAM device its remap-table geometry (lifelab) so it
    // can translate promoted lines; zero sizes leave it inert.
    if (cfg.map.remapSize != 0) {
        cfg.nvram.remapBase = cfg.map.remapBase();
        cfg.nvram.remapSize = cfg.map.remapSize;
        cfg.nvram.spareBase = cfg.map.spareBase();
        cfg.nvram.spareSize = cfg.map.spareSize;
    }
    memory = std::make_unique<mem::MemorySystem>(cfg);
    // Fault parity by construction: every timed write into the log
    // area must arrive on the serialized priority channel with a
    // log/metadata origin, for both logging backends.
    memory->nvram().setLogRegion(cfg.map.logBase(), cfg.map.logSize);
    pheap = std::make_unique<PersistentHeap>(cfg.map, memory->nvram());
    dheap = std::make_unique<BumpAllocator>(cfg.map.dramBase,
                                            cfg.map.dramSize);
    // Split the log area: one circular region for centralized
    // logging, one per core for distributed per-thread logs
    // (Section III-F), or one per address-interleaved shard
    // (shardlab). Partitions and shards are mutually exclusive
    // (validate() enforces it), so the region count is whichever
    // splitting is active.
    std::uint32_t partitions =
        (cfg.persist.distributedLogs && isHardwareLogging(persistMode))
            ? cfg.numCores
            : 1;
    std::uint32_t shards = cfg.persist.logShards;
    cfg.map.logPartitions = partitions;
    cfg.map.logShards = shards;
    std::uint32_t region_count = std::max(partitions, shards);
    std::uint64_t part_bytes = cfg.map.logSize / region_count;
    for (std::uint32_t p = 0; p < region_count; ++p) {
        logRegions.push_back(std::make_unique<persist::LogRegion>(
            cfg.map.logBase() + p * part_bytes, part_bytes,
            memory->nvram(),
            region_count == 1 ? "log" : strfmt("log.%u", p)));
        logRegions.back()->create();
    }
    if (shards > 1)
        memory->nvram().setLogShards(shards);

    // Wire reclamation-hazard predicates (invariant I4).
    for (auto &region : logRegions) {
        region->setTxActive([this](std::uint64_t seq) {
            return txnTracker.isActive(seq);
        });
        region->setPersistedSince(
            [this](Addr addr, Tick appendTick, Tick now) {
                Addr line = memory->lineOf(addr);
                Tick wb = memory->monitor().lastWritebackOf(line);
                // A write-back whose completion lies in the future
                // is still in flight: the cache already shows the
                // line clean, but the data is not durable yet and a
                // crash before `wb` loses it.
                if (wb > now)
                    return false;
                if (wb >= appendTick)
                    return true;
                return !memory->isLineDirtyAnywhere(line);
            });
        region->setHazardSink(
            [this]() { memory->monitor().onLogOverwriteHazard(); });
        // Log-full policy wiring: a Stall policy forces the guarded
        // line back to NVRAM; an AbortRetry policy asks the blocking
        // transaction's thread to roll back at its next commit.
        region->setLogFullPolicy(cfg.persist.logFullPolicy,
                                 cfg.persist.logFullRetries,
                                 cfg.persist.logFullBackoffBase);
        region->setForceWriteback([this](Addr addr, Tick now) {
            Tick done = memory->clwb(0, addr, now);
            // If a write-back of the line is already in flight (the
            // clwb then finds it clean and completes early), waiting
            // for durability means waiting for that write-back's
            // completion tick, not the clwb's.
            return std::max(
                done, memory->monitor().lastWritebackOf(
                          memory->lineOf(addr)));
        });
        region->setAbortRequestSink([this](std::uint64_t seq) {
            // Rollback needs in-log undo values: under redo-only
            // modes a victim could never honor the request (tx_abort
            // asserts), so deny it and let the append fall back to
            // the stall path.
            if (!supportsAbort(persistMode))
                return false;
            return txnTracker.requestAbort(seq);
        });
    }
    txnTracker.setAbortRetryCap(cfg.persist.abortRetryCap);
    txnTracker.setCcMode(cfg.persist.ccMode);

    if (isHardwareLogging(persistMode)) {
        std::vector<persist::LogBuffer *> buf_ptrs;
        std::vector<persist::LogRegion *> region_ptrs;
        for (auto &region : logRegions) {
            logBufs.push_back(std::make_unique<persist::LogBuffer>(
                *region, memory->nvram(), &memory->monitor(),
                cfg.persist.logBufferEntries, cfg.l1.lineBytes,
                cfg.persist.crashJournal /* torn-test drains */));
            buf_ptrs.push_back(logBufs.back().get());
            region_ptrs.push_back(region.get());
        }
        hwlEngine = std::make_unique<persist::HwlEngine>(
            persistMode, std::move(buf_ptrs),
            std::move(region_ptrs), txnTracker, shards,
            cfg.persist.injectSkipShardMask);
        memory->setStoreHook(hwlEngine.get());
        // The memory controller issues log-buffer entries to the
        // NVRAM bus ahead of data write-backs (FIFO order at the
        // channel), preserving log-before-data without barriers.
        if (!cfg.persist.disableWbBarrier) {
            memory->setDataWbBarrier([this](Tick now) {
                Tick done = now;
                for (auto &buf : logBufs)
                    done = std::max(done, buf->drainAll(now));
                return done;
            });
        }
    } else if (isSoftwareLogging(persistMode)) {
        std::vector<persist::LogRegion *> region_ptrs;
        for (auto &region : logRegions)
            region_ptrs.push_back(region.get());
        swLogging = std::make_unique<persist::SwLogging>(
            persistMode, *memory, std::move(region_ptrs), txnTracker,
            shards, cfg.persist.injectSkipShardMask);
        // The WCB sits in the memory controller ahead of the data
        // write queue: uncacheable log stores issued before a data
        // write-back drain first (same FIFO argument as the hardware
        // log buffer). Without this, a clwb or eviction could steal a
        // line to NVRAM while its undo record is still volatile.
        memory->setDataWbBarrier(
            [this](Tick now) { return memory->drainWcb(now); });
    }

    if (persistMode == PersistMode::Fwb) {
        fwbEngine = std::make_unique<persist::FwbEngine>(
            *memory, eventQueue, cfg.persist);
        fwbEngine->start(0);
    }

    if (cfg.persist.scrub) {
        scrubber = std::make_unique<persist::LogScrubber>(
            memory->nvram(), cfg.persist);
        for (auto &region : logRegions)
            scrubber->addRegion(region.get());
        if (fwbEngine) {
            // Ride the FWB cadence: one scrub chunk per scan pass.
            fwbEngine->setScanHook(
                [this](Tick now) { scrubber->step(now); });
        } else {
            scrubber->start(eventQueue,
                            persist::FwbEngine::derivePeriod(cfg), 0);
        }
    }

    for (CoreId c = 0; c < cfg.numCores; ++c)
        threads.push_back(std::make_unique<Thread>(c, *this));
}

System::~System() = default;

void
System::setProbe(sim::ProbeFn p)
{
    probeFn = std::move(p);
    for (auto &buf : logBufs)
        buf->setProbe(probeFn);
    memory->monitor().setProbe(probeFn);
    memory->wcb().setProbe(probeFn);
    if (fwbEngine)
        fwbEngine->setProbe(probeFn);
}

void
System::spawn(CoreId id,
              const std::function<sim::Co<void>(Thread &)> &fn)
{
    SNF_ASSERT(id < cfg.numCores, "spawn on core %u of %u", id,
               cfg.numCores);
    Thread &t = *threads[id];
    SNF_ASSERT(!t.context().rootHandle,
               "core %u already has a workload", id);
    rootCoros.push_back(fn(t));
    t.context().rootHandle = rootCoros.back().raw();
    scheduler.addThread(&t.context());
}

Tick
System::run(Tick stopAt)
{
    Tick end = scheduler.run(stopAt);
    if (scheduler.allFinished()) {
        // The hardware log-buffer FIFOs drain continuously; at a
        // natural end of execution they empty within a few cycles,
        // so the final records are durable (commits acknowledged).
        for (auto &buf : logBufs)
            end = std::max(end, buf->drainAll(end));
        if (fwbEngine)
            fwbEngine->stop();
        if (scrubber)
            scrubber->stop();
    }
    return end;
}

Tick
System::flushAll(Tick now)
{
    Tick done = now;
    for (auto &buf : logBufs)
        done = std::max(done, buf->drainAll(now));
    done = std::max(done, memory->flushAllDirty(now));
    return done;
}

Tick
System::drainLogs(Tick now)
{
    Tick done = now;
    for (auto &buf : logBufs)
        done = std::max(done, buf->drainAll(now));
    done = std::max(done, memory->drainWcb(done));
    return done;
}

std::vector<persist::LogRegion::UndoEntry>
System::collectUndo(std::uint64_t txSeq) const
{
    std::vector<persist::LogRegion::UndoEntry> out;
    for (const auto &region : logRegions) {
        auto part = region->collectUndo(txSeq);
        out.insert(out.end(), part.begin(), part.end());
    }
    // Per-core partitions keep a transaction's records in a single
    // region (the appending core's); with address-interleaved shards
    // every update to one address lands in one shard, so reverse
    // rollback order only has to hold per address — newest-first
    // within each region's contribution suffices either way.
    return out;
}

mem::BackingStore
System::crashSnapshot(Tick at) const
{
    const auto &store = memory->nvram().store();
    SNF_ASSERT(store.journalEnabled(),
               "crashSnapshot requires PersistConfig::crashJournal");
    return store.snapshotAt(at);
}

void
System::adoptNvramImage(const mem::BackingStore &image)
{
    memory->nvram().store().assignFrom(image);
    if (memory->nvram().remapActive())
        memory->nvram().reloadRemap();
    // Recovery truncated the log, so the regions' freshly-constructed
    // volatile state (empty, pass 1) is right; re-install matching
    // pristine headers over whatever header the crash image carried.
    for (auto &region : logRegions)
        region->create();
}

RunStats
System::collectStats(Tick cycles) const
{
    // Fold the hot-path batched hit/miss accumulators into the named
    // counters before reading them (and before the energy model does).
    memory->syncStats();
    RunStats s;
    s.cycles = cycles;
    s.committedTx = txnTracker.committed.value();
    s.abortedTx = txnTracker.aborted.value();
    for (const auto &t : threads)
        s.instr += t->context().instr;
    if (cycles > 0) {
        s.ipc = static_cast<double>(s.instr.total) /
                static_cast<double>(cycles) /
                static_cast<double>(cfg.numCores);
        s.txPerMcycle = static_cast<double>(s.committedTx) * 1e6 /
                        static_cast<double>(cycles);
    }

    const auto &nv = memory->nvram();
    s.nvramReads = nv.reads.value();
    s.nvramWrites = nv.writes.value();
    s.nvramReadBytes = nv.readBytes.value();
    s.nvramWriteBytes = nv.writeBytes.value();
    const auto &dr = memory->dram();
    s.dramReads = dr.reads.value();
    s.dramWrites = dr.writes.value();

    for (CoreId c = 0; c < cfg.numCores; ++c) {
        const auto &l1 = memory->l1(c);
        s.l1Hits += l1.hits.value();
        s.l1Misses += l1.misses.value();
    }
    s.l2Hits = memory->l2Cache().hits.value();
    s.l2Misses = memory->l2Cache().misses.value();

    for (const auto &region : logRegions) {
        s.logRecords += region->appends.value();
        s.logWraps += region->wraps.value();
    }
    for (const auto &buf : logBufs)
        s.logBufferStalls += buf->stats().counterValue("stalls");
    if (fwbEngine) {
        s.fwbScans = fwbEngine->scans.value();
        s.fwbWritebacks = fwbEngine->forcedWritebacks.value();
    }

    for (const auto &region : logRegions) {
        s.logFullStalls += region->logFullStalls.value();
        s.forcedWritebacks += region->forcedWritebacks.value();
    }
    s.logFullEscalations = txnTracker.abortEscalations.value();
    s.ccLockWaits = txnTracker.lockWaits.value();
    s.ccDeadlockAborts = txnTracker.deadlockAborts.value();
    s.ccValidationFailures = txnTracker.validationFailures.value();
    s.remappedLines = nv.remappedLines.value();
    if (scrubber) {
        s.scrubSlotsScanned = scrubber->slotsScanned.value();
        s.scrubReadBytes = scrubber->readBytes.value();
        s.scrubWriteBytes = scrubber->writeBytes.value();
        s.scrubRepairs = scrubber->repairs.value();
        s.scrubPromotions = scrubber->promotions.value();
    }

    s.orderViolations = memory->monitor().orderViolations();
    s.overwriteHazards = memory->monitor().overwriteHazards();
    s.faultsInjected = nv.faultBitFlips.value() +
                       nv.faultMultiBit.value() +
                       nv.faultTornLines.value() +
                       nv.faultDroppedWrites.value() +
                       nv.faultStuckWords.value();
    s.faultExaminedBytes = nv.faultExaminedBytes.value();

    s.eventsScheduled = eventQueue.statScheduled();
    s.eventsExecuted = eventQueue.statExecuted();
    s.eventHeapSpills = eventQueue.statHeapSpills();
    s.callbackHeapAllocs = eventQueue.statCallbackHeapAllocs();
    s.journalEntries = nv.store().journalSize();

    s.energy = energy::EnergyModel::compute(*memory, s.instr.total);
    return s;
}

void
System::dumpStats(std::ostream &os)
{
    memory->syncStats();
    memory->stats().dump(os);
    txnTracker.stats().dump(os);
    for (auto &region : logRegions)
        region->stats().dump(os);
    for (auto &buf : logBufs)
        buf->stats().dump(os);
    if (hwlEngine)
        hwlEngine->stats().dump(os);
    if (swLogging)
        swLogging->stats().dump(os);
    if (fwbEngine)
        fwbEngine->stats().dump(os);
    if (scrubber)
        scrubber->stats().dump(os);
}

} // namespace snf
