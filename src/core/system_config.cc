#include "core/system_config.hh"

#include "sim/logging.hh"

namespace snf
{

const char *
persistModeName(PersistMode mode)
{
    switch (mode) {
      case PersistMode::NonPers:    return "non-pers";
      case PersistMode::UnsafeRedo: return "unsafe-redo";
      case PersistMode::UnsafeUndo: return "unsafe-undo";
      case PersistMode::RedoClwb:   return "redo-clwb";
      case PersistMode::UndoClwb:   return "undo-clwb";
      case PersistMode::HwRlog:     return "hw-rlog";
      case PersistMode::HwUlog:     return "hw-ulog";
      case PersistMode::Hwl:        return "hwl";
      case PersistMode::Fwb:        return "fwb";
    }
    return "?";
}

const char *
logFullPolicyName(LogFullPolicy policy)
{
    switch (policy) {
      case LogFullPolicy::Reclaim:    return "reclaim";
      case LogFullPolicy::Stall:      return "stall";
      case LogFullPolicy::AbortRetry: return "abort-retry";
    }
    return "?";
}

const char *
ccModeName(CcMode mode)
{
    switch (mode) {
      case CcMode::None:     return "none";
      case CcMode::TwoPhase: return "2pl";
      case CcMode::Tl2:      return "tl2";
    }
    return "?";
}

bool
isHardwareLogging(PersistMode mode)
{
    switch (mode) {
      case PersistMode::HwRlog:
      case PersistMode::HwUlog:
      case PersistMode::Hwl:
      case PersistMode::Fwb:
        return true;
      default:
        return false;
    }
}

bool
isSoftwareLogging(PersistMode mode)
{
    switch (mode) {
      case PersistMode::UnsafeRedo:
      case PersistMode::UnsafeUndo:
      case PersistMode::RedoClwb:
      case PersistMode::UndoClwb:
        return true;
      default:
        return false;
    }
}

bool
usesCommitClwb(PersistMode mode)
{
    // Software undo logging flushes the write-set before commit
    // (Figure 1(a)); software redo logging flushes after commit so the
    // log can be truncated (Section II-C, conservative force-write-back).
    // hwl uses clwb in lieu of the FWB mechanism (Section VI).
    switch (mode) {
      case PersistMode::RedoClwb:
      case PersistMode::UndoClwb:
      case PersistMode::Hwl:
        return true;
      default:
        return false;
    }
}

bool
supportsAbort(PersistMode mode)
{
    switch (mode) {
      case PersistMode::UnsafeUndo:
      case PersistMode::UndoClwb:
      case PersistMode::HwUlog:
      case PersistMode::Hwl:
      case PersistMode::Fwb:
        return true;
      default:
        return false;
    }
}

SystemConfig
SystemConfig::paper(std::uint32_t cores)
{
    SystemConfig c;
    c.name = "paper";
    c.numCores = cores;
    c.clockGhz = 2.5;

    c.l1.sizeBytes = 32 * 1024;
    c.l1.ways = 8;
    c.l1.lineBytes = 64;
    c.l1.latency = 4; // 1.6 ns

    c.l2.sizeBytes = 8 * 1024 * 1024;
    c.l2.ways = 16;
    c.l2.lineBytes = 64;
    c.l2.latency = 11; // 4.4 ns

    c.nvram.sizeBytes = 8ULL << 30;
    c.dram.sizeBytes = 1ULL << 30;
    // DRAM is faster than PCM: typical DDR timing, and negligible
    // write asymmetry. Only used for non-persistent data.
    c.dram.rowHitLat = 38;
    c.dram.readConflictLat = 95;
    c.dram.writeConflictLat = 95;
    c.dram.rowReadPjBit = 0.52;
    c.dram.rowWritePjBit = 0.52;
    c.dram.arrayReadPjBit = 1.17;
    c.dram.arrayWritePjBit = 1.17;

    c.persist.logBytes = 4ULL << 20;
    c.map.logSize = c.persist.logBytes;
    c.validate();
    return c;
}

SystemConfig
SystemConfig::scaled(std::uint32_t cores)
{
    SystemConfig c = paper(cores);
    c.name = "scaled";
    // L2 and log shrink 16x (L1 4x: an 8 KB L1 is the sensible
    // floor) so that test/bench footprints exceed the LLC the same
    // way the paper's 256 MB-1 GB footprints exceed its 8 MB LLC,
    // while runs complete in milliseconds. Latencies and bandwidths
    // are unchanged.
    c.l1.sizeBytes = 8 * 1024;
    c.l2.sizeBytes = 512 * 1024;
    c.persist.logBytes = 256 * 1024;
    c.map.logSize = c.persist.logBytes;
    c.validate();
    return c;
}

void
SystemConfig::validate() const
{
    if (numCores == 0 || numCores > 64)
        fatal("numCores %u out of range [1,64]", numCores);
    if (l1.lineBytes != l2.lineBytes)
        fatal("L1/L2 line size mismatch (%u vs %u)", l1.lineBytes,
              l2.lineBytes);
    if (l1.lineBytes == 0 || (l1.lineBytes & (l1.lineBytes - 1)) != 0)
        fatal("line size %u not a power of two", l1.lineBytes);
    for (const CacheConfig *cc : {&l1, &l2}) {
        if (cc->sizeBytes % (cc->ways * cc->lineBytes) != 0)
            fatal("cache size %u not divisible by ways*line",
                  cc->sizeBytes);
        std::uint32_t sets = cc->numSets();
        if (sets == 0 || (sets & (sets - 1)) != 0)
            fatal("cache set count %u not a power of two", sets);
    }
    if (map.logSize != persist.logBytes)
        fatal("address-map log size (%llu) != persist log size (%llu)",
              static_cast<unsigned long long>(map.logSize),
              static_cast<unsigned long long>(persist.logBytes));
    if (persist.logBytes >= map.nvramSize)
        fatal("log does not fit in NVRAM");
    if (persist.logShards == 0 || persist.logShards > 64)
        fatal("logShards %u out of range [1,64]", persist.logShards);
    if (persist.logShards > 1 && persist.distributedLogs)
        fatal("logShards and distributedLogs are mutually exclusive "
              "(per-address vs per-core log splitting)");
    if (persist.logBytes % persist.logShards != 0)
        fatal("log size %llu not divisible into %u shards",
              static_cast<unsigned long long>(persist.logBytes),
              persist.logShards);
    if (persist.wcbEntries == 0)
        fatal("WCB needs at least one entry");
    if (map.remapSize != 0) {
        if (map.remapSize % 128 != 0 || map.remapSize < 256)
            fatal("remap region size %llu not two >=128-byte banks",
                  static_cast<unsigned long long>(map.remapSize));
        if (map.spareSize % 64 != 0)
            fatal("spare area size %llu not line-aligned",
                  static_cast<unsigned long long>(map.spareSize));
    } else if (map.spareSize != 0) {
        fatal("spare area without a remap table");
    }
    if (map.logSize + map.remapSize + map.spareSize >= map.nvramSize)
        fatal("log + remap + spares do not fit in NVRAM");
}

} // namespace snf
