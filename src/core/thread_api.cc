#include "core/thread_api.hh"

#include <algorithm>
#include <cstring>

#include "core/system.hh"
#include "sim/logging.hh"

namespace snf
{

namespace
{

/** Library-call overhead of tx_begin/tx_commit, in instructions. */
constexpr std::uint64_t kTxLibraryInstructions = 8;

/** Lock-table probe cost of one CC acquire, in instructions. */
constexpr std::uint64_t kCcAcquireInstructions = 2;

/** TL2 validation cost per read-set entry, in instructions. */
constexpr std::uint64_t kCcValidateInstructions = 2;

} // namespace

Thread::Thread(CoreId id, System &system)
    : ctx(id, system.config().core.issueWidth,
          system.config().core.storeBufferEntries),
      sys(system)
{
}

std::uint64_t
Thread::execLoad(Addr a, std::uint32_t size)
{
    ctx.instr.total += 1;
    ctx.instr.loads += 1;
    std::uint64_t v = 0;
    auto r = sys.mem().load(ctx.id(), a, size, &v, ctx.localTime);
    ctx.localTime = r.done;
    return v;
}

void
Thread::execStore(Addr a, std::uint32_t size, std::uint64_t v)
{
    ctx.instr.total += 1;
    ctx.instr.stores += 1;

    bool persistent = inTx && sys.config().map.isNvram(a);

    if (persistent && sys.swlog()) {
        // Software logging: injected instructions run before the
        // data store (Figure 2(a)).
        auto res = sys.swlog()->logStore(ctx.id(), txSeq, a, size, v,
                                         ctx.localTime);
        ctx.localTime = std::max(ctx.localTime, res.done);
        ctx.instr.total += res.instructions;
        ctx.instr.logStores += res.logStores;
        ctx.instr.logLoads += res.logLoads;
        ctx.instr.fences += res.fences;
    }
    if (persistent)
        sys.txns().recordWrite(txSeq, sys.mem().lineOf(a));

    mem::MemorySystem::StoreCtx sctx;
    sctx.persistent = persistent;
    sctx.txSeq = txSeq;
    auto r = sys.mem().store(ctx.id(), a, size, &v, ctx.localTime, sctx);

    // The core retires the store into the store buffer in one cycle;
    // it only stalls when the buffer is full (or the HWL log buffer
    // exerted back-pressure, folded into r.done).
    ctx.localTime += 1;
    ctx.noteStoreDrain(r.done);
}

void
Thread::execCompute(std::uint64_t n)
{
    ctx.instr.total += n;
    ctx.instr.compute += n;
    ctx.retireCompute(n);
}

void
Thread::execTxBegin()
{
    SNF_ASSERT(!inTx, "nested transaction on core %u", ctx.id());
    inTx = true;
    txPreValidated = false;
    txSeq = sys.txns().begin(ctx.id());
    ctx.instr.total += kTxLibraryInstructions;
    ctx.instr.txOverhead += kTxLibraryInstructions;
    ctx.retireCompute(kTxLibraryInstructions);
    if (sys.probe())
        sys.probe()(sim::ProbeEvent::TxBegin, ctx.localTime, txSeq);
}

void
Thread::execClwb(Addr a)
{
    ctx.instr.total += 1;
    ctx.instr.clwbs += 1;
    Tick persist = sys.mem().clwb(ctx.id(), a, ctx.localTime);
    ctx.notePendingPersist(persist);
    ctx.localTime += 2;
}

void
Thread::execFence()
{
    ctx.instr.total += 1;
    ctx.instr.fences += 1;
    ctx.drainForFence();
    ctx.localTime =
        std::max(ctx.localTime, sys.mem().drainWcb(ctx.localTime));
}

void
Thread::writeCommitRecord()
{
    auto clwb_write_set = [&]() {
        for (Addr line : sys.txns().writeSet(txSeq))
            execClwb(line);
        execFence();
    };

    switch (sys.mode()) {
      case PersistMode::NonPers:
        break;
      case PersistMode::UnsafeRedo:
      case PersistMode::UnsafeUndo: {
        // Commit record only; no ordering enforcement ("unsafe").
        auto res = sys.swlog()->logCommit(ctx.id(), txSeq,
                                          ctx.localTime);
        ctx.localTime = std::max(ctx.localTime, res.done);
        ctx.instr.total += res.instructions;
        ctx.instr.logStores += res.logStores;
        break;
      }
      case PersistMode::RedoClwb: {
        // Redo logging: the transaction commits once the log is
        // durable; the write-set is then flushed so the log can be
        // truncated (Section II-C).
        auto res = sys.swlog()->logCommit(ctx.id(), txSeq,
                                          ctx.localTime);
        ctx.localTime = std::max(ctx.localTime, res.done);
        ctx.instr.total += res.instructions;
        ctx.instr.logStores += res.logStores;
        execFence();
        clwb_write_set();
        break;
      }
      case PersistMode::UndoClwb: {
        // Undo logging: the write-set must be durable before the
        // commit record (Figure 1(a)).
        clwb_write_set();
        auto res = sys.swlog()->logCommit(ctx.id(), txSeq,
                                          ctx.localTime);
        ctx.localTime = std::max(ctx.localTime, res.done);
        ctx.instr.total += res.instructions;
        ctx.instr.logStores += res.logStores;
        execFence();
        break;
      }
      case PersistMode::HwRlog:
      case PersistMode::HwUlog:
      case PersistMode::Fwb: {
        // Instant transaction commit (Section III-D): one hardware
        // commit record, no flushes, no barriers.
        Tick done =
            sys.hwl()->onCommit(ctx.id(), txSeq, ctx.localTime);
        ctx.localTime = std::max(ctx.localTime, done);
        break;
      }
      case PersistMode::Hwl: {
        // HWL without FWB: hardware logging, but the write-set is
        // still flushed with clwb at commit (Section VI).
        Tick done =
            sys.hwl()->onCommit(ctx.id(), txSeq, ctx.localTime);
        ctx.localTime = std::max(ctx.localTime, done);
        clwb_write_set();
        break;
      }
    }
}

void
Thread::execTxCommit()
{
    SNF_ASSERT(inTx, "commit outside transaction on core %u",
               ctx.id());

    // TL2 validation work is charged whether it passes or not. A
    // pre-validated transaction (txValidate) already paid it and
    // must not revalidate: its serialization point was the early
    // validation, and a conflicting commit landing since then is
    // ordered after it, not a conflict.
    if (std::size_t rs =
            txPreValidated ? 0 : sys.txns().readSetSize(txSeq)) {
        std::uint64_t n = kCcValidateInstructions * rs;
        ctx.instr.total += n;
        ctx.instr.txOverhead += n;
        ctx.retireCompute(n);
    }
    if (sys.txns().abortRequested(txSeq) ||
        (!txPreValidated && !sys.txns().validateReads(txSeq))) {
        // Either the log-full abort-retry policy marked this
        // transaction a victim while it was appending, or TL2
        // commit validation found a stale read version; divert the
        // commit into a rollback. The workload observes
        // lastTxAborted() and may retry the transaction.
        execTxAbort();
        return;
    }
    lastAborted = false;

    // Emitted at commit *initiation*: a commit record can reach
    // NVRAM at any point during the sequence below, so trace-based
    // upper bounds on recovered-committed counts must count from
    // here, not from the sequence's end.
    if (sys.probe())
        sys.probe()(sim::ProbeEvent::TxCommit, ctx.localTime, txSeq);

    writeCommitRecord();

    sys.txns().commit(txSeq);
    // For the clwb+fence software schemes the commit record is
    // durable once the commit sequence's fence has completed, i.e.
    // by localTime here (hardware modes report durability from the
    // log buffer's drain instead).
    if (sys.probe() && (sys.mode() == PersistMode::RedoClwb ||
                        sys.mode() == PersistMode::UndoClwb)) {
        sys.probe()(sim::ProbeEvent::CommitDurable, ctx.localTime,
                    txSeq);
    }
    inTx = false;
    txSeq = 0;
    ctx.instr.total += kTxLibraryInstructions;
    ctx.instr.txOverhead += kTxLibraryInstructions;
    ctx.retireCompute(kTxLibraryInstructions);
}

void
Thread::execTxAbort()
{
    SNF_ASSERT(inTx, "abort outside transaction on core %u",
               ctx.id());

    // Emitted at abort initiation: under undo-capable modes the
    // rollback ends in a commit record (see below), so crash-trace
    // commit upper bounds must count aborts from here too.
    if (sys.probe())
        sys.probe()(sim::ProbeEvent::TxAbort, ctx.localTime, txSeq);
    lastAborted = true;

    // Rollback needs in-log undo values. Redo-only and
    // non-persistent modes have none (the very limitation motivating
    // combined undo+redo logging, Section II-B): dropping the
    // transaction would leave its stolen stores in place, so fail
    // loudly instead of corrupting. Workloads must gate aborting
    // transactions on supportsAbort(), and the log-full AbortRetry
    // policy never victimizes transactions under these modes.
    //
    // Exception: a transaction with an EMPTY write-set stole
    // nothing, so aborting it is sound under any mode — it merely
    // releases CC locks and closes the (empty) log generation. The
    // OLTP engines' no-steal discipline relies on this: under
    // redo-only modes every conflict (2PL deadlock, TL2 validation)
    // is discovered before the first store, so the rollback is
    // always of this trivial kind.
    SNF_ASSERT(supportsAbort(sys.mode()) ||
                   sys.txns().writeSet(txSeq).empty(),
               "tx_abort on core %u under mode %s: no undo values "
               "to roll back with",
               ctx.id(), persistModeName(sys.mode()));

    // Roll back through the log (paper Section IV-A tx_abort): read
    // this transaction's undo values back from the drained log
    // window and write them as compensating stores, newest first.
    // The stores go through the normal transactional store path, so
    // they are themselves logged (undo-of-undo) and a crash
    // mid-rollback still recovers to a consistent state. The
    // compensated lines are all write-locked by this transaction
    // under a CC mode, so the stores cannot race a concurrent owner.
    ctx.localTime =
        std::max(ctx.localTime, sys.drainLogs(ctx.localTime));
    for (const auto &e : sys.collectUndo(txSeq))
        execStore(e.addr, e.size, e.undo);
    // Close the generation with an ordinary commit record: replaying
    // original-then-compensating updates in log order reproduces the
    // rolled-back state, so recovery needs no special abort
    // handling.
    writeCommitRecord();

    sys.txns().abort(txSeq);
    inTx = false;
    txSeq = 0;
    ctx.instr.total += kTxLibraryInstructions;
    ctx.instr.txOverhead += kTxLibraryInstructions;
    ctx.retireCompute(kTxLibraryInstructions);
}

bool
Thread::execTxValidate()
{
    SNF_ASSERT(inTx, "tx_validate outside transaction on core %u",
               ctx.id());
    if (std::size_t rs = sys.txns().readSetSize(txSeq)) {
        std::uint64_t n = kCcValidateInstructions * rs;
        ctx.instr.total += n;
        ctx.instr.txOverhead += n;
        ctx.retireCompute(n);
    }
    if (!sys.txns().validateReads(txSeq))
        return false;
    txPreValidated = true;
    return true;
}

std::uint64_t
Thread::execCas(Addr a, std::uint64_t expected, std::uint64_t desired)
{
    ctx.instr.total += 1;
    ctx.instr.atomics += 1;
    std::uint64_t old_val = 0;
    auto lr = sys.mem().load(ctx.id(), a, 8, &old_val, ctx.localTime);
    ctx.localTime = lr.done;
    if (old_val == expected) {
        mem::MemorySystem::StoreCtx sctx;
        sctx.persistent = inTx && sys.config().map.isNvram(a);
        sctx.txSeq = txSeq;
        if (sctx.persistent)
            sys.txns().recordWrite(txSeq, sys.mem().lineOf(a));
        auto sr =
            sys.mem().store(ctx.id(), a, 8, &desired, ctx.localTime,
                            sctx);
        ctx.localTime += 1;
        ctx.noteStoreDrain(sr.done);
    }
    return old_val;
}

persist::CcDecision
Thread::execCcAcquire(Addr a, bool forWrite)
{
    // The lock-table probe models as a couple of ALU ops; the wait
    // itself is the caller's backoff compute.
    ctx.instr.total += kCcAcquireInstructions;
    ctx.instr.txOverhead += kCcAcquireInstructions;
    ctx.retireCompute(kCcAcquireInstructions);
    return sys.txns().acquireLine(txSeq, sys.mem().lineOf(a),
                                  forWrite);
}

sim::Co<bool>
Thread::ccAcquire(Addr a, bool forWrite)
{
    if (sys.txns().ccMode() == CcMode::None || !inTx ||
        !sys.config().map.isNvram(a))
        co_return true;
    std::uint32_t backoff = sys.config().persist.ccBackoffBase;
    for (;;) {
        persist::CcDecision d =
            co_await CcAcquireOp(this, a, forWrite);
        if (d == persist::CcDecision::Granted)
            co_return true;
        if (d == persist::CcDecision::Abort)
            co_return false;
        // Holder still running: back off (thread-salted so two
        // symmetric waiters don't reprobe in lockstep) and retry.
        co_await compute(backoff + ctx.id());
        backoff = std::min<std::uint32_t>(
            backoff * 2, sys.config().persist.ccBackoffCap);
    }
}

sim::Co<bool>
Thread::txStore64(Addr a, std::uint64_t v)
{
    // The await must be hoisted out of the if condition: awaiting a
    // Co<> temporary inside a condition miscompiles under GCC 12's
    // coroutine lowering (the child frame resumes at a bogus suspend
    // index and the op never parks).
    bool granted = co_await ccAcquire(a, true);
    if (!granted)
        co_return false;
    co_await store64(a, v);
    co_return true;
}

sim::Co<bool>
Thread::txLock64(Addr a)
{
    bool granted = co_await ccAcquire(a, true); // see txStore64
    co_return granted;
}

sim::Co<bool>
Thread::txLoad64(Addr a, std::uint64_t *out)
{
    bool granted = co_await ccAcquire(a, false); // see txStore64
    if (!granted)
        co_return false;
    *out = co_await load64(a);
    co_return true;
}

sim::Co<void>
Thread::loadBytes(Addr a, void *out, std::uint32_t len)
{
    auto *dst = static_cast<std::uint8_t *>(out);
    while (len > 0) {
        std::uint32_t chunk = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(8 - (a % 8), len));
        std::uint64_t v = co_await LoadOp(this, a, chunk);
        std::memcpy(dst, &v, chunk);
        a += chunk;
        dst += chunk;
        len -= chunk;
    }
}

sim::Co<void>
Thread::storeBytes(Addr a, const void *in, std::uint32_t len)
{
    const auto *src = static_cast<const std::uint8_t *>(in);
    while (len > 0) {
        std::uint32_t chunk = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(8 - (a % 8), len));
        std::uint64_t v = 0;
        std::memcpy(&v, src, chunk);
        co_await StoreOp(this, a, v, chunk);
        a += chunk;
        src += chunk;
        len -= chunk;
    }
}

sim::Co<void>
Thread::lockAcquire(Addr a)
{
    std::uint32_t backoff = 4;
    while (true) {
        std::uint64_t old_val = co_await cas64(a, 0, 1);
        if (old_val == 0)
            co_return;
        co_await compute(backoff);
        backoff = std::min<std::uint32_t>(backoff * 2, 256);
    }
}

sim::Co<void>
Thread::lockRelease(Addr a)
{
    co_await store64(a, 0);
}

} // namespace snf
