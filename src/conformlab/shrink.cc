#include "conformlab/shrink.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace snf::conformlab
{

namespace
{

/** Renumber threads and trim slot regions after reductions. */
Program
normalize(Program p)
{
    std::vector<std::uint32_t> threadMap(p.threads, 0);
    std::vector<bool> threadUsed(p.threads, false);
    std::uint32_t maxSlot = 0;
    std::uint32_t maxShared = 0;
    bool anyShared = false;
    for (const ProgTx &tx : p.txs) {
        threadUsed[tx.thread] = true;
        for (const ProgOp &op : tx.ops) {
            if (op.isShared()) {
                maxShared = std::max(maxShared, op.slot);
                anyShared = true;
            } else {
                maxSlot = std::max(maxSlot, op.slot);
            }
        }
    }
    std::uint32_t next = 0;
    for (std::uint32_t t = 0; t < p.threads; ++t)
        if (threadUsed[t])
            threadMap[t] = next++;
    if (next == 0)
        next = 1; // keep a degenerate program well-formed
    for (ProgTx &tx : p.txs)
        tx.thread = threadMap[tx.thread];
    p.threads = next;
    p.slotsPerThread =
        std::min<std::uint32_t>(p.slotsPerThread, maxSlot + 1);
    if (p.slotsPerThread == 0)
        p.slotsPerThread = 1;
    p.sharedSlots = anyShared ? std::min<std::uint32_t>(
                                    p.sharedSlots, maxShared + 1)
                              : 0;
    return p;
}

class Shrinker
{
  public:
    Shrinker(const std::function<bool(const Program &)> &pred,
             const ShrinkOptions &opts, ShrinkStats *stats)
        : pred(pred), opts(opts), stats(stats)
    {
    }

    bool
    fails(const Program &p)
    {
        if (stats)
            ++stats->evals;
        if (++evals > opts.maxEvals) {
            if (stats)
                stats->budgetExhausted = true;
            return false; // budget gone: reject further reductions
        }
        return pred(normalize(p));
    }

    bool budgetLeft() const { return evals <= opts.maxEvals; }

  private:
    const std::function<bool(const Program &)> &pred;
    ShrinkOptions opts;
    ShrinkStats *stats;
    std::size_t evals = 0;
};

/** ddmin-style removal over the transaction list. */
bool
dropTxs(Program &p, Shrinker &sh)
{
    bool any = false;
    std::size_t chunk = std::max<std::size_t>(1, p.txs.size() / 2);
    while (chunk >= 1 && sh.budgetLeft()) {
        bool removedAtThisGranularity = false;
        for (std::size_t at = 0;
             at < p.txs.size() && sh.budgetLeft();) {
            Program cand = p;
            std::size_t n =
                std::min(chunk, cand.txs.size() - at);
            cand.txs.erase(cand.txs.begin() + at,
                           cand.txs.begin() + at + n);
            if (!cand.txs.empty() && sh.fails(cand)) {
                p = cand;
                any = removedAtThisGranularity = true;
            } else {
                at += chunk;
            }
        }
        if (chunk == 1 && !removedAtThisGranularity)
            break;
        if (!removedAtThisGranularity)
            chunk /= 2;
    }
    return any;
}

/** Drop ops inside each surviving transaction, one at a time. */
bool
dropOps(Program &p, Shrinker &sh)
{
    bool any = false;
    for (std::size_t i = 0; i < p.txs.size() && sh.budgetLeft();
         ++i) {
        for (std::size_t s = 0;
             s < p.txs[i].ops.size() && sh.budgetLeft();) {
            if (p.txs[i].ops.size() == 1)
                break; // keep transactions non-empty
            Program cand = p;
            cand.txs[i].ops.erase(cand.txs[i].ops.begin() + s);
            if (sh.fails(cand)) {
                p = cand;
                any = true;
            } else {
                ++s;
            }
        }
    }
    return any;
}

/** Narrow values / strip delays to canonical small forms. */
bool
simplify(Program &p, Shrinker &sh)
{
    bool any = false;
    for (std::size_t i = 0; i < p.txs.size() && sh.budgetLeft();
         ++i) {
        if (p.txs[i].delay != 0) {
            Program cand = p;
            cand.txs[i].delay = 0;
            if (sh.fails(cand)) {
                p = cand;
                any = true;
            }
        }
        for (std::size_t s = 0;
             s < p.txs[i].ops.size() && sh.budgetLeft(); ++s) {
            if (p.txs[i].ops[s].isLoad())
                continue; // loads carry no value to narrow
            for (std::uint64_t narrow :
                 {std::uint64_t(1),
                  std::uint64_t(p.txs[i].ops[s].slot + 1)}) {
                if (p.txs[i].ops[s].value == narrow)
                    continue;
                Program cand = p;
                cand.txs[i].ops[s].value = narrow;
                if (sh.fails(cand)) {
                    p = cand;
                    any = true;
                    break;
                }
            }
        }
    }
    return any;
}

} // namespace

Program
shrinkProgram(const Program &p,
              const std::function<bool(const Program &)> &stillFails,
              const ShrinkOptions &opts, ShrinkStats *stats)
{
    Shrinker sh(stillFails, opts, stats);
    Program best = p;
    // Coarse-to-fine passes to a fixpoint (or budget).
    bool progress = true;
    while (progress && sh.budgetLeft()) {
        progress = false;
        progress |= dropTxs(best, sh);
        progress |= dropOps(best, sh);
        progress |= simplify(best, sh);
    }
    return normalize(best);
}

} // namespace snf::conformlab
