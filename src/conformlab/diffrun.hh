/**
 * @file
 * conformlab differential runner: execute one transaction program
 * through three backends — the hardware HWL+FWB pipeline, the
 * software-logging reference, and the pure ModelOracle — and require
 * them to agree.
 *
 * Two comparisons per program:
 *
 * 1. Final image: after a graceful run + flush, every heap slot of
 *    both simulated backends must equal the oracle's full-commit
 *    image, field by field (and the raw heap ranges must be
 *    byte-identical across the backends).
 *
 * 2. Crash-point differential: each backend is crashed at the same
 *    logical program points — the instants its n-th commit record
 *    became durable (plus the tick just before, plus the harvested
 *    NVRAM-visible event ticks of crashlab's trace) — recovered with
 *    persist::Recovery, and the recovered image is checked for
 *    model-consistency: every thread partition must equal the oracle
 *    applied to a prefix-closed set of committed transactions whose
 *    per-thread depth lies between the commits already durable at the
 *    crash instant and the commit records initiated by then.
 *
 * Programs with a shared conflict region (Program::hasConflicts())
 * run both backends under the configured CC scheme and are judged by
 * the commit-order SerialOracle instead: the final image must equal
 * the replay of each backend's own durable commit order, every
 * committed transaction's loads must match that order
 * (checkReads), and every recovered crash image must equal the
 * replay of *some* per-thread depth combination inside the
 * durable/initiated window (checkCrashImage). The raw hw-vs-sw byte
 * equality is skipped — the two backends legitimately serialize
 * conflicting commits differently.
 */

#ifndef SNF_CONFORMLAB_DIFFRUN_HH
#define SNF_CONFORMLAB_DIFFRUN_HH

#include <cstdint>
#include <string>

#include "conformlab/program.hh"
#include "core/system_config.hh"
#include "persist/recovery.hh"

namespace snf::conformlab
{

/** Knobs of one differential evaluation. */
struct DiffConfig
{
    /** The hardware backend (HWL + force write-back). */
    PersistMode hwMode = PersistMode::Fwb;
    /** The software-logging reference backend. */
    PersistMode swMode = PersistMode::UndoClwb;
    /** Run the crash-point differential (final-image always runs). */
    bool crashDifferential = true;
    /**
     * Cap on harvested trace points evaluated per backend; the
     * durable-commit boundary points are always evaluated on top.
     */
    std::size_t maxCrashPoints = 32;
    /**
     * Recovery knobs per backend. The --inject-* self-test flags of
     * tools/snfdiff sabotage hwRecovery so the differential has a
     * real ordering bug to catch and shrink.
     */
    persist::RecoveryOptions hwRecovery;
    persist::RecoveryOptions swRecovery;
    /** CC scheme both backends use for conflicting programs. */
    CcMode ccMode = CcMode::TwoPhase;
    /**
     * Self-test sabotage: run conflicting programs with concurrency
     * control disabled, so racing transactions produce the classic
     * lost-update/dirty-read anomalies the serializability oracle
     * exists to catch (and the shrinker then minimizes).
     */
    bool injectLostUpdate = false;
    /**
     * Persist-ordering adversary (reorderlab): when nonzero, every
     * crash point additionally evaluates up to this many legal
     * completion orders of the backend's pending persist set — each
     * recovered and judged by the same model-consistency check, since
     * any legal image must still recover to a consistent prefix. 0
     * keeps the plain prefix model.
     */
    std::size_t reorderSamples = 0;
    /**
     * Log shards both backends run with (shardlab). >1 slices the
     * log NVRAM across shards and engages the cross-shard commit
     * protocol; 1 keeps the classic single-region layout.
     */
    std::uint32_t logShards = 1;
};

/** Outcome of one program's differential evaluation. */
struct DiffResult
{
    bool passed = true;
    /** First divergence, with backend / tick / thread diagnostics. */
    std::string detail;
    /** Crash points evaluated across both simulated backends. */
    std::size_t crashPointsChecked = 0;
    /** Committed transactions of the program (oracle view). */
    std::size_t committedTx = 0;
};

/** Evaluate one program. Deterministic per (program, config). */
DiffResult runDiff(const Program &p, const DiffConfig &cfg);

} // namespace snf::conformlab

#endif // SNF_CONFORMLAB_DIFFRUN_HH
