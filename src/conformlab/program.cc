#include "conformlab/program.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace snf::conformlab
{

bool
Program::hasLoads() const
{
    for (const ProgTx &tx : txs)
        for (const ProgOp &op : tx.ops)
            if (op.isLoad())
                return true;
    return false;
}

std::size_t
Program::operationCount() const
{
    std::size_t n = 0;
    for (const ProgTx &tx : txs)
        n += 2 + tx.ops.size(); // begin + ops + commit/abort
    return n;
}

std::string
emitProgram(const Program &p)
{
    std::ostringstream out;
    bool v2 = p.sharedSlots != 0 || p.hasLoads();
    out << "snfprog " << (v2 ? 2 : 1) << "\n";
    out << "threads " << p.threads << "\n";
    out << "slots " << p.slotsPerThread << "\n";
    if (p.sharedSlots != 0)
        out << "shared " << p.sharedSlots << "\n";
    out << "seed " << p.seed << "\n";
    for (const ProgTx &tx : p.txs) {
        out << "tx " << tx.thread << " "
            << (tx.aborts ? "abort" : "commit") << " " << tx.delay
            << "\n";
        for (const ProgOp &op : tx.ops) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "0x%llx",
                          static_cast<unsigned long long>(op.value));
            switch (op.kind) {
              case ProgOpKind::Store:
                out << "  store " << op.slot << " " << buf << "\n";
                break;
              case ProgOpKind::Load:
                out << "  load " << op.slot << "\n";
                break;
              case ProgOpKind::SharedStore:
                out << "  sstore " << op.slot << " " << buf << "\n";
                break;
              case ProgOpKind::SharedLoad:
                out << "  sload " << op.slot << "\n";
                break;
            }
        }
    }
    out << "end\n";
    return out.str();
}

namespace
{

bool
fail(std::string *err, std::size_t lineNo, const std::string &what)
{
    if (err)
        *err = strfmt("line %zu: %s", lineNo, what.c_str());
    return false;
}

bool
parseValue(const std::string &text, std::uint64_t *out)
{
    char *endp = nullptr;
    *out = std::strtoull(text.c_str(), &endp, 0);
    return endp != text.c_str() && *endp == '\0';
}

} // namespace

bool
parseProgram(const std::string &text, Program *out, std::string *err)
{
    Program p;
    p.txs.clear();
    std::uint32_t version = 0;
    bool sawEnd = false;
    std::istringstream in(text);
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        std::istringstream ls(line);
        std::string word;
        if (!(ls >> word) || word[0] == '#')
            continue;
        if (sawEnd)
            return fail(err, lineNo, "content after 'end'");
        if (version == 0) {
            if (word != "snfprog" || !(ls >> version) ||
                (version != 1 && version != 2))
                return fail(err, lineNo,
                            "expected 'snfprog 1' or 'snfprog 2' "
                            "header");
            continue;
        }
        if (word == "threads") {
            if (!(ls >> p.threads) || p.threads == 0 ||
                p.threads > 64)
                return fail(err, lineNo, "bad thread count");
        } else if (word == "slots") {
            if (!(ls >> p.slotsPerThread) || p.slotsPerThread == 0)
                return fail(err, lineNo, "bad slots-per-thread");
        } else if (word == "shared") {
            if (version < 2)
                return fail(err, lineNo,
                            "'shared' needs a format-2 header");
            if (!(ls >> p.sharedSlots) || p.sharedSlots == 0 ||
                p.sharedSlots > 4096)
                return fail(err, lineNo, "bad shared slot count");
        } else if (word == "seed") {
            if (!(ls >> p.seed))
                return fail(err, lineNo, "bad seed");
        } else if (word == "tx") {
            ProgTx tx;
            std::string outcome;
            if (!(ls >> tx.thread >> outcome >> tx.delay))
                return fail(err, lineNo,
                            "expected 'tx THREAD commit|abort DELAY'");
            if (tx.thread >= p.threads)
                return fail(err, lineNo, "tx thread out of range");
            if (outcome == "abort")
                tx.aborts = true;
            else if (outcome != "commit")
                return fail(err, lineNo,
                            "tx outcome must be commit or abort");
            p.txs.push_back(tx);
        } else if (word == "store" || word == "sstore") {
            if (p.txs.empty())
                return fail(err, lineNo, "store before any tx");
            ProgOp op;
            std::string value;
            if (!(ls >> op.slot >> value))
                return fail(err, lineNo,
                            "expected '" + word + " SLOT VALUE'");
            if (word == "sstore") {
                if (version < 2)
                    return fail(err, lineNo,
                                "'sstore' needs a format-2 header");
                op.kind = ProgOpKind::SharedStore;
                if (op.slot >= p.sharedSlots)
                    return fail(err, lineNo,
                                "shared slot out of range");
            } else if (op.slot >= p.slotsPerThread) {
                return fail(err, lineNo, "store slot out of range");
            }
            if (!parseValue(value, &op.value))
                return fail(err, lineNo, "bad store value");
            p.txs.back().ops.push_back(op);
        } else if (word == "load" || word == "sload") {
            if (version < 2)
                return fail(err, lineNo,
                            "'" + word + "' needs a format-2 header");
            if (p.txs.empty())
                return fail(err, lineNo, "load before any tx");
            ProgOp op;
            if (!(ls >> op.slot))
                return fail(err, lineNo,
                            "expected '" + word + " SLOT'");
            if (word == "sload") {
                op.kind = ProgOpKind::SharedLoad;
                if (op.slot >= p.sharedSlots)
                    return fail(err, lineNo,
                                "shared slot out of range");
            } else {
                op.kind = ProgOpKind::Load;
                if (op.slot >= p.slotsPerThread)
                    return fail(err, lineNo,
                                "load slot out of range");
            }
            p.txs.back().ops.push_back(op);
        } else if (word == "end") {
            sawEnd = true;
        } else {
            return fail(err, lineNo, "unknown directive '" + word +
                                         "'");
        }
    }
    if (version == 0)
        return fail(err, lineNo, "missing 'snfprog' header");
    if (!sawEnd)
        return fail(err, lineNo, "missing 'end'");
    *out = p;
    return true;
}

bool
loadProgramFile(const std::string &path, Program *out,
                std::string *err)
{
    std::ifstream in(path);
    if (!in) {
        if (err)
            *err = "cannot open " + path;
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    if (!parseProgram(text.str(), out, err)) {
        if (err)
            *err = path + ": " + *err;
        return false;
    }
    return true;
}

bool
saveProgramFile(const std::string &path, const Program &p)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << emitProgram(p);
    return static_cast<bool>(out);
}

} // namespace snf::conformlab
