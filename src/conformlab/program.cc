#include "conformlab/program.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace snf::conformlab
{

std::size_t
Program::operationCount() const
{
    std::size_t n = 0;
    for (const ProgTx &tx : txs)
        n += 2 + tx.stores.size(); // begin + stores + commit/abort
    return n;
}

std::string
emitProgram(const Program &p)
{
    std::ostringstream out;
    out << "snfprog 1\n";
    out << "threads " << p.threads << "\n";
    out << "slots " << p.slotsPerThread << "\n";
    out << "seed " << p.seed << "\n";
    for (const ProgTx &tx : p.txs) {
        out << "tx " << tx.thread << " "
            << (tx.aborts ? "abort" : "commit") << " " << tx.delay
            << "\n";
        for (const ProgStore &st : tx.stores) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "0x%llx",
                          static_cast<unsigned long long>(st.value));
            out << "  store " << st.slot << " " << buf << "\n";
        }
    }
    out << "end\n";
    return out.str();
}

namespace
{

bool
fail(std::string *err, std::size_t lineNo, const std::string &what)
{
    if (err)
        *err = strfmt("line %zu: %s", lineNo, what.c_str());
    return false;
}

} // namespace

bool
parseProgram(const std::string &text, Program *out, std::string *err)
{
    Program p;
    p.txs.clear();
    bool sawHeader = false;
    bool sawEnd = false;
    std::istringstream in(text);
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        std::istringstream ls(line);
        std::string word;
        if (!(ls >> word) || word[0] == '#')
            continue;
        if (sawEnd)
            return fail(err, lineNo, "content after 'end'");
        if (!sawHeader) {
            std::uint32_t version = 0;
            if (word != "snfprog" || !(ls >> version) || version != 1)
                return fail(err, lineNo,
                            "expected 'snfprog 1' header");
            sawHeader = true;
            continue;
        }
        if (word == "threads") {
            if (!(ls >> p.threads) || p.threads == 0 ||
                p.threads > 64)
                return fail(err, lineNo, "bad thread count");
        } else if (word == "slots") {
            if (!(ls >> p.slotsPerThread) || p.slotsPerThread == 0)
                return fail(err, lineNo, "bad slots-per-thread");
        } else if (word == "seed") {
            if (!(ls >> p.seed))
                return fail(err, lineNo, "bad seed");
        } else if (word == "tx") {
            ProgTx tx;
            std::string outcome;
            if (!(ls >> tx.thread >> outcome >> tx.delay))
                return fail(err, lineNo,
                            "expected 'tx THREAD commit|abort DELAY'");
            if (tx.thread >= p.threads)
                return fail(err, lineNo, "tx thread out of range");
            if (outcome == "abort")
                tx.aborts = true;
            else if (outcome != "commit")
                return fail(err, lineNo,
                            "tx outcome must be commit or abort");
            p.txs.push_back(tx);
        } else if (word == "store") {
            if (p.txs.empty())
                return fail(err, lineNo, "store before any tx");
            ProgStore st;
            std::string value;
            if (!(ls >> st.slot >> value))
                return fail(err, lineNo,
                            "expected 'store SLOT VALUE'");
            if (st.slot >= p.slotsPerThread)
                return fail(err, lineNo, "store slot out of range");
            char *endp = nullptr;
            st.value = std::strtoull(value.c_str(), &endp, 0);
            if (endp == value.c_str() || *endp != '\0')
                return fail(err, lineNo, "bad store value");
            p.txs.back().stores.push_back(st);
        } else if (word == "end") {
            sawEnd = true;
        } else {
            return fail(err, lineNo, "unknown directive '" + word +
                                         "'");
        }
    }
    if (!sawHeader)
        return fail(err, lineNo, "missing 'snfprog 1' header");
    if (!sawEnd)
        return fail(err, lineNo, "missing 'end'");
    *out = p;
    return true;
}

bool
loadProgramFile(const std::string &path, Program *out,
                std::string *err)
{
    std::ifstream in(path);
    if (!in) {
        if (err)
            *err = "cannot open " + path;
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    if (!parseProgram(text.str(), out, err)) {
        if (err)
            *err = path + ": " + *err;
        return false;
    }
    return true;
}

bool
saveProgramFile(const std::string &path, const Program &p)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << emitProgram(p);
    return static_cast<bool>(out);
}

} // namespace snf::conformlab
