/**
 * @file
 * Seeded random-program generator for conformlab. One 64-bit seed
 * fully determines a program; the generator draws its shape
 * (threads, transaction counts, skew, abort rate), addresses, values,
 * and scheduler-jitter delays from independent Rng::split() child
 * streams so the program is stable under generator evolution in any
 * one dimension.
 */

#ifndef SNF_CONFORMLAB_PROGGEN_HH
#define SNF_CONFORMLAB_PROGGEN_HH

#include <cstdint>

#include "conformlab/program.hh"

namespace snf::conformlab
{

/** Knobs of the program space to draw from. */
struct ProgGenConfig
{
    /** Fixed thread count; 0 = draw 1..maxThreads from the seed. */
    std::uint32_t threads = 0;
    std::uint32_t maxThreads = 3;
    /** Fixed partition size; 0 = draw 4..maxSlotsPerThread. */
    std::uint32_t slotsPerThread = 0;
    std::uint32_t maxSlotsPerThread = 24;
    /** Mean transactions per thread (actual count drawn 1..2*mean). */
    std::uint32_t txPerThread = 6;
    /** Stores per transaction drawn 1..maxStoresPerTx. */
    std::uint32_t maxStoresPerTx = 6;
    /** Probability a transaction ends with tx_abort(). */
    double abortRate = 0.15;
    /**
     * Probability the seed selects Zipf-skewed slot addressing
     * (hot-slot contention within the partition) instead of uniform.
     */
    double skewRate = 0.5;
    /** Zipf theta used when skew is selected. */
    double skewTheta = 0.8;
    /** Max compute-jitter ticks before a transaction (interleaving). */
    std::uint32_t maxDelay = 40;
    /**
     * Probability any one op targets the shared conflict region
     * instead of the thread's private partition. 0 keeps the program
     * conflict-free and byte-identical to the pre-shared generator
     * for the same seed (the conflict draws come from fresh child
     * streams).
     */
    double conflictRate = 0.0;
    /** Shared slot count; 0 = draw 2..maxSharedSlots when
     *  conflictRate > 0. */
    std::uint32_t sharedSlots = 0;
    std::uint32_t maxSharedSlots = 8;
    /**
     * Probability an op is a load instead of a store. Only applied
     * when conflictRate > 0 — loads are what make read-validation
     * (TL2) and lost-update detection meaningful.
     */
    double loadRate = 0.25;
};

/**
 * Generate the program for @p seed. Deterministic: the same (seed,
 * config) always yields the same program, on any platform.
 */
Program generateProgram(std::uint64_t seed,
                        const ProgGenConfig &cfg = ProgGenConfig{});

} // namespace snf::conformlab

#endif // SNF_CONFORMLAB_PROGGEN_HH
