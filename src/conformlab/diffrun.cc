#include "conformlab/diffrun.hh"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "conformlab/oracle.hh"
#include "core/system.hh"
#include "crashlab/reorder.hh"
#include "crashlab/trace.hh"
#include "persist/txn_tracker.hh"
#include "sim/logging.hh"
#include "workloads/prog.hh"

namespace snf::conformlab
{

namespace
{

/** One executed backend, kept alive for crash snapshots. */
struct BackendRun
{
    PersistMode mode = PersistMode::Fwb;
    std::unique_ptr<System> sys;
    std::unique_ptr<workloads::ProgWorkload> wl;
    crashlab::CrashTrace trace;
    Tick endTick = 0;
};

BackendRun
runBackend(const Program &p, PersistMode mode, CcMode cc,
           std::uint32_t logShards)
{
    BackendRun b;
    b.mode = mode;
    SystemConfig cfg = SystemConfig::scaled(p.threads);
    cfg.persist.crashJournal = true;
    cfg.persist.ccMode = cc;
    cfg.persist.logShards = logShards;
    b.sys = std::make_unique<System>(cfg, mode);
    b.wl = std::make_unique<workloads::ProgWorkload>(p);

    workloads::WorkloadParams params;
    params.threads = p.threads;
    params.seed = p.seed;
    b.wl->setup(*b.sys, params);

    b.sys->setProbe(b.trace.collector());
    for (CoreId c = 0; c < p.threads; ++c) {
        b.sys->spawn(c, [&](Thread &t) -> sim::Co<void> {
            return b.wl->thread(*b.sys, t, params);
        });
    }
    b.endTick = b.sys->run();
    // Detach before the graceful flush, like the crash sweep: the
    // flush's write-backs are not crash candidates.
    b.sys->setProbe({});
    b.trace.finalize();
    b.sys->flushAll(b.endTick);
    return b;
}

/** Per-committed-transaction event ticks of one backend run. */
struct CommitTimeline
{
    /** [thread][ordinal] tick the commit record became durable. */
    std::vector<std::vector<Tick>> durable;
    /** [thread][ordinal] tick tx_commit was initiated. */
    std::vector<std::vector<Tick>> initiated;
};

CommitTimeline
buildTimeline(const BackendRun &b, const ModelOracle &oracle)
{
    const Program &p = oracle.program();
    CommitTimeline tl;
    tl.durable.resize(p.threads);
    tl.initiated.resize(p.threads);

    // CommitDurable carries the 16-bit log txid under hardware
    // logging and the tracker sequence under software logging
    // (sim/probe.hh); TxCommit always carries the sequence.
    bool swKeys = isSoftwareLogging(b.mode);
    std::map<std::uint64_t, Tick> durableAt;
    std::map<std::uint64_t, Tick> initiatedAt;
    for (const auto &ev : b.trace.events()) {
        if (ev.kind == sim::ProbeEvent::CommitDurable) {
            durableAt.emplace(ev.arg, ev.tick); // first wins
        } else if (ev.kind == sim::ProbeEvent::TxCommit) {
            initiatedAt.emplace(ev.arg, ev.tick);
        }
    }

    for (std::uint32_t t = 0; t < p.threads; ++t) {
        for (std::size_t i : oracle.committedTxs(t)) {
            std::uint64_t seq = b.wl->txSeqOf(i);
            SNF_ASSERT(seq != 0, "committed program tx never began");
            std::uint64_t key =
                swKeys ? seq : persist::TxnTracker::txIdOf(seq);
            auto d = durableAt.find(key);
            SNF_ASSERT(d != durableAt.end(),
                       "no CommitDurable event for committed tx");
            auto c = initiatedAt.find(seq);
            SNF_ASSERT(c != initiatedAt.end(),
                       "no TxCommit event for committed tx");
            tl.durable[t].push_back(d->second);
            tl.initiated[t].push_back(c->second);
        }
    }
    return tl;
}

/** The timeline as SerialOracle input (same ordinal alignment). */
std::vector<ObservedCommit>
observedCommits(const ModelOracle &oracle, const CommitTimeline &tl)
{
    const Program &p = oracle.program();
    std::vector<ObservedCommit> commits;
    for (std::uint32_t t = 0; t < p.threads; ++t) {
        const auto &mine = oracle.committedTxs(t);
        for (std::size_t j = 0; j < mine.size(); ++j)
            commits.push_back(
                {mine[j], tl.durable[t][j], tl.initiated[t][j]});
    }
    return commits;
}

std::size_t
countAtMost(const std::vector<Tick> &ticks, Tick t)
{
    std::size_t n = 0;
    for (Tick tk : ticks)
        if (tk <= t)
            ++n;
    return n;
}

/**
 * Crash instants for one backend: every durable-commit boundary (the
 * shared logical program points) bracketed by its t-1 sibling, plus a
 * deterministic stride sample of the harvested NVRAM-event ticks.
 */
std::vector<Tick>
crashTicks(const BackendRun &b, const CommitTimeline &tl,
           std::size_t maxHarvested)
{
    std::vector<Tick> ticks;
    for (const auto &perThread : tl.durable) {
        for (Tick d : perThread) {
            ticks.push_back(d);
            if (d > 0)
                ticks.push_back(d - 1);
        }
    }
    std::vector<crashlab::CrashPoint> points =
        b.trace.harvest(b.endTick);
    if (maxHarvested != 0 && points.size() > maxHarvested) {
        std::vector<crashlab::CrashPoint> kept;
        for (std::size_t i = 0; i < maxHarvested; ++i)
            kept.push_back(
                points[i * points.size() / maxHarvested]);
        points.swap(kept);
    }
    for (const auto &pt : points)
        ticks.push_back(pt.tick);
    std::sort(ticks.begin(), ticks.end());
    ticks.erase(std::unique(ticks.begin(), ticks.end()),
                ticks.end());
    return ticks;
}

/**
 * The model-consistency core: the recovered partition of each thread
 * must equal an oracle prefix whose depth lies within
 * [durable commits, initiated commit records] at the crash instant.
 */
bool
checkRecoveredImage(const mem::BackingStore &image,
                    const BackendRun &b, const ModelOracle &oracle,
                    const CommitTimeline &tl, Tick tick,
                    std::string *why)
{
    const Program &p = oracle.program();
    for (std::uint32_t t = 0; t < p.threads; ++t) {
        std::vector<std::uint64_t> partition(p.slotsPerThread);
        for (std::uint32_t s = 0; s < p.slotsPerThread; ++s)
            partition[s] = image.read64(
                b.wl->slotAddr(p.globalSlot(t, s)));

        std::size_t lo = countAtMost(tl.durable[t], tick);
        std::size_t hi = countAtMost(tl.initiated[t], tick);
        SNF_ASSERT(lo <= hi, "durable before initiated?");
        bool matched = false;
        std::size_t matchedAny = oracle.committedTxs(t).size() + 1;
        for (std::size_t k = 0;
             k <= oracle.committedTxs(t).size(); ++k) {
            if (partition == oracle.prefixImage(t, k)) {
                if (matchedAny > oracle.committedTxs(t).size())
                    matchedAny = k;
                if (k >= lo && k <= hi) {
                    matched = true;
                    break;
                }
            }
        }
        if (!matched) {
            if (why) {
                if (matchedAny <= oracle.committedTxs(t).size())
                    *why = strfmt(
                        "mode %s crash@%llu thread %u: recovered "
                        "prefix depth %zu outside the consistent "
                        "range [%zu, %zu] (durable commit lost or "
                        "uncommitted data exposed)",
                        persistModeName(b.mode),
                        static_cast<unsigned long long>(tick), t,
                        matchedAny, lo, hi);
                else
                    *why = strfmt(
                        "mode %s crash@%llu thread %u: recovered "
                        "partition matches no committed prefix "
                        "(non-atomic transaction state)",
                        persistModeName(b.mode),
                        static_cast<unsigned long long>(tick), t);
            }
            return false;
        }
    }
    return true;
}

/** All global slots of @p b's program as stored in @p store. */
std::vector<std::uint64_t>
readSlots(const mem::BackingStore &store, const BackendRun &b)
{
    const Program &p = b.wl->program();
    std::vector<std::uint64_t> slots(p.totalSlots());
    for (std::uint32_t g = 0; g < p.totalSlots(); ++g)
        slots[g] = store.read64(b.wl->slotAddr(g));
    return slots;
}

} // namespace

DiffResult
runDiff(const Program &p, const DiffConfig &cfg)
{
    DiffResult res;
    ModelOracle oracle(p);
    res.committedTx = oracle.committedCount();

    // Conflicting programs need concurrency control to serialize;
    // the lost-update self-test deliberately withholds it.
    CcMode cc = p.hasConflicts() && !cfg.injectLostUpdate
                    ? cfg.ccMode
                    : CcMode::None;
    BackendRun hw = runBackend(p, cfg.hwMode, cc, cfg.logShards);
    BackendRun sw = runBackend(p, cfg.swMode, cc, cfg.logShards);
    SNF_ASSERT(hw.wl->slotAddr(0) == sw.wl->slotAddr(0),
               "backend heap layouts diverged");

    if (!p.hasConflicts()) {
        // --- Final-image differential (field by field vs the
        // oracle; commit order is immaterial without conflicts) ---
        std::vector<std::uint64_t> expect = oracle.finalImage();
        const mem::BackingStore &hwStore =
            hw.sys->mem().nvram().store();
        const mem::BackingStore &swStore =
            sw.sys->mem().nvram().store();
        for (std::uint32_t g = 0; g < p.totalSlots(); ++g) {
            Addr a = hw.wl->slotAddr(g);
            std::uint64_t hv = hwStore.read64(a);
            std::uint64_t sv = swStore.read64(a);
            if (hv != expect[g] || sv != expect[g]) {
                res.passed = false;
                res.detail = strfmt(
                    "final image slot %u (thread %u): oracle 0x%llx, "
                    "%s 0x%llx, %s 0x%llx",
                    g, g / p.slotsPerThread,
                    static_cast<unsigned long long>(expect[g]),
                    persistModeName(cfg.hwMode),
                    static_cast<unsigned long long>(hv),
                    persistModeName(cfg.swMode),
                    static_cast<unsigned long long>(sv));
                return res;
            }
        }
        // Raw byte comparison over the whole slot range, so a backend
        // cannot hide damage between the sampled fields.
        if (auto d = hwStore.firstDifference(
                swStore, hw.wl->slotAddr(0),
                static_cast<std::uint64_t>(p.totalSlots()) * 8)) {
            res.passed = false;
            res.detail = strfmt("final heap images differ at 0x%llx",
                                static_cast<unsigned long long>(*d));
            return res;
        }
    }

    for (BackendRun *b : {&hw, &sw}) {
        const persist::RecoveryOptions &ropts =
            b == &hw ? cfg.hwRecovery : cfg.swRecovery;
        CommitTimeline tl = buildTimeline(*b, oracle);

        // --- Serializability differential (conflicting programs):
        // each backend is judged against its own durable commit
        // order, since the two may legitimately serialize
        // differently.
        std::unique_ptr<SerialOracle> serial;
        if (p.hasConflicts()) {
            serial = std::make_unique<SerialOracle>(
                p, observedCommits(oracle, tl));
            std::string why;
            if (!serial->checkFinalImage(
                    readSlots(b->sys->mem().nvram().store(), *b),
                    &why)) {
                res.passed = false;
                res.detail = strfmt("mode %s: %s",
                                    persistModeName(b->mode),
                                    why.c_str());
                return res;
            }
            for (const ObservedCommit &c : serial->order()) {
                if (!serial->checkReads(c.txIndex,
                                        b->wl->readsOf(c.txIndex),
                                        &why)) {
                    res.passed = false;
                    res.detail = strfmt("mode %s: %s",
                                        persistModeName(b->mode),
                                        why.c_str());
                    return res;
                }
            }
        }

        if (!cfg.crashDifferential)
            continue;

        // --- Crash-point differential ---------------------------
        std::vector<Tick> ticks =
            crashTicks(*b, tl, cfg.maxCrashPoints);
        const mem::BackingStore &store =
            b->sys->mem().nvram().store();
        store.buildSnapshotIndex();
        mem::BackingStore::Cursor cursor(store);
        crashlab::ReorderConfig rcfg;
        rcfg.enabled = cfg.reorderSamples != 0;
        rcfg.samples = cfg.reorderSamples;
        rcfg.maxImagesPerPoint = cfg.reorderSamples;
        std::optional<crashlab::PendingCursor> pendingCursor;
        if (rcfg.enabled)
            pendingCursor.emplace(store);
        for (Tick t : ticks) {
            mem::BackingStore crashImage = cursor.imageAt(t);
            mem::BackingStore image = crashImage;
            persist::Recovery::run(image, b->sys->config().map,
                                   ropts);
            ++res.crashPointsChecked;
            std::string why;
            auto judge = [&](const mem::BackingStore &img) {
                return serial
                           ? serial->checkCrashImage(
                                 readSlots(img, *b), t, &why)
                           : checkRecoveredImage(img, *b, oracle,
                                                 tl, t, &why);
            };
            if (!judge(image)) {
                res.passed = false;
                res.detail =
                    serial ? strfmt("mode %s: %s",
                                    persistModeName(b->mode),
                                    why.c_str())
                           : why;
                return res;
            }
            if (!rcfg.enabled)
                continue;
            // Any legal completion order of the pending persists must
            // also recover to a model-consistent image.
            std::vector<crashlab::PendingPersist> pending =
                pendingCursor->pendingAt(t);
            for (const crashlab::ReorderImage &plan :
                 crashlab::planReorderImages(pending, rcfg, t)) {
                mem::BackingStore variant = crashImage;
                crashlab::applyReorderImage(variant, pending, plan);
                persist::Recovery::run(
                    variant, b->sys->config().map, ropts);
                if (!judge(variant)) {
                    res.passed = false;
                    res.detail = strfmt(
                        "mode %s: reorder [%s] %s",
                        persistModeName(b->mode),
                        plan.describe(pending).c_str(),
                        why.c_str());
                    return res;
                }
            }
        }
    }
    return res;
}

} // namespace snf::conformlab
