/**
 * @file
 * The two reference semantics of a conformlab program.
 *
 * ModelOracle — the run-independent model: committed transactions
 * apply their stores atomically in per-thread program order, aborted
 * transactions apply nothing, and the heap starts from initValue().
 * Because private partitions are thread-disjoint (program.hh), any
 * *prefix-closed* set of committed transactions — per thread, a
 * prefix of that thread's committed subsequence — yields a
 * well-defined private image, independent of cross-thread order.
 * For the shared region the model alone can only bound the value
 * set (sharedCandidates); ordering it needs a run.
 *
 * SerialOracle — the commit-order serializability checker for
 * contended programs: fed the observed per-transaction (durable,
 * initiated) commit ticks of one backend run, it replays committed
 * transactions in durable-commit order. That order is the
 * serialization order — strict 2PL holds every lock to commit, and
 * TL2 validates its read versions at commit, so in both schemes a
 * transaction's reads see exactly the committed state of its
 * durable-order predecessors (conflicting commit records drain
 * FIFO through the log, keeping durable order consistent with lock
 * order). The rule for a crash image at tick t: recovered state
 * must equal the replay, in commit order, of *some* per-thread
 * depth combination between the commits durable by t (recovery
 * must not lose them) and the commit records initiated by t
 * (recovery cannot commit what was never committed).
 */

#ifndef SNF_CONFORMLAB_ORACLE_HH
#define SNF_CONFORMLAB_ORACLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "conformlab/program.hh"
#include "sim/types.hh"

namespace snf::conformlab
{

/** See file comment. */
class ModelOracle
{
  public:
    explicit ModelOracle(const Program &p);

    const Program &program() const { return prog; }

    /** Committed transactions of @p thread, as indices into
     *  program().txs, in program order. */
    const std::vector<std::size_t> &
    committedTxs(std::uint32_t thread) const
    {
        return committedByThread[thread];
    }

    /** Total committed transactions across all threads. */
    std::size_t committedCount() const { return totalCommitted; }

    /**
     * The private partition of @p thread after its first @p k
     * committed transactions (k = 0 .. committedTxs(thread).size()),
     * as slotsPerThread slot values. Shared ops do not contribute.
     */
    const std::vector<std::uint64_t> &
    prefixImage(std::uint32_t thread, std::size_t k) const
    {
        return prefixes[thread][k];
    }

    /**
     * The full-commit final image over all global slots. Shared
     * slots carry initValue(): the model cannot order cross-thread
     * writes, so this is only a complete answer for programs without
     * conflicts (use SerialOracle otherwise).
     */
    std::vector<std::uint64_t> finalImage() const;

    /**
     * Every value shared slot @p idx may legally hold in a
     * recovered or final image: its initValue plus, per committed
     * transaction writing it, that transaction's last store to it
     * (transactions are atomic, so mid-transaction values are
     * excluded). A run-independent membership bound — the
     * commit-order replay is the precise check.
     */
    const std::vector<std::uint64_t> &
    sharedCandidates(std::uint32_t idx) const
    {
        return sharedVals[idx];
    }

  private:
    Program prog;
    /** prefixes[t][k] = partition after k committed txs of t. */
    std::vector<std::vector<std::vector<std::uint64_t>>> prefixes;
    std::vector<std::vector<std::size_t>> committedByThread;
    std::vector<std::vector<std::uint64_t>> sharedVals;
    std::size_t totalCommitted = 0;
};

/** One committed program transaction as observed in a backend run. */
struct ObservedCommit
{
    /** Index into program().txs. */
    std::size_t txIndex = 0;
    /** Tick its commit record became durable in NVRAM. */
    Tick durable = 0;
    /** Tick tx_commit was initiated. */
    Tick initiated = 0;
};

/** See file comment. */
class SerialOracle
{
  public:
    /**
     * @p commits must hold one entry per committed transaction of
     * the program; they are sorted into the durable commit order
     * (ties broken by initiation tick, then program index).
     */
    SerialOracle(const Program &p, std::vector<ObservedCommit> commits);

    const Program &program() const { return prog; }

    /** The durable commit order (the serialization order). */
    const std::vector<ObservedCommit> &order() const { return seq; }

    /** Full replay in commit order, over all global slots. */
    std::vector<std::uint64_t> finalImage() const;

    /**
     * Check a graceful final image (all global slots, in global-slot
     * order) against the full commit-order replay.
     */
    bool checkFinalImage(const std::vector<std::uint64_t> &slots,
                         std::string *why) const;

    /**
     * Check the values the committed transaction @p txIndex loaded:
     * @p observed holds one value per op (entries at non-load
     * positions are ignored). Serializability requires each load to
     * see the replayed state of the transaction's durable-order
     * predecessors, plus its own earlier stores.
     */
    bool checkReads(std::size_t txIndex,
                    const std::vector<std::uint64_t> &observed,
                    std::string *why) const;

    /**
     * The crash rule (file comment): @p slots is the recovered image
     * at crash tick @p tick over all global slots. Enumerates every
     * per-thread depth combination within [durable-by-tick,
     * initiated-by-tick] and accepts if any commit-order replay of a
     * combination matches.
     */
    bool checkCrashImage(const std::vector<std::uint64_t> &slots,
                         Tick tick, std::string *why) const;

  private:
    std::vector<std::uint64_t> initImage() const;

    /** Apply the stores of tx @p txIndex to @p image. */
    void applyTx(std::size_t txIndex,
                 std::vector<std::uint64_t> &image) const;

    Program prog;
    /** Commits in durable order. */
    std::vector<ObservedCommit> seq;
    /** Positions into seq per thread, in (asserted) program order. */
    std::vector<std::vector<std::size_t>> perThread;
};

} // namespace snf::conformlab

#endif // SNF_CONFORMLAB_ORACLE_HH
