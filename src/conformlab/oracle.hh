/**
 * @file
 * ModelOracle — the pure in-memory reference semantics of a
 * conformlab program: committed transactions apply their stores
 * atomically in per-thread program order, aborted transactions apply
 * nothing, and the heap starts from initValue().
 *
 * Because partitions are thread-disjoint (program.hh), any
 * *prefix-closed* set of committed transactions — per thread, a
 * prefix of that thread's committed subsequence — yields a
 * well-defined image. The differential runner checks every recovered
 * crash image against these prefix states: the recovered partition of
 * thread t must equal prefixImage(t, k) for some k between the
 * transactions already durable at the crash instant (recovery must
 * not lose them) and the commit records initiated by then (recovery
 * cannot commit what was never committed).
 */

#ifndef SNF_CONFORMLAB_ORACLE_HH
#define SNF_CONFORMLAB_ORACLE_HH

#include <cstdint>
#include <vector>

#include "conformlab/program.hh"

namespace snf::conformlab
{

/** See file comment. */
class ModelOracle
{
  public:
    explicit ModelOracle(const Program &p);

    const Program &program() const { return prog; }

    /** Committed transactions of @p thread, as indices into
     *  program().txs, in program order. */
    const std::vector<std::size_t> &
    committedTxs(std::uint32_t thread) const
    {
        return committedByThread[thread];
    }

    /** Total committed transactions across all threads. */
    std::size_t committedCount() const { return totalCommitted; }

    /**
     * The partition of @p thread after its first @p k committed
     * transactions (k = 0 .. committedTxs(thread).size()), as
     * slotsPerThread slot values.
     */
    const std::vector<std::uint64_t> &
    prefixImage(std::uint32_t thread, std::size_t k) const
    {
        return prefixes[thread][k];
    }

    /** The full-commit final image over all global slots. */
    std::vector<std::uint64_t> finalImage() const;

  private:
    Program prog;
    /** prefixes[t][k] = partition after k committed txs of t. */
    std::vector<std::vector<std::vector<std::uint64_t>>> prefixes;
    std::vector<std::vector<std::size_t>> committedByThread;
    std::size_t totalCommitted = 0;
};

} // namespace snf::conformlab

#endif // SNF_CONFORMLAB_ORACLE_HH
