#include "conformlab/oracle.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace snf::conformlab
{

ModelOracle::ModelOracle(const Program &p) : prog(p)
{
    committedByThread.resize(prog.threads);
    prefixes.resize(prog.threads);
    sharedVals.resize(prog.sharedSlots);
    for (std::uint32_t s = 0; s < prog.sharedSlots; ++s)
        sharedVals[s].push_back(initValue(prog.sharedGlobalSlot(s)));

    for (std::size_t i = 0; i < prog.txs.size(); ++i) {
        const ProgTx &tx = prog.txs[i];
        SNF_ASSERT(tx.thread < prog.threads,
                   "program tx thread out of range");
        if (tx.aborts)
            continue;
        committedByThread[tx.thread].push_back(i);
        ++totalCommitted;

        // Last value per shared slot within this tx; transactions
        // are atomic so only their final write can surface.
        std::vector<std::pair<std::uint32_t, std::uint64_t>> last;
        for (const ProgOp &op : tx.ops) {
            if (op.isLoad() || !op.isShared())
                continue;
            bool found = false;
            for (auto &e : last)
                if (e.first == op.slot) {
                    e.second = op.value;
                    found = true;
                }
            if (!found)
                last.emplace_back(op.slot, op.value);
        }
        for (const auto &[idx, val] : last) {
            auto &cands = sharedVals[idx];
            if (std::find(cands.begin(), cands.end(), val) ==
                cands.end())
                cands.push_back(val);
        }
    }

    for (std::uint32_t t = 0; t < prog.threads; ++t) {
        std::vector<std::uint64_t> state(prog.slotsPerThread);
        for (std::uint32_t s = 0; s < prog.slotsPerThread; ++s)
            state[s] = initValue(prog.globalSlot(t, s));
        prefixes[t].push_back(state);
        for (std::size_t i : committedByThread[t]) {
            for (const ProgOp &op : prog.txs[i].ops) {
                if (op.isLoad() || op.isShared())
                    continue;
                SNF_ASSERT(op.slot < prog.slotsPerThread,
                           "program store slot out of range");
                state[op.slot] = op.value;
            }
            prefixes[t].push_back(state);
        }
    }
}

std::vector<std::uint64_t>
ModelOracle::finalImage() const
{
    std::vector<std::uint64_t> image(prog.totalSlots());
    for (std::uint32_t g = 0; g < prog.totalSlots(); ++g)
        image[g] = initValue(g);
    for (std::uint32_t t = 0; t < prog.threads; ++t) {
        const auto &full = prefixes[t].back();
        for (std::uint32_t s = 0; s < prog.slotsPerThread; ++s)
            image[prog.globalSlot(t, s)] = full[s];
    }
    return image;
}

SerialOracle::SerialOracle(const Program &p,
                           std::vector<ObservedCommit> commits)
    : prog(p), seq(std::move(commits))
{
    std::sort(seq.begin(), seq.end(),
              [](const ObservedCommit &a, const ObservedCommit &b) {
                  if (a.durable != b.durable)
                      return a.durable < b.durable;
                  if (a.initiated != b.initiated)
                      return a.initiated < b.initiated;
                  return a.txIndex < b.txIndex;
              });
    perThread.resize(prog.threads);
    for (std::size_t pos = 0; pos < seq.size(); ++pos) {
        const ObservedCommit &c = seq[pos];
        SNF_ASSERT(c.txIndex < prog.txs.size(),
                   "observed commit for tx %zu beyond program",
                   c.txIndex);
        const ProgTx &tx = prog.txs[c.txIndex];
        SNF_ASSERT(!tx.aborts, "observed commit for aborting tx %zu",
                   c.txIndex);
        auto &mine = perThread[tx.thread];
        SNF_ASSERT(mine.empty() ||
                       seq[mine.back()].txIndex < c.txIndex,
                   "thread %u: tx %zu durable before program-earlier "
                   "tx %zu",
                   tx.thread, seq[mine.back()].txIndex, c.txIndex);
        mine.push_back(pos);
    }
}

std::vector<std::uint64_t>
SerialOracle::initImage() const
{
    std::vector<std::uint64_t> image(prog.totalSlots());
    for (std::uint32_t g = 0; g < prog.totalSlots(); ++g)
        image[g] = initValue(g);
    return image;
}

void
SerialOracle::applyTx(std::size_t txIndex,
                      std::vector<std::uint64_t> &image) const
{
    const ProgTx &tx = prog.txs[txIndex];
    for (const ProgOp &op : tx.ops)
        if (!op.isLoad())
            image[prog.globalSlotOf(tx.thread, op)] = op.value;
}

std::vector<std::uint64_t>
SerialOracle::finalImage() const
{
    std::vector<std::uint64_t> image = initImage();
    for (const ObservedCommit &c : seq)
        applyTx(c.txIndex, image);
    return image;
}

bool
SerialOracle::checkFinalImage(const std::vector<std::uint64_t> &slots,
                              std::string *why) const
{
    SNF_ASSERT(slots.size() == prog.totalSlots(),
               "final image has %zu slots, program %u", slots.size(),
               prog.totalSlots());
    std::vector<std::uint64_t> want = finalImage();
    for (std::uint32_t g = 0; g < prog.totalSlots(); ++g) {
        if (slots[g] != want[g]) {
            if (why)
                *why = strfmt(
                    "final image: global slot %u holds 0x%llx, "
                    "commit-order replay of %zu commits gives 0x%llx",
                    g, static_cast<unsigned long long>(slots[g]),
                    seq.size(),
                    static_cast<unsigned long long>(want[g]));
            return false;
        }
    }
    return true;
}

bool
SerialOracle::checkReads(std::size_t txIndex,
                         const std::vector<std::uint64_t> &observed,
                         std::string *why) const
{
    std::size_t pos = seq.size();
    for (std::size_t i = 0; i < seq.size(); ++i)
        if (seq[i].txIndex == txIndex)
            pos = i;
    SNF_ASSERT(pos != seq.size(),
               "checkReads: tx %zu not in the commit order", txIndex);

    std::vector<std::uint64_t> image = initImage();
    for (std::size_t i = 0; i < pos; ++i)
        applyTx(seq[i].txIndex, image);

    const ProgTx &tx = prog.txs[txIndex];
    SNF_ASSERT(observed.size() == tx.ops.size(),
               "checkReads: tx %zu has %zu ops, %zu observations",
               txIndex, tx.ops.size(), observed.size());
    for (std::size_t j = 0; j < tx.ops.size(); ++j) {
        const ProgOp &op = tx.ops[j];
        std::uint32_t g = prog.globalSlotOf(tx.thread, op);
        if (op.isLoad()) {
            if (observed[j] != image[g]) {
                if (why)
                    *why = strfmt(
                        "tx %zu (commit position %zu) op %zu loaded "
                        "0x%llx from global slot %u; commit-order "
                        "predecessors left 0x%llx",
                        txIndex, pos, j,
                        static_cast<unsigned long long>(observed[j]),
                        g,
                        static_cast<unsigned long long>(image[g]));
                return false;
            }
        } else {
            image[g] = op.value; // read-own-writes
        }
    }
    return true;
}

bool
SerialOracle::checkCrashImage(const std::vector<std::uint64_t> &slots,
                              Tick tick, std::string *why) const
{
    SNF_ASSERT(slots.size() == prog.totalSlots(),
               "crash image has %zu slots, program %u", slots.size(),
               prog.totalSlots());

    // Per-thread depth window: commits durable by the crash must
    // survive recovery; commits whose records were not yet initiated
    // cannot. In between, the record raced the crash either way.
    std::vector<std::size_t> lo(prog.threads, 0);
    std::vector<std::size_t> hi(prog.threads, 0);
    std::size_t combos = 1;
    for (std::uint32_t t = 0; t < prog.threads; ++t) {
        for (std::size_t pos : perThread[t]) {
            if (seq[pos].durable <= tick)
                ++lo[t];
            if (seq[pos].initiated <= tick)
                ++hi[t];
        }
        SNF_ASSERT(lo[t] <= hi[t],
                   "thread %u: commit durable before its initiation",
                   t);
        combos *= hi[t] - lo[t] + 1;
        SNF_ASSERT(combos <= (1u << 20),
                   "crash depth windows at tick %llu explode past "
                   "2^20 combinations",
                   static_cast<unsigned long long>(tick));
    }

    std::vector<std::size_t> rankOf(seq.size());
    for (std::uint32_t t = 0; t < prog.threads; ++t)
        for (std::size_t r = 0; r < perThread[t].size(); ++r)
            rankOf[perThread[t][r]] = r;

    std::string firstWhy;
    std::vector<std::size_t> k = lo;
    for (;;) {
        std::vector<std::uint64_t> image = initImage();
        for (std::size_t pos = 0; pos < seq.size(); ++pos) {
            std::uint32_t t = prog.txs[seq[pos].txIndex].thread;
            if (rankOf[pos] < k[t])
                applyTx(seq[pos].txIndex, image);
        }
        bool match = true;
        for (std::uint32_t g = 0; g < prog.totalSlots() && match;
             ++g) {
            if (slots[g] != image[g]) {
                match = false;
                if (firstWhy.empty())
                    firstWhy = strfmt(
                        "e.g. at minimum depths, global slot %u "
                        "recovered as 0x%llx but replay gives 0x%llx",
                        g, static_cast<unsigned long long>(slots[g]),
                        static_cast<unsigned long long>(image[g]));
            }
        }
        if (match)
            return true;

        // Odometer step over the per-thread depth windows.
        std::uint32_t t = 0;
        for (; t < prog.threads; ++t) {
            if (k[t] < hi[t]) {
                ++k[t];
                break;
            }
            k[t] = lo[t];
        }
        if (t == prog.threads)
            break;
    }
    if (why)
        *why = strfmt(
            "crash image at tick %llu matches none of the %zu "
            "serializable depth combinations (%s)",
            static_cast<unsigned long long>(tick), combos,
            firstWhy.c_str());
    return false;
}

} // namespace snf::conformlab
