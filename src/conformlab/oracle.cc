#include "conformlab/oracle.hh"

#include "sim/logging.hh"

namespace snf::conformlab
{

ModelOracle::ModelOracle(const Program &p)
    : prog(p)
{
    committedByThread.resize(prog.threads);
    prefixes.resize(prog.threads);
    for (std::size_t i = 0; i < prog.txs.size(); ++i) {
        const ProgTx &tx = prog.txs[i];
        SNF_ASSERT(tx.thread < prog.threads,
                   "program tx thread out of range");
        if (!tx.aborts)
            committedByThread[tx.thread].push_back(i);
    }
    for (std::uint32_t t = 0; t < prog.threads; ++t) {
        totalCommitted += committedByThread[t].size();
        std::vector<std::uint64_t> state(prog.slotsPerThread);
        for (std::uint32_t s = 0; s < prog.slotsPerThread; ++s)
            state[s] = initValue(prog.globalSlot(t, s));
        prefixes[t].push_back(state);
        for (std::size_t i : committedByThread[t]) {
            for (const ProgStore &st : prog.txs[i].stores) {
                SNF_ASSERT(st.slot < prog.slotsPerThread,
                           "program store slot out of range");
                state[st.slot] = st.value;
            }
            prefixes[t].push_back(state);
        }
    }
}

std::vector<std::uint64_t>
ModelOracle::finalImage() const
{
    std::vector<std::uint64_t> image(prog.totalSlots());
    for (std::uint32_t t = 0; t < prog.threads; ++t) {
        const auto &full = prefixes[t].back();
        for (std::uint32_t s = 0; s < prog.slotsPerThread; ++s)
            image[prog.globalSlot(t, s)] = full[s];
    }
    return image;
}

} // namespace snf::conformlab
