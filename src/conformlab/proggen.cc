#include "conformlab/proggen.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace snf::conformlab
{

namespace
{

/** Child-stream ids under the program seed (stable API surface). */
enum Stream : std::uint64_t
{
    kShape = 0,   ///< threads, slots, tx counts, abort/skew picks
    kAddress = 1, ///< slot selection
    kValue = 2,   ///< store values
    kDelay = 3,   ///< scheduler-jitter compute delays
    kOrder = 4,   ///< cross-thread interleaving of the tx list
    kConflict = 5, ///< shared-region sizing and per-op targeting
    kOpKind = 6,  ///< load-vs-store pick per op
};

} // namespace

Program
generateProgram(std::uint64_t seed, const ProgGenConfig &cfg)
{
    sim::Rng root(seed);
    sim::Rng shape = root.split(kShape);
    sim::Rng address = root.split(kAddress);
    sim::Rng value = root.split(kValue);
    sim::Rng delay = root.split(kDelay);
    sim::Rng order = root.split(kOrder);
    sim::Rng conflict = root.split(kConflict);
    sim::Rng opKind = root.split(kOpKind);

    Program p;
    p.seed = seed;
    p.threads = cfg.threads != 0
                    ? cfg.threads
                    : static_cast<std::uint32_t>(
                          shape.range(1, cfg.maxThreads));
    p.slotsPerThread =
        cfg.slotsPerThread != 0
            ? cfg.slotsPerThread
            : static_cast<std::uint32_t>(
                  shape.range(4, cfg.maxSlotsPerThread));

    bool conflicts = cfg.conflictRate > 0.0;
    if (conflicts)
        p.sharedSlots =
            cfg.sharedSlots != 0
                ? cfg.sharedSlots
                : static_cast<std::uint32_t>(
                      conflict.range(2, cfg.maxSharedSlots));

    bool skewed = shape.chance(cfg.skewRate) && p.slotsPerThread > 1;
    sim::Zipf zipf(p.slotsPerThread,
                   skewed ? cfg.skewTheta : 0.5 /* unused */);

    // Per-thread transaction counts, then an interleaved global
    // order: repeatedly pick a random thread that still has
    // transactions left. The per-thread subsequences are the program
    // semantics; the global order only styles the repro file.
    std::vector<std::uint32_t> remaining(p.threads);
    std::size_t total = 0;
    for (std::uint32_t t = 0; t < p.threads; ++t) {
        remaining[t] = static_cast<std::uint32_t>(
            shape.range(1, std::max<std::uint32_t>(
                               1, 2 * cfg.txPerThread)));
        total += remaining[t];
    }

    for (std::size_t n = 0; n < total; ++n) {
        std::uint32_t t;
        do {
            t = static_cast<std::uint32_t>(order.below(p.threads));
        } while (remaining[t] == 0);
        --remaining[t];

        ProgTx tx;
        tx.thread = t;
        tx.aborts = shape.chance(cfg.abortRate);
        tx.delay = cfg.maxDelay == 0
                       ? 0
                       : static_cast<std::uint32_t>(
                             delay.below(cfg.maxDelay + 1));
        std::uint32_t ops = static_cast<std::uint32_t>(
            shape.range(1, cfg.maxStoresPerTx));
        for (std::uint32_t s = 0; s < ops; ++s) {
            ProgOp op;
            bool shared =
                conflicts && conflict.chance(cfg.conflictRate);
            bool isLoad =
                conflicts && opKind.chance(cfg.loadRate);
            if (shared) {
                op.slot = static_cast<std::uint32_t>(
                    conflict.below(p.sharedSlots));
                op.kind = isLoad ? ProgOpKind::SharedLoad
                                 : ProgOpKind::SharedStore;
            } else {
                op.slot = static_cast<std::uint32_t>(
                    skewed ? zipf.sample(address)
                           : address.below(p.slotsPerThread));
                op.kind = isLoad ? ProgOpKind::Load
                                 : ProgOpKind::Store;
            }
            if (!isLoad)
                op.value = value.next();
            tx.ops.push_back(op);
        }
        p.txs.push_back(tx);
    }
    return p;
}

} // namespace snf::conformlab
