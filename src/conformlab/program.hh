/**
 * @file
 * conformlab program representation: a nested-free sequence of
 * persistent-memory transactions (begin / ops / commit-or-abort)
 * over a slotted heap, plus the deterministic `.snfprog` text
 * serialization every failure repro is written in.
 *
 * The heap has two regions. Private slots are partitioned per
 * thread — thread t owns slots [t*slotsPerThread,
 * (t+1)*slotsPerThread) — and behave like format v1: the final
 * private image is independent of cross-thread commit order. The
 * optional *shared* region (format v2) is addressable by every
 * thread through the sstore/sload ops; transactions touching it
 * contend on the same cache lines, so runs need a CC scheme
 * (PersistConfig::ccMode) and correctness is judged by the
 * commit-order serializability oracle (oracle.hh) instead of
 * per-thread prefixes.
 */

#ifndef SNF_CONFORMLAB_PROGRAM_HH
#define SNF_CONFORMLAB_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace snf::conformlab
{

/** What one transaction operation does (ProgOp). */
enum class ProgOpKind : std::uint8_t
{
    Store,       ///< 64-bit store to a private slot
    Load,        ///< 64-bit load of a private slot
    SharedStore, ///< 64-bit store to a shared slot
    SharedLoad,  ///< 64-bit load of a shared slot
};

/**
 * One transaction operation. @c slot indexes the owning thread's
 * partition for private ops and the shared region for shared ops;
 * @c value is meaningful for stores only. The field order (and the
 * defaulted kind) keeps v1-style `{slot, value}` aggregate
 * initialization meaning a private store.
 */
struct ProgOp
{
    std::uint32_t slot = 0;
    std::uint64_t value = 0;
    ProgOpKind kind = ProgOpKind::Store;

    bool
    isLoad() const
    {
        return kind == ProgOpKind::Load ||
               kind == ProgOpKind::SharedLoad;
    }

    bool
    isShared() const
    {
        return kind == ProgOpKind::SharedStore ||
               kind == ProgOpKind::SharedLoad;
    }

    bool
    operator==(const ProgOp &o) const
    {
        return slot == o.slot && value == o.value && kind == o.kind;
    }
};

/** One transaction: begin, the ops, then commit or abort. */
struct ProgTx
{
    std::uint32_t thread = 0;
    /** End with tx_abort() (runtime rollback) instead of commit. */
    bool aborts = false;
    /** Compute ticks burned before tx_begin — scheduler-interleaving
     *  jitter, part of the program so replays are exact. */
    std::uint32_t delay = 0;
    std::vector<ProgOp> ops;

    bool
    operator==(const ProgTx &o) const
    {
        return thread == o.thread && aborts == o.aborts &&
               delay == o.delay && ops == o.ops;
    }
};

/** See file comment. */
struct Program
{
    std::uint32_t threads = 1;
    std::uint32_t slotsPerThread = 16;
    /** Slots in the shared conflict region (0 = none, format v1). */
    std::uint32_t sharedSlots = 0;
    /** Generator seed (provenance only; replay never re-generates). */
    std::uint64_t seed = 0;
    /** Program order; the per-thread subsequences are what execute. */
    std::vector<ProgTx> txs;

    /** Private slots, all threads. */
    std::uint32_t privateSlots() const { return threads * slotsPerThread; }

    /** Private + shared slots (the heap footprint). */
    std::uint32_t totalSlots() const { return privateSlots() + sharedSlots; }

    /** Global slot index of (thread, slot-in-partition). */
    std::uint32_t
    globalSlot(std::uint32_t thread, std::uint32_t slot) const
    {
        return thread * slotsPerThread + slot;
    }

    /** Global slot index of shared slot @p idx. */
    std::uint32_t
    sharedGlobalSlot(std::uint32_t idx) const
    {
        return privateSlots() + idx;
    }

    /** Global slot index an op of @p thread addresses. */
    std::uint32_t
    globalSlotOf(std::uint32_t thread, const ProgOp &op) const
    {
        return op.isShared() ? sharedGlobalSlot(op.slot)
                             : globalSlot(thread, op.slot);
    }

    /** Does any transaction touch the shared region? */
    bool hasConflicts() const { return sharedSlots != 0; }

    /** Does any transaction load (needs format v2)? */
    bool hasLoads() const;

    /**
     * Operation count used by the shrinker's reporting: one for each
     * begin, op, and commit/abort.
     */
    std::size_t operationCount() const;

    bool
    operator==(const Program &o) const
    {
        return threads == o.threads &&
               slotsPerThread == o.slotsPerThread &&
               sharedSlots == o.sharedSlots && txs == o.txs;
    }
};

/**
 * Initial value of a global slot before any transaction runs. The
 * workload adapter prewrites these and the oracle starts from them.
 */
inline std::uint64_t
initValue(std::uint32_t globalSlot)
{
    return 0x1000u + globalSlot;
}

/**
 * Serialize to the `.snfprog` text format (deterministic). Programs
 * using only private stores emit format 1, byte-identical to the
 * pre-shared-region writer; shared ops or loads emit format 2.
 */
std::string emitProgram(const Program &p);

/**
 * Parse a `.snfprog` document (formats 1 and 2). Returns false and
 * sets @p err on malformed input (unknown directive, out-of-range
 * thread/slot, v2 ops under a v1 header, missing end marker).
 */
bool parseProgram(const std::string &text, Program *out,
                  std::string *err);

/** Read + parse a `.snfprog` file. */
bool loadProgramFile(const std::string &path, Program *out,
                     std::string *err);

/** Write a program to @p path; returns false on I/O failure. */
bool saveProgramFile(const std::string &path, const Program &p);

} // namespace snf::conformlab

#endif // SNF_CONFORMLAB_PROGRAM_HH
