/**
 * @file
 * conformlab program representation: a nested-free sequence of
 * persistent-memory transactions (begin / store* / commit-or-abort)
 * over a slotted heap, plus the deterministic `.snfprog` text
 * serialization every failure repro is written in.
 *
 * The heap is partitioned per thread: thread t owns slots
 * [t*slotsPerThread, (t+1)*slotsPerThread). Disjoint partitions are
 * what make the pure oracle well-defined — the final image is
 * independent of cross-thread commit order, so three backends with
 * different timing can be compared field-by-field (the same
 * restriction the distributed-log extension documents: shared
 * addresses across partitions cannot be ordered at recovery).
 */

#ifndef SNF_CONFORMLAB_PROGRAM_HH
#define SNF_CONFORMLAB_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace snf::conformlab
{

/** One 64-bit store to a slot of the owning thread's partition. */
struct ProgStore
{
    std::uint32_t slot = 0; ///< index within the thread's partition
    std::uint64_t value = 0;

    bool
    operator==(const ProgStore &o) const
    {
        return slot == o.slot && value == o.value;
    }
};

/** One transaction: begin, the stores, then commit or abort. */
struct ProgTx
{
    std::uint32_t thread = 0;
    /** End with tx_abort() (runtime rollback) instead of commit. */
    bool aborts = false;
    /** Compute ticks burned before tx_begin — scheduler-interleaving
     *  jitter, part of the program so replays are exact. */
    std::uint32_t delay = 0;
    std::vector<ProgStore> stores;

    bool
    operator==(const ProgTx &o) const
    {
        return thread == o.thread && aborts == o.aborts &&
               delay == o.delay && stores == o.stores;
    }
};

/** See file comment. */
struct Program
{
    std::uint32_t threads = 1;
    std::uint32_t slotsPerThread = 16;
    /** Generator seed (provenance only; replay never re-generates). */
    std::uint64_t seed = 0;
    /** Program order; the per-thread subsequences are what execute. */
    std::vector<ProgTx> txs;

    std::uint32_t totalSlots() const { return threads * slotsPerThread; }

    /** Global slot index of (thread, slot-in-partition). */
    std::uint32_t
    globalSlot(std::uint32_t thread, std::uint32_t slot) const
    {
        return thread * slotsPerThread + slot;
    }

    /**
     * Operation count used by the shrinker's reporting: one for each
     * begin, store, and commit/abort.
     */
    std::size_t operationCount() const;

    bool
    operator==(const Program &o) const
    {
        return threads == o.threads &&
               slotsPerThread == o.slotsPerThread && txs == o.txs;
    }
};

/**
 * Initial value of a global slot before any transaction runs. The
 * workload adapter prewrites these and the oracle starts from them.
 */
inline std::uint64_t
initValue(std::uint32_t globalSlot)
{
    return 0x1000u + globalSlot;
}

/** Serialize to the `.snfprog` text format (deterministic). */
std::string emitProgram(const Program &p);

/**
 * Parse a `.snfprog` document. Returns false and sets @p err on
 * malformed input (unknown directive, out-of-range thread/slot,
 * missing end marker).
 */
bool parseProgram(const std::string &text, Program *out,
                  std::string *err);

/** Read + parse a `.snfprog` file. */
bool loadProgramFile(const std::string &path, Program *out,
                     std::string *err);

/** Write a program to @p path; returns false on I/O failure. */
bool saveProgramFile(const std::string &path, const Program &p);

} // namespace snf::conformlab

#endif // SNF_CONFORMLAB_PROGRAM_HH
