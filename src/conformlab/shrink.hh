/**
 * @file
 * Program-level failure minimizer — the crash sweep's bisection idea
 * generalized from "earliest failing tick" to "smallest failing
 * program". Reductions, coarse to fine, each re-validated against the
 * caller's still-fails predicate:
 *
 *   1. drop transactions (ddmin-style chunk bisection, then singles)
 *   2. drop ops within the surviving transactions
 *   3. narrow store values to small canonical constants
 *   4. strip delays, unused threads, and unused slots (private and
 *      shared regions trimmed independently)
 *
 * The result is a deterministic fixpoint (subject to the evaluation
 * budget) suitable for writing out as a `.snfprog` repro.
 */

#ifndef SNF_CONFORMLAB_SHRINK_HH
#define SNF_CONFORMLAB_SHRINK_HH

#include <cstdint>
#include <functional>

#include "conformlab/program.hh"

namespace snf::conformlab
{

struct ShrinkOptions
{
    /** Cap on still-fails evaluations (each runs the program). */
    std::size_t maxEvals = 400;
};

struct ShrinkStats
{
    std::size_t evals = 0;
    bool budgetExhausted = false;
};

/**
 * Minimize @p p with respect to @p stillFails (which must return
 * true for @p p itself). Returns the smallest failing program found.
 */
Program shrinkProgram(const Program &p,
                      const std::function<bool(const Program &)>
                          &stillFails,
                      const ShrinkOptions &opts = ShrinkOptions{},
                      ShrinkStats *stats = nullptr);

} // namespace snf::conformlab

#endif // SNF_CONFORMLAB_SHRINK_HH
