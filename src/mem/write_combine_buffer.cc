#include "mem/write_combine_buffer.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace snf::mem
{

WriteCombineBuffer::WriteCombineBuffer(MemDevice &device,
                                       std::uint32_t numEntries,
                                       std::uint32_t line)
    : dev(device),
      capacity(numEntries),
      lineBytes(line),
      statGroup("wcb"),
      coalescedStores(statGroup.counter("coalesced_stores")),
      flushes(statGroup.counter("flushes"))
{
}

Tick
WriteCombineBuffer::flushOldest(Tick now)
{
    SNF_ASSERT(!entries.empty(), "flush on empty WCB");
    Entry e = std::move(entries.front());
    entries.pop_front();
    // Serialize flushes: the WCB has one port to the memory bus.
    Tick issue = std::max(now, lastFlushDone);
    auto res = dev.access(true, e.lineAddr + e.lo, e.hi - e.lo,
                          e.data.data() + e.lo, nullptr, issue, true,
                          PersistOrigin::WcbFlush);
    lastFlushDone = res.done;
    flushes.inc();
    if (probe)
        probe(sim::ProbeEvent::WcbFlush, res.done, e.lineAddr);
    inflight.push_back(res.done);
    while (!inflight.empty() && inflight.front() <= now)
        inflight.pop_front();
    return res.done;
}

Tick
WriteCombineBuffer::append(Addr addr, std::uint32_t size,
                           const void *data, Tick now)
{
    SNF_ASSERT(size > 0 && size <= 8, "WCB store size %u", size);
    Addr line = addr & ~static_cast<Addr>(lineBytes - 1);
    std::uint32_t off = static_cast<std::uint32_t>(addr - line);
    SNF_ASSERT(off + size <= lineBytes, "WCB store crosses line");

    for (auto &e : entries) {
        if (e.lineAddr == line) {
            std::memcpy(e.data.data() + off, data, size);
            e.lo = std::min(e.lo, off);
            e.hi = std::max(e.hi, off + size);
            coalescedStores.inc();
            return now + 1;
        }
    }

    Tick visible = now + 1;
    if (entries.size() >= capacity) {
        Tick done = flushOldest(now);
        // If too many flushes are still in flight, the store stalls
        // until the oldest one retires.
        while (!inflight.empty() && inflight.front() <= now)
            inflight.pop_front();
        if (inflight.size() > capacity)
            visible = std::max(visible, done);
    }

    Entry e;
    e.lineAddr = line;
    e.lo = off;
    e.hi = off + size;
    e.data.assign(lineBytes, 0);
    std::memcpy(e.data.data() + off, data, size);
    entries.push_back(std::move(e));
    return visible;
}

Tick
WriteCombineBuffer::drainAll(Tick now)
{
    Tick done = now;
    while (!entries.empty())
        done = std::max(done, flushOldest(now));
    return done;
}

void
WriteCombineBuffer::dropAll()
{
    // Account for every in-flight write: each discarded entry is
    // announced so traces (and reorderlab) know which lines were
    // pending in the WCB when the crash model wiped it.
    if (probe) {
        for (const Entry &e : entries)
            probe(sim::ProbeEvent::WcbDrop, 0, e.lineAddr);
    }
    entries.clear();
    inflight.clear();
}

} // namespace snf::mem
