#include "mem/fault_model.hh"

#include <algorithm>
#include <cstring>

namespace snf::mem
{

namespace
{

// Hash salts: one namespace per independent decision so that e.g. the
// drop and torn decisions for the same line/tick are uncorrelated.
constexpr std::uint64_t kSaltDrop = 0x1;
constexpr std::uint64_t kSaltTorn = 0x2;
constexpr std::uint64_t kSaltMulti = 0x3;
constexpr std::uint64_t kSaltFlip = 0x4;
constexpr std::uint64_t kSaltStuckRow = 0x5;
constexpr std::uint64_t kSaltStuckVal = 0x6;
constexpr std::uint64_t kSaltStuckOff = 0x7;
constexpr std::uint64_t kSaltBitPos = 0x8;
constexpr std::uint64_t kSaltBitPos2 = 0x9;

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

std::uint64_t
FaultInjector::hash(std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    return splitmix64(splitmix64(splitmix64(a) ^ b) ^ c);
}

double
FaultInjector::unit(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool
FaultInjector::inScope(Addr lineAddr, Tick tick) const
{
    if (cfg.regionSize != 0) {
        if (lineAddr + kLineBytes <= cfg.regionBase ||
            lineAddr >= cfg.regionBase + cfg.regionSize)
            return false;
    }
    if (tick < cfg.windowStart)
        return false;
    if (cfg.windowEnd != 0 && tick >= cfg.windowEnd)
        return false;
    return true;
}

bool
FaultInjector::rowIsStuck(std::uint64_t row) const
{
    if (cfg.stuckRowProb <= 0.0)
        return false;
    return unit(hash(cfg.seed, row, kSaltStuckRow)) < cfg.stuckRowProb;
}

std::uint64_t
FaultInjector::stuckValue(std::uint64_t row) const
{
    return hash(cfg.seed, row, kSaltStuckVal);
}

std::uint64_t
FaultInjector::stuckWordOffset(std::uint64_t row) const
{
    std::uint64_t words = std::max<std::uint64_t>(rowBytes / 8, 1);
    return (hash(cfg.seed, row, kSaltStuckOff) % words) * 8;
}

FaultCounters
FaultInjector::apply(Addr addr, std::uint64_t size, std::uint8_t *buf,
                     const std::uint8_t *oldData, Tick tick) const
{
    FaultCounters counts;
    Addr end = addr + size;
    for (Addr line = addr & ~(kLineBytes - 1); line < end;
         line += kLineBytes) {
        // Intersection of the write with this 64-byte line, as
        // offsets into buf/oldData.
        std::uint64_t lo = line > addr ? line - addr : 0;
        std::uint64_t hi =
            std::min<std::uint64_t>(size, line + kLineBytes - addr);
        std::uint64_t span = hi - lo;

        // Stuck rows wedge their word regardless of scope windows:
        // the cell is physically worn out, not transiently upset.
        std::uint64_t row = line / rowBytes * rowBytes;
        if (cfg.stuckRowProb > 0.0 && rowIsStuck(row / rowBytes)) {
            Addr word = row + stuckWordOffset(row / rowBytes);
            if (word < addr + hi && word + 8 > addr + lo) {
                std::uint64_t v = stuckValue(row / rowBytes);
                const std::uint8_t *vb =
                    reinterpret_cast<const std::uint8_t *>(&v);
                for (std::uint64_t i = 0; i < 8; ++i) {
                    Addr byte = word + i;
                    if (byte >= addr + lo && byte < addr + hi)
                        buf[byte - addr] = vb[byte - word];
                }
                ++counts.stuckWords;
            }
        }

        if (!inScope(line, tick))
            continue;
        counts.examinedBytes += span;

        if (cfg.dropWriteProb > 0.0 &&
            unit(hash(cfg.seed ^ line, tick, kSaltDrop)) <
                cfg.dropWriteProb) {
            // The controller accepted the write but the program pulse
            // never landed: the old contents survive.
            std::memcpy(buf + lo, oldData + lo, span);
            ++counts.droppedWrites;
            continue;
        }

        if (cfg.tornLineProb > 0.0 &&
            unit(hash(cfg.seed ^ line, tick, kSaltTorn)) <
                cfg.tornLineProb) {
            // Only the first half-line programs; the tail keeps its
            // old contents.
            Addr torn_from = line + kTornBytes;
            for (std::uint64_t i = lo; i < hi; ++i) {
                if (addr + i >= torn_from)
                    buf[i] = oldData[i];
            }
            ++counts.tornLines;
            continue;
        }

        std::uint64_t bits = span * 8;
        if (cfg.multiBitProb > 0.0 &&
            unit(hash(cfg.seed ^ line, tick, kSaltMulti)) <
                cfg.multiBitProb) {
            std::uint64_t b1 =
                hash(cfg.seed ^ line, tick, kSaltBitPos) % bits;
            std::uint64_t b2 = bits > 1
                ? (b1 + 1 +
                   hash(cfg.seed ^ line, tick, kSaltBitPos2) %
                       (bits - 1)) % bits
                : b1;
            buf[lo + b1 / 8] ^= std::uint8_t(1u << (b1 % 8));
            if (b2 != b1)
                buf[lo + b2 / 8] ^= std::uint8_t(1u << (b2 % 8));
            ++counts.multiBit;
            continue;
        }

        if (cfg.bitFlipProb > 0.0 &&
            unit(hash(cfg.seed ^ line, tick, kSaltFlip)) <
                cfg.bitFlipProb) {
            std::uint64_t b =
                hash(cfg.seed ^ line, tick, kSaltBitPos) % bits;
            buf[lo + b / 8] ^= std::uint8_t(1u << (b % 8));
            ++counts.bitFlips;
        }
    }
    return counts;
}

} // namespace snf::mem
