/**
 * @file
 * Deterministic NVRAM media-fault injector (faultlab).
 *
 * PCM suffers bit upsets, stuck-at cells from wear, and interrupted
 * programs that tear a line; the paper's recovery path assumes none of
 * these. The injector models them on the accepted-write path of a
 * MemDevice: a write is charged normally by the timing/energy model,
 * but the bytes that land in the backing store may be flipped, torn,
 * wedged to a stuck value, or silently dropped.
 *
 * Every decision is a pure hash of (seed, line address, tick) — no RNG
 * state — so any run is bit-exact reproducible per seed regardless of
 * interleaving, and a crash snapshot replays identically. Stuck rows
 * are tick-independent: a row is stuck for the whole run or never.
 */

#ifndef SNF_MEM_FAULT_MODEL_HH
#define SNF_MEM_FAULT_MODEL_HH

#include <cstdint>

#include "core/system_config.hh"
#include "sim/types.hh"

namespace snf::mem
{

/** Tally of injected damage, per apply() call or accumulated. */
struct FaultCounters
{
    std::uint64_t bitFlips = 0;
    std::uint64_t multiBit = 0;
    std::uint64_t tornLines = 0;
    std::uint64_t droppedWrites = 0;
    std::uint64_t stuckWords = 0;
    /**
     * Bytes apply() examined inside the configured scope (region +
     * window), whether or not damage landed. A write path that
     * bypasses the injector examines nothing, so parity tests can
     * assert coverage structurally instead of hoping a probabilistic
     * fault fires. Not part of total().
     */
    std::uint64_t examinedBytes = 0;

    std::uint64_t
    total() const
    {
        return bitFlips + multiBit + tornLines + droppedWrites +
               stuckWords;
    }
};

/**
 * Stateless fault injector: one instance per MemDevice, holding only
 * configuration. All randomness is hashed from (seed, address, tick).
 */
class FaultInjector
{
  public:
    static constexpr std::uint64_t kLineBytes = 64;
    static constexpr std::uint64_t kTornBytes = 32;

    FaultInjector(const FaultModelConfig &cfg, std::uint32_t rowBytes)
        : cfg(cfg), rowBytes(rowBytes)
    {
    }

    bool enabled() const { return cfg.enabled(); }

    /**
     * Damage the bytes of a write in place. @p buf holds the new
     * bytes for [addr, addr+size); @p oldData holds the current
     * backing-store contents of the same range (used to "keep" old
     * bytes for dropped and torn spans). Decisions are made per
     * overlapped 64-byte line. Returns what was injected.
     */
    FaultCounters apply(Addr addr, std::uint64_t size,
                        std::uint8_t *buf, const std::uint8_t *oldData,
                        Tick tick) const;

    /** Deterministic per-seed predicate: is this row stuck? */
    bool rowIsStuck(std::uint64_t row) const;

    /** The 64-bit value a stuck row's wedged word is forced to. */
    std::uint64_t stuckValue(std::uint64_t row) const;

    /** Byte offset of the wedged 8-byte word within a stuck row. */
    std::uint64_t stuckWordOffset(std::uint64_t row) const;

    /** Deterministic splitmix64-style hash, exposed for tests. */
    static std::uint64_t hash(std::uint64_t a, std::uint64_t b,
                              std::uint64_t c);

  private:
    FaultModelConfig cfg;
    std::uint32_t rowBytes;

    bool inScope(Addr lineAddr, Tick tick) const;
    /** Map a hash to [0,1) for probability thresholds. */
    static double unit(std::uint64_t h);
};

} // namespace snf::mem

#endif // SNF_MEM_FAULT_MODEL_HH
