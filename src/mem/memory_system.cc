#include "mem/memory_system.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace snf::mem
{

MemorySystem::MemorySystem(const SystemConfig &config)
    : cfg(config),
      statGroup("mem"),
      l2("l2", config.l2),
      nvramDev("nvram", config.nvram, config.map.nvramBase),
      dramDev("dram", config.dram, config.map.dramBase),
      wcbuf(nvramDev, config.persist.wcbEntries, config.l1.lineBytes),
      coherenceInvalidations(statGroup.counter("coherence_invals")),
      cacheToCacheTransfers(statGroup.counter("cache_to_cache"))
{
    cfg.validate();
    for (CoreId c = 0; c < cfg.numCores; ++c) {
        l1s.push_back(std::make_unique<Cache>(strfmt("l1.%u", c),
                                              cfg.l1));
        statGroup.addChild(&l1s.back()->stats());
    }
    statGroup.addChild(&l2.stats());
    statGroup.addChild(&nvramDev.stats());
    statGroup.addChild(&dramDev.stats());
    statGroup.addChild(&wcbuf.stats());
    statGroup.addChild(&busMonitor.stats());
    if (cfg.persist.crashJournal) {
        nvramDev.store().setCheckpointInterval(
            cfg.persist.snapshotCheckpointK);
        nvramDev.store().enableJournal();
    }
}

MemDevice &
MemorySystem::deviceFor(Addr addr)
{
    if (cfg.map.isNvram(addr))
        return nvramDev;
    SNF_ASSERT(cfg.map.isDram(addr), "address %llx unmapped",
               static_cast<unsigned long long>(addr));
    return dramDev;
}

std::uint64_t &
MemorySystem::sharersOf(Addr lineAddr)
{
    return directory[lineAddr];
}

void
MemorySystem::clearSharer(Addr lineAddr, CoreId core)
{
    auto it = directory.find(lineAddr);
    if (it == directory.end())
        return;
    it->second &= ~(1ULL << core);
    if (it->second == 0)
        directory.erase(it);
}

void
MemorySystem::evictL2Line(CacheLine *slot, Tick now)
{
    Addr line = slot->lineAddr;
    // Inclusive hierarchy: recall every L1 copy first.
    auto it = directory.find(line);
    if (it != directory.end()) {
        std::uint64_t mask = it->second;
        for (CoreId c = 0; c < cfg.numCores; ++c) {
            if (!(mask & (1ULL << c)))
                continue;
            CacheLine *l1line = l1s[c]->find(line);
            if (l1line) {
                if (l1line->dirty) {
                    slot->data = l1line->data;
                    slot->dirty = true;
                }
                l1s[c]->invalidate(l1line);
                coherenceInvalidations.inc();
            }
        }
        directory.erase(it);
    }
    l2.evictions.inc();
    if (slot->dirty) {
        MemDevice &dev = deviceFor(line);
        Tick preBarrier = now;
        now = barrierFor(line, now);
        auto res = dev.access(true, line, l2.lineBytes(),
                              slot->data.data(), nullptr, now, false,
                              PersistOrigin::Data,
                              wbIssueHint(preBarrier));
        l2.writebacks.inc();
        if (cfg.map.isNvram(line))
            busMonitor.onDataWriteback(line, now, res.done);
    }
    l2.invalidate(slot);
}

MemorySystem::FillResult
MemorySystem::fillL2(Addr lineAddr, Tick now)
{
    Tick start = std::max(now, l2.busyUntil);
    if (CacheLine *l = l2.find(lineAddr)) {
        ++l2.pendingHits;
        l2.touch(l);
        return FillResult{l, start + l2.latency(), true};
    }
    ++l2.pendingMisses;
    CacheLine *slot = l2.victimFor(lineAddr);
    if (slot->valid)
        evictL2Line(slot, start);
    MemDevice &dev = deviceFor(lineAddr);
    auto res = dev.access(false, lineAddr, l2.lineBytes(), nullptr,
                          slot->data.data(), start + l2.latency());
    l2.install(slot, lineAddr);
    return FillResult{slot, res.done, false};
}

void
MemorySystem::writebackL1ToL2(CoreId core, CacheLine *line)
{
    CacheLine *l2line = l2.find(line->lineAddr);
    SNF_ASSERT(l2line != nullptr,
               "inclusivity violated: L1.%u line %llx missing in L2",
               core, static_cast<unsigned long long>(line->lineAddr));
    l2line->data = line->data;
    l2line->dirty = true;
    l2.touch(l2line);
    l1s[core]->writebacks.inc();
}

void
MemorySystem::evictL1Line(CoreId core, CacheLine *victim)
{
    if (victim->dirty)
        writebackL1ToL2(core, victim);
    clearSharer(victim->lineAddr, core);
    l1s[core]->evictions.inc();
    l1s[core]->invalidate(victim);
}

MemorySystem::FillResult
MemorySystem::ensureInL1(CoreId core, Addr lineAddr, Tick now,
                         bool for_store, HitLevel &level)
{
    Cache &l1 = *l1s[core];
    Tick start = std::max(now, l1.busyUntil);

    if (CacheLine *line = l1.find(lineAddr)) {
        ++l1.pendingHits;
        l1.touch(line);
        Tick done = start + l1.latency();
        if (for_store) {
            // Invalidate other (clean) sharers for exclusivity.
            auto it = directory.find(lineAddr);
            if (it != directory.end() &&
                (it->second & ~(1ULL << core)) != 0) {
                std::uint64_t mask = it->second & ~(1ULL << core);
                for (CoreId c = 0; c < cfg.numCores; ++c) {
                    if (!(mask & (1ULL << c)))
                        continue;
                    CacheLine *other = l1s[c]->find(lineAddr);
                    if (other) {
                        SNF_ASSERT(!other->dirty,
                                   "two dirty copies of line %llx",
                                   static_cast<unsigned long long>(
                                       lineAddr));
                        l1s[c]->invalidate(other);
                    }
                    coherenceInvalidations.inc();
                }
                it->second = 1ULL << core;
                done += l1.latency();
            }
        }
        level = HitLevel::L1;
        return FillResult{line, done, true};
    }

    ++l1.pendingMisses;
    FillResult l2res = fillL2(lineAddr, start + l1.latency());
    Tick done = l2res.done;
    level = l2res.hit ? HitLevel::L2 : HitLevel::Memory;

    // If another L1 holds a dirty copy, pull it into L2 first
    // (cache-to-cache transfer).
    auto it = directory.find(lineAddr);
    if (it != directory.end()) {
        std::uint64_t mask = it->second;
        for (CoreId c = 0; c < cfg.numCores; ++c) {
            if (!(mask & (1ULL << c)) || c == core)
                continue;
            CacheLine *other = l1s[c]->find(lineAddr);
            if (!other)
                continue;
            if (other->dirty) {
                l2res.line->data = other->data;
                l2res.line->dirty = true;
                other->dirty = false;
                other->fwb = false;
                cacheToCacheTransfers.inc();
                done += l1.latency();
            }
            if (for_store) {
                l1s[c]->invalidate(other);
                coherenceInvalidations.inc();
            }
        }
        if (for_store)
            it->second = 0;
    }

    CacheLine *victim = l1.victimFor(lineAddr);
    if (victim->valid)
        evictL1Line(core, victim);
    l1.install(victim, lineAddr);
    victim->data = l2res.line->data;
    sharersOf(lineAddr) |= 1ULL << core;

    return FillResult{victim, done + l1.latency(), false};
}

AccessResult
MemorySystem::load(CoreId core, Addr addr, std::uint32_t size, void *out,
                   Tick now)
{
    SNF_ASSERT(size > 0 && size <= 8, "load size %u", size);
    Addr line = lineOf(addr);
    SNF_ASSERT(lineOf(addr + size - 1) == line, "load crosses line");
    HitLevel level = HitLevel::L1;
    FillResult r = ensureInL1(core, line, now, false, level);
    std::memcpy(out, r.line->data.data() + (addr - line), size);
    return AccessResult{r.done, level};
}

AccessResult
MemorySystem::store(CoreId core, Addr addr, std::uint32_t size,
                    const void *in, Tick now, const StoreCtx &ctx)
{
    SNF_ASSERT(size > 0 && size <= 8, "store size %u", size);
    Addr line = lineOf(addr);
    SNF_ASSERT(lineOf(addr + size - 1) == line, "store crosses line");
    HitLevel level = HitLevel::L1;
    FillResult r = ensureInL1(core, line, now, true, level);

    std::uint8_t *p = r.line->data.data() + (addr - line);
    std::uint64_t old_val = 0;
    std::uint64_t new_val = 0;
    std::memcpy(&old_val, p, size);
    std::memcpy(&new_val, in, size);

    std::memcpy(p, in, size);
    r.line->dirty = true;
    l1s[core]->touch(r.line);

    Tick done = r.done;
    if (ctx.persistent && hook && cfg.map.isNvram(addr)) {
        Tick hd = hook->onPersistentStore(core, ctx.txSeq, addr, size,
                                          old_val, new_val, r.done);
        done = std::max(done, hd);
    }
    return AccessResult{done, level};
}

Tick
MemorySystem::uncacheableWrite(Addr addr, std::uint32_t size,
                               const void *in, Tick now)
{
    return wcbuf.append(addr, size, in, now);
}

Tick
MemorySystem::drainWcb(Tick now)
{
    return wcbuf.drainAll(now);
}

Tick
MemorySystem::clwb(CoreId core, Addr addr, Tick now)
{
    Addr line = lineOf(addr);
    Tick t = std::max(now, l1s[core]->busyUntil);

    // Step 1: any dirty L1 copy is written through to L2.
    auto it = directory.find(line);
    if (it != directory.end()) {
        std::uint64_t mask = it->second;
        for (CoreId c = 0; c < cfg.numCores; ++c) {
            if (!(mask & (1ULL << c)))
                continue;
            CacheLine *l1line = l1s[c]->find(line);
            if (l1line && l1line->dirty) {
                writebackL1ToL2(c, l1line);
                l1line->dirty = false;
                l1line->fwb = false;
                t += l1s[c]->latency();
            }
        }
    }

    // Step 2: a dirty L2 copy is written back to its device.
    CacheLine *l2line = l2.find(line);
    if (l2line && l2line->dirty) {
        Tick start = std::max(t, l2.busyUntil) + l2.latency();
        Tick preBarrier = start;
        start = barrierFor(line, start);
        MemDevice &dev = deviceFor(line);
        auto res = dev.access(true, line, l2.lineBytes(),
                              l2line->data.data(), nullptr, start,
                              false, PersistOrigin::Data,
                              wbIssueHint(preBarrier));
        l2line->dirty = false;
        l2line->fwb = false;
        l2.writebacks.inc();
        if (cfg.map.isNvram(line))
            busMonitor.onDataWriteback(line, start, res.done);
        return res.done;
    }
    return t + l2.latency();
}

FwbScanResult
MemorySystem::fwbScanAll(Tick now, double costPerLine)
{
    FwbScanResult out;

    // Forced write-backs are background traffic: the memory
    // controller trickles them out instead of bursting them all at
    // the scan instant, so demand accesses are not starved.
    const Tick wb_spacing =
        (cfg.nvram.writeConflictLat + cfg.nvram.burstCycles) /
            cfg.nvram.banks +
        1;
    Tick wb_issue = now;

    auto scan_cache = [&](Cache &cache, bool is_l1, CoreId core) {
        std::uint64_t scanned = 0;
        cache.forEachLine([&](CacheLine &line) {
            ++scanned;
            if (!line.valid || !cfg.map.isNvram(line.lineAddr)) {
                line.fwb = false;
                return;
            }
            if (!line.dirty) {
                // Eviction or write-back already cleaned it: IDLE.
                line.fwb = false;
                return;
            }
            if (!line.fwb) {
                // FLAG state: mark for write-back on the next pass.
                line.fwb = true;
                ++out.linesFlagged;
                return;
            }
            // {fwb,dirty} == {1,1}: force the write-back.
            if (is_l1) {
                writebackL1ToL2(core, &line);
                line.dirty = false;
                line.fwb = false;
            } else {
                MemDevice &dev = deviceFor(line.lineAddr);
                wb_issue += wb_spacing;
                Tick start = std::max(
                    wb_issue, barrierFor(line.lineAddr, now));
                auto res =
                    dev.access(true, line.lineAddr, cache.lineBytes(),
                               line.data.data(), nullptr, start,
                               false, PersistOrigin::Data,
                               wbIssueHint(wb_issue));
                line.dirty = false;
                line.fwb = false;
                cache.writebacks.inc();
                busMonitor.onDataWriteback(line.lineAddr, start,
                                           res.done);
                out.lastWritebackDone =
                    std::max(out.lastWritebackDone, res.done);
            }
            ++out.linesWrittenBack;
        });
        out.linesScanned += scanned;
        Tick busy = static_cast<Tick>(static_cast<double>(scanned) *
                                      costPerLine);
        cache.busyUntil = std::max(cache.busyUntil, now) + busy;
    };

    for (CoreId c = 0; c < cfg.numCores; ++c)
        scan_cache(*l1s[c], true, c);
    scan_cache(l2, false, 0);
    return out;
}

Tick
MemorySystem::flushAllDirty(Tick now)
{
    Tick done = now;
    for (CoreId c = 0; c < cfg.numCores; ++c) {
        l1s[c]->forEachLine([&](CacheLine &line) {
            if (line.valid && line.dirty) {
                writebackL1ToL2(c, &line);
                line.dirty = false;
                line.fwb = false;
            }
        });
    }
    l2.forEachLine([&](CacheLine &line) {
        if (line.valid && line.dirty) {
            MemDevice &dev = deviceFor(line.lineAddr);
            Tick start = barrierFor(line.lineAddr, now);
            auto res = dev.access(true, line.lineAddr, l2.lineBytes(),
                                  line.data.data(), nullptr, start,
                                  false, PersistOrigin::Data,
                                  wbIssueHint(now));
            line.dirty = false;
            line.fwb = false;
            l2.writebacks.inc();
            if (cfg.map.isNvram(line.lineAddr))
                busMonitor.onDataWriteback(line.lineAddr, now,
                                           res.done);
            done = std::max(done, res.done);
        }
    });
    done = std::max(done, wcbuf.drainAll(now));
    return done;
}

void
MemorySystem::syncStats()
{
    for (auto &l1 : l1s)
        l1->syncDemandStats();
    l2.syncDemandStats();
}

void
MemorySystem::invalidateAllCaches()
{
    for (auto &l1 : l1s)
        l1->invalidateAll();
    l2.invalidateAll();
    directory.clear();
    wcbuf.dropAll();
}

bool
MemorySystem::isLineDirtyAnywhere(Addr addr) const
{
    Addr line = addr & ~static_cast<Addr>(cfg.l1.lineBytes - 1);
    for (const auto &l1 : l1s) {
        const CacheLine *l = l1->find(line);
        if (l && l->dirty)
            return true;
    }
    const CacheLine *l = l2.find(line);
    return l && l->dirty;
}

} // namespace snf::mem
