/**
 * @file
 * Write-combining buffer for uncacheable stores (software log writes).
 *
 * Models the four-to-six entry cache-line-sized WCB of x86 processors
 * that the paper's software logging schemes write their uncacheable
 * log updates through (Sections II-B and III-A).
 */

#ifndef SNF_MEM_WRITE_COMBINE_BUFFER_HH
#define SNF_MEM_WRITE_COMBINE_BUFFER_HH

#include <deque>
#include <vector>

#include "mem/mem_device.hh"
#include "sim/probe.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace snf::mem
{

/**
 * A small FIFO of line-sized write-combining entries draining to one
 * memory device. Stores to an open line coalesce; allocating a new
 * line when full evicts (flushes) the oldest entry.
 */
class WriteCombineBuffer
{
  public:
    WriteCombineBuffer(MemDevice &device, std::uint32_t entries,
                       std::uint32_t lineBytes);

    /**
     * Append an uncacheable store of @p size <= 8 bytes.
     * @return the tick at which the issuing core may proceed (stalls
     *         only when the buffer is full of in-flight flushes).
     */
    Tick append(Addr addr, std::uint32_t size, const void *data,
                Tick now);

    /** Flush everything (fence); returns the last completion tick. */
    Tick drainAll(Tick now);

    /** Drop all un-flushed contents (crash model). */
    void dropAll();

    std::size_t occupancy() const { return entries.size(); }

    /** Crash-tooling probe: WcbFlush at each flush completion. */
    void setProbe(sim::ProbeFn p) { probe = std::move(p); }

    sim::StatGroup &stats() { return statGroup; }

  private:
    struct Entry
    {
        Addr lineAddr;
        std::uint32_t lo; ///< lowest dirty byte offset in line
        std::uint32_t hi; ///< one past highest dirty byte offset
        std::vector<std::uint8_t> data;
    };

    /** Flush the oldest entry; returns its completion tick. */
    Tick flushOldest(Tick now);

    MemDevice &dev;
    std::uint32_t capacity;
    std::uint32_t lineBytes;
    std::deque<Entry> entries;
    /** Completion ticks of issued flushes still in flight. */
    std::deque<Tick> inflight;
    Tick lastFlushDone = 0;
    sim::ProbeFn probe;
    sim::StatGroup statGroup; // must precede the counter references

  public:
    sim::Counter &coalescedStores;
    sim::Counter &flushes;
};

} // namespace snf::mem

#endif // SNF_MEM_WRITE_COMBINE_BUFFER_HH
