/**
 * @file
 * The memory-system protocol layer: per-core write-back write-allocate
 * L1 caches, a shared inclusive L2/LLC with a sharer directory, DRAM
 * and NVRAM devices, and the uncacheable write-combining path.
 *
 * All fill/write-back/coherence/clwb logic is concentrated here; the
 * Cache objects themselves are passive arrays. The persistence layer
 * hooks stores through PersistentStoreHook (HWL, Section III-B) and
 * drives FWB scans through fwbScanAll (Section IV-D).
 */

#ifndef SNF_MEM_MEMORY_SYSTEM_HH
#define SNF_MEM_MEMORY_SYSTEM_HH

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/system_config.hh"
#include "mem/bus_monitor.hh"
#include "mem/cache.hh"
#include "mem/mem_device.hh"
#include "mem/write_combine_buffer.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace snf::mem
{

/**
 * Interface the hardware-logging engine implements to observe every
 * persistent store at the L1 (old value from the write-allocated
 * line, new value from the in-flight store).
 */
class PersistentStoreHook
{
  public:
    virtual ~PersistentStoreHook() = default;

    /**
     * Called for each persistent store inside a transaction.
     * @return a tick the store must additionally wait for (log-buffer
     *         back-pressure), or @p now if none.
     */
    virtual Tick onPersistentStore(CoreId core, std::uint64_t txSeq,
                                   Addr addr, std::uint32_t size,
                                   std::uint64_t oldVal,
                                   std::uint64_t newVal, Tick now) = 0;
};

/** Which level serviced an access. */
enum class HitLevel
{
    L1 = 1,
    L2 = 2,
    Memory = 3,
};

/** Outcome of a cacheable access. */
struct AccessResult
{
    Tick done;
    HitLevel level;
};

/** Aggregate outcome of one FWB scan pass. */
struct FwbScanResult
{
    std::uint64_t linesScanned = 0;
    std::uint64_t linesFlagged = 0;
    std::uint64_t linesWrittenBack = 0;
    Tick lastWritebackDone = 0;
};

/** See file comment. */
class MemorySystem
{
  public:
    explicit MemorySystem(const SystemConfig &config);

    MemorySystem(const MemorySystem &) = delete;
    MemorySystem &operator=(const MemorySystem &) = delete;

    /**
     * Cacheable load of @p size <= 8 bytes (single line).
     */
    AccessResult load(CoreId core, Addr addr, std::uint32_t size,
                      void *out, Tick now);

    /** Transactional context of a store, for the HWL hook. */
    struct StoreCtx
    {
        bool persistent = false;
        std::uint64_t txSeq = 0;
    };

    /**
     * Cacheable store of @p size <= 8 bytes (single line), write-back
     * write-allocate. Triggers the persistent-store hook when
     * @p ctx.persistent and the address is in NVRAM.
     */
    AccessResult store(CoreId core, Addr addr, std::uint32_t size,
                       const void *in, Tick now, const StoreCtx &ctx);

    /** Non-transactional store (no HWL hook). */
    AccessResult
    store(CoreId core, Addr addr, std::uint32_t size, const void *in,
          Tick now)
    {
        return store(core, addr, size, in, now, StoreCtx{});
    }

    /**
     * Uncacheable store (software log write) through the WCB.
     * @return tick at which the issuing core may proceed.
     */
    Tick uncacheableWrite(Addr addr, std::uint32_t size, const void *in,
                          Tick now);

    /** Drain the WCB (memory barrier); returns last completion tick. */
    Tick drainWcb(Tick now);

    /**
     * clwb: force the line containing @p addr back to memory if dirty
     * anywhere. The line stays valid (clean).
     * @return the persist-completion tick the next fence must await.
     */
    Tick clwb(CoreId core, Addr addr, Tick now);

    /**
     * One FWB scan pass over every cache level: FLAG newly-dirty
     * lines, force-write-back lines flagged on the previous pass
     * (paper Figure 5). Only NVRAM-backed lines participate.
     * Charges @p costPerLine cycles of port busy time per scanned
     * line to each cache.
     */
    FwbScanResult fwbScanAll(Tick now, double costPerLine);

    /** Write back every dirty line (graceful shutdown). */
    Tick flushAllDirty(Tick now);

    /**
     * Fold the caches' batched demand hit/miss accumulators into
     * their named counters. Must run before any consumer reads or
     * dumps cache statistics (System::collectStats / dumpStats do).
     */
    void syncStats();

    /** Drop all cached state and the WCB (crash model). */
    void invalidateAllCaches();

    /** True if any cache holds a dirty copy of @p lineAddr's line. */
    bool isLineDirtyAnywhere(Addr addr) const;

    void setStoreHook(PersistentStoreHook *h) { hook = h; }

    /**
     * Barrier invoked before any NVRAM data write-back is put on the
     * memory bus. The hardware-logging configurations bind this to
     * the log buffer's drain so log records issued earlier reach
     * NVRAM first (the MC serializes its FIFO ahead of data writes,
     * Section III-E step 5). Returns the tick the write may start.
     */
    using DataWbBarrier = std::function<Tick(Tick)>;

    void setDataWbBarrier(DataWbBarrier b) { dataWbBarrier = std::move(b); }

    std::uint32_t lineBytes() const { return cfg.l1.lineBytes; }

    Addr
    lineOf(Addr a) const
    {
        return a & ~static_cast<Addr>(cfg.l1.lineBytes - 1);
    }

    MemDevice &nvram() { return nvramDev; }
    const MemDevice &nvram() const { return nvramDev; }
    MemDevice &dram() { return dramDev; }
    const MemDevice &dram() const { return dramDev; }
    Cache &l1(CoreId c) { return *l1s[c]; }
    const Cache &l1(CoreId c) const { return *l1s[c]; }
    Cache &l2Cache() { return l2; }
    const Cache &l2Cache() const { return l2; }
    WriteCombineBuffer &wcb() { return wcbuf; }
    BusMonitor &monitor() { return busMonitor; }

    sim::StatGroup &stats() { return statGroup; }

    const SystemConfig &config() const { return cfg; }

  private:
    struct FillResult
    {
        CacheLine *line;
        Tick done;
        bool hit;
    };

    MemDevice &deviceFor(Addr addr);

    /** Bring a line into L2, evicting as needed. */
    FillResult fillL2(Addr lineAddr, Tick now);

    /** Evict a valid L2 line: recall L1 copies, write back if dirty. */
    void evictL2Line(CacheLine *slot, Tick now);

    /** Evict a valid L1 line of @p core into the (inclusive) L2. */
    void evictL1Line(CoreId core, CacheLine *victim);

    /** Write a dirty L1 line's data into L2 without invalidating. */
    void writebackL1ToL2(CoreId core, CacheLine *line);

    /**
     * Get the line into core's L1 ready for a load or (exclusive)
     * store.
     */
    FillResult ensureInL1(CoreId core, Addr lineAddr, Tick now,
                          bool for_store, HitLevel &level);

    std::uint64_t &sharersOf(Addr lineAddr);
    void clearSharer(Addr lineAddr, CoreId core);

    SystemConfig cfg;
    sim::StatGroup statGroup;
    std::vector<std::unique_ptr<Cache>> l1s;
    Cache l2;
    MemDevice nvramDev;
    MemDevice dramDev;
    WriteCombineBuffer wcbuf;
    BusMonitor busMonitor;
    /** lineAddr -> bitmask of L1 caches holding the line. */
    std::unordered_map<Addr, std::uint64_t> directory;
    PersistentStoreHook *hook = nullptr;
    DataWbBarrier dataWbBarrier;

    /** Apply the log-drain barrier for an NVRAM data write-back. */
    Tick
    barrierFor(Addr lineAddr, Tick now)
    {
        if (dataWbBarrier && cfg.map.isNvram(lineAddr))
            return std::max(now, dataWbBarrier(now));
        return now;
    }

    /**
     * Journaled issue tick of a data write-back: normally the
     * post-barrier access tick (kTickNever = "use the access tick"),
     * but the injectSkipWbBarrier self-test reports the pre-barrier
     * tick, making the write-back concurrently pending with the log
     * drains the barrier waited on — without moving a single cycle.
     */
    Tick
    wbIssueHint(Tick preBarrier) const
    {
        return cfg.persist.injectSkipWbBarrier ? preBarrier
                                               : kTickNever;
    }

    sim::Counter &coherenceInvalidations;
    sim::Counter &cacheToCacheTransfers;
};

} // namespace snf::mem

#endif // SNF_MEM_MEMORY_SYSTEM_HH
