/**
 * @file
 * Persistent bad-line remap table (lifelab): a small CRC-protected,
 * dual-bank structure in a reserved NVRAM region that maps worn or
 * repeatedly-damaged 64-byte lines to spare lines. MemDevice consults
 * it on every access, so a promoted line's traffic transparently lands
 * on its spare — a permanent media fault becomes a survivable event.
 *
 * Atomic update protocol: the table alternates between two banks of
 * the remap region. An update serializes the whole table into the
 * *inactive* bank — entry area first, the header (which carries the
 * sequence number and the CRC over everything) last — so a crash at
 * any interior point leaves the previous bank untouched and the new
 * bank CRC-invalid. Readers pick the CRC-valid bank with the highest
 * sequence number: they always observe the old mapping or the new
 * mapping, never a torn one.
 *
 * The header doubles as the lifecycle superblock: it records the
 * persistent heap's bump-allocator cursor and the generation number,
 * which is what lets a recovered image resume execution (crashlab
 * Lifecycle) instead of only being verified.
 */

#ifndef SNF_MEM_REMAP_TABLE_HH
#define SNF_MEM_REMAP_TABLE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/types.hh"

namespace snf::mem
{

class BackingStore;

/** See file comment. */
class RemapTable
{
  public:
    static constexpr std::uint64_t kMagic = 0x534e46524d505401ULL;
    static constexpr std::uint32_t kHeaderBytes = 64;
    static constexpr std::uint32_t kEntryBytes = 16;
    static constexpr std::uint32_t kLineBytes = 64;

    /** One promoted line: all traffic to orig is served at spare. */
    struct Entry
    {
        Addr orig;
        Addr spare;
    };

    /**
     * A table over the remap region [remapBase, remapBase+remapSize)
     * (split into two banks) handing out spare lines from
     * [spareBase, spareBase+spareSize).
     */
    RemapTable(Addr remapBase, std::uint64_t remapSize, Addr spareBase,
               std::uint64_t spareSize);

    /** Max entries: bounded by bank space and by spare lines. */
    std::uint64_t capacity() const;

    std::uint64_t size() const { return table.size(); }

    bool full() const { return table.size() >= capacity(); }

    const std::vector<Entry> &entries() const { return table; }

    /** Spare line serving @p lineAddr, if promoted. */
    std::optional<Addr> find(Addr lineAddr) const;

    /**
     * Promote @p lineAddr (64-byte aligned): assign the next spare
     * line and return it, or nullopt when the table or spare area is
     * full or the line is already promoted. In-memory only — call
     * persist() to make it durable.
     */
    std::optional<Addr> add(Addr lineAddr);

    /** Sequence number of the last persisted state (0 = never). */
    std::uint64_t seq() const { return seqNo; }

    // Lifecycle superblock payload, persisted with the table.
    std::uint64_t heapCursor = 0; ///< persistent-heap allocated bytes
    std::uint64_t generation = 0; ///< lifecycle generation number

    /**
     * Writer callback: persist 64-byte-aligned chunks of the table
     * into NVRAM. Wired to timed device writes (live system), to
     * functional writes (setup), or to recovery's counted/translated
     * image writer (so crash-during-recovery sweeps can interrupt a
     * table update at any chunk).
     */
    using WriteFn =
        std::function<void(Addr, std::uint64_t, const void *)>;

    /**
     * Durably publish the current in-memory state into the inactive
     * bank (see file comment). @p maxWrites caps the number of chunk
     * writes issued — the atomicity unit tests use it to crash the
     * update at every interior point. @return true when the update
     * completed (the sequence number advances); false when it was cut
     * short (the in-memory state is unchanged and the half-written
     * bank is CRC-invalid by construction).
     */
    bool persist(const WriteFn &write,
                 std::uint64_t maxWrites = ~0ULL);

    /** Outcome of load(). */
    struct LoadResult
    {
        /** Neither bank valid and the whole region is zero: a table
         *  that was never persisted. */
        bool fresh = false;
        /** Neither bank valid but the region is nonzero: both copies
         *  damaged (or deliberately sabotaged) — the mapping is lost
         *  and the image must not be trusted. */
        bool corrupted = false;
        std::uint64_t entriesLoaded = 0;
    };

    /** Replace the in-memory state with the newest valid bank. */
    LoadResult load(const BackingStore &img);

    /** CRC-valid banks currently in @p img (0, 1 or 2). The online
     *  scrubber repairs redundancy when this drops below 2. */
    std::uint32_t validBanks(const BackingStore &img) const;

    /**
     * Structural self-check of the in-memory table: unique,
     * 64-byte-aligned original lines outside the remap/spare region,
     * spares in canonical allocation order.
     */
    bool wellFormed() const;

    /**
     * Test/sabotage helper: overwrite both bank headers with garbage
     * so load() reports corruption (drives the soak's WILL_FAIL
     * detection self-test).
     */
    static void sabotage(BackingStore &img, Addr remapBase,
                         std::uint64_t remapSize);

    Addr bankBase(std::uint32_t bank) const;

    std::uint64_t bankBytes() const { return regionSize / 2; }

  private:
    std::vector<std::uint8_t> serializeBank(std::uint64_t seq) const;
    bool parseBank(const BackingStore &img, std::uint32_t bank,
                   std::uint64_t &seqOut,
                   std::vector<Entry> &entriesOut,
                   std::uint64_t &cursorOut,
                   std::uint64_t &generationOut) const;

    Addr regionBase;
    std::uint64_t regionSize;
    Addr spareRegionBase;
    std::uint64_t spareRegionSize;
    std::uint64_t seqNo = 0;
    std::vector<Entry> table;
};

} // namespace snf::mem

#endif // SNF_MEM_REMAP_TABLE_HH
