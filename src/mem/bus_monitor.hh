/**
 * @file
 * NVRAM-bus ordering monitor checking the paper's inherent ordering
 * guarantee (Section III-B): a store's log record must arrive at
 * NVRAM no later than any write-back of the line it modified
 * (invariant I3 in DESIGN.md), and no live log entry may be
 * overwritten while its working data is still volatile (I4).
 */

#ifndef SNF_MEM_BUS_MONITOR_HH
#define SNF_MEM_BUS_MONITOR_HH

#include <deque>
#include <unordered_map>

#include "sim/probe.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace snf::mem
{

/**
 * Passive checker fed by the log buffer (append/drain events) and the
 * memory system (data-line write-back events). Violations increment
 * counters that tests assert to be zero for persistence-guaranteeing
 * modes.
 */
class BusMonitor
{
  public:
    BusMonitor();

    /** A log record covering @p dataLine was appended at @p tick. */
    void onLogAppend(Addr dataLine, Tick tick);

    /** That record's NVRAM write completes at @p drainTick. */
    void onLogDrain(Addr dataLine, Tick appendTick, Tick drainTick);

    /** A dirty data line was written back to NVRAM. */
    void onDataWriteback(Addr dataLine, Tick startTick, Tick doneTick);

    /** A live (unpersisted-data) log entry was overwritten. */
    void onLogOverwriteHazard();

    /**
     * Completion tick of the most recent NVRAM write-back of
     * @p dataLine; 0 if it was never written back.
     */
    Tick lastWritebackOf(Addr dataLine) const;

    void reset();

    /**
     * Crash-tooling probe: emits DataWriteback at every NVRAM
     * write-back completion this monitor observes.
     */
    void setProbe(sim::ProbeFn p) { probe = std::move(p); }

    sim::StatGroup &stats() { return statGroup; }

    std::uint64_t orderViolations() const { return orderViol.value(); }

    std::uint64_t overwriteHazards() const { return overwrite.value(); }

  private:
    struct PendingLog
    {
        Tick append;
        Tick drain;
    };

    sim::StatGroup statGroup;
    sim::Counter &orderViol;
    sim::Counter &overwrite;
    sim::Counter &checkedWritebacks;
    std::unordered_map<Addr, std::deque<PendingLog>> pending;
    std::unordered_map<Addr, Tick> lastWb;
    sim::ProbeFn probe;
};

} // namespace snf::mem

#endif // SNF_MEM_BUS_MONITOR_HH
