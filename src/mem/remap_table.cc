#include "mem/remap_table.hh"

#include <algorithm>
#include <cstring>

#include "mem/backing_store.hh"
#include "sim/logging.hh"

namespace snf::mem
{

namespace
{

/**
 * CRC32 (reflected, poly 0xEDB88320). Kept local so mem/ does not
 * depend on the persist/ log-record header; the polynomial matches
 * the log's slot CRC, so one hardware CRC unit would serve both.
 */
std::uint32_t
crc32(const std::uint8_t *data, std::uint64_t n)
{
    std::uint32_t crc = 0xffffffffu;
    for (std::uint64_t i = 0; i < n; ++i) {
        crc ^= data[i];
        for (int b = 0; b < 8; ++b)
            crc = (crc >> 1) ^ (0xedb88320u & (~(crc & 1u) + 1u));
    }
    return ~crc;
}

} // namespace

RemapTable::RemapTable(Addr remapBase, std::uint64_t remapSize,
                       Addr spareBase, std::uint64_t spareSize)
    : regionBase(remapBase),
      regionSize(remapSize),
      spareRegionBase(spareBase),
      spareRegionSize(spareSize)
{
    SNF_ASSERT(remapSize % (2 * kLineBytes) == 0,
               "remap region size %llu not bank-splittable",
               static_cast<unsigned long long>(remapSize));
    SNF_ASSERT(bankBytes() >= kHeaderBytes,
               "remap bank smaller than its header");
}

Addr
RemapTable::bankBase(std::uint32_t bank) const
{
    SNF_ASSERT(bank < 2, "remap bank %u out of range", bank);
    return regionBase + bank * bankBytes();
}

std::uint64_t
RemapTable::capacity() const
{
    std::uint64_t by_bank = (bankBytes() - kHeaderBytes) / kEntryBytes;
    std::uint64_t by_spares = spareRegionSize / kLineBytes;
    return std::min(by_bank, by_spares);
}

std::optional<Addr>
RemapTable::find(Addr lineAddr) const
{
    for (const Entry &e : table)
        if (e.orig == lineAddr)
            return e.spare;
    return std::nullopt;
}

std::optional<Addr>
RemapTable::add(Addr lineAddr)
{
    SNF_ASSERT((lineAddr & (kLineBytes - 1)) == 0,
               "remap of unaligned line %llx",
               static_cast<unsigned long long>(lineAddr));
    if (full() || find(lineAddr))
        return std::nullopt;
    Addr spare = spareRegionBase +
                 static_cast<Addr>(table.size()) * kLineBytes;
    table.push_back(Entry{lineAddr, spare});
    return spare;
}

std::vector<std::uint8_t>
RemapTable::serializeBank(std::uint64_t seq) const
{
    std::uint64_t n = table.size();
    std::vector<std::uint8_t> buf(kHeaderBytes + n * kEntryBytes, 0);
    std::memcpy(buf.data(), &kMagic, 8);
    std::memcpy(buf.data() + 8, &seq, 8);
    std::memcpy(buf.data() + 16, &n, 8);
    std::memcpy(buf.data() + 24, &heapCursor, 8);
    std::memcpy(buf.data() + 32, &generation, 8);
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint8_t *e = buf.data() + kHeaderBytes + i * kEntryBytes;
        std::memcpy(e, &table[i].orig, 8);
        std::memcpy(e + 8, &table[i].spare, 8);
    }
    // CRC over the whole serialized state with the CRC field zero.
    std::uint32_t crc = crc32(buf.data(), buf.size());
    std::memcpy(buf.data() + 40, &crc, 4);
    return buf;
}

bool
RemapTable::persist(const WriteFn &write, std::uint64_t maxWrites)
{
    std::uint64_t next_seq = seqNo + 1;
    std::vector<std::uint8_t> buf = serializeBank(next_seq);
    Addr bank = bankBase(static_cast<std::uint32_t>(next_seq % 2));
    SNF_ASSERT(buf.size() <= bankBytes(),
               "remap table overflows its bank");

    // Entry area first (64-byte chunks, ascending), header last: any
    // interrupted prefix leaves the bank without a matching CRC.
    std::uint64_t issued = 0;
    for (std::uint64_t off = kHeaderBytes; off < buf.size();
         off += kLineBytes) {
        if (issued >= maxWrites)
            return false;
        std::uint64_t n =
            std::min<std::uint64_t>(kLineBytes, buf.size() - off);
        write(bank + off, n, buf.data() + off);
        ++issued;
    }
    if (issued >= maxWrites)
        return false;
    write(bank, kHeaderBytes, buf.data());
    seqNo = next_seq;
    return true;
}

bool
RemapTable::parseBank(const BackingStore &img, std::uint32_t bank,
                      std::uint64_t &seqOut,
                      std::vector<Entry> &entriesOut,
                      std::uint64_t &cursorOut,
                      std::uint64_t &generationOut) const
{
    Addr base = bankBase(bank);
    std::uint8_t hdr[kHeaderBytes];
    img.read(base, kHeaderBytes, hdr);
    std::uint64_t magic, seq, n, cursor, gen;
    std::uint32_t crc;
    std::memcpy(&magic, hdr, 8);
    std::memcpy(&seq, hdr + 8, 8);
    std::memcpy(&n, hdr + 16, 8);
    std::memcpy(&cursor, hdr + 24, 8);
    std::memcpy(&gen, hdr + 32, 8);
    std::memcpy(&crc, hdr + 40, 4);
    if (magic != kMagic || seq == 0 ||
        n > (bankBytes() - kHeaderBytes) / kEntryBytes)
        return false;

    std::vector<std::uint8_t> buf(kHeaderBytes + n * kEntryBytes);
    img.read(base, buf.size(), buf.data());
    std::memset(buf.data() + 40, 0, 4);
    if (crc32(buf.data(), buf.size()) != crc)
        return false;

    entriesOut.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
        Entry e;
        std::memcpy(&e.orig, buf.data() + kHeaderBytes +
                                 i * kEntryBytes, 8);
        std::memcpy(&e.spare, buf.data() + kHeaderBytes +
                                  i * kEntryBytes + 8, 8);
        entriesOut.push_back(e);
    }
    seqOut = seq;
    cursorOut = cursor;
    generationOut = gen;
    return true;
}

RemapTable::LoadResult
RemapTable::load(const BackingStore &img)
{
    LoadResult res;
    std::uint64_t best_seq = 0, cursor = 0, gen = 0;
    std::vector<Entry> best;
    for (std::uint32_t b = 0; b < 2; ++b) {
        std::uint64_t seq, c, g;
        std::vector<Entry> e;
        if (parseBank(img, b, seq, e, c, g) && seq > best_seq) {
            best_seq = seq;
            best = std::move(e);
            cursor = c;
            gen = g;
        }
    }
    if (best_seq == 0) {
        // Distinguish never-written from damaged: a fresh region is
        // all zero.
        std::vector<std::uint8_t> raw(regionSize);
        img.read(regionBase, regionSize, raw.data());
        bool nonzero = std::any_of(raw.begin(), raw.end(),
                                   [](std::uint8_t v) { return v; });
        res.fresh = !nonzero;
        res.corrupted = nonzero;
        seqNo = 0;
        table.clear();
        heapCursor = 0;
        generation = 0;
        return res;
    }
    seqNo = best_seq;
    table = std::move(best);
    heapCursor = cursor;
    generation = gen;
    res.entriesLoaded = table.size();
    return res;
}

std::uint32_t
RemapTable::validBanks(const BackingStore &img) const
{
    std::uint32_t valid = 0;
    for (std::uint32_t b = 0; b < 2; ++b) {
        std::uint64_t seq, c, g;
        std::vector<Entry> e;
        if (parseBank(img, b, seq, e, c, g))
            ++valid;
    }
    return valid;
}

bool
RemapTable::wellFormed() const
{
    if (table.size() > capacity())
        return false;
    for (std::size_t i = 0; i < table.size(); ++i) {
        const Entry &e = table[i];
        if ((e.orig & (kLineBytes - 1)) != 0)
            return false;
        // Original lines must live outside the remap/spare metadata
        // (remapping the table through itself would recurse).
        if (e.orig >= regionBase &&
            e.orig < spareRegionBase + spareRegionSize)
            return false;
        if (e.spare != spareRegionBase +
                           static_cast<Addr>(i) * kLineBytes)
            return false;
        for (std::size_t j = 0; j < i; ++j)
            if (table[j].orig == e.orig)
                return false;
    }
    return true;
}

void
RemapTable::sabotage(BackingStore &img, Addr remapBase,
                     std::uint64_t remapSize)
{
    // Garbage magic in both bank headers: no bank can validate and
    // the region is manifestly nonzero, so load() must report
    // corruption rather than silently starting fresh.
    std::uint64_t garbage = 0xdeadbeefcafef00dULL;
    img.write64(remapBase, garbage);
    img.write64(remapBase + remapSize / 2, garbage);
}

} // namespace snf::mem
