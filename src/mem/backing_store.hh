/**
 * @file
 * Sparse byte-accurate backing store for a simulated memory device,
 * with an optional timestamped write journal used to reconstruct the
 * device image as of a simulated crash instant.
 */

#ifndef SNF_MEM_BACKING_STORE_HH
#define SNF_MEM_BACKING_STORE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace snf::mem
{

/**
 * Byte storage for a [base, base+size) physical range. Pages are
 * allocated lazily and zero-filled. When journaling is enabled, every
 * write is recorded with its completion tick so snapshotAt() can
 * rebuild the exact persistent image at any earlier tick.
 */
class BackingStore
{
  public:
    BackingStore(Addr base, std::uint64_t size);

    /** Read @p size bytes at @p addr into @p out. */
    void read(Addr addr, std::uint64_t size, void *out) const;

    /**
     * Write @p size bytes. @p doneTick is the simulated completion
     * time, recorded if journaling is on.
     */
    void write(Addr addr, std::uint64_t size, const void *in,
               Tick doneTick = 0);

    /** Convenience 64-bit accessors. */
    std::uint64_t read64(Addr addr) const;
    void write64(Addr addr, std::uint64_t v, Tick doneTick = 0);

    /**
     * Start journaling writes. Clones the current image as the
     * snapshot base; prior contents are the tick-0 state.
     */
    void enableJournal();

    bool journalEnabled() const { return journalOn; }

    /** Number of journal records accumulated so far. */
    std::size_t journalSize() const { return journal.size(); }

    /**
     * Reconstruct the device image as of @p tick: the journal-base
     * image plus every journaled write with doneTick <= @p tick,
     * applied in completion-tick order (the bus serializes by
     * completion, not by issue). Requires enableJournal().
     */
    BackingStore snapshotAt(Tick tick) const;

    /**
     * Replace this store's contents with @p other's (same range
     * required). If journaling is on, the adopted image becomes the
     * new journal base and the journal restarts empty — used by the
     * lifecycle driver to resume a system on a recovered image while
     * keeping crash snapshots of the new generation possible.
     */
    void assignFrom(const BackingStore &other);

    /**
     * Visit every journaled write with doneTick <= @p maxTick as
     * (addr, size). Lifecycle's cross-generation invariant I9 uses
     * this to exclude legitimately-overwritten lines.
     */
    void forEachJournalWrite(
        Tick maxTick,
        const std::function<void(Addr, std::uint64_t)> &fn) const;

    /**
     * Lowest address in [from, from+size) at which this store and
     * @p other differ (absent pages compare as zero), or nullopt if
     * the ranges are byte-identical. Both stores must cover the
     * range. Compares page-wise, so sparse images stay cheap.
     */
    std::optional<Addr> firstDifference(const BackingStore &other,
                                        Addr from,
                                        std::uint64_t size) const;

    Addr base() const { return rangeBase; }

    std::uint64_t size() const { return rangeSize; }

    bool
    contains(Addr addr, std::uint64_t sz) const
    {
        return addr >= rangeBase && addr + sz <= rangeBase + rangeSize;
    }

  private:
    static constexpr std::uint64_t kPageBytes = 4096;

    struct JournalEntry
    {
        Tick done;
        Addr addr;
        std::vector<std::uint8_t> bytes;
    };

    const std::uint8_t *pagePtr(std::uint64_t pageIdx) const;
    std::uint8_t *pagePtrMut(std::uint64_t pageIdx);

    void rawWrite(Addr addr, std::uint64_t size, const void *in);

    Addr rangeBase;
    std::uint64_t rangeSize;
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> pages;

    bool journalOn = false;
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>>
        journalBase;
    std::vector<JournalEntry> journal;
};

} // namespace snf::mem

#endif // SNF_MEM_BACKING_STORE_HH
