/**
 * @file
 * Sparse byte-accurate backing store for a simulated memory device,
 * with an optional timestamped write journal used to reconstruct the
 * device image as of a simulated crash instant.
 *
 * Snapshot engine (perf): pages are immutable-by-sharing and
 * copy-on-write (`shared_ptr`-backed), so cloning an image is
 * O(pages present) pointer copies instead of byte copies; the journal
 * keeps a lazily built completion-tick index with materialized
 * checkpoints every K entries, so snapshotAt(t) replays only the
 * delta past the nearest checkpoint instead of the whole journal; and
 * journal entries store payloads of up to 32 bytes (the common
 * line/word write) inline, eliminating one heap allocation per
 * journaled NVRAM write. The monotone Cursor turns a sequence of
 * ascending-tick snapshots (a crash sweep) into a single incremental
 * replay: O(journal + points × delta) instead of O(points × journal).
 */

#ifndef SNF_MEM_BACKING_STORE_HH
#define SNF_MEM_BACKING_STORE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace snf::mem
{

/**
 * Byte storage for a [base, base+size) physical range. Pages are
 * allocated lazily and zero-filled. When journaling is enabled, every
 * write is recorded with its completion tick so snapshotAt() can
 * rebuild the exact persistent image at any earlier tick.
 *
 * Thread safety: concurrent const use (snapshotAt, read,
 * firstDifference, Cursor) on a quiescent store is safe — the lazy
 * snapshot index is built once under an internal lock, and page
 * sharing is via atomic shared_ptr refcounts. Mutation requires
 * exclusive access, as before.
 */
class BackingStore
{
  public:
    BackingStore(Addr base, std::uint64_t size);

    BackingStore(const BackingStore &other);
    BackingStore(BackingStore &&other) noexcept;
    BackingStore &operator=(const BackingStore &other);
    BackingStore &operator=(BackingStore &&other) noexcept;

    /** Read @p size bytes at @p addr into @p out. */
    void read(Addr addr, std::uint64_t size, void *out) const;

    /**
     * Write @p size bytes. @p doneTick is the simulated completion
     * time, recorded if journaling is on. @p issueTick is the tick the
     * write was accepted onto the NVRAM channel and @p origin who
     * issued it; together they let crash tooling recover the pending
     * set (issue <= t < done) at any crash tick. The default
     * issueTick (kTickNever) means "issue == done": the write is
     * never pending, which is correct for functional/zero-time writes
     * and keeps every legacy call site inert under reorder sweeps.
     */
    void write(Addr addr, std::uint64_t size, const void *in,
               Tick doneTick = 0, Tick issueTick = kTickNever,
               PersistOrigin origin = PersistOrigin::Functional);

    /** Convenience 64-bit accessors. */
    std::uint64_t read64(Addr addr) const;
    void write64(Addr addr, std::uint64_t v, Tick doneTick = 0);

    /**
     * Sparse read view: pointer to the resident bytes at @p addr, or
     * nullptr when the covering page was never written (the range
     * reads as zero). @p avail receives the number of contiguous
     * bytes from @p addr to the end of that page and of the store
     * range — the extent of the returned pointer's validity, or, for
     * nullptr, the extent known to read as zero. Bulk scanners (the
     * recovery slot scan) use this to skip untouched pages without
     * copying them.
     */
    const std::uint8_t *pageAt(Addr addr, std::uint64_t *avail) const;

    /**
     * Start journaling writes. Clones the current image as the
     * snapshot base; prior contents are the tick-0 state.
     */
    void enableJournal();

    bool journalEnabled() const { return journalOn; }

    /** Number of journal records accumulated so far. */
    std::size_t journalSize() const { return journal.size(); }

    /**
     * Set the journal-checkpoint interval: a materialized image is
     * kept every @p k journal entries (in completion-tick order), and
     * snapshotAt(t) replays only the delta past the nearest
     * checkpoint at or before t. 0 disables checkpoints (every
     * snapshot replays the full prefix — the naive reference mode the
     * equivalence tests and sweep_perf compare against). Resets any
     * index already built.
     */
    void setCheckpointInterval(std::size_t k);

    std::size_t checkpointInterval() const { return ckptInterval; }

    /**
     * Build the completion-tick index and checkpoints now (they are
     * otherwise built lazily by the first snapshotAt/Cursor). Exposed
     * so sweeps can time the build as its own phase.
     */
    void buildSnapshotIndex() const { ensureIndex(); }

    /** Checkpoints materialized by the last index build. */
    std::size_t checkpointCount() const;

    /** Journal entries replayed by snapshots/cursors so far. */
    std::uint64_t entriesReplayed() const { return statReplayed; }

    /** Pages cloned by copy-on-write so far. */
    std::uint64_t pagesCloned() const { return statCloned; }

    /**
     * Reconstruct the device image as of @p tick: the journal-base
     * image plus every journaled write with doneTick <= @p tick,
     * applied in completion-tick order (the bus serializes by
     * completion, not by issue). Requires enableJournal(). The
     * returned image shares unmodified pages with this store
     * (copy-on-write), so the call is O(pages + replay delta).
     */
    BackingStore snapshotAt(Tick tick) const;

    /**
     * Incremental snapshot construction for monotone tick sequences.
     * imageAt(t) advances an internal image by exactly the journal
     * delta since the previous call and returns a COW copy, so a
     * whole ascending sweep costs one journal replay total. Ticks
     * must be non-decreasing across calls. The source store must
     * outlive the cursor and stay unmodified while it is used.
     */
    class Cursor
    {
      public:
        explicit Cursor(const BackingStore &source);
        ~Cursor();

        Cursor(const Cursor &) = delete;
        Cursor &operator=(const Cursor &) = delete;

        /** The image as of @p t (>= the previous call's tick). */
        BackingStore imageAt(Tick t);

      private:
        const BackingStore *src;
        /** Working image (pointer: BackingStore is incomplete here). */
        std::unique_ptr<BackingStore> image;
        std::size_t pos = 0; ///< sorted journal entries applied
        Tick lastTick = 0;
        bool started = false;
    };

    /**
     * Replace this store's contents with @p other's (same range
     * required). If journaling is on, the adopted image becomes the
     * new journal base and the journal restarts empty — used by the
     * lifecycle driver to resume a system on a recovered image while
     * keeping crash snapshots of the new generation possible.
     */
    void assignFrom(const BackingStore &other);

    /**
     * Visit every journaled write with doneTick <= @p maxTick as
     * (addr, size). Lifecycle's cross-generation invariant I9 uses
     * this to exclude legitimately-overwritten lines.
     */
    void forEachJournalWrite(
        Tick maxTick,
        const std::function<void(Addr, std::uint64_t)> &fn) const;

    /**
     * Read-only view of one journaled write, including the persist
     * metadata reorderlab needs. @p data points into the journal and
     * is valid while the store is alive and unmodified. @p seq is the
     * journal issue-order index (the snapshot replay tiebreak).
     */
    struct JournalRecord
    {
        Tick issue;
        Tick done;
        Addr addr;
        std::uint32_t size;
        PersistOrigin origin;
        std::uint32_t seq;
        const std::uint8_t *data;
    };

    /** Visit every journaled write in issue (append) order. */
    void forEachJournalRecord(
        const std::function<void(const JournalRecord &)> &fn) const;

    /**
     * Lowest address in [from, from+size) at which this store and
     * @p other differ (absent pages compare as zero), or nullopt if
     * the ranges are byte-identical. Both stores must cover the
     * range. Compares page-wise and skips pages the two stores share
     * (COW siblings diff only where they actually diverged), so
     * sparse images stay cheap.
     */
    std::optional<Addr> firstDifference(const BackingStore &other,
                                        Addr from,
                                        std::uint64_t size) const;

    Addr base() const { return rangeBase; }

    std::uint64_t size() const { return rangeSize; }

    bool
    contains(Addr addr, std::uint64_t sz) const
    {
        return addr >= rangeBase && addr + sz <= rangeBase + rangeSize;
    }

  private:
    static constexpr std::uint64_t kPageBytes = 4096;
    static constexpr std::size_t kDefaultCheckpointInterval = 1024;

    struct Page
    {
        std::uint8_t bytes[kPageBytes];
    };
    using PageRef = std::shared_ptr<Page>;
    using PageMap = std::unordered_map<std::uint64_t, PageRef>;

    /**
     * One journaled write. Payloads of up to kInlineCapacity bytes
     * (the common case: words, log slots, half-lines) live inside the
     * entry; larger ones on the heap.
     */
    class JournalEntry
    {
      public:
        JournalEntry(Tick done, Tick issue, PersistOrigin origin,
                     Addr addr, const void *src, std::uint64_t len);
        JournalEntry(const JournalEntry &other);
        JournalEntry(JournalEntry &&other) noexcept;
        JournalEntry &operator=(const JournalEntry &other);
        JournalEntry &operator=(JournalEntry &&other) noexcept;
        ~JournalEntry();

        Tick done;
        /** Channel-acceptance tick; == done for non-pending writes. */
        Tick issue;
        Addr addr;
        PersistOrigin origin;

        std::uint32_t size() const { return len; }

        const std::uint8_t *
        data() const
        {
            return len <= kInlineCapacity ? inlineBytes : heapBytes;
        }

      private:
        static constexpr std::uint32_t kInlineCapacity = 32;

        void adopt(const void *src, std::uint64_t n);
        void release();

        std::uint32_t len;
        union
        {
            std::uint8_t inlineBytes[kInlineCapacity];
            std::uint8_t *heapBytes;
        };
    };

    /** Image after the first `count` index entries, for delta replay. */
    struct Checkpoint
    {
        Tick lastDone;     ///< doneTick of the last entry included
        std::size_t count; ///< index entries materialized
        PageMap pages;
    };

    const Page *pagePtr(std::uint64_t pageIdx) const;
    std::uint8_t *pagePtrMut(std::uint64_t pageIdx);

    void rawWrite(Addr addr, std::uint64_t size, const void *in);

    void copyFrom(const BackingStore &other);
    void moveFrom(BackingStore &&other) noexcept;
    void invalidateIndex();
    void ensureIndex() const;

    /** Largest checkpoint with lastDone <= tick, or nullptr. */
    const Checkpoint *checkpointFor(Tick tick) const;

    Addr rangeBase;
    std::uint64_t rangeSize;
    PageMap pages;

    bool journalOn = false;
    PageMap journalBase;
    std::vector<JournalEntry> journal;
    std::size_t ckptInterval = kDefaultCheckpointInterval;

    /** Lazily built snapshot index (guarded by indexMutex). */
    mutable std::mutex indexMutex;
    mutable bool indexValid = false;
    mutable std::size_t indexedEntries = 0;
    /** Journal indices, sorted by (doneTick, issue order). */
    mutable std::vector<std::uint32_t> sortedIdx;
    mutable std::vector<Checkpoint> checkpoints;

    mutable std::atomic<std::uint64_t> statReplayed{0};
    mutable std::atomic<std::uint64_t> statCloned{0};
};

} // namespace snf::mem

#endif // SNF_MEM_BACKING_STORE_HH
