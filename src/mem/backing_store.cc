#include "mem/backing_store.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace snf::mem
{

BackingStore::BackingStore(Addr base, std::uint64_t size)
    : rangeBase(base), rangeSize(size)
{
}

const std::uint8_t *
BackingStore::pagePtr(std::uint64_t pageIdx) const
{
    auto it = pages.find(pageIdx);
    return it == pages.end() ? nullptr : it->second.data();
}

std::uint8_t *
BackingStore::pagePtrMut(std::uint64_t pageIdx)
{
    auto &page = pages[pageIdx];
    if (page.empty())
        page.assign(kPageBytes, 0);
    return page.data();
}

void
BackingStore::read(Addr addr, std::uint64_t size, void *out) const
{
    SNF_ASSERT(contains(addr, size),
               "read [%llx,+%llu) outside store range",
               static_cast<unsigned long long>(addr),
               static_cast<unsigned long long>(size));
    auto *dst = static_cast<std::uint8_t *>(out);
    std::uint64_t off = addr - rangeBase;
    while (size > 0) {
        std::uint64_t page = off / kPageBytes;
        std::uint64_t in_page = off % kPageBytes;
        std::uint64_t n = std::min(size, kPageBytes - in_page);
        const std::uint8_t *src = pagePtr(page);
        if (src)
            std::memcpy(dst, src + in_page, n);
        else
            std::memset(dst, 0, n);
        dst += n;
        off += n;
        size -= n;
    }
}

void
BackingStore::rawWrite(Addr addr, std::uint64_t size, const void *in)
{
    const auto *src = static_cast<const std::uint8_t *>(in);
    std::uint64_t off = addr - rangeBase;
    while (size > 0) {
        std::uint64_t page = off / kPageBytes;
        std::uint64_t in_page = off % kPageBytes;
        std::uint64_t n = std::min(size, kPageBytes - in_page);
        std::memcpy(pagePtrMut(page) + in_page, src, n);
        src += n;
        off += n;
        size -= n;
    }
}

void
BackingStore::write(Addr addr, std::uint64_t size, const void *in,
                    Tick doneTick)
{
    SNF_ASSERT(contains(addr, size),
               "write [%llx,+%llu) outside store range",
               static_cast<unsigned long long>(addr),
               static_cast<unsigned long long>(size));
    rawWrite(addr, size, in);
    if (journalOn) {
        JournalEntry e;
        e.done = doneTick;
        e.addr = addr;
        e.bytes.assign(static_cast<const std::uint8_t *>(in),
                       static_cast<const std::uint8_t *>(in) + size);
        journal.push_back(std::move(e));
    }
}

std::uint64_t
BackingStore::read64(Addr addr) const
{
    std::uint64_t v = 0;
    read(addr, sizeof(v), &v);
    return v;
}

void
BackingStore::write64(Addr addr, std::uint64_t v, Tick doneTick)
{
    write(addr, sizeof(v), &v, doneTick);
}

void
BackingStore::enableJournal()
{
    SNF_ASSERT(!journalOn, "journal already enabled");
    journalOn = true;
    journalBase = pages;
    journal.clear();
}

BackingStore
BackingStore::snapshotAt(Tick tick) const
{
    SNF_ASSERT(journalOn, "snapshotAt without journaling");
    BackingStore snap(rangeBase, rangeSize);
    snap.pages = journalBase;
    for (const auto &e : journal) {
        if (e.done <= tick)
            snap.rawWrite(e.addr, e.bytes.size(), e.bytes.data());
    }
    return snap;
}

} // namespace snf::mem
