#include "mem/backing_store.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace snf::mem
{

// --- JournalEntry (small-buffer payload storage) ---------------------

void
BackingStore::JournalEntry::adopt(const void *src, std::uint64_t n)
{
    SNF_ASSERT(n <= ~std::uint32_t{0}, "journal write of %llu bytes",
               static_cast<unsigned long long>(n));
    len = static_cast<std::uint32_t>(n);
    if (len <= kInlineCapacity) {
        std::memcpy(inlineBytes, src, len);
    } else {
        heapBytes = new std::uint8_t[len];
        std::memcpy(heapBytes, src, len);
    }
}

void
BackingStore::JournalEntry::release()
{
    if (len > kInlineCapacity)
        delete[] heapBytes;
    len = 0;
}

BackingStore::JournalEntry::JournalEntry(Tick done_, Tick issue_,
                                         PersistOrigin origin_,
                                         Addr addr_, const void *src,
                                         std::uint64_t n)
    : done(done_), issue(issue_), addr(addr_), origin(origin_)
{
    adopt(src, n);
}

BackingStore::JournalEntry::JournalEntry(const JournalEntry &other)
    : done(other.done), issue(other.issue), addr(other.addr),
      origin(other.origin)
{
    adopt(other.data(), other.len);
}

BackingStore::JournalEntry::JournalEntry(JournalEntry &&other) noexcept
    : done(other.done), issue(other.issue), addr(other.addr),
      origin(other.origin), len(other.len)
{
    if (len <= kInlineCapacity)
        std::memcpy(inlineBytes, other.inlineBytes, len);
    else
        heapBytes = other.heapBytes;
    other.len = 0; // heap payload (if any) now owned here
}

BackingStore::JournalEntry &
BackingStore::JournalEntry::operator=(const JournalEntry &other)
{
    if (this == &other)
        return *this;
    release();
    done = other.done;
    issue = other.issue;
    addr = other.addr;
    origin = other.origin;
    adopt(other.data(), other.len);
    return *this;
}

BackingStore::JournalEntry &
BackingStore::JournalEntry::operator=(JournalEntry &&other) noexcept
{
    if (this == &other)
        return *this;
    release();
    done = other.done;
    issue = other.issue;
    addr = other.addr;
    origin = other.origin;
    len = other.len;
    if (len <= kInlineCapacity)
        std::memcpy(inlineBytes, other.inlineBytes, len);
    else
        heapBytes = other.heapBytes;
    other.len = 0;
    return *this;
}

BackingStore::JournalEntry::~JournalEntry()
{
    release();
}

// --- construction / copying ------------------------------------------

BackingStore::BackingStore(Addr base, std::uint64_t size)
    : rangeBase(base), rangeSize(size)
{
}

void
BackingStore::copyFrom(const BackingStore &other)
{
    rangeBase = other.rangeBase;
    rangeSize = other.rangeSize;
    pages = other.pages;
    journalOn = other.journalOn;
    journalBase = other.journalBase;
    journal = other.journal;
    ckptInterval = other.ckptInterval;
    indexValid = other.indexValid;
    indexedEntries = other.indexedEntries;
    sortedIdx = other.sortedIdx;
    checkpoints = other.checkpoints;
    statReplayed = other.statReplayed.load();
    statCloned = other.statCloned.load();
}

void
BackingStore::moveFrom(BackingStore &&other) noexcept
{
    rangeBase = other.rangeBase;
    rangeSize = other.rangeSize;
    pages = std::move(other.pages);
    journalOn = other.journalOn;
    journalBase = std::move(other.journalBase);
    journal = std::move(other.journal);
    ckptInterval = other.ckptInterval;
    indexValid = other.indexValid;
    indexedEntries = other.indexedEntries;
    sortedIdx = std::move(other.sortedIdx);
    checkpoints = std::move(other.checkpoints);
    statReplayed = other.statReplayed.load();
    statCloned = other.statCloned.load();
    other.indexValid = false;
    other.indexedEntries = 0;
}

BackingStore::BackingStore(const BackingStore &other)
{
    copyFrom(other);
}

BackingStore::BackingStore(BackingStore &&other) noexcept
{
    moveFrom(std::move(other));
}

BackingStore &
BackingStore::operator=(const BackingStore &other)
{
    if (this != &other)
        copyFrom(other);
    return *this;
}

BackingStore &
BackingStore::operator=(BackingStore &&other) noexcept
{
    if (this != &other)
        moveFrom(std::move(other));
    return *this;
}

// --- page access (copy-on-write) -------------------------------------

const BackingStore::Page *
BackingStore::pagePtr(std::uint64_t pageIdx) const
{
    auto it = pages.find(pageIdx);
    return it == pages.end() ? nullptr : it->second.get();
}

std::uint8_t *
BackingStore::pagePtrMut(std::uint64_t pageIdx)
{
    PageRef &ref = pages[pageIdx];
    if (!ref) {
        ref = std::make_shared<Page>(); // value-initialized: zeroed
    } else if (ref.use_count() > 1) {
        // Shared with a snapshot, checkpoint, or sibling image:
        // clone before the first write diverges us from them.
        ref = std::make_shared<Page>(*ref);
        statCloned.fetch_add(1, std::memory_order_relaxed);
    }
    return ref->bytes;
}

void
BackingStore::read(Addr addr, std::uint64_t size, void *out) const
{
    SNF_ASSERT(contains(addr, size),
               "read [%llx,+%llu) outside store range",
               static_cast<unsigned long long>(addr),
               static_cast<unsigned long long>(size));
    auto *dst = static_cast<std::uint8_t *>(out);
    std::uint64_t off = addr - rangeBase;
    while (size > 0) {
        std::uint64_t page = off / kPageBytes;
        std::uint64_t in_page = off % kPageBytes;
        std::uint64_t n = std::min(size, kPageBytes - in_page);
        const Page *src = pagePtr(page);
        if (src)
            std::memcpy(dst, src->bytes + in_page, n);
        else
            std::memset(dst, 0, n);
        dst += n;
        off += n;
        size -= n;
    }
}

const std::uint8_t *
BackingStore::pageAt(Addr addr, std::uint64_t *avail) const
{
    SNF_ASSERT(contains(addr, 1),
               "pageAt %llx outside store range",
               static_cast<unsigned long long>(addr));
    const std::uint64_t off = addr - rangeBase;
    const std::uint64_t inPage = off % kPageBytes;
    *avail = std::min(kPageBytes - inPage, rangeSize - off);
    const Page *p = pagePtr(off / kPageBytes);
    return p ? p->bytes + inPage : nullptr;
}

void
BackingStore::rawWrite(Addr addr, std::uint64_t size, const void *in)
{
    static const Page kZeroPage{};
    const auto *src = static_cast<const std::uint8_t *>(in);
    std::uint64_t off = addr - rangeBase;
    while (size > 0) {
        std::uint64_t page = off / kPageBytes;
        std::uint64_t in_page = off % kPageBytes;
        std::uint64_t n = std::min(size, kPageBytes - in_page);
        // Writing zeros to a page never written leaves the byte image
        // unchanged (absent pages read as zero): skip the allocation
        // so bulk zeroing (log truncation) keeps the store sparse and
        // later sparse scans can skip the pages outright.
        if (pagePtr(page) == nullptr &&
            std::memcmp(src, kZeroPage.bytes, n) == 0) {
            src += n;
            off += n;
            size -= n;
            continue;
        }
        std::memcpy(pagePtrMut(page) + in_page, src, n);
        src += n;
        off += n;
        size -= n;
    }
}

void
BackingStore::write(Addr addr, std::uint64_t size, const void *in,
                    Tick doneTick, Tick issueTick, PersistOrigin origin)
{
    SNF_ASSERT(contains(addr, size),
               "write [%llx,+%llu) outside store range",
               static_cast<unsigned long long>(addr),
               static_cast<unsigned long long>(size));
    rawWrite(addr, size, in);
    if (journalOn) {
        // Default issue == done: the write is never observed as
        // pending, so untimed call sites stay inert under reorder.
        Tick issue = issueTick == kTickNever ? doneTick
                                             : std::min(issueTick, doneTick);
        journal.emplace_back(doneTick, issue, origin, addr, in, size);
    }
}

std::uint64_t
BackingStore::read64(Addr addr) const
{
    std::uint64_t v = 0;
    // Fast path: an in-range word that does not straddle a page is
    // one hash lookup + one 8-byte copy; the generic loop handles the
    // page-straddling and out-of-range (assert) cases.
    const std::uint64_t off = addr - rangeBase;
    if (addr >= rangeBase && off + sizeof(v) <= rangeSize &&
        off % kPageBytes <= kPageBytes - sizeof(v)) {
        if (const Page *src = pagePtr(off / kPageBytes))
            std::memcpy(&v, src->bytes + off % kPageBytes, sizeof(v));
        return v;
    }
    read(addr, sizeof(v), &v);
    return v;
}

void
BackingStore::write64(Addr addr, std::uint64_t v, Tick doneTick)
{
    write(addr, sizeof(v), &v, doneTick);
}

// --- journal / snapshot index ----------------------------------------

void
BackingStore::enableJournal()
{
    SNF_ASSERT(!journalOn, "journal already enabled");
    journalOn = true;
    journalBase = pages; // COW share: O(pages) pointer copies
    journal.clear();
    invalidateIndex();
}

void
BackingStore::setCheckpointInterval(std::size_t k)
{
    ckptInterval = k;
    invalidateIndex();
}

void
BackingStore::invalidateIndex()
{
    std::lock_guard<std::mutex> guard(indexMutex);
    indexValid = false;
    indexedEntries = 0;
    sortedIdx.clear();
    checkpoints.clear();
}

std::size_t
BackingStore::checkpointCount() const
{
    std::lock_guard<std::mutex> guard(indexMutex);
    return checkpoints.size();
}

void
BackingStore::ensureIndex() const
{
    std::lock_guard<std::mutex> guard(indexMutex);
    if (indexValid && indexedEntries == journal.size())
        return;

    // Writes are journaled in issue order but can complete out of
    // order (bank conflicts, read priority); at the crash instant the
    // device holds the value of the *latest-completing* write, so
    // replay order is (completion tick, issue order) — the index
    // tiebreak makes the sort stable.
    sortedIdx.resize(journal.size());
    for (std::uint32_t i = 0; i < sortedIdx.size(); ++i)
        sortedIdx[i] = i;
    std::sort(sortedIdx.begin(), sortedIdx.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                  if (journal[a].done != journal[b].done)
                      return journal[a].done < journal[b].done;
                  return a < b;
              });

    // Materialize a checkpoint image every ckptInterval entries. The
    // working image and every checkpoint share pages copy-on-write,
    // so each checkpoint costs O(pages) pointer copies plus one clone
    // per page touched in the following interval.
    checkpoints.clear();
    if (ckptInterval != 0 && journal.size() >= ckptInterval) {
        BackingStore work(rangeBase, rangeSize);
        work.pages = journalBase;
        std::size_t applied = 0;
        for (std::uint32_t idx : sortedIdx) {
            const JournalEntry &e = journal[idx];
            work.rawWrite(e.addr, e.size(), e.data());
            ++applied;
            if (applied % ckptInterval == 0) {
                checkpoints.push_back(
                    Checkpoint{e.done, applied, work.pages});
            }
        }
        statCloned.fetch_add(work.statCloned.load(),
                             std::memory_order_relaxed);
    }

    indexValid = true;
    indexedEntries = journal.size();
}

const BackingStore::Checkpoint *
BackingStore::checkpointFor(Tick tick) const
{
    // Last checkpoint whose newest entry completed at or before tick;
    // lastDone values are non-decreasing in checkpoint order.
    auto it = std::upper_bound(
        checkpoints.begin(), checkpoints.end(), tick,
        [](Tick t, const Checkpoint &c) { return t < c.lastDone; });
    if (it == checkpoints.begin())
        return nullptr;
    return &*(it - 1);
}

BackingStore
BackingStore::snapshotAt(Tick tick) const
{
    SNF_ASSERT(journalOn, "snapshotAt without journaling");
    ensureIndex();

    BackingStore snap(rangeBase, rangeSize);
    std::size_t start = 0;
    if (const Checkpoint *ck = checkpointFor(tick)) {
        snap.pages = ck->pages;
        start = ck->count;
    } else {
        snap.pages = journalBase;
    }
    std::uint64_t replayed = 0;
    for (std::size_t i = start; i < sortedIdx.size(); ++i) {
        const JournalEntry &e = journal[sortedIdx[i]];
        if (e.done > tick)
            break;
        snap.rawWrite(e.addr, e.size(), e.data());
        ++replayed;
    }
    statReplayed.fetch_add(replayed, std::memory_order_relaxed);
    statCloned.fetch_add(snap.statCloned.load(),
                         std::memory_order_relaxed);
    snap.statCloned = 0;
    return snap;
}

// --- monotone cursor --------------------------------------------------

BackingStore::Cursor::Cursor(const BackingStore &source)
    : src(&source),
      image(std::make_unique<BackingStore>(source.rangeBase,
                                           source.rangeSize))
{
    SNF_ASSERT(source.journalOn, "Cursor without journaling");
    source.ensureIndex();
    image->pages = source.journalBase;
}

BackingStore::Cursor::~Cursor() = default;

BackingStore
BackingStore::Cursor::imageAt(Tick t)
{
    SNF_ASSERT(!started || t >= lastTick,
               "Cursor ticks must be non-decreasing (%llu after %llu)",
               static_cast<unsigned long long>(t),
               static_cast<unsigned long long>(lastTick));
    started = true;
    lastTick = t;

    // Fast-forward through checkpoints when that skips at least one
    // full interval of replay; re-basing the image is only O(pages)
    // pointer copies.
    if (const Checkpoint *ck = src->checkpointFor(t)) {
        if (ck->count > pos &&
            ck->count - pos >= std::max<std::size_t>(
                                   1, src->ckptInterval / 2)) {
            image->pages = ck->pages;
            pos = ck->count;
        }
    }

    std::uint64_t replayed = 0;
    while (pos < src->sortedIdx.size()) {
        const JournalEntry &e = src->journal[src->sortedIdx[pos]];
        if (e.done > t)
            break;
        image->rawWrite(e.addr, e.size(), e.data());
        ++pos;
        ++replayed;
    }
    src->statReplayed.fetch_add(replayed, std::memory_order_relaxed);
    src->statCloned.fetch_add(image->statCloned.load(),
                              std::memory_order_relaxed);
    image->statCloned = 0;
    return *image; // COW copy: O(pages) pointer copies
}

// --- whole-image operations ------------------------------------------

void
BackingStore::assignFrom(const BackingStore &other)
{
    SNF_ASSERT(rangeBase == other.rangeBase &&
                   rangeSize == other.rangeSize,
               "assignFrom with mismatched store geometry");
    pages = other.pages; // COW share
    if (journalOn) {
        journalBase = pages;
        journal.clear();
        invalidateIndex();
    }
}

void
BackingStore::forEachJournalWrite(
    Tick maxTick,
    const std::function<void(Addr, std::uint64_t)> &fn) const
{
    for (const auto &e : journal)
        if (e.done <= maxTick)
            fn(e.addr, e.size());
}

void
BackingStore::forEachJournalRecord(
    const std::function<void(const JournalRecord &)> &fn) const
{
    for (std::uint32_t i = 0; i < journal.size(); ++i) {
        const JournalEntry &e = journal[i];
        fn(JournalRecord{e.issue, e.done, e.addr, e.size(), e.origin,
                         i, e.data()});
    }
}

std::optional<Addr>
BackingStore::firstDifference(const BackingStore &other, Addr from,
                              std::uint64_t size) const
{
    SNF_ASSERT(rangeBase == other.rangeBase,
               "firstDifference needs equal store bases");
    SNF_ASSERT(contains(from, size) && other.contains(from, size),
               "firstDifference range outside store");
    static const Page kZeroPage{};
    std::uint64_t first_page = (from - rangeBase) / kPageBytes;
    std::uint64_t last_off = from - rangeBase + size; // exclusive
    std::uint64_t last_page = (last_off + kPageBytes - 1) / kPageBytes;
    // Only pages present in either store can differ (absent pages
    // read as zero), so visit those instead of walking the whole
    // range: the range can be gigabytes while the touched set is a
    // few hundred pages.
    std::vector<std::uint64_t> candidates;
    candidates.reserve(pages.size() + other.pages.size());
    for (const auto &kv : pages)
        if (kv.first >= first_page && kv.first < last_page)
            candidates.push_back(kv.first);
    for (const auto &kv : other.pages)
        if (kv.first >= first_page && kv.first < last_page)
            candidates.push_back(kv.first);
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(
        std::unique(candidates.begin(), candidates.end()),
        candidates.end());
    for (std::uint64_t p : candidates) {
        const Page *a = pagePtr(p);
        const Page *b = other.pagePtr(p);
        if (a == b) // both absent, or one COW-shared page
            continue;
        const std::uint8_t *pa = a ? a->bytes : kZeroPage.bytes;
        const std::uint8_t *pb = b ? b->bytes : kZeroPage.bytes;
        std::uint64_t lo = std::max<std::uint64_t>(
            p * kPageBytes, from - rangeBase);
        std::uint64_t hi =
            std::min<std::uint64_t>((p + 1) * kPageBytes, last_off);
        for (std::uint64_t off = lo; off < hi; ++off) {
            std::uint64_t in_page = off % kPageBytes;
            if (pa[in_page] != pb[in_page])
                return rangeBase + off;
        }
    }
    return std::nullopt;
}

} // namespace snf::mem
