#include "mem/backing_store.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace snf::mem
{

BackingStore::BackingStore(Addr base, std::uint64_t size)
    : rangeBase(base), rangeSize(size)
{
}

const std::uint8_t *
BackingStore::pagePtr(std::uint64_t pageIdx) const
{
    auto it = pages.find(pageIdx);
    return it == pages.end() ? nullptr : it->second.data();
}

std::uint8_t *
BackingStore::pagePtrMut(std::uint64_t pageIdx)
{
    auto &page = pages[pageIdx];
    if (page.empty())
        page.assign(kPageBytes, 0);
    return page.data();
}

void
BackingStore::read(Addr addr, std::uint64_t size, void *out) const
{
    SNF_ASSERT(contains(addr, size),
               "read [%llx,+%llu) outside store range",
               static_cast<unsigned long long>(addr),
               static_cast<unsigned long long>(size));
    auto *dst = static_cast<std::uint8_t *>(out);
    std::uint64_t off = addr - rangeBase;
    while (size > 0) {
        std::uint64_t page = off / kPageBytes;
        std::uint64_t in_page = off % kPageBytes;
        std::uint64_t n = std::min(size, kPageBytes - in_page);
        const std::uint8_t *src = pagePtr(page);
        if (src)
            std::memcpy(dst, src + in_page, n);
        else
            std::memset(dst, 0, n);
        dst += n;
        off += n;
        size -= n;
    }
}

void
BackingStore::rawWrite(Addr addr, std::uint64_t size, const void *in)
{
    const auto *src = static_cast<const std::uint8_t *>(in);
    std::uint64_t off = addr - rangeBase;
    while (size > 0) {
        std::uint64_t page = off / kPageBytes;
        std::uint64_t in_page = off % kPageBytes;
        std::uint64_t n = std::min(size, kPageBytes - in_page);
        std::memcpy(pagePtrMut(page) + in_page, src, n);
        src += n;
        off += n;
        size -= n;
    }
}

void
BackingStore::write(Addr addr, std::uint64_t size, const void *in,
                    Tick doneTick)
{
    SNF_ASSERT(contains(addr, size),
               "write [%llx,+%llu) outside store range",
               static_cast<unsigned long long>(addr),
               static_cast<unsigned long long>(size));
    rawWrite(addr, size, in);
    if (journalOn) {
        JournalEntry e;
        e.done = doneTick;
        e.addr = addr;
        e.bytes.assign(static_cast<const std::uint8_t *>(in),
                       static_cast<const std::uint8_t *>(in) + size);
        journal.push_back(std::move(e));
    }
}

std::uint64_t
BackingStore::read64(Addr addr) const
{
    std::uint64_t v = 0;
    read(addr, sizeof(v), &v);
    return v;
}

void
BackingStore::write64(Addr addr, std::uint64_t v, Tick doneTick)
{
    write(addr, sizeof(v), &v, doneTick);
}

void
BackingStore::enableJournal()
{
    SNF_ASSERT(!journalOn, "journal already enabled");
    journalOn = true;
    journalBase = pages;
    journal.clear();
}

BackingStore
BackingStore::snapshotAt(Tick tick) const
{
    SNF_ASSERT(journalOn, "snapshotAt without journaling");
    BackingStore snap(rangeBase, rangeSize);
    snap.pages = journalBase;
    // Writes are journaled in issue order but can complete out of
    // order (bank conflicts, read priority); at the crash instant the
    // device holds the value of the *latest-completing* write, so
    // replay in completion order. The sort is stable: simultaneous
    // completions keep issue order.
    std::vector<const JournalEntry *> replay;
    replay.reserve(journal.size());
    for (const auto &e : journal)
        if (e.done <= tick)
            replay.push_back(&e);
    std::stable_sort(replay.begin(), replay.end(),
                     [](const JournalEntry *a, const JournalEntry *b) {
                         return a->done < b->done;
                     });
    for (const JournalEntry *e : replay)
        snap.rawWrite(e->addr, e->bytes.size(), e->bytes.data());
    return snap;
}

void
BackingStore::assignFrom(const BackingStore &other)
{
    SNF_ASSERT(rangeBase == other.rangeBase &&
                   rangeSize == other.rangeSize,
               "assignFrom with mismatched store geometry");
    pages = other.pages;
    if (journalOn) {
        journalBase = pages;
        journal.clear();
    }
}

void
BackingStore::forEachJournalWrite(
    Tick maxTick,
    const std::function<void(Addr, std::uint64_t)> &fn) const
{
    for (const auto &e : journal)
        if (e.done <= maxTick)
            fn(e.addr, e.bytes.size());
}

std::optional<Addr>
BackingStore::firstDifference(const BackingStore &other, Addr from,
                              std::uint64_t size) const
{
    SNF_ASSERT(rangeBase == other.rangeBase,
               "firstDifference needs equal store bases");
    SNF_ASSERT(contains(from, size) && other.contains(from, size),
               "firstDifference range outside store");
    static const std::vector<std::uint8_t> kZeroPage(kPageBytes, 0);
    std::uint64_t first_page = (from - rangeBase) / kPageBytes;
    std::uint64_t last_off = from - rangeBase + size; // exclusive
    std::uint64_t last_page = (last_off + kPageBytes - 1) / kPageBytes;
    // Only pages present in either store can differ (absent pages
    // read as zero), so visit those instead of walking the whole
    // range: the range can be gigabytes while the touched set is a
    // few hundred pages.
    std::vector<std::uint64_t> candidates;
    candidates.reserve(pages.size() + other.pages.size());
    for (const auto &kv : pages)
        if (kv.first >= first_page && kv.first < last_page)
            candidates.push_back(kv.first);
    for (const auto &kv : other.pages)
        if (kv.first >= first_page && kv.first < last_page)
            candidates.push_back(kv.first);
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(
        std::unique(candidates.begin(), candidates.end()),
        candidates.end());
    for (std::uint64_t p : candidates) {
        const std::uint8_t *a = pagePtr(p);
        const std::uint8_t *b = other.pagePtr(p);
        if (a == nullptr && b == nullptr)
            continue;
        const std::uint8_t *pa = a ? a : kZeroPage.data();
        const std::uint8_t *pb = b ? b : kZeroPage.data();
        std::uint64_t lo = std::max<std::uint64_t>(
            p * kPageBytes, from - rangeBase);
        std::uint64_t hi =
            std::min<std::uint64_t>((p + 1) * kPageBytes, last_off);
        for (std::uint64_t off = lo; off < hi; ++off) {
            std::uint64_t in_page = off % kPageBytes;
            if (pa[in_page] != pb[in_page])
                return rangeBase + off;
        }
    }
    return std::nullopt;
}

} // namespace snf::mem
