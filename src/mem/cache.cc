#include "mem/cache.hh"

#include "sim/logging.hh"

namespace snf::mem
{

Cache::Cache(std::string name, const CacheConfig &config)
    : cacheName(std::move(name)),
      cfg(config),
      statGroup(cacheName),
      hits(statGroup.counter("hits")),
      misses(statGroup.counter("misses")),
      evictions(statGroup.counter("evictions")),
      writebacks(statGroup.counter("writebacks"))
{
    SNF_ASSERT(cfg.lineBytes >= 2, "line size too small for tag "
               "sentinel in %s", cacheName.c_str());
    lines.resize(cfg.numLines());
    for (auto &l : lines)
        l.data.assign(cfg.lineBytes, 0);
    tags.assign(cfg.numLines(), kInvalidTag);
}

std::uint32_t
Cache::setIndex(Addr lineAddr) const
{
    return static_cast<std::uint32_t>(
        (lineAddr / cfg.lineBytes) & (cfg.numSets() - 1));
}

CacheLine *
Cache::victimFor(Addr lineAddr)
{
    std::uint32_t set = setIndex(lineAddr);
    CacheLine *base = &lines[static_cast<std::size_t>(set) * cfg.ways];
    CacheLine *victim = nullptr;
    for (std::uint32_t w = 0; w < cfg.ways; ++w) {
        CacheLine &l = base[w];
        if (!l.valid)
            return &l;
        if (!victim || l.lastUse < victim->lastUse)
            victim = &l;
    }
    return victim;
}

void
Cache::install(CacheLine *slot, Addr lineAddr)
{
    SNF_ASSERT(!slot->valid, "install over a valid line in %s",
               cacheName.c_str());
    SNF_ASSERT(lineOf(lineAddr) == lineAddr, "unaligned line address");
    slot->lineAddr = lineAddr;
    slot->valid = true;
    slot->dirty = false;
    slot->fwb = false;
    tags[static_cast<std::size_t>(slot - lines.data())] = lineAddr;
    touch(slot);
}

void
Cache::touch(CacheLine *line)
{
    line->lastUse = ++useClock;
}

void
Cache::invalidate(CacheLine *line)
{
    line->valid = false;
    line->dirty = false;
    line->fwb = false;
    tags[static_cast<std::size_t>(line - lines.data())] = kInvalidTag;
}

void
Cache::invalidateAll()
{
    for (auto &l : lines)
        invalidate(&l);
}

} // namespace snf::mem
