#include "mem/bus_monitor.hh"

namespace snf::mem
{

BusMonitor::BusMonitor()
    : statGroup("bus_monitor"),
      orderViol(statGroup.counter("order_violations")),
      overwrite(statGroup.counter("overwrite_hazards")),
      checkedWritebacks(statGroup.counter("checked_writebacks"))
{
}

void
BusMonitor::onLogAppend(Addr dataLine, Tick tick)
{
    pending[dataLine].push_back(PendingLog{tick, kTickNever});
}

void
BusMonitor::onLogDrain(Addr dataLine, Tick appendTick, Tick drainTick)
{
    auto it = pending.find(dataLine);
    if (it == pending.end())
        return;
    for (auto &p : it->second) {
        if (p.append == appendTick && p.drain == kTickNever) {
            p.drain = drainTick;
            return;
        }
    }
}

Tick
BusMonitor::lastWritebackOf(Addr dataLine) const
{
    auto it = lastWb.find(dataLine);
    return it == lastWb.end() ? 0 : it->second;
}

void
BusMonitor::onDataWriteback(Addr dataLine, Tick startTick, Tick doneTick)
{
    lastWb[dataLine] = doneTick;
    if (probe)
        probe(sim::ProbeEvent::DataWriteback, doneTick, dataLine);
    auto it = pending.find(dataLine);
    if (it == pending.end())
        return;
    checkedWritebacks.inc();
    auto &dq = it->second;
    for (auto p = dq.begin(); p != dq.end();) {
        // Records appended before this write-back started must have
        // drained by the time the data reaches NVRAM.
        if (p->append <= startTick &&
            (p->drain == kTickNever || p->drain > doneTick)) {
            orderViol.inc();
        }
        if (p->drain != kTickNever && p->drain <= doneTick)
            p = dq.erase(p);
        else
            ++p;
    }
    if (dq.empty())
        pending.erase(it);
}

void
BusMonitor::onLogOverwriteHazard()
{
    overwrite.inc();
}

void
BusMonitor::reset()
{
    pending.clear();
    lastWb.clear();
    statGroup.resetAll();
}

} // namespace snf::mem
