#include "mem/mem_device.hh"

#include <algorithm>
#include <cstring>
#include <limits>
#include <vector>

#include "sim/logging.hh"

namespace snf::mem
{

MemDevice::MemDevice(std::string name, const MemDeviceConfig &config,
                     Addr base)
    : devName(std::move(name)),
      cfg(config),
      baseAddr(base),
      backing(base, config.sizeBytes),
      faults(config.faults, config.rowBytes),
      banks(config.banks),
      statGroup(devName),
      reads(statGroup.counter("reads")),
      writes(statGroup.counter("writes")),
      readBytes(statGroup.counter("read_bytes")),
      writeBytes(statGroup.counter("write_bytes")),
      rowHits(statGroup.counter("row_hits")),
      rowConflicts(statGroup.counter("row_conflicts")),
      readEnergyPj(statGroup.scalar("read_energy_pj")),
      writeEnergyPj(statGroup.scalar("write_energy_pj")),
      faultBitFlips(statGroup.counter("fault_bit_flips")),
      faultMultiBit(statGroup.counter("fault_multi_bit")),
      faultTornLines(statGroup.counter("fault_torn_lines")),
      faultDroppedWrites(statGroup.counter("fault_dropped_writes")),
      faultStuckWords(statGroup.counter("fault_stuck_words")),
      faultExaminedBytes(statGroup.counter("fault_examined_bytes")),
      remappedLines(statGroup.counter("remapped_lines"))
{
    if (cfg.remapSize != 0)
        remapTable = std::make_unique<RemapTable>(
            cfg.remapBase, cfg.remapSize, cfg.spareBase, cfg.spareSize);
    fastMedia = !faults.enabled();
}

void
MemDevice::rebuildLineMap()
{
    lineMap.clear();
    if (remapTable) {
        for (const RemapTable::Entry &e : remapTable->entries())
            lineMap.emplace(e.orig, e.spare);
    }
    fastMedia = lineMap.empty() && !faults.enabled();
}

Addr
MemDevice::translate(Addr addr) const
{
    if (lineMap.empty())
        return addr;
    Addr line = addr & ~static_cast<Addr>(RemapTable::kLineBytes - 1);
    auto it = lineMap.find(line);
    if (it == lineMap.end())
        return addr;
    return it->second + (addr - line);
}

void
MemDevice::mediaRead(Addr addr, std::uint64_t size, void *out) const
{
    if (lineMap.empty()) {
        backing.read(addr, size, out);
        return;
    }
    auto *dst = static_cast<std::uint8_t *>(out);
    while (size > 0) {
        Addr line_end =
            (addr | (RemapTable::kLineBytes - 1)) + 1;
        std::uint64_t n = std::min<std::uint64_t>(size,
                                                  line_end - addr);
        backing.read(translate(addr), n, dst);
        dst += n;
        addr += n;
        size -= n;
    }
}

void
MemDevice::mediaWrite(Addr addr, std::uint64_t size, const void *in,
                      Tick done, Tick issue, PersistOrigin origin)
{
    const auto *src = static_cast<const std::uint8_t *>(in);
    if (fastMedia) {
        backing.write(addr, size, in, done, issue, origin);
        return;
    }
    if (lineMap.empty()) {
        // Legacy faultlab path (no promoted lines): damage the whole
        // buffer at its logical address, bit-identical to pre-lifelab
        // behavior.
        std::vector<std::uint8_t> fresh(size), old(size);
        std::memcpy(fresh.data(), in, size);
        backing.read(addr, size, old.data());
        FaultCounters fc =
            faults.apply(addr, size, fresh.data(), old.data(), done);
        faultBitFlips.inc(fc.bitFlips);
        faultMultiBit.inc(fc.multiBit);
        faultTornLines.inc(fc.tornLines);
        faultDroppedWrites.inc(fc.droppedWrites);
        faultStuckWords.inc(fc.stuckWords);
        faultExaminedBytes.inc(fc.examinedBytes);
        backing.write(addr, size, fresh.data(), done, issue, origin);
        return;
    }
    // Promoted lines exist: split by 64-byte line and land each
    // segment at its physical (possibly spare) address. Faults are
    // hashed on the physical address, so remapping away from a stuck
    // row genuinely heals it.
    while (size > 0) {
        Addr line_end =
            (addr | (RemapTable::kLineBytes - 1)) + 1;
        std::uint64_t n = std::min<std::uint64_t>(size,
                                                  line_end - addr);
        Addr phys = translate(addr);
        if (faults.enabled()) {
            std::vector<std::uint8_t> fresh(n), old(n);
            std::memcpy(fresh.data(), src, n);
            backing.read(phys, n, old.data());
            FaultCounters fc = faults.apply(phys, n, fresh.data(),
                                            old.data(), done);
            faultBitFlips.inc(fc.bitFlips);
            faultMultiBit.inc(fc.multiBit);
            faultTornLines.inc(fc.tornLines);
            faultDroppedWrites.inc(fc.droppedWrites);
            faultStuckWords.inc(fc.stuckWords);
            faultExaminedBytes.inc(fc.examinedBytes);
            backing.write(phys, n, fresh.data(), done, issue, origin);
        } else {
            backing.write(phys, n, src, done, issue, origin);
        }
        src += n;
        addr += n;
        size -= n;
    }
}

std::uint64_t
MemDevice::rowOf(Addr addr) const
{
    return (addr - baseAddr) / cfg.rowBytes;
}

std::uint32_t
MemDevice::bankOf(std::uint64_t row) const
{
    return static_cast<std::uint32_t>(row % cfg.banks);
}

MemDevice::Result
MemDevice::access(bool write, Addr addr, std::uint64_t size,
                  const void *wdata, void *rdata, Tick now,
                  bool priorityWrite, PersistOrigin origin,
                  Tick issueHint)
{
    SNF_ASSERT(size > 0, "zero-size device access");
    // Fault parity by construction: every timed write landing in the
    // durable log region must take the serialized priority channel
    // with a log/metadata origin — the one path the fault injector
    // instruments and the controller FIFO orders. A backend growing a
    // log write path that bypasses this trips here, not in a flaky
    // probabilistic test.
    SNF_ASSERT(!write || logRegionSize == 0 ||
                   addr + size <= logRegionBase ||
                   addr >= logRegionBase + logRegionSize ||
                   (priorityWrite && origin != PersistOrigin::Data &&
                    origin != PersistOrigin::Functional),
               "timed log-region write [%llx,+%llu) off the priority "
               "log channel (origin %s)",
               static_cast<unsigned long long>(addr),
               static_cast<unsigned long long>(size),
               persistOriginName(origin));
    // Shard parity (shardlab): a timed log write must lie entirely
    // within one shard's slice of the log region. A straddling write
    // means a record was routed to the wrong shard — it would corrupt
    // the neighbor shard's header or slot array silently.
    SNF_ASSERT(!write || logRegionSize == 0 || logShardCount == 1 ||
                   addr + size <= logRegionBase ||
                   addr >= logRegionBase + logRegionSize ||
                   (addr - logRegionBase) /
                           (logRegionSize / logShardCount) ==
                       (addr + size - 1 - logRegionBase) /
                           (logRegionSize / logShardCount),
               "timed log write [%llx,+%llu) straddles shard slices "
               "(%u shards over [%llx,+%llu))",
               static_cast<unsigned long long>(addr),
               static_cast<unsigned long long>(size), logShardCount,
               static_cast<unsigned long long>(logRegionBase),
               static_cast<unsigned long long>(logRegionSize));
    std::uint64_t row = rowOf(addr);
    Bank &bank = banks[bankOf(row)];

    bool row_hit = bank.openRow == static_cast<std::int64_t>(row);
    Tick start;
    Tick lat;
    if (!write) {
        // Demand reads have priority over the write queue.
        start = std::max({now, readChannelBusy, bank.readBusyUntil});
        lat = row_hit ? cfg.rowHitLat : cfg.readConflictLat;
    } else if (priorityWrite) {
        // Ordering-critical log writes bypass queued data
        // write-backs but yield to in-flight reads. The controller
        // batches this sequential stream (FR-FCFS), so it gets
        // streaming service: row-hit latency plus the per-row
        // activation cost amortized over the row, independent of
        // interleaved demand traffic's row state.
        start = std::max({now, logChannelBusy,
                          bank.logWriteBusyUntil,
                          bank.readBusyUntil});
        lat = sequentialWriteCycles(size) - cfg.burstCycles;
        row_hit = true;
    } else {
        // Posted data write-backs drain behind everything else.
        start = std::max({now, writeChannelBusy,
                          bank.dataWriteBusyUntil,
                          bank.logWriteBusyUntil,
                          bank.readBusyUntil});
        lat = row_hit ? cfg.rowHitLat : cfg.writeConflictLat;
    }
    Tick service_end = start + lat + cfg.burstCycles;
    // Writes are persistent once accepted into the ADR-protected
    // controller/DIMM queue (start + burst); the bank stays busy for
    // the full cell-write latency, which is what bounds bandwidth.
    // Reads must wait for the data: full latency.
    Tick done = write ? start + cfg.burstCycles : service_end;

    if (!write) {
        bank.openRow = static_cast<std::int64_t>(row);
        bank.readBusyUntil = service_end;
        readChannelBusy = start + cfg.burstCycles;
    } else if (priorityWrite) {
        // Streaming log writes manage their own row locality and do
        // not close the demand stream's open row.
        bank.logWriteBusyUntil = service_end;
        logChannelBusy = start + cfg.burstCycles;
    } else {
        bank.openRow = static_cast<std::int64_t>(row);
        bank.dataWriteBusyUntil = service_end;
        writeChannelBusy = start + cfg.burstCycles;
    }

    double bits = static_cast<double>(size) * 8.0;
    if (write) {
        writes.inc();
        writeBytes.inc(size);
        if (cachedRowCount == nullptr || row != cachedRow) {
            cachedRowCount = &rowWrites[row];
            cachedRow = row;
        }
        ++*cachedRowCount;
        // PCM cells are written from the row buffer; array write
        // energy applies to the written bits, row-buffer energy to
        // the access itself.
        writeEnergyPj.add(bits *
                          (cfg.rowWritePjBit + cfg.arrayWritePjBit));
        // Timing and energy were charged above on the logical
        // address; mediaWrite handles fault injection and remap
        // translation of the bytes that land. The issue tick (now)
        // rides along so crash tooling sees the write as pending over
        // [now, done).
        if (wdata)
            mediaWrite(addr, size, wdata, done,
                       issueHint == kTickNever ? now : issueHint,
                       origin);
    } else {
        reads.inc();
        readBytes.inc(size);
        readEnergyPj.add(bits * cfg.rowReadPjBit);
        if (!row_hit)
            readEnergyPj.add(bits * cfg.arrayReadPjBit);
        if (rdata)
            mediaRead(addr, size, rdata);
    }
    if (row_hit)
        rowHits.inc();
    else
        rowConflicts.inc();

    return Result{done, row_hit};
}

void
MemDevice::functionalRead(Addr addr, std::uint64_t size, void *out) const
{
    mediaRead(addr, size, out);
}

void
MemDevice::functionalWrite(Addr addr, std::uint64_t size, const void *in)
{
    if (lineMap.empty()) {
        backing.write(addr, size, in, 0);
        return;
    }
    const auto *src = static_cast<const std::uint8_t *>(in);
    while (size > 0) {
        Addr line_end = (addr | (RemapTable::kLineBytes - 1)) + 1;
        std::uint64_t n = std::min<std::uint64_t>(size,
                                                  line_end - addr);
        backing.write(translate(addr), n, src, 0);
        src += n;
        addr += n;
        size -= n;
    }
}

bool
MemDevice::remapLine(Addr lineAddr, Tick now)
{
    if (!remapTable)
        return false;
    lineAddr &= ~static_cast<Addr>(RemapTable::kLineBytes - 1);
    // Reject lines inside the remap/spare metadata itself — mapping
    // the table through itself would recurse.
    if (lineAddr >= cfg.remapBase &&
        lineAddr < cfg.spareBase + cfg.spareSize)
        return false;
    std::uint8_t buf[RemapTable::kLineBytes];
    mediaRead(lineAddr, sizeof(buf), buf);
    std::optional<Addr> spare = remapTable->add(lineAddr);
    if (!spare)
        return false;
    // Copy the line's current bytes to its spare, then durably
    // publish the mapping; traffic switches over only afterwards, so
    // an interrupted promotion leaves the old (valid) table in force.
    access(true, *spare, sizeof(buf), buf, nullptr, now, true,
           PersistOrigin::Meta);
    bool ok = remapTable->persist(
        [this, now](Addr a, std::uint64_t n, const void *d) {
            access(true, a, n, d, nullptr, now, true,
                   PersistOrigin::Meta);
        });
    SNF_ASSERT(ok, "uncapped remap-table persist cannot fail");
    rebuildLineMap();
    remappedLines.inc();
    return true;
}

RemapTable::LoadResult
MemDevice::reloadRemap()
{
    SNF_ASSERT(remapTable, "reloadRemap without a remap region");
    RemapTable::LoadResult res = remapTable->load(backing);
    rebuildLineMap();
    return res;
}

void
MemDevice::updateSuperblock(std::uint64_t heapCursor,
                            std::uint64_t generation)
{
    SNF_ASSERT(remapTable, "superblock without a remap region");
    remapTable->heapCursor = heapCursor;
    remapTable->generation = generation;
    bool ok = remapTable->persist(
        [this](Addr a, std::uint64_t n, const void *d) {
            backing.write(a, n, d, 0);
        });
    SNF_ASSERT(ok, "uncapped superblock persist cannot fail");
}

Tick
MemDevice::earliestDone(Addr addr, bool write, Tick now) const
{
    std::uint64_t row = rowOf(addr);
    const Bank &bank = banks[bankOf(row)];
    bool row_hit = bank.openRow == static_cast<std::int64_t>(row);
    Tick start =
        write ? std::max({now, writeChannelBusy,
                          bank.dataWriteBusyUntil,
                          bank.logWriteBusyUntil, bank.readBusyUntil})
              : std::max({now, readChannelBusy, bank.readBusyUntil});
    Tick lat = row_hit
                   ? cfg.rowHitLat
                   : (write ? cfg.writeConflictLat : cfg.readConflictLat);
    return start + lat + cfg.burstCycles;
}

MemDevice::WearReport
MemDevice::wearReport() const
{
    WearReport r;
    for (const auto &[row, count] : rowWrites) {
        r.totalWrites += count;
        r.hottestRowWrites = std::max(r.hottestRowWrites, count);
    }
    r.rowsTouched = rowWrites.size();
    if (r.rowsTouched > 0)
        r.meanWritesPerTouchedRow =
            static_cast<double>(r.totalWrites) /
            static_cast<double>(r.rowsTouched);
    return r;
}

double
MemDevice::WearReport::hottestRowLifetimeSeconds(
    std::uint64_t endurance, Tick elapsed, double clockGhz) const
{
    if (hottestRowWrites == 0 || elapsed == 0)
        return std::numeric_limits<double>::infinity();
    double writes_per_cycle = static_cast<double>(hottestRowWrites) /
                              static_cast<double>(elapsed);
    double cycles_to_wear =
        static_cast<double>(endurance) / writes_per_cycle;
    return cycles_to_wear / (clockGhz * 1e9);
}

Tick
MemDevice::sequentialWriteCycles(std::uint64_t size) const
{
    // Streaming writes are posted into the open row buffer (SRAM
    // latency, hidden behind the burst); the PCM array write is paid
    // once per row close and amortizes over the row. This is the
    // sustained sequential write bandwidth of the DIMM.
    constexpr double row_buffer_cycles = 4.0;
    double amortized_array =
        static_cast<double>(cfg.writeConflictLat) *
        static_cast<double>(size) / static_cast<double>(cfg.rowBytes);
    return static_cast<Tick>(static_cast<double>(cfg.burstCycles) +
                             row_buffer_cycles + amortized_array);
}

} // namespace snf::mem
