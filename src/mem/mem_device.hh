/**
 * @file
 * Timing and energy model of a memory DIMM (DRAM or NVRAM/PCM) with
 * banks, row buffers, and a shared channel, over a byte-accurate
 * BackingStore (paper Table II, PCM parameters from [44]).
 */

#ifndef SNF_MEM_MEM_DEVICE_HH
#define SNF_MEM_MEM_DEVICE_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/system_config.hh"
#include "mem/backing_store.hh"
#include "mem/fault_model.hh"
#include "mem/remap_table.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace snf::mem
{

/**
 * One memory device on the processor-memory bus. Accesses reserve the
 * channel and a bank; row-buffer hits are cheap, conflicts pay the
 * full array latency. Writes also charge PCM array-write energy.
 */
class MemDevice
{
  public:
    struct Result
    {
        Tick done;   ///< completion tick of the access
        bool rowHit; ///< whether the access hit an open row
    };

    MemDevice(std::string name, const MemDeviceConfig &config,
              Addr base);

    /**
     * Perform an access of @p size bytes at @p addr.
     * For writes, @p wdata supplies the bytes (journaled with the
     * completion tick); for reads, @p rdata receives them (may be
     * nullptr for timing-only probes).
     * @p priorityWrite marks ordering-critical log writes, which the
     * controller services ahead of queued data write-backs.
     * @p origin tags who issued the write; journaled together with
     * the issue tick (@p now) so crash tooling can reconstruct the
     * in-flight persist set and its hardware-enforced ordering edges.
     * @p issueHint overrides the journaled issue tick (kTickNever =
     * use @p now); the injectSkipWbBarrier self-test passes the
     * pre-barrier tick here so the write appears pending across the
     * barrier wait without changing any timing.
     */
    Result access(bool write, Addr addr, std::uint64_t size,
                  const void *wdata, void *rdata, Tick now,
                  bool priorityWrite = false,
                  PersistOrigin origin = PersistOrigin::Data,
                  Tick issueHint = kTickNever);

    /** Functional, zero-time read (recovery / verification). */
    void functionalRead(Addr addr, std::uint64_t size, void *out) const;

    /** Functional, zero-time write (recovery). */
    void functionalWrite(Addr addr, std::uint64_t size, const void *in);

    /** True when this device carries a bad-line remap region. */
    bool remapActive() const { return cfg.remapSize != 0; }

    RemapTable *remap() { return remapTable.get(); }
    const RemapTable *remap() const { return remapTable.get(); }

    /**
     * Line-granularity address translation through the remap table:
     * a promoted line's traffic is served at its spare. Identity when
     * nothing is promoted (the common case, and the whole tier-1
     * surface).
     */
    Addr translate(Addr addr) const;

    /**
     * Promote @p lineAddr into the remap table: copy its current
     * bytes to the assigned spare and durably publish the new table
     * (both through timed priority writes at @p now), then switch
     * translation over. Returns false when the table is full, the
     * line is already promoted, or no remap region exists.
     */
    bool remapLine(Addr lineAddr, Tick now);

    /**
     * Re-read the remap table from the backing store and rebuild the
     * translation map — used after the lifecycle driver adopts a
     * recovered NVRAM image.
     */
    RemapTable::LoadResult reloadRemap();

    /**
     * Durably record the lifecycle superblock (persistent-heap bump
     * cursor and generation number) carried in the remap-table
     * header, via functional (tick-0, journaled) writes.
     */
    void updateSuperblock(std::uint64_t heapCursor,
                          std::uint64_t generation);

    BackingStore &store() { return backing; }
    const BackingStore &store() const { return backing; }

    /**
     * Declare [base, base+size) the durable log region. Timed writes
     * that land there must arrive on the serialized priority channel
     * with a log/metadata origin — the single write path that both
     * logging backends share and that the fault injector instruments
     * — so neither backend can grow a log write path that bypasses
     * fault injection or the FIFO ordering (fault parity by
     * construction).
     */
    void
    setLogRegion(Addr base, std::uint64_t size)
    {
        logRegionBase = base;
        logRegionSize = size;
    }

    /**
     * Declare the log region split into @p shards equal slices
     * (shardlab). The parity assert then additionally requires every
     * timed log write to lie entirely within one shard's slice — a
     * log-origin write straddling shard regions means some backend
     * routed a record to the wrong shard, and fails loudly instead of
     * corrupting the neighbor shard's slot array.
     */
    void
    setLogShards(std::uint32_t shards)
    {
        logShardCount = shards > 0 ? shards : 1;
    }

    /** Earliest tick a new access issued at @p now could complete. */
    Tick earliestDone(Addr addr, bool write, Tick now) const;

    /**
     * Sustained write service time per access of @p size bytes,
     * assuming sequential (row-hit) traffic. Used to derive the FWB
     * frequency from NVRAM write bandwidth (Section IV-D).
     */
    Tick sequentialWriteCycles(std::uint64_t size) const;

    /** Endurance / lifetime accounting (paper Section III-F). */
    struct WearReport
    {
        std::uint64_t totalWrites = 0;
        std::uint64_t rowsTouched = 0;
        std::uint64_t hottestRowWrites = 0;
        double meanWritesPerTouchedRow = 0.0;
        /**
         * Projected time (in simulated seconds) until the hottest
         * cell wears out at the observed write rate, assuming the
         * given cell endurance and NO wear leveling; the paper's
         * argument is that this horizon is long enough for standard
         * wear-leveling (Start-Gap etc.) to engage.
         */
        double hottestRowLifetimeSeconds(std::uint64_t endurance,
                                         Tick elapsed,
                                         double clockGhz) const;
    };

    WearReport wearReport() const;

    Addr base() const { return baseAddr; }

    const MemDeviceConfig &config() const { return cfg; }

    sim::StatGroup &stats() { return statGroup; }

  private:
    /**
     * Read-priority bank model: demand reads never queue behind
     * posted writes (evictions, log drains, forced write-backs),
     * which drain through the controller's write queue; writes wait
     * for both earlier writes and in-flight reads. This mirrors the
     * read-priority scheduling of the 64/64-entry read/write queue
     * controller in Table II.
     */
    struct Bank
    {
        std::int64_t openRow = -1;
        Tick readBusyUntil = 0;
        Tick logWriteBusyUntil = 0;
        Tick dataWriteBusyUntil = 0;
    };

    std::string devName;
    MemDeviceConfig cfg;
    Addr baseAddr;
    BackingStore backing;
    FaultInjector faults;
    /** Bad-line remap table (lifelab); null without a remap region. */
    std::unique_ptr<RemapTable> remapTable;
    /** orig line -> spare line mirror of the table, for O(1) lookup. */
    std::unordered_map<Addr, Addr> lineMap;
    std::vector<Bank> banks;
    std::unordered_map<std::uint64_t, std::uint64_t> rowWrites;
    /** Last-written row bucket: sequential write streams hit the same
     *  row repeatedly, so cache the map slot (node-stable across
     *  rehash) instead of re-hashing per write. */
    std::uint64_t cachedRow = 0;
    std::uint64_t *cachedRowCount = nullptr;
    /** True when bytes can go straight to the backing store: no
     *  promoted lines and no fault injection. Maintained by the ctor
     *  and rebuildLineMap() — the only places either input changes. */
    bool fastMedia = true;
    Tick readChannelBusy = 0;
    Tick writeChannelBusy = 0;
    Tick logChannelBusy = 0;
    /** Durable log region for the write-path parity assert; 0 = off. */
    Addr logRegionBase = 0;
    std::uint64_t logRegionSize = 0;
    /** Shard slices of the log region (shard-straddle assert). */
    std::uint32_t logShardCount = 1;
    sim::StatGroup statGroup; // must precede the counter references

  public:
    // Aggregate counters (public for the energy model and benches).
    sim::Counter &reads;
    sim::Counter &writes;
    sim::Counter &readBytes;
    sim::Counter &writeBytes;
    sim::Counter &rowHits;
    sim::Counter &rowConflicts;
    sim::Scalar &readEnergyPj;
    sim::Scalar &writeEnergyPj;
    // Injected media faults (faultlab); all zero unless enabled.
    sim::Counter &faultBitFlips;
    sim::Counter &faultMultiBit;
    sim::Counter &faultTornLines;
    sim::Counter &faultDroppedWrites;
    sim::Counter &faultStuckWords;
    /** Bytes the enabled fault injector examined in scope. */
    sim::Counter &faultExaminedBytes;
    /** Lines promoted into the remap table on this device. */
    sim::Counter &remappedLines;

    const FaultInjector &faultInjector() const { return faults; }

  private:
    std::uint64_t rowOf(Addr addr) const;
    std::uint32_t bankOf(std::uint64_t row) const;
    void rebuildLineMap();
    /** Backing-store data movement with remap translation. Timing is
     *  charged on logical addresses by access(); only the bytes move
     *  to the spare. */
    void mediaRead(Addr addr, std::uint64_t size, void *out) const;
    void mediaWrite(Addr addr, std::uint64_t size, const void *in,
                    Tick done, Tick issue, PersistOrigin origin);
};

} // namespace snf::mem

#endif // SNF_MEM_MEM_DEVICE_HH
