/**
 * @file
 * A set-associative cache array with per-line valid/dirty/fwb state.
 *
 * The cache is a passive container: the access protocol (fills,
 * write-backs, coherence) lives in mem::MemorySystem, and the FWB
 * state machine in persist::FwbEngine drives the fwb bits. This keeps
 * the entire protocol in one auditable place.
 */

#ifndef SNF_MEM_CACHE_HH
#define SNF_MEM_CACHE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/system_config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace snf::mem
{

/** One cache line: tag state plus a byte-accurate data image. */
struct CacheLine
{
    Addr lineAddr = 0;
    bool valid = false;
    bool dirty = false;
    /** Force-write-back flag bit (paper Section IV-D). */
    bool fwb = false;
    std::uint64_t lastUse = 0;
    std::vector<std::uint8_t> data;
};

/**
 * A single cache level (array + tags + LRU), parameterized by
 * CacheConfig. Timing is tracked with a port busy-until tick so FWB
 * tag scans can delay demand accesses.
 */
class Cache
{
  public:
    Cache(std::string name, const CacheConfig &config);

    /** Look up @p lineAddr; nullptr on miss. Does not update LRU. */
    CacheLine *find(Addr lineAddr);
    const CacheLine *find(Addr lineAddr) const;

    /**
     * Pick the victim slot for installing @p lineAddr: an invalid way
     * if available, else the LRU way. The returned slot may still hold
     * a valid victim that the caller must write back / invalidate
     * before calling install().
     */
    CacheLine *victimFor(Addr lineAddr);

    /**
     * Reset @p slot and bind it to @p lineAddr (valid, clean).
     * The caller then fills slot->data.
     */
    void install(CacheLine *slot, Addr lineAddr);

    /** Mark @p line most recently used. */
    void touch(CacheLine *line);

    /** Invalidate a line (also clears dirty/fwb). */
    void invalidate(CacheLine *line);

    /** Invalidate every line (crash model). */
    void invalidateAll();

    /** Apply @p fn to every line slot (valid or not). */
    void forEachLine(const std::function<void(CacheLine &)> &fn);

    std::uint32_t lineBytes() const { return cfg.lineBytes; }

    std::uint32_t numLines() const { return cfg.numLines(); }

    std::uint32_t latency() const { return cfg.latency; }

    const std::string &name() const { return cacheName; }

    Addr
    lineOf(Addr a) const
    {
        return a & ~static_cast<Addr>(cfg.lineBytes - 1);
    }

    sim::StatGroup &stats() { return statGroup; }

    /** Port contention: accesses may not start before this tick. */
    Tick busyUntil = 0;

  private:
    std::string cacheName;
    CacheConfig cfg;
    sim::StatGroup statGroup; // must precede the counter references

  public:
    // Demand statistics, maintained by the protocol layer.
    sim::Counter &hits;
    sim::Counter &misses;
    sim::Counter &evictions;
    sim::Counter &writebacks;

  private:
    std::uint32_t setIndex(Addr lineAddr) const;

    std::vector<CacheLine> lines;
    std::uint64_t useClock = 0;
};

} // namespace snf::mem

#endif // SNF_MEM_CACHE_HH
