/**
 * @file
 * A set-associative cache array with per-line valid/dirty/fwb state.
 *
 * The cache is a passive container: the access protocol (fills,
 * write-backs, coherence) lives in mem::MemorySystem, and the FWB
 * state machine in persist::FwbEngine drives the fwb bits. This keeps
 * the entire protocol in one auditable place.
 *
 * Lookups run against a packed parallel tag array: one Addr compare
 * per way, no per-way valid-bit branch (invalid ways hold a sentinel
 * that can never equal a line-aligned address). The tag array is kept
 * consistent by install()/invalidate(), the only mutators of line
 * identity.
 */

#ifndef SNF_MEM_CACHE_HH
#define SNF_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/system_config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace snf::mem
{

/** One cache line: tag state plus a byte-accurate data image. */
struct CacheLine
{
    Addr lineAddr = 0;
    bool valid = false;
    bool dirty = false;
    /** Force-write-back flag bit (paper Section IV-D). */
    bool fwb = false;
    std::uint64_t lastUse = 0;
    std::vector<std::uint8_t> data;
};

/**
 * A single cache level (array + tags + LRU), parameterized by
 * CacheConfig. Timing is tracked with a port busy-until tick so FWB
 * tag scans can delay demand accesses.
 */
class Cache
{
  public:
    Cache(std::string name, const CacheConfig &config);

    /** Look up @p lineAddr; nullptr on miss. Does not update LRU. */
    CacheLine *
    find(Addr lineAddr)
    {
        const std::uint32_t set = setIndex(lineAddr);
        const std::size_t base =
            static_cast<std::size_t>(set) * cfg.ways;
        const Addr *tagBase = &tags[base];
        for (std::uint32_t w = 0; w < cfg.ways; ++w) {
            if (tagBase[w] == lineAddr)
                return &lines[base + w];
        }
        return nullptr;
    }

    const CacheLine *
    find(Addr lineAddr) const
    {
        return const_cast<Cache *>(this)->find(lineAddr);
    }

    /**
     * Pick the victim slot for installing @p lineAddr: an invalid way
     * if available, else the LRU way. The returned slot may still hold
     * a valid victim that the caller must write back / invalidate
     * before calling install().
     */
    CacheLine *victimFor(Addr lineAddr);

    /**
     * Reset @p slot and bind it to @p lineAddr (valid, clean).
     * The caller then fills slot->data.
     */
    void install(CacheLine *slot, Addr lineAddr);

    /** Mark @p line most recently used. */
    void touch(CacheLine *line);

    /** Invalidate a line (also clears dirty/fwb). */
    void invalidate(CacheLine *line);

    /** Invalidate every line (crash model). */
    void invalidateAll();

    /** Apply @p fn to every line slot (valid or not). Statically
     *  dispatched so per-line scans pay no std::function call. */
    template <typename Fn>
    void
    forEachLine(Fn &&fn)
    {
        for (auto &l : lines)
            fn(l);
    }

    std::uint32_t lineBytes() const { return cfg.lineBytes; }

    std::uint32_t numLines() const { return cfg.numLines(); }

    std::uint32_t latency() const { return cfg.latency; }

    const std::string &name() const { return cacheName; }

    Addr
    lineOf(Addr a) const
    {
        return a & ~static_cast<Addr>(cfg.lineBytes - 1);
    }

    sim::StatGroup &stats() { return statGroup; }

    /** Port contention: accesses may not start before this tick. */
    Tick busyUntil = 0;

  private:
    /** All-ones is never line-aligned (lineBytes >= 2), so an invalid
     *  way can never match a lookup tag. */
    static constexpr Addr kInvalidTag = ~Addr{0};

    std::string cacheName;
    CacheConfig cfg;
    sim::StatGroup statGroup; // must precede the counter references

  public:
    // Demand statistics, maintained by the protocol layer.
    sim::Counter &hits;
    sim::Counter &misses;
    sim::Counter &evictions;
    sim::Counter &writebacks;

    /** Hot-path demand hit/miss counts accumulate here (plain adds,
     *  no counter indirection) and fold into the named counters at
     *  stat-read boundaries via syncDemandStats(). */
    std::uint64_t pendingHits = 0;
    std::uint64_t pendingMisses = 0;

    void
    syncDemandStats()
    {
        if (pendingHits) {
            hits.inc(pendingHits);
            pendingHits = 0;
        }
        if (pendingMisses) {
            misses.inc(pendingMisses);
            pendingMisses = 0;
        }
    }

  private:
    std::uint32_t setIndex(Addr lineAddr) const;

    std::vector<CacheLine> lines;
    /** Parallel to `lines`: lineAddr when valid, kInvalidTag when not. */
    std::vector<Addr> tags;
    std::uint64_t useClock = 0;
};

} // namespace snf::mem

#endif // SNF_MEM_CACHE_HH
