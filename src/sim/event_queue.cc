#include "sim/event_queue.hh"

namespace snf::sim
{

std::size_t
EventQueue::runUntil(Tick now)
{
    std::size_t executed = 0;
    while (!heap.empty() && heap.top().when <= now) {
        // Copy out before pop so the callback may schedule new events.
        Entry e = heap.top();
        heap.pop();
        e.cb(e.when);
        ++executed;
    }
    return executed;
}

void
EventQueue::clear()
{
    while (!heap.empty())
        heap.pop();
    nextSeq = 0;
}

} // namespace snf::sim
