#include "sim/event_queue.hh"

#include <utility>

namespace snf::sim
{

void
EventQueue::heapUp(std::size_t i)
{
    while (i > 0) {
        std::size_t parent = (i - 1) / 2;
        if (!heapLess(heapStore[i], heapStore[parent]))
            break;
        std::swap(heapStore[i], heapStore[parent]);
        i = parent;
    }
}

void
EventQueue::heapDown(std::size_t i)
{
    const std::size_t n = heapStore.size();
    for (;;) {
        std::size_t l = 2 * i + 1;
        if (l >= n)
            break;
        std::size_t m = l;
        if (l + 1 < n && heapLess(heapStore[l + 1], heapStore[l]))
            m = l + 1;
        if (!heapLess(heapStore[m], heapStore[i]))
            break;
        std::swap(heapStore[i], heapStore[m]);
        i = m;
    }
}

EventQueue::HeapEntry
EventQueue::popHeapTop()
{
    HeapEntry top = std::move(heapStore.front());
    heapStore.front() = std::move(heapStore.back());
    heapStore.pop_back();
    if (!heapStore.empty())
        heapDown(0);
    return top;
}

Tick
EventQueue::ringMinTick() const
{
    if (ringCount == 0)
        return kTickNever;
    const std::size_t start = ringBase & kRingMask;
    const std::size_t w0 = start >> 6;
    const unsigned b0 = start & 63;
    // Scan span buckets starting at ringBase's slot, wrapping; the
    // first (kBitWords+1 covers the partially re-visited start word).
    for (std::size_t i = 0; i <= kBitWords; ++i) {
        const std::size_t w = (w0 + i) & (kBitWords - 1);
        std::uint64_t bits = occupied[w];
        if (i == 0)
            bits &= ~std::uint64_t{0} << b0;
        else if (i == kBitWords)
            bits &= ~(~std::uint64_t{0} << b0);
        if (bits) {
            const unsigned b =
                static_cast<unsigned>(__builtin_ctzll(bits));
            const std::size_t idx = (w << 6) | b;
            const std::size_t dist = (idx - start) & kRingMask;
            return ringBase + dist;
        }
    }
    return kTickNever;
}

void
EventQueue::refreshMin()
{
    const Tick rm = ringMinTick();
    const Tick hm = heapStore.empty() ? kTickNever
                                      : heapStore.front().when;
    cachedMin = rm < hm ? rm : hm;
}

std::size_t
EventQueue::runUntil(Tick now)
{
    std::size_t executed = 0;
    while (cachedMin <= now) {
        const Tick t = cachedMin;
        // Candidates at tick t: the ring bucket for t (its head is the
        // lowest seq in the bucket, appended FIFO) and/or the heap top.
        Bucket *b = nullptr;
        if (t >= ringBase && t - ringBase < kRingSpan) {
            Bucket &cand = ring[t & kRingMask];
            if (cand.head < cand.events.size())
                b = &cand;
        }
        const bool heapHas =
            !heapStore.empty() && heapStore.front().when == t;

        // Advancing the base before invoking lets callbacks schedule
        // follow-ups for tick t (or later) into the ring. Buckets
        // behind the new base are already drained, so slot reuse on
        // wrap stays collision-free.
        if (t > ringBase)
            ringBase = t;

        if (b != nullptr &&
            (!heapHas ||
             b->events[b->head].seq < heapStore.front().seq)) {
            // Move out before invoking: the callback may push into
            // this same bucket and reallocate its vector.
            Callback cb = std::move(b->events[b->head].cb);
            ++b->head;
            --ringCount;
            if (b->head == b->events.size()) {
                b->events.clear();
                b->head = 0;
                occupied[(t & kRingMask) >> 6] &=
                    ~(std::uint64_t{1} << (t & 63));
            }
            cb(t);
        } else {
            HeapEntry e = popHeapTop();
            e.cb(e.when);
        }
        ++executed;
        ++statExecuted_;
        refreshMin();
    }
    // Keep the ring horizon anchored at the present so future
    // schedules land in buckets even after quiet stretches. Every
    // bucket in (old base, now] is drained at this point.
    if (now > ringBase)
        ringBase = now;
    return executed;
}

void
EventQueue::clear()
{
    if (ringCount != 0) {
        for (Bucket &b : ring) {
            b.events.clear();
            b.head = 0;
        }
    }
    occupied.fill(0);
    ringCount = 0;
    ringBase = 0;
    heapStore.clear();
    cachedMin = kTickNever;
    nextSeq = 0;
    statScheduled_ = 0;
    statExecuted_ = 0;
    statHeapSpills_ = 0;
    statCallbackHeapAllocs_ = 0;
}

} // namespace snf::sim
