#include "sim/stats.hh"

#include "sim/logging.hh"

namespace snf::sim
{

StatGroup::StatGroup(std::string name)
    : groupName(std::move(name))
{
}

Counter &
StatGroup::counter(const std::string &name)
{
    return counters[name];
}

Scalar &
StatGroup::scalar(const std::string &name)
{
    return scalars[name];
}

void
StatGroup::addChild(StatGroup *child)
{
    SNF_ASSERT(child != nullptr, "null child stat group");
    children.push_back(child);
}

std::uint64_t
StatGroup::counterValue(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second.value();
}

double
StatGroup::scalarValue(const std::string &name) const
{
    auto it = scalars.find(name);
    return it == scalars.end() ? 0.0 : it->second.value();
}

void
StatGroup::resetAll()
{
    for (auto &kv : counters)
        kv.second.reset();
    for (auto &kv : scalars)
        kv.second.reset();
    for (auto *c : children)
        c->resetAll();
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    std::string path =
        prefix.empty() ? groupName : prefix + "." + groupName;
    for (const auto &kv : counters)
        os << path << "." << kv.first << " = " << kv.second.value()
           << "\n";
    for (const auto &kv : scalars)
        os << path << "." << kv.first << " = " << kv.second.value()
           << "\n";
    for (const auto *c : children)
        c->dump(os, path);
}

} // namespace snf::sim
