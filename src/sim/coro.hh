/**
 * @file
 * Minimal lazy coroutine task type, Co<T>, used to express simulated
 * workload threads in direct style.
 *
 * A workload thread is a Co<void> coroutine. Every simulated memory
 * operation is an awaitable that suspends back to the cpu::Scheduler,
 * which resumes the globally-earliest thread next. Nested Co<T> calls
 * chain via symmetric transfer, so only memory-op awaiters escape to
 * the scheduler.
 */

#ifndef SNF_SIM_CORO_HH
#define SNF_SIM_CORO_HH

#include <coroutine>
#include <exception>
#include <utility>

namespace snf::sim
{

template <typename T>
class Co;

namespace detail
{

struct PromiseBase
{
    std::coroutine_handle<> continuation;
    std::exception_ptr error;

    struct FinalAwaiter
    {
        bool await_ready() noexcept { return false; }

        template <typename P>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<P> h) noexcept
        {
            auto cont = h.promise().continuation;
            return cont ? cont : std::noop_coroutine();
        }

        void await_resume() noexcept {}
    };

    std::suspend_always initial_suspend() noexcept { return {}; }

    FinalAwaiter final_suspend() noexcept { return {}; }

    void unhandled_exception() { error = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase
{
    // Workload values are scalar-ish; default-construct + assign keeps
    // the promise simple and avoids manual lifetime management.
    T result{};

    Co<T> get_return_object();

    void return_value(T v) { result = std::move(v); }
};

template <>
struct Promise<void> : PromiseBase
{
    Co<void> get_return_object();

    void return_void() {}
};

} // namespace detail

/**
 * A lazily-started coroutine producing a T. Awaiting a Co<T> starts it;
 * when it completes, control transfers back to the awaiter.
 */
template <typename T>
class [[nodiscard]] Co
{
  public:
    using promise_type = detail::Promise<T>;
    using Handle = std::coroutine_handle<promise_type>;

    Co() = default;

    explicit Co(Handle h) : handle(h) {}

    Co(Co &&o) noexcept : handle(std::exchange(o.handle, {})) {}

    Co &
    operator=(Co &&o) noexcept
    {
        if (this != &o) {
            destroy();
            handle = std::exchange(o.handle, {});
        }
        return *this;
    }

    Co(const Co &) = delete;
    Co &operator=(const Co &) = delete;

    ~Co() { destroy(); }

    bool valid() const { return static_cast<bool>(handle); }

    bool done() const { return !handle || handle.done(); }

    /** Raw handle (for the scheduler's root-resume path). */
    Handle raw() const { return handle; }

    /** Release ownership of the frame to the caller. */
    Handle release() { return std::exchange(handle, {}); }

    struct Awaiter
    {
        Handle handle;

        bool await_ready() const noexcept { return false; }

        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<> parent) noexcept
        {
            handle.promise().continuation = parent;
            return handle; // symmetric transfer: start the child
        }

        T
        await_resume()
        {
            auto &p = handle.promise();
            if (p.error)
                std::rethrow_exception(p.error);
            if constexpr (!std::is_void_v<T>)
                return std::move(p.result);
        }
    };

    Awaiter operator co_await() && noexcept { return Awaiter{handle}; }

  private:
    void
    destroy()
    {
        if (handle) {
            handle.destroy();
            handle = {};
        }
    }

    Handle handle;
};

namespace detail
{

template <typename T>
Co<T>
Promise<T>::get_return_object()
{
    return Co<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Co<void>
Promise<void>::get_return_object()
{
    return Co<void>(
        std::coroutine_handle<Promise<void>>::from_promise(*this));
}

} // namespace detail

} // namespace snf::sim

#endif // SNF_SIM_CORO_HH
