#include "sim/rng.hh"

#include <cmath>

#include "sim/logging.hh"

namespace snf::sim
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
    : origin(seed)
{
    std::uint64_t x = seed;
    for (auto &w : s)
        w = splitmix64(x);
}

Rng
Rng::split(std::uint64_t stream) const
{
    // Two splitmix rounds over (origin, stream). Using the stored
    // construction seed instead of the live xoshiro state is what
    // makes children independent of the parent's draw history.
    std::uint64_t x = origin + (stream + 1) * 0x9e3779b97f4a7c15ULL;
    std::uint64_t derived = splitmix64(x);
    derived ^= splitmix64(x);
    return Rng(derived);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    SNF_ASSERT(bound > 0, "Rng::below(0)");
    // Rejection-free Lemire-style bounded draw is overkill here; modulo
    // bias is negligible for workload generation with 64-bit draws.
    return next() % bound;
}

std::uint64_t
Rng::range(std::uint64_t lo, std::uint64_t hi)
{
    SNF_ASSERT(lo <= hi, "Rng::range lo > hi");
    return lo + below(hi - lo + 1);
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

std::string
Rng::str(std::size_t len)
{
    static const char alphabet[] =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    std::string out;
    out.reserve(len);
    for (std::size_t i = 0; i < len; ++i)
        out.push_back(alphabet[below(sizeof(alphabet) - 1)]);
    return out;
}

Zipf::Zipf(std::uint64_t n, double t)
    : numItems(n), theta(t)
{
    SNF_ASSERT(n > 0, "Zipf over empty set");
    SNF_ASSERT(theta > 0.0 && theta < 1.0, "Zipf theta out of range");
    double zeta2 = 0.0;
    for (std::uint64_t i = 1; i <= 2 && i <= n; ++i)
        zeta2 += 1.0 / std::pow(static_cast<double>(i), theta);
    zetan = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        zetan += 1.0 / std::pow(static_cast<double>(i), theta);
    alpha = 1.0 / (1.0 - theta);
    eta = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
          (1.0 - zeta2 / zetan);
}

std::uint64_t
Zipf::sample(Rng &rng) const
{
    double u = rng.uniform();
    double uz = u * zetan;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta))
        return 1;
    auto v = static_cast<std::uint64_t>(
        static_cast<double>(numItems) *
        std::pow(eta * u - eta + 1.0, alpha));
    return v >= numItems ? numItems - 1 : v;
}

} // namespace snf::sim
