/**
 * @file
 * gem5-style status and error reporting: panic, fatal, warn, inform.
 *
 * panic() is for internal simulator bugs (aborts), fatal() for user
 * configuration errors (clean exit), warn()/inform() for status output.
 */

#ifndef SNF_SIM_LOGGING_HH
#define SNF_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace snf
{

/** Printf-style formatting into a std::string. */
std::string vstrfmt(const char *fmt, va_list ap);

/** Printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal simulator bug and abort. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user/configuration error and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report suspicious but survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (used by benchmarks). */
void setQuiet(bool quiet);

/**
 * Assert a simulator invariant; panics with location info on failure.
 */
#define SNF_ASSERT(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::snf::panic("assertion '%s' failed at %s:%d: %s", #cond,      \
                         __FILE__, __LINE__,                               \
                         ::snf::strfmt(__VA_ARGS__).c_str());              \
        }                                                                  \
    } while (0)

} // namespace snf

#endif // SNF_SIM_LOGGING_HH
