/**
 * @file
 * Discrete-event queue driving all time-triggered simulator activity
 * (FWB scans, log scrubbing, periodic monitors). Core/thread progress
 * is driven by the cpu::Scheduler, which interleaves with this queue
 * on a common tick.
 *
 * Layout: a calendar queue. Events landing within kRingSpan ticks of
 * the ring base go into a bucket-per-tick ring (O(1) schedule, no
 * comparisons); everything farther out — and anything scheduled into
 * the past — spills to a small binary min-heap. Pop takes the global
 * (when, seq) minimum across both structures, which reproduces the
 * exact execution order of the previous single-heap implementation:
 * earliest tick first, FIFO by schedule order within a tick, including
 * events scheduled from inside callbacks.
 */

#ifndef SNF_SIM_EVENT_QUEUE_HH
#define SNF_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/small_callback.hh"
#include "sim/types.hh"

namespace snf::sim
{

/**
 * A time-ordered queue of callbacks. Events scheduled for the same tick
 * execute in scheduling order (FIFO), which keeps runs deterministic.
 */
class EventQueue
{
  public:
    using Callback = SmallCallback;

    /** Ring horizon: events within this many ticks of the base are
     *  bucketed; beyond it they overflow to the heap. Power of two. */
    static constexpr std::size_t kRingSpan = 1024;

    /** Schedule @p cb to run at absolute tick @p when. */
    void
    schedule(Tick when, Callback cb)
    {
        ++statScheduled_;
        if (cb.onHeap())
            ++statCallbackHeapAllocs_;
        if (when < cachedMin)
            cachedMin = when;
        if (when >= ringBase && when - ringBase < kRingSpan) {
            Bucket &b = ring[when & kRingMask];
            b.events.push_back(RingEvent{nextSeq++, std::move(cb)});
            occupied[(when & kRingMask) >> 6] |=
                std::uint64_t{1} << (when & 63);
            ++ringCount;
        } else {
            heapStore.push_back(
                HeapEntry{when, nextSeq++, std::move(cb)});
            heapUp(heapStore.size() - 1);
            ++statHeapSpills_;
        }
    }

    /** Tick of the earliest pending event, or kTickNever if empty. */
    Tick nextEventTick() const { return cachedMin; }

    bool empty() const { return ringCount == 0 && heapStore.empty(); }

    std::size_t size() const { return ringCount + heapStore.size(); }

    /**
     * Execute every event with tick <= @p now.
     * @return the number of events executed.
     */
    std::size_t runUntil(Tick now);

    /** Drop all pending events (used between runs). O(pending), and
     *  bucket/heap capacity is retained for reuse between runs. */
    void clear();

    /** Lifetime perf counters (reset by clear()). */
    std::uint64_t statScheduled() const { return statScheduled_; }
    std::uint64_t statExecuted() const { return statExecuted_; }
    /** Events that missed the ring and went to the overflow heap. */
    std::uint64_t statHeapSpills() const { return statHeapSpills_; }
    /** Callbacks whose capture exceeded the inline buffer. */
    std::uint64_t
    statCallbackHeapAllocs() const
    {
        return statCallbackHeapAllocs_;
    }

  private:
    static constexpr std::size_t kRingMask = kRingSpan - 1;
    static constexpr std::size_t kBitWords = kRingSpan / 64;

    struct RingEvent
    {
        std::uint64_t seq;
        Callback cb;
    };

    /** FIFO bucket: events append in seq order, pop via head index. */
    struct Bucket
    {
        std::vector<RingEvent> events;
        std::size_t head = 0;
    };

    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    static bool
    heapLess(const HeapEntry &a, const HeapEntry &b)
    {
        return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    }

    void heapUp(std::size_t i);
    void heapDown(std::size_t i);
    HeapEntry popHeapTop();

    /** Earliest occupied ring tick at/after ringBase, or kTickNever. */
    Tick ringMinTick() const;

    /** Recompute cachedMin from both structures. */
    void refreshMin();

    std::array<Bucket, kRingSpan> ring;
    std::array<std::uint64_t, kBitWords> occupied{};
    std::size_t ringCount = 0;
    /** Ring slot 0 corresponds to this tick; advances monotonically. */
    Tick ringBase = 0;

    std::vector<HeapEntry> heapStore;

    Tick cachedMin = kTickNever;
    std::uint64_t nextSeq = 0;

    std::uint64_t statScheduled_ = 0;
    std::uint64_t statExecuted_ = 0;
    std::uint64_t statHeapSpills_ = 0;
    std::uint64_t statCallbackHeapAllocs_ = 0;
};

} // namespace snf::sim

#endif // SNF_SIM_EVENT_QUEUE_HH
