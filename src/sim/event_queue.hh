/**
 * @file
 * Discrete-event queue driving all time-triggered simulator activity
 * (FWB scans, periodic monitors). Core/thread progress is driven by the
 * cpu::Scheduler, which interleaves with this queue on a common tick.
 */

#ifndef SNF_SIM_EVENT_QUEUE_HH
#define SNF_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace snf::sim
{

/**
 * A time-ordered queue of callbacks. Events scheduled for the same tick
 * execute in scheduling order (FIFO), which keeps runs deterministic.
 */
class EventQueue
{
  public:
    using Callback = std::function<void(Tick)>;

    /** Schedule @p cb to run at absolute tick @p when. */
    void
    schedule(Tick when, Callback cb)
    {
        heap.push(Entry{when, nextSeq++, std::move(cb)});
    }

    /** Tick of the earliest pending event, or kTickNever if empty. */
    Tick
    nextEventTick() const
    {
        return heap.empty() ? kTickNever : heap.top().when;
    }

    bool empty() const { return heap.empty(); }

    std::size_t size() const { return heap.size(); }

    /**
     * Execute every event with tick <= @p now.
     * @return the number of events executed.
     */
    std::size_t runUntil(Tick now);

    /** Drop all pending events (used between runs). */
    void clear();

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    std::uint64_t nextSeq = 0;
};

} // namespace snf::sim

#endif // SNF_SIM_EVENT_QUEUE_HH
