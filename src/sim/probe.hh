/**
 * @file
 * Lightweight simulation-event probe used by crash tooling
 * (src/crashlab) to harvest the *interesting* instants of a run:
 * every tick at which the durable NVRAM image can change, plus the
 * transaction lifecycle edges needed to judge a recovered image.
 *
 * Components hold an optional ProbeFn and emit events with a tick and
 * one event-specific argument; when no probe is installed the cost is
 * a single branch. The probe lives in sim/ so that mem/ and persist/
 * components can emit events without depending on crashlab.
 */

#ifndef SNF_SIM_PROBE_HH
#define SNF_SIM_PROBE_HH

#include <cstdint>
#include <functional>

#include "sim/types.hh"

namespace snf::sim
{

/** What happened at the probed tick. */
enum class ProbeEvent : std::uint8_t
{
    /** A log-buffer group finished draining to NVRAM (arg = records). */
    LogDrain,
    /** A dirty data line's NVRAM write-back completed (arg = line). */
    DataWriteback,
    /** A WCB entry (software log line) reached NVRAM (arg = line). */
    WcbFlush,
    /** An FWB scan pass ran (arg = pass index). */
    FwbScan,
    /** tx_begin executed (arg = transaction sequence). */
    TxBegin,
    /**
     * tx_commit *initiated* (arg = tx sequence). Emitted before the
     * mode's commit sequence runs, since the commit record can reach
     * NVRAM at any point during it.
     */
    TxCommit,
    /**
     * A commit became durable: its commit record (hardware logging)
     * or commit-record fence (software logging) completed at NVRAM
     * (arg = 16-bit log txid for hardware, tx sequence for software).
     */
    CommitDurable,
    /**
     * tx_abort executed: the transaction rolled back via its in-log
     * undo entries (arg = tx sequence).
     */
    TxAbort,
    /**
     * Post-crash recovery issued one 64-byte-line NVRAM write (redo,
     * undo, spare copy, remap-table chunk, or truncation zeroing);
     * arg = line address, tick = ordinal of the write within the
     * recovery pass. Crash-during-recovery sweeps key off these.
     */
    RecoveryWrite,
    /**
     * The crash model discarded a pending WCB entry before it reached
     * NVRAM (arg = line address). Emitted once per dropped entry so
     * traces account for every in-flight write; crash harvesting
     * ignores these (the drop *is* the crash, not a durable-image
     * change).
     */
    WcbDrop,
};

/** Short stable name for reports. */
inline const char *
probeEventName(ProbeEvent e)
{
    switch (e) {
      case ProbeEvent::LogDrain:      return "log-drain";
      case ProbeEvent::DataWriteback: return "data-writeback";
      case ProbeEvent::WcbFlush:      return "wcb-flush";
      case ProbeEvent::FwbScan:       return "fwb-scan";
      case ProbeEvent::TxBegin:       return "tx-begin";
      case ProbeEvent::TxCommit:      return "tx-commit";
      case ProbeEvent::CommitDurable: return "commit-durable";
      case ProbeEvent::TxAbort:       return "tx-abort";
      case ProbeEvent::RecoveryWrite: return "recovery-write";
      case ProbeEvent::WcbDrop:       return "wcb-drop";
    }
    return "?";
}

using ProbeFn =
    std::function<void(ProbeEvent, Tick, std::uint64_t arg)>;

} // namespace snf::sim

#endif // SNF_SIM_PROBE_HH
