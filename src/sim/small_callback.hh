/**
 * @file
 * Small-buffer-optimized move-only callback for the event queue.
 *
 * std::function heap-allocates once its capture exceeds the
 * implementation's tiny inline buffer and always pays a virtual-ish
 * dispatch through its manager function. Every callback the simulator
 * schedules today captures at most a couple of pointers (FwbEngine:
 * `this`; LogScrubber: `this` + queue reference), so a fixed inline
 * buffer sized for those captures removes the per-schedule allocation
 * entirely. Callables that do exceed the buffer still work — they
 * spill to the heap — and the spill is observable (onHeap()) so the
 * queue can report allocations/event as a tracked perf counter.
 */

#ifndef SNF_SIM_SMALL_CALLBACK_HH
#define SNF_SIM_SMALL_CALLBACK_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/types.hh"

namespace snf::sim
{

/** Move-only `void(Tick)` callable with inline storage. */
class SmallCallback
{
  public:
    /** Inline capture budget: comfortably fits every scheduler in
     *  the tree (largest today is 16 bytes) with headroom for a few
     *  more captured words before anything spills. */
    static constexpr std::size_t kInlineBytes = 48;

    SmallCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallCallback>>>
    SmallCallback(F &&f) // NOLINT: implicit like std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            new (buf) Fn(std::forward<F>(f));
            vt = &inlineVTable<Fn>;
        } else {
            *reinterpret_cast<Fn **>(buf) =
                new Fn(std::forward<F>(f));
            vt = &heapVTable<Fn>;
        }
    }

    SmallCallback(SmallCallback &&other) noexcept
        : vt(other.vt)
    {
        if (vt)
            vt->relocate(buf, other.buf);
        other.vt = nullptr;
    }

    SmallCallback &
    operator=(SmallCallback &&other) noexcept
    {
        if (this == &other)
            return *this;
        if (vt)
            vt->destroy(buf);
        vt = other.vt;
        if (vt)
            vt->relocate(buf, other.buf);
        other.vt = nullptr;
        return *this;
    }

    SmallCallback(const SmallCallback &) = delete;
    SmallCallback &operator=(const SmallCallback &) = delete;

    ~SmallCallback()
    {
        if (vt)
            vt->destroy(buf);
    }

    void
    operator()(Tick when)
    {
        vt->invoke(buf, when);
    }

    explicit operator bool() const { return vt != nullptr; }

    /** True when the callable spilled to a heap allocation. */
    bool onHeap() const { return vt != nullptr && vt->heap; }

  private:
    struct VTable
    {
        void (*invoke)(void *, Tick);
        /** Move-construct into dst from src and destroy src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
        bool heap;
    };

    template <typename Fn>
    static constexpr VTable inlineVTable = {
        [](void *p, Tick when) { (*static_cast<Fn *>(p))(when); },
        [](void *dst, void *src) {
            new (dst) Fn(std::move(*static_cast<Fn *>(src)));
            static_cast<Fn *>(src)->~Fn();
        },
        [](void *p) { static_cast<Fn *>(p)->~Fn(); },
        false,
    };

    template <typename Fn>
    static constexpr VTable heapVTable = {
        [](void *p, Tick when) { (**static_cast<Fn **>(p))(when); },
        [](void *dst, void *src) {
            *static_cast<Fn **>(dst) = *static_cast<Fn **>(src);
        },
        [](void *p) { delete *static_cast<Fn **>(p); },
        true,
    };

    alignas(std::max_align_t) unsigned char buf[kInlineBytes];
    const VTable *vt = nullptr;
};

} // namespace snf::sim

#endif // SNF_SIM_SMALL_CALLBACK_HH
