/**
 * @file
 * Deterministic pseudo-random number generation for workloads.
 *
 * Uses splitmix64/xoshiro-style mixing so runs are reproducible across
 * platforms independent of libstdc++'s distribution implementations.
 */

#ifndef SNF_SIM_RNG_HH
#define SNF_SIM_RNG_HH

#include <cstdint>
#include <string>
#include <vector>

namespace snf::sim
{

/** Small, fast, deterministic PRNG (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eed5eedULL);

    /**
     * Derive an independent child stream. The child's sequence is a
     * pure function of this stream's *seed* and @p stream — never of
     * how many values have been drawn — so consumers holding split
     * streams (program generator, scheduler jitter, fault model) stay
     * reproducible under one top-level seed even when one of them
     * changes how many draws it makes. Children can be split again;
     * split(a) and split(b) are distinct for a != b.
     */
    Rng split(std::uint64_t stream) const;

    /** The seed this stream was constructed from. */
    std::uint64_t seed() const { return origin; }

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound), bound > 0. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p);

    /** Uniform printable ASCII string of length @p len. */
    std::string str(std::size_t len);

  private:
    std::uint64_t origin;
    std::uint64_t s[4];
};

/**
 * Zipfian key-popularity generator (YCSB-style) over [0, n).
 * theta in (0, 1); larger theta = more skew.
 */
class Zipf
{
  public:
    Zipf(std::uint64_t n, double theta);

    std::uint64_t sample(Rng &rng) const;

    std::uint64_t n() const { return numItems; }

  private:
    std::uint64_t numItems;
    double theta;
    double alpha;
    double zetan;
    double eta;
};

} // namespace snf::sim

#endif // SNF_SIM_RNG_HH
