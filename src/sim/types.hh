/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef SNF_SIM_TYPES_HH
#define SNF_SIM_TYPES_HH

#include <cstdint>

namespace snf
{

/** Simulated time, measured in processor clock cycles. */
using Tick = std::uint64_t;

/** A physical address in the simulated machine. */
using Addr = std::uint64_t;

/** Identifier of a simulated core (and, 1:1, of a workload thread). */
using CoreId = std::uint32_t;

/** Identifier of a persistent memory transaction (physical, 8-bit). */
using TxId = std::uint16_t;

/** Sentinel for "no tick scheduled / never". */
constexpr Tick kTickNever = ~Tick{0};

/** Sentinel transaction id meaning "not inside a transaction". */
constexpr TxId kNoTx = 0xffff;

} // namespace snf

#endif // SNF_SIM_TYPES_HH
