/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef SNF_SIM_TYPES_HH
#define SNF_SIM_TYPES_HH

#include <cstdint>

namespace snf
{

/** Simulated time, measured in processor clock cycles. */
using Tick = std::uint64_t;

/** A physical address in the simulated machine. */
using Addr = std::uint64_t;

/** Identifier of a simulated core (and, 1:1, of a workload thread). */
using CoreId = std::uint32_t;

/** Identifier of a persistent memory transaction (physical, 8-bit). */
using TxId = std::uint16_t;

/** Sentinel for "no tick scheduled / never". */
constexpr Tick kTickNever = ~Tick{0};

/**
 * Who put a persistent write on the NVRAM channel. Carried alongside
 * each journaled media write so crash tooling can reconstruct the
 * ordering edges the hardware actually enforces between writes that
 * are still in flight (issued but not yet durable) at a crash tick:
 * log/metadata writes share one serialized priority channel while
 * independent data write-backs are unordered relative to everything
 * disjoint.
 */
enum class PersistOrigin : std::uint8_t
{
    /** Zero-time functional write (setup, recovery) — never pending. */
    Functional,
    /** Cache data write-back (eviction, clwb, FWB, shutdown flush). */
    Data,
    /** Hardware log-buffer drain (HWL log records, commit records). */
    LogDrain,
    /** WCB flush of an uncacheable write (software log records). */
    WcbFlush,
    /** Device metadata: remap migration, scrubber repair, log header. */
    Meta,
};

/** Short stable name for reports. */
inline const char *
persistOriginName(PersistOrigin o)
{
    switch (o) {
      case PersistOrigin::Functional: return "functional";
      case PersistOrigin::Data:       return "data";
      case PersistOrigin::LogDrain:   return "log-drain";
      case PersistOrigin::WcbFlush:   return "wcb-flush";
      case PersistOrigin::Meta:       return "meta";
    }
    return "?";
}

/** Sentinel transaction id meaning "not inside a transaction". */
constexpr TxId kNoTx = 0xffff;

} // namespace snf

#endif // SNF_SIM_TYPES_HH
