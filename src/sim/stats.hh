/**
 * @file
 * Lightweight named-statistics framework (gem5 Stats package, reduced).
 *
 * Components own a StatGroup; each registered Counter/Scalar appears in
 * the group's dump and can be queried by name for tests and benches.
 */

#ifndef SNF_SIM_STATS_HH
#define SNF_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace snf::sim
{

class StatGroup;

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t n = 1) { count += n; }

    std::uint64_t value() const { return count; }

    void reset() { count = 0; }

  private:
    std::uint64_t count = 0;
};

/** A plain readable/writable scalar statistic. */
class Scalar
{
  public:
    Scalar() = default;

    void set(double v) { val = v; }

    void add(double v) { val += v; }

    double value() const { return val; }

    void reset() { val = 0.0; }

  private:
    double val = 0.0;
};

/**
 * A named collection of statistics. Groups can nest; dump() emits
 * "group.sub.stat = value" lines.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name);

    /** Register (or fetch) a counter under @p name. */
    Counter &counter(const std::string &name);

    /** Register (or fetch) a scalar under @p name. */
    Scalar &scalar(const std::string &name);

    /** Attach a child group; lifetime managed by the caller. */
    void addChild(StatGroup *child);

    /** Counter value by name; 0 if absent. */
    std::uint64_t counterValue(const std::string &name) const;

    /** Scalar value by name; 0.0 if absent. */
    double scalarValue(const std::string &name) const;

    /** Reset all stats in this group and children. */
    void resetAll();

    /** Emit all stats, prefixed by the group path. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    const std::string &name() const { return groupName; }

  private:
    std::string groupName;
    std::map<std::string, Counter> counters;
    std::map<std::string, Scalar> scalars;
    std::vector<StatGroup *> children;
};

} // namespace snf::sim

#endif // SNF_SIM_STATS_HH
