#include "persist/fwb_engine.hh"

#include "persist/log_record.hh"
#include "sim/logging.hh"

namespace snf::persist
{

FwbEngine::FwbEngine(mem::MemorySystem &memory, sim::EventQueue &evq,
                     const PersistConfig &config)
    : mem(memory),
      events(evq),
      cfg(config),
      scanPeriod(config.fwbPeriod != 0
                     ? config.fwbPeriod
                     : derivePeriod(memory.config())),
      statGroup("fwb"),
      scans(statGroup.counter("scans")),
      flagged(statGroup.counter("flagged")),
      forcedWritebacks(statGroup.counter("forced_writebacks"))
{
}

Tick
FwbEngine::derivePeriod(const SystemConfig &config)
{
    // With distributed logs a single hot thread can wrap its own
    // (smaller) partition at full bandwidth, so derive from the
    // partition size.
    std::uint32_t partitions =
        config.persist.distributedLogs ? config.numCores : 1;
    std::uint64_t slots = (config.persist.logBytes / partitions - 64) /
                          LogRecord::kSlotBytes;
    // Sequential log-entry write service time at full NVRAM write
    // bandwidth; two slots coalesce per 64-byte line.
    mem::MemDevice probe("probe", config.nvram, config.map.nvramBase);
    Tick per_line =
        probe.sequentialWriteCycles(2 * LogRecord::kSlotBytes);
    Tick t_wrap = slots / 2 * per_line;
    Tick period = t_wrap / 8;
    return period == 0 ? 1 : period;
}

void
FwbEngine::start(Tick now)
{
    running = true;
    scheduleNext(now);
}

void
FwbEngine::scheduleNext(Tick now)
{
    events.schedule(now + scanPeriod, [this](Tick when) {
        if (!running)
            return;
        scan(when);
        scheduleNext(when);
    });
}

void
FwbEngine::scan(Tick now)
{
    auto result = mem.fwbScanAll(now, cfg.fwbScanCostPerLine);
    scans.inc();
    flagged.inc(result.linesFlagged);
    forcedWritebacks.inc(result.linesWrittenBack);
    if (probe)
        probe(sim::ProbeEvent::FwbScan,
              std::max(now, result.lastWritebackDone), scans.value());
    if (scanHook)
        scanHook(now);
}

} // namespace snf::persist
