/**
 * @file
 * Post-crash recovery (paper Section IV-F), extended into a salvaging
 * scanner (faultlab): classify every log slot (valid / torn /
 * CRC-fail / stale-pass), locate the live window via the torn-bit
 * boundary scan while bridging damaged slots, replay redo values of
 * committed transactions in log order, roll back uncommitted
 * transactions with undo values in reverse order, quarantine only the
 * committed transactions whose records are damaged or missing, and
 * truncate the log. All recovery writes bypass the (volatile, reset)
 * caches and go directly to the NVRAM image.
 */

#ifndef SNF_PERSIST_RECOVERY_HH
#define SNF_PERSIST_RECOVERY_HH

#include <cstdint>
#include <vector>

#include "core/system_config.hh"
#include "mem/backing_store.hh"
#include "sim/probe.hh"
#include "sim/types.hh"

namespace snf::persist
{

/** Knobs of one recovery pass. */
struct RecoveryOptions
{
    /**
     * Clear the log window after replay (paper Step 4); disable to
     * test idempotence of the replay itself.
     */
    bool truncateLog = true;
    /**
     * Fault injection for crashlab self-tests (tools/snfcrash
     * --inject-*): deliberately skip the undo / redo replay phase so
     * the sweep's invariant checkers have a real bug to catch and
     * minimize. Never set outside tests.
     */
    bool faultSkipUndo = false;
    bool faultSkipRedo = false;
    /**
     * Fault injection: trust every written slot without verifying its
     * CRC, reverting to the pre-faultlab scanner. Gives the faulted
     * sweeps a real detection bug to catch. Never set outside tests.
     */
    bool faultIgnoreCrc = false;

    // --- lifelab: crash-during-recovery and self-healing ---
    /**
     * Interrupt recovery after this many 64-byte-line NVRAM writes:
     * further writes are suppressed (the image is exactly what a
     * crash at that point leaves) while bookkeeping continues, so
     * writesIssued still reports the full pass. Recovery control
     * flow only reads state captured before its first write, which
     * is what makes the suppressed tail equivalent to a kill.
     */
    std::uint64_t crashAfterWrites = ~0ULL;
    /** Record every 64-byte line recovery writes (report.touchedLines),
     *  for the lifecycle's cross-generation invariant I9. */
    bool collectWrites = false;
    /**
     * Promote the lines of damaged (torn / CRC-fail) log slots into
     * the image's persistent remap table before truncation, so the
     * next generation's log traffic avoids them. Needs a remap region
     * in the address map (Recovery::run only).
     */
    bool promoteBadLines = false;
    /** Emits one RecoveryWrite event per line write when set. */
    sim::ProbeFn probe;
};

/**
 * Per-shard outcome of a merged (AddressMap::logShards > 1) recovery
 * pass. A shard whose header is unreadable is dead: its records are
 * lost and recovery degrades — surviving shards are salvaged while
 * every transaction whose participation mask intersects the dead
 * shard is rolled back on the shards that still hold its records.
 */
struct ShardSummary
{
    std::uint32_t shard = 0;
    bool headerValid = false;
    /** Header unreadable: the shard's slice is lost (degraded mode). */
    bool dead = false;
    /** The shard's circular log wrapped (reclamation ran). */
    bool wrapped = false;
    std::uint64_t slotsScanned = 0;
    std::uint64_t validRecords = 0;
    /** Committed transaction slices salvaged / quarantined here. */
    std::uint64_t salvagedTxns = 0;
    std::uint64_t quarantinedTxns = 0;
    /** Transaction slices rolled back (or lost) here because the
     *  transaction's participation mask intersects a dead shard. */
    std::uint64_t abortedDeadShard = 0;
};

/** Outcome summary of one recovery pass. */
struct RecoveryReport
{
    bool headerValid = false;
    std::uint64_t slotsScanned = 0;
    std::uint64_t validRecords = 0;
    /** Committed generations found (salvaged + quarantined). */
    std::uint64_t committedTxns = 0;
    std::uint64_t uncommittedTxns = 0;
    std::uint64_t redoApplied = 0;
    std::uint64_t undoApplied = 0;

    // --- salvaging scanner (faultlab) ---
    /** Committed transactions replayed normally. */
    std::uint64_t salvagedTxns = 0;
    /** Committed transactions left untouched because records were
     *  damaged or missing without a benign explanation. */
    std::uint64_t quarantinedTxns = 0;
    /** Per-error-class slot histogram over the whole region. */
    std::uint64_t emptySlots = 0;
    std::uint64_t tornSlots = 0;
    std::uint64_t crcFailSlots = 0;
    /** Valid slots carrying a stale pass parity inside the live
     *  window (old records exposed by a dropped overwrite). */
    std::uint64_t stalePassSlots = 0;
    /** Address of the first torn or CRC-damaged slot; 0 = none. */
    Addr firstBadSlotAddr = 0;
    /** 16-bit transaction IDs of the quarantined generations. */
    std::vector<std::uint16_t> quarantinedTxIds;

    // --- lifelab ---
    /** 64-byte-line writes the full pass wants (deterministic for a
     *  given image, budget or not). */
    std::uint64_t writesIssued = 0;
    /** Line writes actually applied (< writesIssued when the pass was
     *  cut short by crashAfterWrites). */
    std::uint64_t writesApplied = 0;
    /** True when crashAfterWrites suppressed at least one write. */
    bool interrupted = false;
    /** Damaged-slot lines newly promoted into the remap table. */
    std::uint64_t promotedLines = 0;
    /** Both remap-table banks failed CRC on a nonzero region: the
     *  mapping is lost and the image must not be trusted. */
    bool remapCorrupt = false;
    /** Lines written by this pass (only with opts.collectWrites). */
    std::vector<Addr> touchedLines;

    // --- shardlab (merged multi-shard recovery only) ---
    /** Per-shard salvage summary; empty unless logShards > 1. */
    std::vector<ShardSummary> shards;
    /** Transactions aborted because of a dead shard: committed ones
     *  whose participation mask intersects it (rolled back on the
     *  surviving shards), plus prepared ones whose commit record may
     *  have been lost with it. */
    std::uint64_t deadShardAborted = 0;
    std::vector<std::uint16_t> deadShardAbortTxIds;

    std::uint64_t
    damagedSlots() const
    {
        return tornSlots + crcFailSlots;
    }
};

/**
 * Installs a thread-local nanosecond accumulator that every
 * Recovery::run(image, map, ...) on this thread adds its wall-clock
 * to while the scope is alive. The crash sweep uses this to split
 * its per-point evaluation time into recover vs. check without
 * threading timers through every checker. Scopes nest (the previous
 * sink is restored on destruction); a null previous sink means
 * timing is off, which is the default.
 */
class RecoveryTimerScope
{
  public:
    explicit RecoveryTimerScope(std::uint64_t *sinkNs);
    ~RecoveryTimerScope();

    RecoveryTimerScope(const RecoveryTimerScope &) = delete;
    RecoveryTimerScope &operator=(const RecoveryTimerScope &) = delete;

  private:
    std::uint64_t *prev;
};

/**
 * The accumulator the innermost RecoveryTimerScope of this thread
 * installed, or null. Lets code that fans recovery work out to a
 * thread pool credit the workers' recovery time back to the caller's
 * timer (the thread-local scope does not span other threads).
 */
std::uint64_t *activeRecoveryTimerSink();

/** See file comment. */
class Recovery
{
  public:
    /**
     * Recover the NVRAM image in place.
     * @param image   the (crash-snapshot) NVRAM backing store
     * @param map     the system's address map (log location)
     * @param truncateLog clear the log window after replay (default),
     *        matching the paper's Step 4; disable to test idempotence
     *        of the replay itself.
     */
    static RecoveryReport run(mem::BackingStore &image,
                              const AddressMap &map,
                              bool truncateLog = true);

    /** As above with full options (fault injection for crashlab). */
    static RecoveryReport run(mem::BackingStore &image,
                              const AddressMap &map,
                              const RecoveryOptions &opts);

    /** Recover one log region at [logBase, logBase+logSize). */
    static RecoveryReport recoverRegion(mem::BackingStore &image,
                                        Addr logBase,
                                        std::uint64_t logSize,
                                        bool truncateLog = true);

    /** As above with full options. */
    static RecoveryReport recoverRegion(mem::BackingStore &image,
                                        Addr logBase,
                                        std::uint64_t logSize,
                                        const RecoveryOptions &opts);
};

} // namespace snf::persist

#endif // SNF_PERSIST_RECOVERY_HH
