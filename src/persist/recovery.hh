/**
 * @file
 * Post-crash recovery (paper Section IV-F): locate the valid log
 * window via the torn-bit boundary scan, replay redo values of
 * committed transactions in log order, roll back uncommitted
 * transactions with undo values in reverse order, and truncate the
 * log. All recovery writes bypass the (volatile, reset) caches and go
 * directly to the NVRAM image.
 */

#ifndef SNF_PERSIST_RECOVERY_HH
#define SNF_PERSIST_RECOVERY_HH

#include <cstdint>

#include "core/system_config.hh"
#include "mem/backing_store.hh"
#include "sim/types.hh"

namespace snf::persist
{

/** Knobs of one recovery pass. */
struct RecoveryOptions
{
    /**
     * Clear the log window after replay (paper Step 4); disable to
     * test idempotence of the replay itself.
     */
    bool truncateLog = true;
    /**
     * Fault injection for crashlab self-tests (tools/snfcrash
     * --inject-*): deliberately skip the undo / redo replay phase so
     * the sweep's invariant checkers have a real bug to catch and
     * minimize. Never set outside tests.
     */
    bool faultSkipUndo = false;
    bool faultSkipRedo = false;
};

/** Outcome summary of one recovery pass. */
struct RecoveryReport
{
    bool headerValid = false;
    std::uint64_t slotsScanned = 0;
    std::uint64_t validRecords = 0;
    std::uint64_t committedTxns = 0;
    std::uint64_t uncommittedTxns = 0;
    std::uint64_t redoApplied = 0;
    std::uint64_t undoApplied = 0;
};

/** See file comment. */
class Recovery
{
  public:
    /**
     * Recover the NVRAM image in place.
     * @param image   the (crash-snapshot) NVRAM backing store
     * @param map     the system's address map (log location)
     * @param truncateLog clear the log window after replay (default),
     *        matching the paper's Step 4; disable to test idempotence
     *        of the replay itself.
     */
    static RecoveryReport run(mem::BackingStore &image,
                              const AddressMap &map,
                              bool truncateLog = true);

    /** As above with full options (fault injection for crashlab). */
    static RecoveryReport run(mem::BackingStore &image,
                              const AddressMap &map,
                              const RecoveryOptions &opts);

    /** Recover one log region at [logBase, logBase+logSize). */
    static RecoveryReport recoverRegion(mem::BackingStore &image,
                                        Addr logBase,
                                        std::uint64_t logSize,
                                        bool truncateLog = true);

    /** As above with full options. */
    static RecoveryReport recoverRegion(mem::BackingStore &image,
                                        Addr logBase,
                                        std::uint64_t logSize,
                                        const RecoveryOptions &opts);
};

} // namespace snf::persist

#endif // SNF_PERSIST_RECOVERY_HH
