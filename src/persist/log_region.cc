#include "persist/log_region.hh"

#include <algorithm>
#include <cstring>

#include "mem/mem_device.hh"
#include "sim/logging.hh"

namespace snf::persist
{

LogRegion::LogRegion(Addr base, std::uint64_t size,
                     mem::MemDevice &dev, const std::string &statName)
    : regionBase(base),
      regionSize(size),
      nvram(dev),
      slots((size - kHeaderBytes) / LogRecord::kSlotBytes),
      meta(slots),
      statGroup(statName),
      appends(statGroup.counter("appends")),
      wraps(statGroup.counter("wraps")),
      reclaims(statGroup.counter("reclaims")),
      hazards(statGroup.counter("overwrite_hazards")),
      truncates(statGroup.counter("truncates")),
      logFullStalls(statGroup.counter("logfull_stalls")),
      logFullStallCycles(statGroup.counter("logfull_stall_cycles")),
      forcedWritebacks(statGroup.counter("forced_writebacks"))
{
    SNF_ASSERT(slots > 2, "log too small: %llu slots",
               static_cast<unsigned long long>(slots));
}

LogRegion::LogRegion(const AddressMap &addressMap, mem::MemDevice &dev)
    : LogRegion(addressMap.logBase(), addressMap.logSize, dev)
{
}

Addr
LogRegion::slotAddr(std::uint64_t slot) const
{
    SNF_ASSERT(slot < slots, "slot %llu out of range",
               static_cast<unsigned long long>(slot));
    return regionBase + kHeaderBytes + slot * LogRecord::kSlotBytes;
}

void
LogRegion::persistHeader(Tick now)
{
    std::uint8_t hdr[kHeaderBytes] = {};
    std::memcpy(hdr, &kMagic, 8);
    std::memcpy(hdr + 8, &slots, 8);
    std::memcpy(hdr + 16, &pass, 8);
    std::memcpy(hdr + 24, &tail, 8);
    nvram.access(true, regionBase, kHeaderBytes, hdr, nullptr, now,
                 true, PersistOrigin::Meta);
}

void
LogRegion::create()
{
    tail = 0;
    pass = 1;
    for (auto &m : meta)
        m = SlotMeta{};
    // The log region predates the run (it is set up when the
    // persistent heap is initialized, not by the workload), so the
    // header is installed functionally: durable at tick 0, before
    // any crash instant the crash tooling can pick.
    std::uint8_t hdr[kHeaderBytes] = {};
    std::memcpy(hdr, &kMagic, 8);
    std::memcpy(hdr + 8, &slots, 8);
    std::memcpy(hdr + 16, &pass, 8);
    std::memcpy(hdr + 24, &tail, 8);
    nvram.functionalWrite(regionBase, kHeaderBytes, hdr);
}

LogRegion::Reservation
LogRegion::reserve(const LogRecord &rec, Tick now)
{
    std::uint64_t slot = tail;
    SlotMeta &m = meta[slot];
    Tick ready = now;

    if (m.valid && !m.isCommit &&
        policy != LogFullPolicy::Reclaim) {
        // Log-full policy: before destroying a possibly-live record,
        // try to make its reclamation safe — force the guarded data
        // back to NVRAM, or ask the blocking transaction to abort —
        // retrying with bounded exponential backoff in simulated
        // ticks. Only when the retries are exhausted does the append
        // fall through to the legacy counted-hazard reclaim.
        bool abort_denied = false;
        for (std::uint32_t attempt = 0;
             attempt <= policyRetries; ++attempt) {
            bool blocked = false;
            if (txActive && txActive(m.txSeq)) {
                if (policy == LogFullPolicy::AbortRetry &&
                    abortRequest && !abort_denied) {
                    // A denial is the livelock guard escalating this
                    // append to the Stall policy: keep backing off,
                    // but stop hammering the same victim.
                    abort_denied = !abortRequest(m.txSeq);
                }
                // The victim can only roll back when its thread next
                // runs; within this append the slot stays blocked.
                blocked = true;
            } else if (persistedSince &&
                       !persistedSince(m.addr, m.appendTick, ready)) {
                if (forceWriteback) {
                    ready = std::max(
                        ready, forceWriteback(m.addr, ready));
                    forcedWritebacks.inc();
                }
                blocked =
                    persistedSince &&
                    !persistedSince(m.addr, m.appendTick, ready);
            }
            if (!blocked)
                break;
            if (attempt == policyRetries)
                break; // exhausted: legacy reclaim below
            Tick backoff = policyBackoffBase << attempt;
            ready += backoff;
            logFullStalls.inc();
            logFullStallCycles.inc(backoff);
        }
    }

    if (m.valid) {
        // Reclaiming the oldest live entry (the log has wrapped).
        reclaims.inc();
        bool hazard = false;
        if (!m.isCommit) {
            if (txActive && txActive(m.txSeq)) {
                // An active transaction's record is being destroyed:
                // the transaction can no longer be rolled back.
                hazard = true;
            } else if (persistedSince &&
                       !persistedSince(m.addr, m.appendTick, ready)) {
                // The working data guarded by this record has not
                // reached NVRAM since the record was appended. The
                // hardware never frees such an entry silently: it
                // forces the line back (and, when a write-back is
                // already in flight, waits for its completion ACK)
                // before advancing the log tail — the paper's log
                // truncation rule. Only when no write-back path is
                // wired does the overwrite become a counted hazard.
                if (forceWriteback) {
                    ready = std::max(ready,
                                     forceWriteback(m.addr, ready));
                    forcedWritebacks.inc();
                }
                hazard =
                    persistedSince &&
                    !persistedSince(m.addr, m.appendTick, ready);
            }
        }
        if (hazard) {
            hazards.inc();
            if (hazardSink)
                hazardSink();
        }
    }

    m.valid = true;
    // Prepare records guard no data line, so for reclamation-hazard
    // purposes they are commit-like: overwriting one can never strand
    // volatile working data.
    m.isCommit = rec.isCommit || rec.isPrepare;
    m.addr = rec.addr;
    m.appendTick = now;
    m.txSeq = 0;
    m.seqNo = nextSeqNo++;

    Reservation res{slot, slotAddr(slot), currentTorn(), ready};
    appends.inc();
    tail = (tail + 1) % slots;
    if (tail == 0) {
        ++pass;
        wraps.inc();
    }
    return res;
}

void
LogRegion::bindSlotTx(std::uint64_t slot, std::uint64_t txSeq)
{
    meta[slot].txSeq = txSeq;
}

std::vector<LogRegion::UndoEntry>
LogRegion::collectUndo(std::uint64_t txSeq) const
{
    std::vector<UndoEntry> out;
    for (std::uint64_t s = 0; s < slots; ++s) {
        const SlotMeta &m = meta[s];
        if (!m.valid || m.isCommit || m.txSeq != txSeq)
            continue;
        std::uint8_t img[LogRecord::kSlotBytes];
        nvram.functionalRead(slotAddr(s), LogRecord::kSlotBytes, img);
        SlotInfo si = classifySlot(img);
        if (si.cls != SlotClass::Valid || !si.rec.hasUndo)
            continue;
        out.push_back(UndoEntry{m.seqNo, si.rec.addr, si.rec.size,
                                si.rec.undo});
    }
    std::sort(out.begin(), out.end(),
              [](const UndoEntry &a, const UndoEntry &b) {
                  return a.seqNo > b.seqNo;
              });
    return out;
}

void
LogRegion::truncate(Tick now)
{
    tail = 0;
    pass = 1;
    for (auto &m : meta)
        m = SlotMeta{};
    // Clear the written markers of every slot. This keeps the
    // torn-bit window scan sound: at any instant the slot array holds
    // records of at most two adjacent passes. Truncation is rare
    // (log_create and post-recovery), so the sequential-write cost is
    // acceptable and is charged to the NVRAM device.
    clearSlots(now);
    persistHeader(now);
    truncates.inc();
}

void
LogRegion::clearSlots(Tick now)
{
    static constexpr std::uint64_t kChunk = 1024;
    std::uint8_t zeros[kChunk] = {};
    Addr begin = slotAddr(0);
    std::uint64_t bytes = slots * LogRecord::kSlotBytes;
    for (std::uint64_t off = 0; off < bytes; off += kChunk) {
        std::uint64_t n = std::min(kChunk, bytes - off);
        nvram.access(true, begin + off, n, zeros, nullptr, now,
                     true, PersistOrigin::Meta);
    }
}

void
LogRegion::grow(std::uint64_t newBytes, Tick now)
{
    SNF_ASSERT(newBytes > kHeaderBytes + 2 * LogRecord::kSlotBytes,
               "log_grow target too small");
    regionSize = newBytes;
    slots = (newBytes - kHeaderBytes) / LogRecord::kSlotBytes;
    meta.assign(slots, SlotMeta{});
    tail = 0;
    pass = 1;
    clearSlots(now);
    persistHeader(now);
}

} // namespace snf::persist
