/**
 * @file
 * The cache Force Write-Back (FWB) engine (paper Sections III-C and
 * IV-D): a periodic tag scan over every cache level driving the
 * IDLE -> FLAG -> FWB state machine per line, at a frequency derived
 * from the log size and NVRAM write bandwidth so that no live log
 * entry is ever overwritten while its working data is still volatile.
 */

#ifndef SNF_PERSIST_FWB_ENGINE_HH
#define SNF_PERSIST_FWB_ENGINE_HH

#include "core/system_config.hh"
#include "mem/memory_system.hh"
#include "sim/event_queue.hh"
#include "sim/probe.hh"
#include "sim/stats.hh"

namespace snf::persist
{

/** See file comment. */
class FwbEngine
{
  public:
    FwbEngine(mem::MemorySystem &memory, sim::EventQueue &events,
              const PersistConfig &config);

    /** Begin periodic scanning (first scan after one period). */
    void start(Tick now);

    /** Stop scheduling further scans. */
    void stop() { running = false; }

    Tick period() const { return scanPeriod; }

    /**
     * Derive the scan period from log size and NVRAM write
     * bandwidth (Section IV-D): the log can wrap no faster than
     *     T_wrap = slots * t_entry_write,
     * and a dirty line needs at most two scans per level across two
     * levels (4 periods) to reach NVRAM, so with a 2x safety margin
     *     period = T_wrap / 8.
     */
    static Tick derivePeriod(const SystemConfig &config);

    /**
     * Crash-tooling probe: emits FwbScan at each pass boundary (the
     * forced write-backs themselves surface via the bus monitor).
     */
    void setProbe(sim::ProbeFn p) { probe = std::move(p); }

    /**
     * Piggyback hook run at the end of every scan pass — the log
     * scrubber (lifelab) rides the FWB cadence so its background
     * traffic stays proportional to the existing scan overhead.
     */
    void
    setScanHook(std::function<void(Tick)> hook)
    {
        scanHook = std::move(hook);
    }

    sim::StatGroup &stats() { return statGroup; }

  private:
    void scheduleNext(Tick now);
    void scan(Tick now);

    mem::MemorySystem &mem;
    sim::EventQueue &events;
    PersistConfig cfg;
    Tick scanPeriod;
    bool running = false;
    sim::ProbeFn probe;
    std::function<void(Tick)> scanHook;
    sim::StatGroup statGroup;

  public:
    sim::Counter &scans;
    sim::Counter &flagged;
    sim::Counter &forcedWritebacks;
};

} // namespace snf::persist

#endif // SNF_PERSIST_FWB_ENGINE_HH
