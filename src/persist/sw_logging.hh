/**
 * @file
 * Software logging runtime for the baseline persistence schemes
 * (paper Figures 1 and 2): explicit logging instructions injected
 * into the instruction stream, uncacheable log stores through the
 * write-combining buffer, old-value loads for undo logging, and the
 * memory barrier redo logging needs between the log write and the
 * in-place data write.
 */

#ifndef SNF_PERSIST_SW_LOGGING_HH
#define SNF_PERSIST_SW_LOGGING_HH

#include <vector>

#include "core/system_config.hh"
#include "mem/memory_system.hh"
#include "persist/log_region.hh"
#include "persist/txn_tracker.hh"
#include "sim/stats.hh"

namespace snf::persist
{

/** See file comment. */
class SwLogging
{
  public:
    /** Cost of the injected logging work for one operation. */
    struct Result
    {
        Tick done = 0;
        std::uint32_t instructions = 0;
        std::uint32_t logStores = 0;
        std::uint32_t logLoads = 0;
        std::uint32_t fences = 0;
    };

    /**
     * @param regions one circular region per log shard (a single
     *        element keeps the pre-shard centralized behavior).
     * @param logShards >1 routes records by data-line address and
     *        commits cross-shard transactions through the prepare /
     *        masked-commit protocol (same wire format as the HWL
     *        engine, so recovery is backend-agnostic).
     */
    SwLogging(PersistMode mode, mem::MemorySystem &memory,
              std::vector<LogRegion *> regions, TxnTracker &txns,
              std::uint32_t logShards = 1,
              bool injectSkipShardMask = false);

    /**
     * Log one persistent store about to be performed (must be called
     * before the data write; undo logging reads the old value).
     */
    Result logStore(CoreId core, std::uint64_t txSeq, Addr addr,
                    std::uint32_t size, std::uint64_t newVal, Tick now);

    /** Write the commit record (no flushes; the caller orders them). */
    Result logCommit(CoreId core, std::uint64_t txSeq, Tick now);

    bool
    wantsUndo() const
    {
        return mode == PersistMode::UnsafeUndo ||
               mode == PersistMode::UndoClwb;
    }

    bool
    wantsRedo() const
    {
        return mode == PersistMode::UnsafeRedo ||
               mode == PersistMode::RedoClwb;
    }

    /** Redo logging needs a barrier before the in-place data write. */
    bool
    needsPreStoreBarrier() const
    {
        return mode == PersistMode::RedoClwb;
    }

    sim::StatGroup &stats() { return statGroup; }

    /** Shard owning a data-line address (identity when unsharded). */
    std::uint32_t
    shardOf(Addr addr) const
    {
        return shards > 1
                   ? static_cast<std::uint32_t>((addr >> 6) % shards)
                   : 0;
    }

  private:
    /**
     * Write a serialized record into its reserved log slot of
     * @p region as a sequence of <= 8-byte uncacheable stores
     * through the WCB.
     */
    void writeRecordViaWcb(LogRegion &region, const LogRecord &rec,
                           std::uint64_t txSeq, Result &res, Tick now);

    PersistMode mode;
    mem::MemorySystem &mem;
    std::vector<LogRegion *> regions;
    TxnTracker &txns;
    std::uint32_t shards;
    bool skipShardMask;
    /**
     * Sharded mode only: durable tick of the most recent commit
     * record. Each sharded commit drains the WCB, issued no earlier
     * than this fence, so commit records reach NVRAM in
     * commit-initiation order even when they coalesce onto log lines
     * of different shard regions queued out of order. Unsharded logs
     * get the ordering for free: region slots (and hence WCB line
     * entries) are claimed in commit order. The drain folds into
     * res.done, matching the unsharded fence-at-commit semantics
     * (CommitDurable is emitted at the caller's post-fence time).
     */
    Tick commitFence = 0;
    sim::StatGroup statGroup;

  public:
    sim::Counter &updateRecords;
    sim::Counter &commitRecords;
    sim::Counter &injectedInstructions;
    sim::Counter &crossShardCommits;
    sim::Counter &prepareRecords;
};

} // namespace snf::persist

#endif // SNF_PERSIST_SW_LOGGING_HH
