/**
 * @file
 * Software logging runtime for the baseline persistence schemes
 * (paper Figures 1 and 2): explicit logging instructions injected
 * into the instruction stream, uncacheable log stores through the
 * write-combining buffer, old-value loads for undo logging, and the
 * memory barrier redo logging needs between the log write and the
 * in-place data write.
 */

#ifndef SNF_PERSIST_SW_LOGGING_HH
#define SNF_PERSIST_SW_LOGGING_HH

#include "core/system_config.hh"
#include "mem/memory_system.hh"
#include "persist/log_region.hh"
#include "persist/txn_tracker.hh"
#include "sim/stats.hh"

namespace snf::persist
{

/** See file comment. */
class SwLogging
{
  public:
    /** Cost of the injected logging work for one operation. */
    struct Result
    {
        Tick done = 0;
        std::uint32_t instructions = 0;
        std::uint32_t logStores = 0;
        std::uint32_t logLoads = 0;
        std::uint32_t fences = 0;
    };

    SwLogging(PersistMode mode, mem::MemorySystem &memory,
              LogRegion &region, TxnTracker &txns);

    /**
     * Log one persistent store about to be performed (must be called
     * before the data write; undo logging reads the old value).
     */
    Result logStore(CoreId core, std::uint64_t txSeq, Addr addr,
                    std::uint32_t size, std::uint64_t newVal, Tick now);

    /** Write the commit record (no flushes; the caller orders them). */
    Result logCommit(CoreId core, std::uint64_t txSeq, Tick now);

    bool
    wantsUndo() const
    {
        return mode == PersistMode::UnsafeUndo ||
               mode == PersistMode::UndoClwb;
    }

    bool
    wantsRedo() const
    {
        return mode == PersistMode::UnsafeRedo ||
               mode == PersistMode::RedoClwb;
    }

    /** Redo logging needs a barrier before the in-place data write. */
    bool
    needsPreStoreBarrier() const
    {
        return mode == PersistMode::RedoClwb;
    }

    sim::StatGroup &stats() { return statGroup; }

  private:
    /**
     * Write a serialized record into its reserved log slot as a
     * sequence of <= 8-byte uncacheable stores through the WCB.
     */
    void writeRecordViaWcb(const LogRecord &rec, std::uint64_t txSeq,
                           Result &res, Tick now);

    PersistMode mode;
    mem::MemorySystem &mem;
    LogRegion &region;
    TxnTracker &txns;
    sim::StatGroup statGroup;

  public:
    sim::Counter &updateRecords;
    sim::Counter &commitRecords;
    sim::Counter &injectedInstructions;
};

} // namespace snf::persist

#endif // SNF_PERSIST_SW_LOGGING_HH
