#include "persist/hwl_engine.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace snf::persist
{

HwlEngine::HwlEngine(PersistMode m, std::vector<LogBuffer *> bufs,
                     std::vector<LogRegion *> regs,
                     TxnTracker &tracker, std::uint32_t logShards,
                     bool injectSkipShardMask)
    : mode(m),
      buffers(std::move(bufs)),
      regions(std::move(regs)),
      txns(tracker),
      shards(logShards > 0 ? logShards : 1),
      skipShardMask(injectSkipShardMask),
      statGroup("hwl"),
      updateRecords(statGroup.counter("update_records")),
      commitRecords(statGroup.counter("commit_records")),
      crossShardCommits(statGroup.counter("cross_shard_commits")),
      prepareRecords(statGroup.counter("prepare_records"))
{
    SNF_ASSERT(isHardwareLogging(m), "HWL engine with mode %s",
               persistModeName(m));
    SNF_ASSERT(!buffers.empty() && buffers.size() == regions.size(),
               "HWL engine needs matched buffer/region partitions");
    SNF_ASSERT(shards == 1 || buffers.size() == shards,
               "HWL engine: %zu regions for %u shards",
               buffers.size(), shards);
}

std::uint32_t
HwlEngine::indexFor(CoreId core, Addr addr) const
{
    if (shards > 1)
        return shardOf(addr);
    return static_cast<std::uint32_t>(core % buffers.size());
}

Tick
HwlEngine::onPersistentStore(CoreId core, std::uint64_t txSeq, Addr addr,
                             std::uint32_t size, std::uint64_t oldVal,
                             std::uint64_t newVal, Tick now)
{
    bool want_undo =
        mode == PersistMode::HwUlog || mode == PersistMode::Hwl ||
        mode == PersistMode::Fwb;
    bool want_redo =
        mode == PersistMode::HwRlog || mode == PersistMode::Hwl ||
        mode == PersistMode::Fwb;

    LogRecord rec = LogRecord::update(
        static_cast<std::uint8_t>(core), TxnTracker::txIdOf(txSeq),
        addr, static_cast<std::uint8_t>(size),
        want_undo ? std::optional<std::uint64_t>(oldVal) : std::nullopt,
        want_redo ? std::optional<std::uint64_t>(newVal)
                  : std::nullopt);
    std::uint32_t idx = indexFor(core, addr);
    LogBuffer &buf = *buffers[idx];
    Tick proceed = buf.append(rec, now);
    regions[idx]->bindSlotTx(buf.lastSlot(), txSeq);
    txns.noteLogRecord(txSeq);
    if (shards > 1)
        txns.noteShardRecord(txSeq, idx);
    updateRecords.inc();
    return proceed;
}

Tick
HwlEngine::onCommit(CoreId core, std::uint64_t txSeq, Tick now)
{
    std::uint64_t mask = shards > 1 ? txns.shardMaskOf(txSeq) : 0;
    bool multi = mask != 0 && (mask & (mask - 1)) != 0;

    if (!multi) {
        // Single-region transaction (or unsharded): the legacy plain
        // commit record, appended behind the tx's updates in the same
        // FIFO — drain order alone makes it atomic.
        std::uint32_t idx;
        if (mask != 0) {
            idx = 0;
            while (!(mask & (1ULL << idx)))
                ++idx;
        } else {
            idx = static_cast<std::uint32_t>(core % buffers.size());
        }
        LogRecord rec = LogRecord::commit(
            static_cast<std::uint8_t>(core), TxnTracker::txIdOf(txSeq),
            txns.logRecordCount(txSeq));
        LogBuffer &buf = *buffers[idx];
        Tick proceed = buf.append(rec, now);
        regions[idx]->bindSlotTx(buf.lastSlot(), txSeq);
        commitRecords.inc();
        if (shards > 1) {
            // Commit-ordering interlock (see commitFence): drain the
            // commit no earlier than the previous commit's durable
            // tick, so commits in different shard FIFOs can never be
            // concurrently in flight. The core does not wait.
            commitFence =
                buf.drainAll(std::max(now, commitFence));
        }
        return proceed;
    }

    // Cross-shard two-phase commit. Owner = lowest participant shard.
    // Phase 1: a prepare record closes every other participant's
    // slice, and each participant FIFO is drained so the prepares
    // (and the updates queued ahead of them) are durable. Phase 2:
    // the masked commit record is appended to the owner shard no
    // earlier than the last prepare's completion — the commit is
    // never concurrently pending with a prepare, so any crash (under
    // any legal persist order) lands strictly before or strictly
    // after the atomic commit point.
    std::uint32_t owner = 0;
    while (!(mask & (1ULL << owner)))
        ++owner;
    TxId txid = TxnTracker::txIdOf(txSeq);
    Tick ready = now;
    for (std::uint32_t s = 0; s < shards; ++s) {
        if (s == owner || !(mask & (1ULL << s)))
            continue;
        LogRecord prep = LogRecord::prepare(
            static_cast<std::uint8_t>(core), txid,
            txns.shardRecordCount(txSeq, s), txSeq);
        LogBuffer &buf = *buffers[s];
        Tick t = buf.append(prep, now);
        regions[s]->bindSlotTx(buf.lastSlot(), txSeq);
        prepareRecords.inc();
        ready = std::max(ready, std::max(t, buf.drainAll(now)));
    }
    std::uint64_t commitMask = skipShardMask ? (1ULL << owner) : mask;
    LogRecord rec = LogRecord::commitMasked(
        static_cast<std::uint8_t>(core), txid,
        txns.shardRecordCount(txSeq, owner), txSeq, commitMask);
    // The masked commit additionally waits out the commit-ordering
    // fence (see commitFence), then drains eagerly so the next
    // commit can chain on its durable tick.
    Tick at = std::max(ready, commitFence);
    LogBuffer &buf = *buffers[owner];
    Tick proceed = buf.append(rec, at);
    regions[owner]->bindSlotTx(buf.lastSlot(), txSeq);
    commitFence = buf.drainAll(at);
    commitRecords.inc();
    crossShardCommits.inc();
    return std::max(proceed, ready);
}

} // namespace snf::persist
