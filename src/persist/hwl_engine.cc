#include "persist/hwl_engine.hh"

#include "sim/logging.hh"

namespace snf::persist
{

HwlEngine::HwlEngine(PersistMode m, std::vector<LogBuffer *> bufs,
                     std::vector<LogRegion *> regs,
                     TxnTracker &tracker)
    : mode(m),
      buffers(std::move(bufs)),
      regions(std::move(regs)),
      txns(tracker),
      statGroup("hwl"),
      updateRecords(statGroup.counter("update_records")),
      commitRecords(statGroup.counter("commit_records"))
{
    SNF_ASSERT(isHardwareLogging(m), "HWL engine with mode %s",
               persistModeName(m));
    SNF_ASSERT(!buffers.empty() && buffers.size() == regions.size(),
               "HWL engine needs matched buffer/region partitions");
}

LogBuffer &
HwlEngine::bufferFor(CoreId core)
{
    return *buffers[core % buffers.size()];
}

LogRegion &
HwlEngine::regionFor(CoreId core)
{
    return *regions[core % regions.size()];
}

Tick
HwlEngine::onPersistentStore(CoreId core, std::uint64_t txSeq, Addr addr,
                             std::uint32_t size, std::uint64_t oldVal,
                             std::uint64_t newVal, Tick now)
{
    bool want_undo =
        mode == PersistMode::HwUlog || mode == PersistMode::Hwl ||
        mode == PersistMode::Fwb;
    bool want_redo =
        mode == PersistMode::HwRlog || mode == PersistMode::Hwl ||
        mode == PersistMode::Fwb;

    LogRecord rec = LogRecord::update(
        static_cast<std::uint8_t>(core), TxnTracker::txIdOf(txSeq),
        addr, static_cast<std::uint8_t>(size),
        want_undo ? std::optional<std::uint64_t>(oldVal) : std::nullopt,
        want_redo ? std::optional<std::uint64_t>(newVal)
                  : std::nullopt);
    LogBuffer &buf = bufferFor(core);
    Tick proceed = buf.append(rec, now);
    regionFor(core).bindSlotTx(buf.lastSlot(), txSeq);
    txns.noteLogRecord(txSeq);
    updateRecords.inc();
    return proceed;
}

Tick
HwlEngine::onCommit(CoreId core, std::uint64_t txSeq, Tick now)
{
    LogRecord rec = LogRecord::commit(static_cast<std::uint8_t>(core),
                                      TxnTracker::txIdOf(txSeq),
                                      txns.logRecordCount(txSeq));
    LogBuffer &buf = bufferFor(core);
    Tick proceed = buf.append(rec, now);
    regionFor(core).bindSlotTx(buf.lastSlot(), txSeq);
    commitRecords.inc();
    return proceed;
}

} // namespace snf::persist
