/**
 * @file
 * The Hardware Logging (HWL) engine (paper Section III-B).
 *
 * HWL observes every persistent store at the L1 — the old value comes
 * from the write-allocated cache line, the new value from the
 * in-flight store — and appends an undo and/or redo record to the log
 * buffer, with zero instructions executed in the pipeline. Commits
 * get a "free ride": a single commit record is appended, with no
 * flushes or barriers (Section III-D).
 */

#ifndef SNF_PERSIST_HWL_ENGINE_HH
#define SNF_PERSIST_HWL_ENGINE_HH

#include <vector>

#include "core/system_config.hh"
#include "mem/memory_system.hh"
#include "persist/log_buffer.hh"
#include "persist/txn_tracker.hh"
#include "sim/stats.hh"

namespace snf::persist
{

/** See file comment. */
class HwlEngine : public mem::PersistentStoreHook
{
  public:
    /**
     * @param buffers one (log buffer, region) pair per log
     *        partition; with centralized logging the vectors have
     *        one element, with distributed logs one per core
     *        (records route by core id, Section III-F), with
     *        address-interleaved sharding one per shard (records
     *        route by data-line address, shardlab).
     * @param logShards >1 selects address-interleaved shard routing
     *        (buffers.size() must equal logShards) and the
     *        cross-shard two-phase commit protocol.
     * @param injectSkipShardMask self-test: cross-shard commit
     *        records carry an owner-only participation mask (timing
     *        unchanged); the sharded crash sweep must catch the
     *        resulting half-committed recoveries.
     */
    HwlEngine(PersistMode mode, std::vector<LogBuffer *> buffers,
              std::vector<LogRegion *> regions, TxnTracker &txns,
              std::uint32_t logShards = 1,
              bool injectSkipShardMask = false);

    /**
     * Cache-triggered logging of one persistent store. Returns the
     * tick the store may proceed at (log-buffer back-pressure).
     */
    Tick onPersistentStore(CoreId core, std::uint64_t txSeq, Addr addr,
                           std::uint32_t size, std::uint64_t oldVal,
                           std::uint64_t newVal, Tick now) override;

    /** Append the commit record for @p txSeq. */
    Tick onCommit(CoreId core, std::uint64_t txSeq, Tick now);

    sim::StatGroup &stats() { return statGroup; }

    /** Shard owning a data-line address (identity when unsharded). */
    std::uint32_t
    shardOf(Addr addr) const
    {
        return shards > 1
                   ? static_cast<std::uint32_t>((addr >> 6) % shards)
                   : 0;
    }

  private:
    /** Buffer/region index for one record: by shard when sharded,
     *  by core under distributed per-core partitions. */
    std::uint32_t indexFor(CoreId core, Addr addr) const;

    PersistMode mode;
    std::vector<LogBuffer *> buffers;
    std::vector<LogRegion *> regions;
    TxnTracker &txns;
    std::uint32_t shards;
    bool skipShardMask;
    /**
     * Sharded mode only: durable tick of the most recent commit
     * record (any shard, any core). The next commit's drain is
     * issued no earlier than this, so commit records reach NVRAM in
     * commit-initiation order even though they live in independent
     * per-shard FIFOs — without it, tx N+1's commit in a fast shard
     * could become durable before tx N's in a slow one, and a crash
     * between the two would recover a non-prefix state. Unsharded
     * logs get this ordering for free from the single FIFO.
     */
    Tick commitFence = 0;
    sim::StatGroup statGroup;

  public:
    sim::Counter &updateRecords;
    sim::Counter &commitRecords;
    /** Cross-shard two-phase commits (subset of commitRecords). */
    sim::Counter &crossShardCommits;
    /** Participant prepare records appended. */
    sim::Counter &prepareRecords;
};

} // namespace snf::persist

#endif // SNF_PERSIST_HWL_ENGINE_HH
