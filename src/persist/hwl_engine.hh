/**
 * @file
 * The Hardware Logging (HWL) engine (paper Section III-B).
 *
 * HWL observes every persistent store at the L1 — the old value comes
 * from the write-allocated cache line, the new value from the
 * in-flight store — and appends an undo and/or redo record to the log
 * buffer, with zero instructions executed in the pipeline. Commits
 * get a "free ride": a single commit record is appended, with no
 * flushes or barriers (Section III-D).
 */

#ifndef SNF_PERSIST_HWL_ENGINE_HH
#define SNF_PERSIST_HWL_ENGINE_HH

#include <vector>

#include "core/system_config.hh"
#include "mem/memory_system.hh"
#include "persist/log_buffer.hh"
#include "persist/txn_tracker.hh"
#include "sim/stats.hh"

namespace snf::persist
{

/** See file comment. */
class HwlEngine : public mem::PersistentStoreHook
{
  public:
    /**
     * @param buffers one (log buffer, region) pair per log
     *        partition; with centralized logging the vectors have
     *        one element, with distributed logs one per core
     *        (records route by core id, Section III-F).
     */
    HwlEngine(PersistMode mode, std::vector<LogBuffer *> buffers,
              std::vector<LogRegion *> regions, TxnTracker &txns);

    /**
     * Cache-triggered logging of one persistent store. Returns the
     * tick the store may proceed at (log-buffer back-pressure).
     */
    Tick onPersistentStore(CoreId core, std::uint64_t txSeq, Addr addr,
                           std::uint32_t size, std::uint64_t oldVal,
                           std::uint64_t newVal, Tick now) override;

    /** Append the commit record for @p txSeq. */
    Tick onCommit(CoreId core, std::uint64_t txSeq, Tick now);

    sim::StatGroup &stats() { return statGroup; }

  private:
    LogBuffer &bufferFor(CoreId core);
    LogRegion &regionFor(CoreId core);

    PersistMode mode;
    std::vector<LogBuffer *> buffers;
    std::vector<LogRegion *> regions;
    TxnTracker &txns;
    sim::StatGroup statGroup;

  public:
    sim::Counter &updateRecords;
    sim::Counter &commitRecords;
};

} // namespace snf::persist

#endif // SNF_PERSIST_HWL_ENGINE_HH
