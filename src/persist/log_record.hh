/**
 * @file
 * Undo+redo log record format (paper Figure 3(a)), format v2.
 *
 * A record carries a torn bit, a 16-bit transaction ID, an 8-bit
 * thread ID, a 48-bit physical address, and word-sized undo and redo
 * values. Records occupy fixed 32-byte slots in the circular log; the
 * bytes actually written to NVRAM (and counted as traffic) depend on
 * which values are present: 16 B header, plus 8 B per value.
 *
 * Format v2 adds media-fault tolerance on top of the paper's layout
 * without growing the record: a format-version byte and a CRC32 over
 * the whole written payload now live in header bytes that were slack
 * in v1 (the 48-bit address is stored in 6 bytes instead of a padded
 * 8). Commit records additionally carry the number of update records
 * the transaction appended, so the salvaging recovery scanner can
 * tell "records lost to reclamation" from "records lost to damage".
 *
 * Slot layout (little-endian):
 *   [0]      flags (written marker, torn bit, undo/redo/commit)
 *   [1]      thread ID
 *   [2..3]   transaction ID
 *   [4]      store size in bytes (0 for commit records)
 *   [5]      format version (kFormatVersion)
 *   [6..11]  48-bit address (commit records: [6..9] = nUpdates)
 *   [12..15] CRC32 of bytes [0, payloadBytes()) with [12..15] as zero
 *   [16..23] undo value (if present)
 *   [16..31] / [24..31] redo value (if present)
 *
 * The cross-shard commit protocol (shardlab) adds two record kinds in
 * previously free flag bits, leaving every pre-shard record image
 * untouched:
 *   prepare (kFlagPrepare): closes one participant shard's slice of a
 *     cross-shard transaction. [6..9] = update records this tx
 *     appended *in this shard*, [16..23] = the global commit sequence
 *     number joining the shards. Payload 24 B.
 *   masked commit (kFlagCommit | kFlagShardMask): the owner shard's
 *     atomic commit point. [6..9] = owner-shard update count,
 *     [16..23] = commit sequence number, [24..31] = participation
 *     mask (bit s = shard s holds records of this tx). Payload 32 B.
 */

#ifndef SNF_PERSIST_LOG_RECORD_HH
#define SNF_PERSIST_LOG_RECORD_HH

#include <cstdint>
#include <optional>

#include "sim/types.hh"

namespace snf::persist
{

/**
 * Classification of a raw log slot image by the salvaging scanner.
 * Empty and Torn both lack the written marker; they are separated so
 * recovery can distinguish "never used" from "interrupted or damaged
 * mid-write". A slot whose pass parity puts it outside the live
 * window is further reported as stale by the recovery layer itself —
 * staleness is a property of the window, not of the slot image.
 */
enum class SlotClass : std::uint8_t
{
    Empty,   ///< no written marker and every byte zero
    Torn,    ///< no written marker but nonzero bytes (partial write)
    CrcFail, ///< written marker present but version/CRC mismatch
    Valid,   ///< written marker, version and CRC all check out
};

/** Printable name of a SlotClass. */
const char *slotClassName(SlotClass cls);

/** One undo/redo/commit log record. */
struct LogRecord
{
    static constexpr std::uint32_t kSlotBytes = 32;
    static constexpr std::uint32_t kHeaderBytes = 16;
    static constexpr std::uint8_t kFormatVersion = 2;

    // Flag bits in the serialized header.
    static constexpr std::uint8_t kFlagTorn = 1u << 0;
    static constexpr std::uint8_t kFlagHasUndo = 1u << 1;
    static constexpr std::uint8_t kFlagHasRedo = 1u << 2;
    static constexpr std::uint8_t kFlagCommit = 1u << 3;
    static constexpr std::uint8_t kFlagShardMask = 1u << 4;
    static constexpr std::uint8_t kFlagPrepare = 1u << 5;
    static constexpr std::uint8_t kFlagWritten = 1u << 7;

    std::uint8_t thread = 0;
    std::uint16_t tx = 0;
    std::uint8_t size = 8; ///< store footprint in bytes (<= 8)
    bool hasUndo = false;
    bool hasRedo = false;
    bool isCommit = false;
    /** Cross-shard prepare record (closes one participant shard). */
    bool isPrepare = false;
    /** Commit record carries a shard participation mask. */
    bool hasShardMask = false;
    Addr addr = 0; ///< 48-bit physical address of the update
    std::uint64_t undo = 0;
    std::uint64_t redo = 0;
    /** Commit records: update records this transaction appended
     *  (masked commits and prepares: the count in *their* shard). */
    std::uint32_t nUpdates = 0;
    /** Prepare/masked commit: global commit sequence number. */
    std::uint64_t commitSeq = 0;
    /** Masked commit: bit s set = shard s participates in the tx. */
    std::uint64_t shardMask = 0;

    /** Make an update record. */
    static LogRecord update(std::uint8_t thread, std::uint16_t tx,
                            Addr addr, std::uint8_t size,
                            std::optional<std::uint64_t> undoVal,
                            std::optional<std::uint64_t> redoVal);

    /** Make a transaction-commit record. */
    static LogRecord commit(std::uint8_t thread, std::uint16_t tx,
                            std::uint32_t nUpdates = 0);

    /** Make a participant-shard prepare record (cross-shard tx). */
    static LogRecord prepare(std::uint8_t thread, std::uint16_t tx,
                             std::uint32_t nUpdatesInShard,
                             std::uint64_t commitSeq);

    /** Make an owner-shard commit record with a participation mask. */
    static LogRecord commitMasked(std::uint8_t thread,
                                  std::uint16_t tx,
                                  std::uint32_t nUpdatesInShard,
                                  std::uint64_t commitSeq,
                                  std::uint64_t shardMask);

    /** Bytes of NVRAM traffic this record costs. */
    std::uint32_t payloadBytes() const;

    /**
     * Serialize into a 32-byte slot image with the given torn-bit
     * value. Unused tail bytes are zeroed. The CRC is computed last,
     * over the full written payload including the torn bit.
     */
    void serialize(std::uint8_t out[kSlotBytes], bool torn) const;

    /**
     * Parse a slot image. Returns nullopt if the slot was never
     * written (no written-marker). @p tornOut receives the torn bit.
     * Does NOT verify the CRC — use classify() when the slot may be
     * damaged.
     */
    static std::optional<LogRecord>
    deserialize(const std::uint8_t in[kSlotBytes], bool &tornOut);

    /** CRC32 (reflected, poly 0xEDB88320) of @p n bytes. */
    static std::uint32_t crc32(const std::uint8_t *data,
                               std::uint32_t n);
};

/** Result of classifying a raw slot image. */
struct SlotInfo
{
    SlotClass cls = SlotClass::Empty;
    bool torn = false;  ///< torn (pass-parity) bit; valid slots only
    LogRecord rec;      ///< parsed record; valid slots only
};

/**
 * Classify a raw slot image: empty, torn, CRC-damaged, or valid.
 * This is the damage-aware entry point for the salvaging scanner.
 */
SlotInfo classifySlot(const std::uint8_t in[LogRecord::kSlotBytes]);

} // namespace snf::persist

#endif // SNF_PERSIST_LOG_RECORD_HH
