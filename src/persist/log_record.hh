/**
 * @file
 * Undo+redo log record format (paper Figure 3(a)).
 *
 * A record carries a torn bit, a 16-bit transaction ID, an 8-bit
 * thread ID, a 48-bit physical address, and word-sized undo and redo
 * values. Records occupy fixed 32-byte slots in the circular log; the
 * bytes actually written to NVRAM (and counted as traffic) depend on
 * which values are present: 16 B header, plus 8 B per value.
 */

#ifndef SNF_PERSIST_LOG_RECORD_HH
#define SNF_PERSIST_LOG_RECORD_HH

#include <cstdint>
#include <optional>

#include "sim/types.hh"

namespace snf::persist
{

/** One undo/redo/commit log record. */
struct LogRecord
{
    static constexpr std::uint32_t kSlotBytes = 32;
    static constexpr std::uint32_t kHeaderBytes = 16;

    // Flag bits in the serialized header.
    static constexpr std::uint8_t kFlagTorn = 1u << 0;
    static constexpr std::uint8_t kFlagHasUndo = 1u << 1;
    static constexpr std::uint8_t kFlagHasRedo = 1u << 2;
    static constexpr std::uint8_t kFlagCommit = 1u << 3;
    static constexpr std::uint8_t kFlagWritten = 1u << 7;

    std::uint8_t thread = 0;
    std::uint16_t tx = 0;
    std::uint8_t size = 8; ///< store footprint in bytes (<= 8)
    bool hasUndo = false;
    bool hasRedo = false;
    bool isCommit = false;
    Addr addr = 0; ///< 48-bit physical address of the update
    std::uint64_t undo = 0;
    std::uint64_t redo = 0;

    /** Make an update record. */
    static LogRecord update(std::uint8_t thread, std::uint16_t tx,
                            Addr addr, std::uint8_t size,
                            std::optional<std::uint64_t> undoVal,
                            std::optional<std::uint64_t> redoVal);

    /** Make a transaction-commit record. */
    static LogRecord commit(std::uint8_t thread, std::uint16_t tx);

    /** Bytes of NVRAM traffic this record costs. */
    std::uint32_t payloadBytes() const;

    /**
     * Serialize into a 32-byte slot image with the given torn-bit
     * value. Unused tail bytes are zeroed.
     */
    void serialize(std::uint8_t out[kSlotBytes], bool torn) const;

    /**
     * Parse a slot image. Returns nullopt if the slot was never
     * written (no written-marker). @p tornOut receives the torn bit.
     */
    static std::optional<LogRecord>
    deserialize(const std::uint8_t in[kSlotBytes], bool &tornOut);
};

} // namespace snf::persist

#endif // SNF_PERSIST_LOG_RECORD_HH
