#include "persist/recovery.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "mem/remap_table.hh"
#include "persist/log_record.hh"
#include "persist/log_region.hh"
#include "sim/logging.hh"

namespace snf::persist
{

namespace
{

constexpr std::uint64_t kLineBytes = mem::RemapTable::kLineBytes;

/**
 * Recovery's window onto the crash image: every read and write is
 * translated through the image's remap table (a promoted log slot's
 * live bytes are at its spare), every write is counted in 64-byte-line
 * units and suppressed once the crashAfterWrites budget is spent, so
 * one code path serves normal recovery, I9 write collection, and the
 * crash-during-recovery sweeps.
 */
struct ImageIO
{
    mem::BackingStore &img;
    const mem::RemapTable *remap = nullptr;
    std::uint64_t budget = ~0ULL;
    bool collect = false;
    const sim::ProbeFn *probe = nullptr;

    std::uint64_t issued = 0;
    std::uint64_t applied = 0;
    std::vector<Addr> touched;

    Addr
    translate(Addr a) const
    {
        if (!remap)
            return a;
        Addr line = a & ~static_cast<Addr>(kLineBytes - 1);
        if (auto spare = remap->find(line))
            return *spare + (a - line);
        return a;
    }

    void
    read(Addr a, std::uint64_t n, void *out) const
    {
        auto *dst = static_cast<std::uint8_t *>(out);
        while (n > 0) {
            Addr line_end = (a | (kLineBytes - 1)) + 1;
            std::uint64_t seg = std::min<std::uint64_t>(n,
                                                        line_end - a);
            img.read(translate(a), seg, dst);
            dst += seg;
            a += seg;
            n -= seg;
        }
    }

    std::uint64_t
    read64(Addr a) const
    {
        std::uint64_t v = 0;
        read(a, sizeof(v), &v);
        return v;
    }

    /**
     * Large read-only sweep (the slot-array scan): with no active
     * remapping the whole range goes to the store in one call, which
     * walks it page-wise instead of line-wise.
     */
    void
    readBulk(Addr a, std::uint64_t n, void *out) const
    {
        if (!remap || remap->size() == 0)
            img.read(a, n, out);
        else
            read(a, n, out);
    }

    void
    write(Addr a, std::uint64_t n, const void *in)
    {
        const auto *src = static_cast<const std::uint8_t *>(in);
        // Bulk fast path (log truncation writes whole KBs): when no
        // per-line observer is active, no line is remapped, and every
        // covered line fits the write budget, one store write counts
        // exactly like the per-line loop would.
        if (n > 0 && !collect && !(probe && *probe) &&
            (!remap || remap->size() == 0)) {
            std::uint64_t lines =
                ((a + n - 1) / kLineBytes) - (a / kLineBytes) + 1;
            if (applied + lines <= budget) {
                img.write(a, n, src);
                issued += lines;
                applied += lines;
                return;
            }
        }
        while (n > 0) {
            Addr line_end = (a | (kLineBytes - 1)) + 1;
            std::uint64_t seg = std::min<std::uint64_t>(n,
                                                        line_end - a);
            Addr line = a & ~static_cast<Addr>(kLineBytes - 1);
            ++issued;
            if (probe && *probe)
                (*probe)(sim::ProbeEvent::RecoveryWrite, issued, line);
            if (applied < budget) {
                img.write(translate(a), seg, src);
                ++applied;
                // The touched set feeds I9's physical-image diff, so
                // record the line actually written (the spare when
                // the logical line is remapped).
                if (collect)
                    touched.push_back(translate(line));
            }
            src += seg;
            a += seg;
            n -= seg;
        }
    }

    bool contains(Addr a, std::uint64_t n) const
    {
        return img.contains(a, n);
    }

    /**
     * Sparse scan support: with no line remapped, reads are untranslated
     * and the slot scan may walk the image's resident pages in place,
     * treating absent pages as all-zero without copying them.
     */
    bool
    directScan() const
    {
        return !remap || remap->size() == 0;
    }

    const std::uint8_t *
    pageAt(Addr a, std::uint64_t *avail) const
    {
        return img.pageAt(a, avail);
    }

    bool interrupted() const { return issued > applied; }
};

RecoveryReport recoverRegionIo(ImageIO &io, Addr logBase,
                               std::uint64_t logSize,
                               const RecoveryOptions &opts,
                               mem::RemapTable *promoteInto);

RecoveryReport recoverShardedIo(ImageIO &io, const AddressMap &map,
                                const RecoveryOptions &opts,
                                mem::RemapTable *promoteInto);

/** Active per-thread sink of RecoveryTimerScope (null = off). */
thread_local std::uint64_t *recoveryTimerSink = nullptr;

} // namespace

RecoveryTimerScope::RecoveryTimerScope(std::uint64_t *sinkNs)
    : prev(recoveryTimerSink)
{
    recoveryTimerSink = sinkNs;
}

RecoveryTimerScope::~RecoveryTimerScope()
{
    recoveryTimerSink = prev;
}

std::uint64_t *
activeRecoveryTimerSink()
{
    return recoveryTimerSink;
}

RecoveryReport
Recovery::run(mem::BackingStore &image, const AddressMap &map,
              bool truncateLog)
{
    RecoveryOptions opts;
    opts.truncateLog = truncateLog;
    return run(image, map, opts);
}

RecoveryReport
Recovery::run(mem::BackingStore &image, const AddressMap &map,
              const RecoveryOptions &opts)
{
    struct TimeGuard
    {
        std::chrono::steady_clock::time_point start =
            std::chrono::steady_clock::now();
        ~TimeGuard()
        {
            if (recoveryTimerSink) {
                *recoveryTimerSink += static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count());
            }
        }
    } timeGuard;

    // With distributed logs, each partition is an independent
    // circular log holding complete transactions (transactions are
    // thread-private, Section III-F), so partitions recover
    // independently and the reports sum. The write budget, the remap
    // table, and the touched-line set span the whole pass.
    RecoveryReport total;
    mem::RemapTable remap(map.remapBase(), map.remapSize ? map.remapSize
                                                         : 128,
                          map.spareBase(), map.spareSize);
    bool have_remap = map.remapSize != 0;
    if (have_remap) {
        mem::RemapTable::LoadResult lr = remap.load(image);
        total.remapCorrupt = lr.corrupted;
    }
    ImageIO io{image};
    io.remap = have_remap ? &remap : nullptr;
    io.budget = opts.crashAfterWrites;
    io.collect = opts.collectWrites;
    io.probe = &opts.probe;

    // Sharded logs (logShards > 1) split transactions by address, so
    // shards do NOT recover independently: commit decisions join
    // records across shards and the whole pass is merged.
    if (map.logShards > 1) {
        RecoveryReport r = recoverShardedIo(
            io, map, opts,
            have_remap && opts.promoteBadLines ? &remap : nullptr);
        r.remapCorrupt = total.remapCorrupt;
        r.writesIssued = io.issued;
        r.writesApplied = io.applied;
        r.interrupted = io.interrupted();
        r.touchedLines = std::move(io.touched);
        return r;
    }

    std::uint32_t partitions = std::max(map.logPartitions, 1u);
    std::uint64_t part_bytes = map.logSize / partitions;
    for (std::uint32_t p = 0; p < partitions; ++p) {
        RecoveryReport r = recoverRegionIo(
            io, map.logBase() + p * part_bytes, part_bytes, opts,
            have_remap && opts.promoteBadLines ? &remap : nullptr);
        total.headerValid |= r.headerValid;
        total.slotsScanned += r.slotsScanned;
        total.validRecords += r.validRecords;
        total.committedTxns += r.committedTxns;
        total.uncommittedTxns += r.uncommittedTxns;
        total.redoApplied += r.redoApplied;
        total.undoApplied += r.undoApplied;
        total.salvagedTxns += r.salvagedTxns;
        total.quarantinedTxns += r.quarantinedTxns;
        total.emptySlots += r.emptySlots;
        total.tornSlots += r.tornSlots;
        total.crcFailSlots += r.crcFailSlots;
        total.stalePassSlots += r.stalePassSlots;
        total.promotedLines += r.promotedLines;
        if (total.firstBadSlotAddr == 0)
            total.firstBadSlotAddr = r.firstBadSlotAddr;
        total.quarantinedTxIds.insert(total.quarantinedTxIds.end(),
                                      r.quarantinedTxIds.begin(),
                                      r.quarantinedTxIds.end());
    }
    total.writesIssued = io.issued;
    total.writesApplied = io.applied;
    total.interrupted = io.interrupted();
    total.touchedLines = std::move(io.touched);
    return total;
}

RecoveryReport
Recovery::recoverRegion(mem::BackingStore &image, Addr logBase,
                        std::uint64_t logSize, bool truncateLog)
{
    RecoveryOptions opts;
    opts.truncateLog = truncateLog;
    return recoverRegion(image, logBase, logSize, opts);
}

RecoveryReport
Recovery::recoverRegion(mem::BackingStore &image, Addr logBase,
                        std::uint64_t logSize,
                        const RecoveryOptions &opts)
{
    // Legacy single-region entry point: no remap table, but the
    // write budget and collection still apply.
    ImageIO io{image};
    io.budget = opts.crashAfterWrites;
    io.collect = opts.collectWrites;
    io.probe = &opts.probe;
    RecoveryReport report =
        recoverRegionIo(io, logBase, logSize, opts, nullptr);
    report.writesIssued = io.issued;
    report.writesApplied = io.applied;
    report.interrupted = io.interrupted();
    report.touchedLines = std::move(io.touched);
    return report;
}

namespace
{

RecoveryReport
recoverRegionIo(ImageIO &io, Addr logBase, std::uint64_t logSize,
                const RecoveryOptions &opts,
                mem::RemapTable *promoteInto)
{
    RecoveryReport report;

    // Step 1: read the log header (geometry) from NVRAM.
    Addr log_base = logBase;
    std::uint64_t magic = io.read64(log_base);
    std::uint64_t slots = io.read64(log_base + 8);
    if (magic != LogRegion::kMagic || slots == 0 ||
        slots > (logSize - LogRegion::kHeaderBytes) /
                    LogRecord::kSlotBytes) {
        warn("recovery: invalid log header, nothing to recover");
        return report;
    }
    report.headerValid = true;

    Addr slot0 = log_base + LogRegion::kHeaderBytes;
    auto zeroAllSlots = [&]() {
        // Chunked into whole lines so the write budget sees the same
        // units as every other recovery write.
        constexpr std::uint64_t kChunk = 1024;
        std::uint8_t zeros[kChunk] = {};
        std::uint64_t area = slots * LogRecord::kSlotBytes;
        for (std::uint64_t off = 0; off < area; off += kChunk)
            io.write(slot0 + off,
                     std::min<std::uint64_t>(kChunk, area - off),
                     zeros);
        std::uint64_t cleared = 0;
        io.write(log_base + LogRegion::kTruncFlagOffset,
                 sizeof(cleared), &cleared);
    };

    // An interrupted truncation must not let a resumed recovery
    // reinterpret the partially zeroed slot array (a zeroed prefix
    // can detach a commit record from its updates or resurrect
    // stale-pass records under a different window parity). The
    // truncating flag is set — one atomic counted write — only after
    // replay and promotion completed, so a resumed pass can skip
    // straight to finishing the zeroing.
    if (io.read64(log_base + LogRegion::kTruncFlagOffset) != 0) {
        zeroAllSlots();
        return report;
    }

    // Step 2: classify every slot. classifySlot separates damage
    // (torn partial writes, CRC failures) from parseable records;
    // damaged slots never contribute replay values. The scan is by
    // far the hottest loop of a crash sweep (4+ passes per evaluated
    // point), so with no remapping active it walks the image's
    // resident pages in place: a page never written reads as zero, so
    // every slot inside it is Empty without the bytes ever being
    // copied or compared — on a typical sweep only the written log
    // prefix of the multi-MB region costs anything. Remapped images
    // (lifelab) keep the translated bulk-read path.
    //
    // Scratch is thread_local and reused across calls: a sweep runs
    // recovery once per crash point × pass, and the per-call
    // allocation plus value-initialization of a full SlotInfo array
    // (each entry embeds a LogRecord) dominated recovery's own
    // profile. Per-slot state is an 8-byte SlotMeta; parsed records
    // are stored once, densely, only for Valid slots.
    struct SlotMeta
    {
        SlotClass cls;
        bool torn;
        std::uint32_t rec; ///< index into `parsed`, or kNoRec
    };
    constexpr std::uint32_t kNoRec = ~std::uint32_t{0};
    thread_local std::vector<std::uint8_t> slotImg;
    thread_local std::vector<SlotMeta> meta;
    thread_local std::vector<SlotInfo> parsed;
    meta.assign(slots, SlotMeta{SlotClass::Empty, false, kNoRec});
    parsed.clear();
    static const std::uint8_t kZeroSlot[LogRecord::kSlotBytes] = {};
    auto scanOne = [&](std::uint64_t i, const std::uint8_t *img) {
        if (std::memcmp(img, kZeroSlot, LogRecord::kSlotBytes) == 0) {
            // All-zero slot: the default meta already says Empty, and
            // most of the region is empty in a typical sweep.
            ++report.emptySlots;
            ++report.slotsScanned;
            return;
        }
        SlotInfo si = classifySlot(img);
        if (opts.faultIgnoreCrc && si.cls == SlotClass::CrcFail) {
            // Injected bug: the pre-faultlab scanner trusted any slot
            // with a written marker.
            bool torn = false;
            auto rec = LogRecord::deserialize(img, torn);
            if (rec && rec->payloadBytes() <= LogRecord::kSlotBytes) {
                si.cls = SlotClass::Valid;
                si.torn = torn;
                si.rec = *rec;
            }
        }
        meta[i].cls = si.cls;
        meta[i].torn = si.torn;
        switch (si.cls) {
          case SlotClass::Empty:
            ++report.emptySlots;
            break;
          case SlotClass::Torn:
            ++report.tornSlots;
            break;
          case SlotClass::CrcFail:
            ++report.crcFailSlots;
            break;
          case SlotClass::Valid:
            meta[i].rec = static_cast<std::uint32_t>(parsed.size());
            parsed.push_back(si);
            break;
        }
        if ((si.cls == SlotClass::Torn ||
             si.cls == SlotClass::CrcFail) &&
            report.firstBadSlotAddr == 0) {
            report.firstBadSlotAddr =
                slot0 + i * LogRecord::kSlotBytes;
        }
        ++report.slotsScanned;
    };
    if (io.directScan()) {
        std::uint64_t i = 0;
        while (i < slots) {
            Addr a = slot0 + i * LogRecord::kSlotBytes;
            std::uint64_t avail = 0;
            const std::uint8_t *p = io.pageAt(a, &avail);
            std::uint64_t whole = std::min<std::uint64_t>(
                slots - i, avail / LogRecord::kSlotBytes);
            if (whole == 0) {
                // Slot straddles a page boundary: assemble it.
                std::uint8_t buf[LogRecord::kSlotBytes];
                io.read(a, LogRecord::kSlotBytes, buf);
                scanOne(i, buf);
                ++i;
                continue;
            }
            if (p == nullptr) {
                // Absent page: `whole` slots of zeros.
                report.emptySlots += whole;
                report.slotsScanned += whole;
            } else {
                for (std::uint64_t k = 0; k < whole; ++k)
                    scanOne(i + k,
                            p + k * LogRecord::kSlotBytes);
            }
            i += whole;
        }
    } else {
        slotImg.resize(slots * LogRecord::kSlotBytes);
        io.readBulk(slot0, slotImg.size(), slotImg.data());
        for (std::uint64_t i = 0; i < slots; ++i)
            scanOne(i, slotImg.data() + i * LogRecord::kSlotBytes);
    }

    // Step 3: locate the live window. The torn (pass-parity) bit of
    // the first valid slot fixes the current pass; the window runs to
    // the LAST slot of that parity, bridging damaged or dropped slots
    // instead of stopping at the first anomaly (a single damaged slot
    // must not hide every record behind it). Valid slots of the other
    // parity past the window end are the previous pass (older,
    // replayed first); inside the window they are stale records
    // exposed by a dropped overwrite and must not be replayed.
    std::vector<std::uint64_t> window;
    bool wrapped = false;
    std::int64_t first_valid = -1;
    for (std::uint64_t i = 0; i < slots; ++i) {
        if (meta[i].cls == SlotClass::Valid) {
            first_valid = static_cast<std::int64_t>(i);
            break;
        }
    }
    if (first_valid >= 0) {
        bool t0 = meta[first_valid].torn;
        std::uint64_t boundary = 0; // one past the last current slot
        for (std::uint64_t i = 0; i < slots; ++i)
            if (meta[i].cls == SlotClass::Valid && meta[i].torn == t0)
                boundary = i + 1;
        std::vector<std::uint64_t> prev;
        for (std::uint64_t i = boundary; i < slots; ++i)
            if (meta[i].cls == SlotClass::Valid)
                prev.push_back(i);
        wrapped = !prev.empty() || boundary == slots;
        window = std::move(prev);
        for (std::uint64_t i = 0; i < boundary; ++i) {
            switch (meta[i].cls) {
              case SlotClass::Valid:
                if (meta[i].torn == t0)
                    window.push_back(i);
                else
                    ++report.stalePassSlots;
                break;
              case SlotClass::Empty:
              case SlotClass::Torn:
              case SlotClass::CrcFail:
                // Holes and damage inside the live window: bridged,
                // already counted in the histogram above.
                break;
            }
        }
    }
    report.validRecords = window.size();

    // Step 4: group records by transaction generation. A commit
    // record closes the current generation of its 16-bit txid; a
    // later record with the same txid starts a new generation.
    struct Generation
    {
        std::vector<std::uint64_t> updates; // ordered indices
        bool committed = false;
        std::uint32_t nUpdates = 0; // from the commit record
        std::uint16_t tx = 0;
        bool salvage = false;
    };
    std::vector<Generation> generations;
    std::map<std::uint16_t, std::size_t> open_gen;
    std::vector<const SlotInfo *> ordered;
    ordered.reserve(window.size());
    for (std::uint64_t slot : window)
        ordered.push_back(&parsed[meta[slot].rec]);

    std::vector<std::size_t> gen_of(ordered.size(), SIZE_MAX);
    for (std::size_t i = 0; i < ordered.size(); ++i) {
        const LogRecord &rec = ordered[i]->rec;
        auto it = open_gen.find(rec.tx);
        if (it == open_gen.end()) {
            generations.push_back({});
            generations.back().tx = rec.tx;
            it = open_gen.emplace(rec.tx, generations.size() - 1)
                     .first;
        }
        if (rec.isCommit) {
            generations[it->second].committed = true;
            generations[it->second].nUpdates = rec.nUpdates;
            open_gen.erase(it);
        } else {
            generations[it->second].updates.push_back(i);
            gen_of[i] = it->second;
        }
    }

    // Step 5: salvage or quarantine each committed generation. A
    // generation whose commit record promises nUpdates records is
    // salvaged when they were all found. A shortfall is benign only
    // if the log wrapped: reclamation legitimately overwrites old
    // records (and only ones whose data already persisted, so the
    // partial replay is still correct). Without a wrap, log drains
    // are FIFO — a durable commit record implies every update record
    // landed first — so a shortfall can only mean media damage:
    // quarantine, leave the data exactly as the crash left it.
    // nUpdates == 0 records predate the accounting and keep the
    // legacy always-replay behavior.
    for (auto &gen : generations) {
        if (!gen.committed)
            continue;
        ++report.committedTxns;
        std::uint64_t found = gen.updates.size();
        if (gen.nUpdates == 0 || found == gen.nUpdates || wrapped) {
            gen.salvage = true;
            ++report.salvagedTxns;
        } else {
            ++report.quarantinedTxns;
            report.quarantinedTxIds.push_back(gen.tx);
        }
    }

    // Step 6: replay. Redo salvaged transactions' updates in global
    // log order; undo uncommitted ones in global reverse log order.
    // Quarantined transactions are left exactly as the crash left
    // them. Writes are functional (the caches are volatile and reset
    // after the crash).
    for (std::size_t i = 0;
         !opts.faultSkipRedo && i < ordered.size(); ++i) {
        if (gen_of[i] == SIZE_MAX || !generations[gen_of[i]].salvage)
            continue;
        const LogRecord &rec = ordered[i]->rec;
        if (rec.hasRedo && rec.size >= 1 && rec.size <= 8 &&
            io.contains(rec.addr, rec.size)) {
            io.write(rec.addr, rec.size, &rec.redo);
            ++report.redoApplied;
        }
    }
    std::vector<std::uint64_t> undo_order;
    for (const auto &gen : generations) {
        if (gen.committed)
            continue;
        ++report.uncommittedTxns;
        undo_order.insert(undo_order.end(), gen.updates.begin(),
                          gen.updates.end());
    }
    std::sort(undo_order.begin(), undo_order.end(),
              std::greater<>());
    if (opts.faultSkipUndo)
        undo_order.clear();
    for (std::uint64_t idx : undo_order) {
        const LogRecord &rec = ordered[idx]->rec;
        if (rec.hasUndo && rec.size >= 1 && rec.size <= 8 &&
            io.contains(rec.addr, rec.size)) {
            io.write(rec.addr, rec.size, &rec.undo);
            ++report.undoApplied;
        }
    }

    // Step 6b (lifelab): promote the lines of damaged slots into the
    // persistent remap table so the next generation's log traffic
    // avoids the suspect media. This runs BEFORE truncation — the
    // damage evidence must survive an interrupted pass so a resumed
    // recovery finds the same promotion set — and processes lines in
    // ascending address order, skipping ones already promoted, so the
    // spare assignment is deterministic across interrupt/resume.
    if (promoteInto) {
        std::vector<Addr> bad_lines;
        for (std::uint64_t i = 0; i < slots; ++i) {
            if (meta[i].cls != SlotClass::Torn &&
                meta[i].cls != SlotClass::CrcFail)
                continue;
            Addr line = (slot0 + i * LogRecord::kSlotBytes) &
                        ~static_cast<Addr>(kLineBytes - 1);
            if (bad_lines.empty() || bad_lines.back() != line)
                bad_lines.push_back(line);
        }
        bool grew = false;
        for (Addr line : bad_lines) {
            if (promoteInto->find(line) || promoteInto->full())
                continue;
            // Copy the line's current bytes to the spare *before*
            // the mapping exists (afterwards reads of the line would
            // follow the mapping), then record it.
            std::uint8_t buf[kLineBytes];
            io.read(line, kLineBytes, buf);
            std::optional<Addr> spare = promoteInto->add(line);
            SNF_ASSERT(spare, "remap add failed on unmapped line");
            io.write(*spare, kLineBytes, buf);
            grew = true;
            ++report.promotedLines;
        }
        if (grew) {
            // One durable table update per region; goes through the
            // counted writer so the sweep can interrupt it at any
            // chunk (the half-written bank stays CRC-invalid).
            promoteInto->persist(
                [&io](Addr a, std::uint64_t n, const void *d) {
                    io.write(a, n, d);
                });
        }
    }

    // Step 7: truncate the log: clear every slot (damaged ones too).
    // The flag raised first makes the whole step atomic from a
    // resumed recovery's point of view.
    if (opts.truncateLog) {
        std::uint64_t raised = 1;
        io.write(log_base + LogRegion::kTruncFlagOffset,
                 sizeof(raised), &raised);
        zeroAllSlots();
    }
    return report;
}

// ---------------------------------------------------------------
// Merged multi-shard recovery (shardlab)
// ---------------------------------------------------------------

/** One transaction generation inside one shard's live window. */
struct ShardGen
{
    /** Update-record positions, indices into the shard's window. */
    std::vector<std::uint64_t> updates;
    std::uint16_t tx = 0;
    enum class Close { Open, Legacy, Prepare, Masked };
    Close close = Close::Open;
    std::uint32_t nUpdates = 0;  ///< promised by the closing record
    std::uint64_t commitSeq = 0; ///< Prepare / Masked only
    std::uint64_t shardMask = 0; ///< Masked only
    /** Prepare generation joined to its masked commit record. */
    bool consumed = false;
    /** Open generation held by a quarantined transaction: its prepare
     *  record is missing, so neither redo nor undo may touch it. */
    bool pinned = false;
    enum class Action { Leave, Redo, Undo };
    Action action = Action::Leave;
};

/** Scan state of one shard's slice of the log region. */
struct ShardScan
{
    Addr base = 0;
    Addr slot0 = 0;
    std::uint64_t slots = 0;
    bool dead = true;
    bool truncFlag = false;
    bool wrapped = false;
    std::vector<SlotInfo> info;            ///< per slot
    std::vector<const SlotInfo *> ordered; ///< live window, log order
    std::vector<std::size_t> genOf;        ///< window idx -> gen idx
    std::vector<ShardGen> gens;
    /** Generations never closed by any record, by txid. */
    std::map<std::uint16_t, std::size_t> openGen;
};

/**
 * Recover a log split into AddressMap::logShards address-interleaved
 * shards. Each shard scans exactly like a single region (same slot
 * classification, torn-parity window, re-entrant truncation flag),
 * but commit decisions are made per *transaction*, joining records
 * across shards:
 *
 *  - A plain commit record keeps the single-region semantics — a
 *    transaction whose updates all landed in one shard never paid
 *    the cross-shard protocol.
 *  - A masked commit record names its participant shards and its
 *    64-bit transaction sequence number; prepare records in the
 *    participant shards join it exactly by that sequence number.
 *    The commit record is the single atomic commit point: present ->
 *    redo every shard's slice, absent -> undo every slice.
 *  - A shard whose header is unreadable is dead (degraded mode):
 *    surviving shards are salvaged, and any transaction whose
 *    participation mask intersects the dead shard is rolled back on
 *    the shards that still hold its records (its dead-shard slice is
 *    unrecoverable either way), reported in deadShardAbortTxIds.
 *
 * Truncation raises every live shard's flag before zeroing any slot
 * array, so a resumed pass finding any flag set knows replay fully
 * applied (the flag writes are ordered after every replay write
 * through the counted ImageIO) and only has to finish the zeroing.
 */
RecoveryReport
recoverShardedIo(ImageIO &io, const AddressMap &map,
                 const RecoveryOptions &opts,
                 mem::RemapTable *promoteInto)
{
    RecoveryReport report;
    const std::uint32_t nShards = map.logShards;
    const std::uint64_t shard_bytes = map.logSize / nShards;

    std::vector<ShardScan> sc(nShards);
    report.shards.resize(nShards);
    std::uint64_t deadMask = 0;
    bool anyTruncFlag = false;

    // Pass A: headers and truncation flags of every shard, before any
    // write — the merged resume decision needs the global flag view.
    for (std::uint32_t s = 0; s < nShards; ++s) {
        ShardScan &sh = sc[s];
        sh.base = map.logBase() + s * shard_bytes;
        sh.slot0 = sh.base + LogRegion::kHeaderBytes;
        ShardSummary &summ = report.shards[s];
        summ.shard = s;
        std::uint64_t magic = io.read64(sh.base);
        std::uint64_t slots = io.read64(sh.base + 8);
        if (magic != LogRegion::kMagic || slots == 0 ||
            slots > (shard_bytes - LogRegion::kHeaderBytes) /
                        LogRecord::kSlotBytes) {
            warn("recovery: shard %u header invalid, degraded mode",
                 s);
            summ.dead = true;
            deadMask |= 1ULL << s;
            continue;
        }
        sh.dead = false;
        sh.slots = slots;
        summ.headerValid = true;
        report.headerValid = true;
        sh.truncFlag =
            io.read64(sh.base + LogRegion::kTruncFlagOffset) != 0;
        anyTruncFlag |= sh.truncFlag;
    }

    auto zeroShard = [&](ShardScan &sh) {
        constexpr std::uint64_t kChunk = 1024;
        std::uint8_t zeros[kChunk] = {};
        std::uint64_t area = sh.slots * LogRecord::kSlotBytes;
        for (std::uint64_t off = 0; off < area; off += kChunk)
            io.write(sh.slot0 + off,
                     std::min<std::uint64_t>(kChunk, area - off),
                     zeros);
        std::uint64_t cleared = 0;
        io.write(sh.base + LogRegion::kTruncFlagOffset,
                 sizeof(cleared), &cleared);
    };

    // Interrupted-truncation resume: any live shard's flag proves the
    // previous pass finished replay everywhere (all flags are raised
    // before any slot is zeroed, and raised only after replay), so
    // the resumed pass just finishes zeroing every live shard.
    if (anyTruncFlag) {
        for (auto &sh : sc)
            if (!sh.dead)
                zeroShard(sh);
        return report;
    }

    // Pass B: per-shard slot classification, live-window location and
    // generation grouping — steps 2-4 of the single-region scanner,
    // with prepare and masked-commit records additionally closing
    // generations.
    static const std::uint8_t kZeroSlot[LogRecord::kSlotBytes] = {};
    for (std::uint32_t s = 0; s < nShards; ++s) {
        ShardScan &sh = sc[s];
        if (sh.dead)
            continue;
        ShardSummary &summ = report.shards[s];
        std::vector<std::uint8_t> slotImg(sh.slots *
                                          LogRecord::kSlotBytes);
        io.readBulk(sh.slot0, slotImg.size(), slotImg.data());
        sh.info.resize(sh.slots);
        for (std::uint64_t i = 0; i < sh.slots; ++i) {
            const std::uint8_t *img =
                slotImg.data() + i * LogRecord::kSlotBytes;
            ++report.slotsScanned;
            ++summ.slotsScanned;
            if (std::memcmp(img, kZeroSlot, LogRecord::kSlotBytes) ==
                0) {
                ++report.emptySlots;
                continue;
            }
            sh.info[i] = classifySlot(img);
            if (opts.faultIgnoreCrc &&
                sh.info[i].cls == SlotClass::CrcFail) {
                bool torn = false;
                auto rec = LogRecord::deserialize(img, torn);
                if (rec &&
                    rec->payloadBytes() <= LogRecord::kSlotBytes) {
                    sh.info[i].cls = SlotClass::Valid;
                    sh.info[i].torn = torn;
                    sh.info[i].rec = *rec;
                }
            }
            switch (sh.info[i].cls) {
              case SlotClass::Empty:
                ++report.emptySlots;
                break;
              case SlotClass::Torn:
                ++report.tornSlots;
                break;
              case SlotClass::CrcFail:
                ++report.crcFailSlots;
                break;
              case SlotClass::Valid:
                break;
            }
            if ((sh.info[i].cls == SlotClass::Torn ||
                 sh.info[i].cls == SlotClass::CrcFail) &&
                report.firstBadSlotAddr == 0) {
                report.firstBadSlotAddr =
                    sh.slot0 + i * LogRecord::kSlotBytes;
            }
        }

        std::vector<std::uint64_t> window;
        std::int64_t first_valid = -1;
        for (std::uint64_t i = 0; i < sh.slots; ++i) {
            if (sh.info[i].cls == SlotClass::Valid) {
                first_valid = static_cast<std::int64_t>(i);
                break;
            }
        }
        if (first_valid >= 0) {
            bool t0 = sh.info[first_valid].torn;
            std::uint64_t boundary = 0;
            for (std::uint64_t i = 0; i < sh.slots; ++i)
                if (sh.info[i].cls == SlotClass::Valid &&
                    sh.info[i].torn == t0)
                    boundary = i + 1;
            std::vector<std::uint64_t> prev;
            for (std::uint64_t i = boundary; i < sh.slots; ++i)
                if (sh.info[i].cls == SlotClass::Valid)
                    prev.push_back(i);
            sh.wrapped = !prev.empty() || boundary == sh.slots;
            window = std::move(prev);
            for (std::uint64_t i = 0; i < boundary; ++i) {
                if (sh.info[i].cls != SlotClass::Valid)
                    continue;
                if (sh.info[i].torn == t0)
                    window.push_back(i);
                else
                    ++report.stalePassSlots;
            }
        }
        sh.ordered.reserve(window.size());
        for (std::uint64_t slot : window)
            sh.ordered.push_back(&sh.info[slot]);
        summ.validRecords = sh.ordered.size();
        summ.wrapped = sh.wrapped;
        report.validRecords += sh.ordered.size();

        sh.genOf.assign(sh.ordered.size(), SIZE_MAX);
        for (std::size_t i = 0; i < sh.ordered.size(); ++i) {
            const LogRecord &rec = sh.ordered[i]->rec;
            auto it = sh.openGen.find(rec.tx);
            if (it == sh.openGen.end()) {
                sh.gens.push_back({});
                sh.gens.back().tx = rec.tx;
                it = sh.openGen.emplace(rec.tx, sh.gens.size() - 1)
                         .first;
            }
            ShardGen &gen = sh.gens[it->second];
            if (rec.isPrepare) {
                gen.close = ShardGen::Close::Prepare;
                gen.nUpdates = rec.nUpdates;
                gen.commitSeq = rec.commitSeq;
                sh.openGen.erase(it);
            } else if (rec.isCommit && rec.hasShardMask) {
                gen.close = ShardGen::Close::Masked;
                gen.nUpdates = rec.nUpdates;
                gen.commitSeq = rec.commitSeq;
                gen.shardMask = rec.shardMask;
                sh.openGen.erase(it);
            } else if (rec.isCommit) {
                gen.close = ShardGen::Close::Legacy;
                gen.nUpdates = rec.nUpdates;
                sh.openGen.erase(it);
            } else {
                gen.updates.push_back(i);
                sh.genOf[i] = it->second;
            }
        }
    }

    // Step 5 (merged): decide every transaction. Index the cross-shard
    // protocol records first — prepares join their masked commit
    // exactly by the 64-bit transaction sequence number both carry.
    struct GenRef
    {
        std::uint32_t shard;
        std::size_t idx;
    };
    std::map<std::uint64_t, GenRef> maskedBySeq;
    std::map<std::uint64_t, std::vector<GenRef>> preparesBySeq;
    for (std::uint32_t s = 0; s < nShards; ++s) {
        for (std::size_t g = 0; g < sc[s].gens.size(); ++g) {
            ShardGen &gen = sc[s].gens[g];
            if (gen.close == ShardGen::Close::Masked)
                maskedBySeq[gen.commitSeq] = {s, g};
            else if (gen.close == ShardGen::Close::Prepare)
                preparesBySeq[gen.commitSeq].push_back({s, g});
        }
    }

    // Plain commits: single-shard transactions, single-region
    // salvage-or-quarantine semantics within their shard.
    for (std::uint32_t s = 0; s < nShards; ++s) {
        for (auto &gen : sc[s].gens) {
            if (gen.close != ShardGen::Close::Legacy)
                continue;
            ++report.committedTxns;
            std::uint64_t found = gen.updates.size();
            if (gen.nUpdates == 0 || found == gen.nUpdates ||
                sc[s].wrapped) {
                gen.action = ShardGen::Action::Redo;
                ++report.salvagedTxns;
                ++report.shards[s].salvagedTxns;
            } else {
                ++report.quarantinedTxns;
                ++report.shards[s].quarantinedTxns;
                report.quarantinedTxIds.push_back(gen.tx);
            }
        }
    }

    // Masked commits: one committed transaction per record, its
    // slices joined across shards.
    for (auto &[seq, mref] : maskedBySeq) {
        ShardScan &osh = sc[mref.shard];
        ShardGen &own = osh.gens[mref.idx];
        ++report.committedTxns;
        std::uint64_t mask = own.shardMask;

        std::vector<GenRef> slices{mref};
        auto pit = preparesBySeq.find(seq);
        if (pit != preparesBySeq.end()) {
            for (GenRef r : pit->second) {
                if (mask & (1ULL << r.shard)) {
                    sc[r.shard].gens[r.idx].consumed = true;
                    slices.push_back(r);
                }
            }
        }

        if (mask & deadMask) {
            // Degraded mode: the dead shard's slice (updates and its
            // undo values) is gone, so the transaction cannot be
            // replayed whole. Roll back every surviving slice and
            // report the abort — the dead-shard data lines stay as
            // the crash left them.
            ++report.deadShardAborted;
            report.deadShardAbortTxIds.push_back(own.tx);
            for (GenRef r : slices) {
                sc[r.shard].gens[r.idx].action =
                    ShardGen::Action::Undo;
                ++report.shards[r.shard].abortedDeadShard;
            }
            for (std::uint32_t s = 0; s < nShards; ++s)
                if (mask & deadMask & (1ULL << s))
                    ++report.shards[s].abortedDeadShard;
            continue;
        }

        // Completeness across the participation mask: every named
        // shard must account for its slice. A missing or short slice
        // is benign only when that shard wrapped (reclamation only
        // overwrites records whose data already persisted).
        bool ok = own.updates.size() == own.nUpdates || osh.wrapped;
        std::vector<GenRef> attachedOpen;
        for (std::uint32_t s = 0; s < nShards; ++s) {
            if (s == mref.shard || !(mask & (1ULL << s)))
                continue;
            bool have = false;
            for (GenRef r : slices) {
                if (r.shard != s)
                    continue;
                have = true;
                ShardGen &p = sc[s].gens[r.idx];
                if (!(p.updates.size() == p.nUpdates ||
                      sc[s].wrapped))
                    ok = false;
            }
            if (have)
                continue;
            // No prepare from shard s. An open generation of the
            // same txid there is the slice with its prepare record
            // lost: quarantine the whole transaction and pin the
            // generation so rollback does not touch it either.
            auto oit = sc[s].openGen.find(own.tx);
            if (oit != sc[s].openGen.end()) {
                ok = false;
                attachedOpen.push_back({s, oit->second});
            } else if (!sc[s].wrapped) {
                ok = false;
            }
        }
        if (ok) {
            ++report.salvagedTxns;
            for (GenRef r : slices) {
                sc[r.shard].gens[r.idx].action =
                    ShardGen::Action::Redo;
                ++report.shards[r.shard].salvagedTxns;
            }
        } else {
            ++report.quarantinedTxns;
            report.quarantinedTxIds.push_back(own.tx);
            for (GenRef r : slices)
                ++report.shards[r.shard].quarantinedTxns;
            for (GenRef r : attachedOpen) {
                sc[r.shard].gens[r.idx].pinned = true;
                ++report.shards[r.shard].quarantinedTxns;
            }
        }
    }

    // Uncommitted work: prepares with no commit record (the crash hit
    // between the prepare drain and the commit persist — or the
    // commit record died with a dead owner shard) and generations
    // still open, rolled back and counted once per transaction. A
    // prepare whose commit exists but whose shard the commit's mask
    // disowns is rolled back too without recounting the transaction
    // (only mask corruption or the skip-shard-mask self-test can
    // produce it, and the mask is authoritative).
    std::set<std::uint16_t> abortTx;
    std::set<std::uint16_t> deadAmbiguous;
    for (std::uint32_t s = 0; s < nShards; ++s) {
        for (auto &gen : sc[s].gens) {
            if (gen.close == ShardGen::Close::Prepare &&
                !gen.consumed) {
                gen.action = ShardGen::Action::Undo;
                if (maskedBySeq.count(gen.commitSeq))
                    continue;
                abortTx.insert(gen.tx);
                if (deadMask)
                    deadAmbiguous.insert(gen.tx);
            } else if (gen.close == ShardGen::Close::Open &&
                       !gen.pinned) {
                gen.action = ShardGen::Action::Undo;
                abortTx.insert(gen.tx);
            }
        }
    }
    report.uncommittedTxns = abortTx.size();
    for (std::uint16_t tx : deadAmbiguous) {
        ++report.deadShardAborted;
        report.deadShardAbortTxIds.push_back(tx);
    }

    // Step 6 (merged replay). Updates to one address always live in
    // one shard (the shard is a function of the address), so per-shard
    // log order is the only order that matters: redo in shard order,
    // undo in reverse shard order, shards independent.
    if (!opts.faultSkipRedo) {
        for (std::uint32_t s = 0; s < nShards; ++s) {
            ShardScan &sh = sc[s];
            for (std::size_t i = 0; i < sh.ordered.size(); ++i) {
                std::size_t gi = sh.genOf[i];
                if (gi == SIZE_MAX ||
                    sh.gens[gi].action != ShardGen::Action::Redo)
                    continue;
                const LogRecord &rec = sh.ordered[i]->rec;
                if (rec.hasRedo && rec.size >= 1 && rec.size <= 8 &&
                    io.contains(rec.addr, rec.size)) {
                    io.write(rec.addr, rec.size, &rec.redo);
                    ++report.redoApplied;
                }
            }
        }
    }
    if (!opts.faultSkipUndo) {
        for (std::uint32_t s = 0; s < nShards; ++s) {
            ShardScan &sh = sc[s];
            for (std::size_t i = sh.ordered.size(); i-- > 0;) {
                std::size_t gi = sh.genOf[i];
                if (gi == SIZE_MAX ||
                    sh.gens[gi].action != ShardGen::Action::Undo)
                    continue;
                const LogRecord &rec = sh.ordered[i]->rec;
                if (rec.hasUndo && rec.size >= 1 && rec.size <= 8 &&
                    io.contains(rec.addr, rec.size)) {
                    io.write(rec.addr, rec.size, &rec.undo);
                    ++report.undoApplied;
                }
            }
        }
    }

    // Step 6b: promote damaged-slot lines, per shard (same rules as
    // the single-region pass).
    if (promoteInto) {
        for (std::uint32_t s = 0; s < nShards; ++s) {
            ShardScan &sh = sc[s];
            if (sh.dead)
                continue;
            std::vector<Addr> bad_lines;
            for (std::uint64_t i = 0; i < sh.slots; ++i) {
                if (sh.info[i].cls != SlotClass::Torn &&
                    sh.info[i].cls != SlotClass::CrcFail)
                    continue;
                Addr line = (sh.slot0 + i * LogRecord::kSlotBytes) &
                            ~static_cast<Addr>(kLineBytes - 1);
                if (bad_lines.empty() || bad_lines.back() != line)
                    bad_lines.push_back(line);
            }
            bool grew = false;
            for (Addr line : bad_lines) {
                if (promoteInto->find(line) || promoteInto->full())
                    continue;
                std::uint8_t buf[kLineBytes];
                io.read(line, kLineBytes, buf);
                std::optional<Addr> spare = promoteInto->add(line);
                SNF_ASSERT(spare, "remap add failed on unmapped line");
                io.write(*spare, kLineBytes, buf);
                grew = true;
                ++report.promotedLines;
            }
            if (grew) {
                promoteInto->persist(
                    [&io](Addr a, std::uint64_t n, const void *d) {
                        io.write(a, n, d);
                    });
            }
        }
    }

    // Step 7 (merged truncation): raise every live shard's flag, then
    // zero every live shard's slot array (each zeroShard clears its
    // own flag last). Raising all flags first is what makes the
    // resume rule above sound at every interleaving point.
    if (opts.truncateLog) {
        std::uint64_t raised = 1;
        for (auto &sh : sc)
            if (!sh.dead)
                io.write(sh.base + LogRegion::kTruncFlagOffset,
                         sizeof(raised), &raised);
        for (auto &sh : sc)
            if (!sh.dead)
                zeroShard(sh);
    }
    return report;
}

} // namespace

} // namespace snf::persist
