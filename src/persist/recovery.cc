#include "persist/recovery.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <map>
#include <vector>

#include "mem/remap_table.hh"
#include "persist/log_record.hh"
#include "persist/log_region.hh"
#include "sim/logging.hh"

namespace snf::persist
{

namespace
{

constexpr std::uint64_t kLineBytes = mem::RemapTable::kLineBytes;

/**
 * Recovery's window onto the crash image: every read and write is
 * translated through the image's remap table (a promoted log slot's
 * live bytes are at its spare), every write is counted in 64-byte-line
 * units and suppressed once the crashAfterWrites budget is spent, so
 * one code path serves normal recovery, I9 write collection, and the
 * crash-during-recovery sweeps.
 */
struct ImageIO
{
    mem::BackingStore &img;
    const mem::RemapTable *remap = nullptr;
    std::uint64_t budget = ~0ULL;
    bool collect = false;
    const sim::ProbeFn *probe = nullptr;

    std::uint64_t issued = 0;
    std::uint64_t applied = 0;
    std::vector<Addr> touched;

    Addr
    translate(Addr a) const
    {
        if (!remap)
            return a;
        Addr line = a & ~static_cast<Addr>(kLineBytes - 1);
        if (auto spare = remap->find(line))
            return *spare + (a - line);
        return a;
    }

    void
    read(Addr a, std::uint64_t n, void *out) const
    {
        auto *dst = static_cast<std::uint8_t *>(out);
        while (n > 0) {
            Addr line_end = (a | (kLineBytes - 1)) + 1;
            std::uint64_t seg = std::min<std::uint64_t>(n,
                                                        line_end - a);
            img.read(translate(a), seg, dst);
            dst += seg;
            a += seg;
            n -= seg;
        }
    }

    std::uint64_t
    read64(Addr a) const
    {
        std::uint64_t v = 0;
        read(a, sizeof(v), &v);
        return v;
    }

    /**
     * Large read-only sweep (the slot-array scan): with no active
     * remapping the whole range goes to the store in one call, which
     * walks it page-wise instead of line-wise.
     */
    void
    readBulk(Addr a, std::uint64_t n, void *out) const
    {
        if (!remap || remap->size() == 0)
            img.read(a, n, out);
        else
            read(a, n, out);
    }

    void
    write(Addr a, std::uint64_t n, const void *in)
    {
        const auto *src = static_cast<const std::uint8_t *>(in);
        // Bulk fast path (log truncation writes whole KBs): when no
        // per-line observer is active, no line is remapped, and every
        // covered line fits the write budget, one store write counts
        // exactly like the per-line loop would.
        if (n > 0 && !collect && !(probe && *probe) &&
            (!remap || remap->size() == 0)) {
            std::uint64_t lines =
                ((a + n - 1) / kLineBytes) - (a / kLineBytes) + 1;
            if (applied + lines <= budget) {
                img.write(a, n, src);
                issued += lines;
                applied += lines;
                return;
            }
        }
        while (n > 0) {
            Addr line_end = (a | (kLineBytes - 1)) + 1;
            std::uint64_t seg = std::min<std::uint64_t>(n,
                                                        line_end - a);
            Addr line = a & ~static_cast<Addr>(kLineBytes - 1);
            ++issued;
            if (probe && *probe)
                (*probe)(sim::ProbeEvent::RecoveryWrite, issued, line);
            if (applied < budget) {
                img.write(translate(a), seg, src);
                ++applied;
                // The touched set feeds I9's physical-image diff, so
                // record the line actually written (the spare when
                // the logical line is remapped).
                if (collect)
                    touched.push_back(translate(line));
            }
            src += seg;
            a += seg;
            n -= seg;
        }
    }

    bool contains(Addr a, std::uint64_t n) const
    {
        return img.contains(a, n);
    }

    bool interrupted() const { return issued > applied; }
};

RecoveryReport recoverRegionIo(ImageIO &io, Addr logBase,
                               std::uint64_t logSize,
                               const RecoveryOptions &opts,
                               mem::RemapTable *promoteInto);

/** Active per-thread sink of RecoveryTimerScope (null = off). */
thread_local std::uint64_t *recoveryTimerSink = nullptr;

} // namespace

RecoveryTimerScope::RecoveryTimerScope(std::uint64_t *sinkNs)
    : prev(recoveryTimerSink)
{
    recoveryTimerSink = sinkNs;
}

RecoveryTimerScope::~RecoveryTimerScope()
{
    recoveryTimerSink = prev;
}

std::uint64_t *
activeRecoveryTimerSink()
{
    return recoveryTimerSink;
}

RecoveryReport
Recovery::run(mem::BackingStore &image, const AddressMap &map,
              bool truncateLog)
{
    RecoveryOptions opts;
    opts.truncateLog = truncateLog;
    return run(image, map, opts);
}

RecoveryReport
Recovery::run(mem::BackingStore &image, const AddressMap &map,
              const RecoveryOptions &opts)
{
    struct TimeGuard
    {
        std::chrono::steady_clock::time_point start =
            std::chrono::steady_clock::now();
        ~TimeGuard()
        {
            if (recoveryTimerSink) {
                *recoveryTimerSink += static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count());
            }
        }
    } timeGuard;

    // With distributed logs, each partition is an independent
    // circular log holding complete transactions (transactions are
    // thread-private, Section III-F), so partitions recover
    // independently and the reports sum. The write budget, the remap
    // table, and the touched-line set span the whole pass.
    RecoveryReport total;
    mem::RemapTable remap(map.remapBase(), map.remapSize ? map.remapSize
                                                         : 128,
                          map.spareBase(), map.spareSize);
    bool have_remap = map.remapSize != 0;
    if (have_remap) {
        mem::RemapTable::LoadResult lr = remap.load(image);
        total.remapCorrupt = lr.corrupted;
    }
    ImageIO io{image};
    io.remap = have_remap ? &remap : nullptr;
    io.budget = opts.crashAfterWrites;
    io.collect = opts.collectWrites;
    io.probe = &opts.probe;

    std::uint32_t partitions = std::max(map.logPartitions, 1u);
    std::uint64_t part_bytes = map.logSize / partitions;
    for (std::uint32_t p = 0; p < partitions; ++p) {
        RecoveryReport r = recoverRegionIo(
            io, map.logBase() + p * part_bytes, part_bytes, opts,
            have_remap && opts.promoteBadLines ? &remap : nullptr);
        total.headerValid |= r.headerValid;
        total.slotsScanned += r.slotsScanned;
        total.validRecords += r.validRecords;
        total.committedTxns += r.committedTxns;
        total.uncommittedTxns += r.uncommittedTxns;
        total.redoApplied += r.redoApplied;
        total.undoApplied += r.undoApplied;
        total.salvagedTxns += r.salvagedTxns;
        total.quarantinedTxns += r.quarantinedTxns;
        total.emptySlots += r.emptySlots;
        total.tornSlots += r.tornSlots;
        total.crcFailSlots += r.crcFailSlots;
        total.stalePassSlots += r.stalePassSlots;
        total.promotedLines += r.promotedLines;
        if (total.firstBadSlotAddr == 0)
            total.firstBadSlotAddr = r.firstBadSlotAddr;
        total.quarantinedTxIds.insert(total.quarantinedTxIds.end(),
                                      r.quarantinedTxIds.begin(),
                                      r.quarantinedTxIds.end());
    }
    total.writesIssued = io.issued;
    total.writesApplied = io.applied;
    total.interrupted = io.interrupted();
    total.touchedLines = std::move(io.touched);
    return total;
}

RecoveryReport
Recovery::recoverRegion(mem::BackingStore &image, Addr logBase,
                        std::uint64_t logSize, bool truncateLog)
{
    RecoveryOptions opts;
    opts.truncateLog = truncateLog;
    return recoverRegion(image, logBase, logSize, opts);
}

RecoveryReport
Recovery::recoverRegion(mem::BackingStore &image, Addr logBase,
                        std::uint64_t logSize,
                        const RecoveryOptions &opts)
{
    // Legacy single-region entry point: no remap table, but the
    // write budget and collection still apply.
    ImageIO io{image};
    io.budget = opts.crashAfterWrites;
    io.collect = opts.collectWrites;
    io.probe = &opts.probe;
    RecoveryReport report =
        recoverRegionIo(io, logBase, logSize, opts, nullptr);
    report.writesIssued = io.issued;
    report.writesApplied = io.applied;
    report.interrupted = io.interrupted();
    report.touchedLines = std::move(io.touched);
    return report;
}

namespace
{

RecoveryReport
recoverRegionIo(ImageIO &io, Addr logBase, std::uint64_t logSize,
                const RecoveryOptions &opts,
                mem::RemapTable *promoteInto)
{
    RecoveryReport report;

    // Step 1: read the log header (geometry) from NVRAM.
    Addr log_base = logBase;
    std::uint64_t magic = io.read64(log_base);
    std::uint64_t slots = io.read64(log_base + 8);
    if (magic != LogRegion::kMagic || slots == 0 ||
        slots > (logSize - LogRegion::kHeaderBytes) /
                    LogRecord::kSlotBytes) {
        warn("recovery: invalid log header, nothing to recover");
        return report;
    }
    report.headerValid = true;

    Addr slot0 = log_base + LogRegion::kHeaderBytes;
    auto zeroAllSlots = [&]() {
        // Chunked into whole lines so the write budget sees the same
        // units as every other recovery write.
        constexpr std::uint64_t kChunk = 1024;
        std::uint8_t zeros[kChunk] = {};
        std::uint64_t area = slots * LogRecord::kSlotBytes;
        for (std::uint64_t off = 0; off < area; off += kChunk)
            io.write(slot0 + off,
                     std::min<std::uint64_t>(kChunk, area - off),
                     zeros);
        std::uint64_t cleared = 0;
        io.write(log_base + LogRegion::kTruncFlagOffset,
                 sizeof(cleared), &cleared);
    };

    // An interrupted truncation must not let a resumed recovery
    // reinterpret the partially zeroed slot array (a zeroed prefix
    // can detach a commit record from its updates or resurrect
    // stale-pass records under a different window parity). The
    // truncating flag is set — one atomic counted write — only after
    // replay and promotion completed, so a resumed pass can skip
    // straight to finishing the zeroing.
    if (io.read64(log_base + LogRegion::kTruncFlagOffset) != 0) {
        zeroAllSlots();
        return report;
    }

    // Step 2: classify every slot. classifySlot separates damage
    // (torn partial writes, CRC failures) from parseable records;
    // damaged slots never contribute replay values. The whole slot
    // array is fetched in one bulk read first: the scan is by far the
    // hottest loop of a crash sweep (4+ passes per evaluated point),
    // and page-wise reads beat one store lookup per slot.
    std::vector<std::uint8_t> slotImg(slots * LogRecord::kSlotBytes);
    io.readBulk(slot0, slotImg.size(), slotImg.data());
    std::vector<SlotInfo> info(slots);
    static const std::uint8_t kZeroSlot[LogRecord::kSlotBytes] = {};
    for (std::uint64_t i = 0; i < slots; ++i) {
        const std::uint8_t *img =
            slotImg.data() + i * LogRecord::kSlotBytes;
        if (std::memcmp(img, kZeroSlot, LogRecord::kSlotBytes) == 0) {
            // All-zero slot: default SlotInfo already says Empty, and
            // most of the region is empty in a typical sweep.
            ++report.emptySlots;
            ++report.slotsScanned;
            continue;
        }
        info[i] = classifySlot(img);
        if (opts.faultIgnoreCrc && info[i].cls == SlotClass::CrcFail) {
            // Injected bug: the pre-faultlab scanner trusted any slot
            // with a written marker.
            bool torn = false;
            auto rec = LogRecord::deserialize(img, torn);
            if (rec && rec->payloadBytes() <= LogRecord::kSlotBytes) {
                info[i].cls = SlotClass::Valid;
                info[i].torn = torn;
                info[i].rec = *rec;
            }
        }
        switch (info[i].cls) {
          case SlotClass::Empty:
            ++report.emptySlots;
            break;
          case SlotClass::Torn:
            ++report.tornSlots;
            break;
          case SlotClass::CrcFail:
            ++report.crcFailSlots;
            break;
          case SlotClass::Valid:
            break;
        }
        if ((info[i].cls == SlotClass::Torn ||
             info[i].cls == SlotClass::CrcFail) &&
            report.firstBadSlotAddr == 0) {
            report.firstBadSlotAddr =
                slot0 + i * LogRecord::kSlotBytes;
        }
        ++report.slotsScanned;
    }

    // Step 3: locate the live window. The torn (pass-parity) bit of
    // the first valid slot fixes the current pass; the window runs to
    // the LAST slot of that parity, bridging damaged or dropped slots
    // instead of stopping at the first anomaly (a single damaged slot
    // must not hide every record behind it). Valid slots of the other
    // parity past the window end are the previous pass (older,
    // replayed first); inside the window they are stale records
    // exposed by a dropped overwrite and must not be replayed.
    std::vector<std::uint64_t> window;
    bool wrapped = false;
    std::int64_t first_valid = -1;
    for (std::uint64_t i = 0; i < slots; ++i) {
        if (info[i].cls == SlotClass::Valid) {
            first_valid = static_cast<std::int64_t>(i);
            break;
        }
    }
    if (first_valid >= 0) {
        bool t0 = info[first_valid].torn;
        std::uint64_t boundary = 0; // one past the last current slot
        for (std::uint64_t i = 0; i < slots; ++i)
            if (info[i].cls == SlotClass::Valid && info[i].torn == t0)
                boundary = i + 1;
        std::vector<std::uint64_t> prev;
        for (std::uint64_t i = boundary; i < slots; ++i)
            if (info[i].cls == SlotClass::Valid)
                prev.push_back(i);
        wrapped = !prev.empty() || boundary == slots;
        window = std::move(prev);
        for (std::uint64_t i = 0; i < boundary; ++i) {
            switch (info[i].cls) {
              case SlotClass::Valid:
                if (info[i].torn == t0)
                    window.push_back(i);
                else
                    ++report.stalePassSlots;
                break;
              case SlotClass::Empty:
              case SlotClass::Torn:
              case SlotClass::CrcFail:
                // Holes and damage inside the live window: bridged,
                // already counted in the histogram above.
                break;
            }
        }
    }
    report.validRecords = window.size();

    // Step 4: group records by transaction generation. A commit
    // record closes the current generation of its 16-bit txid; a
    // later record with the same txid starts a new generation.
    struct Generation
    {
        std::vector<std::uint64_t> updates; // ordered indices
        bool committed = false;
        std::uint32_t nUpdates = 0; // from the commit record
        std::uint16_t tx = 0;
        bool salvage = false;
    };
    std::vector<Generation> generations;
    std::map<std::uint16_t, std::size_t> open_gen;
    std::vector<const SlotInfo *> ordered;
    ordered.reserve(window.size());
    for (std::uint64_t slot : window)
        ordered.push_back(&info[slot]);

    std::vector<std::size_t> gen_of(ordered.size(), SIZE_MAX);
    for (std::size_t i = 0; i < ordered.size(); ++i) {
        const LogRecord &rec = ordered[i]->rec;
        auto it = open_gen.find(rec.tx);
        if (it == open_gen.end()) {
            generations.push_back({});
            generations.back().tx = rec.tx;
            it = open_gen.emplace(rec.tx, generations.size() - 1)
                     .first;
        }
        if (rec.isCommit) {
            generations[it->second].committed = true;
            generations[it->second].nUpdates = rec.nUpdates;
            open_gen.erase(it);
        } else {
            generations[it->second].updates.push_back(i);
            gen_of[i] = it->second;
        }
    }

    // Step 5: salvage or quarantine each committed generation. A
    // generation whose commit record promises nUpdates records is
    // salvaged when they were all found. A shortfall is benign only
    // if the log wrapped: reclamation legitimately overwrites old
    // records (and only ones whose data already persisted, so the
    // partial replay is still correct). Without a wrap, log drains
    // are FIFO — a durable commit record implies every update record
    // landed first — so a shortfall can only mean media damage:
    // quarantine, leave the data exactly as the crash left it.
    // nUpdates == 0 records predate the accounting and keep the
    // legacy always-replay behavior.
    for (auto &gen : generations) {
        if (!gen.committed)
            continue;
        ++report.committedTxns;
        std::uint64_t found = gen.updates.size();
        if (gen.nUpdates == 0 || found == gen.nUpdates || wrapped) {
            gen.salvage = true;
            ++report.salvagedTxns;
        } else {
            ++report.quarantinedTxns;
            report.quarantinedTxIds.push_back(gen.tx);
        }
    }

    // Step 6: replay. Redo salvaged transactions' updates in global
    // log order; undo uncommitted ones in global reverse log order.
    // Quarantined transactions are left exactly as the crash left
    // them. Writes are functional (the caches are volatile and reset
    // after the crash).
    for (std::size_t i = 0;
         !opts.faultSkipRedo && i < ordered.size(); ++i) {
        if (gen_of[i] == SIZE_MAX || !generations[gen_of[i]].salvage)
            continue;
        const LogRecord &rec = ordered[i]->rec;
        if (rec.hasRedo && rec.size >= 1 && rec.size <= 8 &&
            io.contains(rec.addr, rec.size)) {
            io.write(rec.addr, rec.size, &rec.redo);
            ++report.redoApplied;
        }
    }
    std::vector<std::uint64_t> undo_order;
    for (const auto &gen : generations) {
        if (gen.committed)
            continue;
        ++report.uncommittedTxns;
        undo_order.insert(undo_order.end(), gen.updates.begin(),
                          gen.updates.end());
    }
    std::sort(undo_order.begin(), undo_order.end(),
              std::greater<>());
    if (opts.faultSkipUndo)
        undo_order.clear();
    for (std::uint64_t idx : undo_order) {
        const LogRecord &rec = ordered[idx]->rec;
        if (rec.hasUndo && rec.size >= 1 && rec.size <= 8 &&
            io.contains(rec.addr, rec.size)) {
            io.write(rec.addr, rec.size, &rec.undo);
            ++report.undoApplied;
        }
    }

    // Step 6b (lifelab): promote the lines of damaged slots into the
    // persistent remap table so the next generation's log traffic
    // avoids the suspect media. This runs BEFORE truncation — the
    // damage evidence must survive an interrupted pass so a resumed
    // recovery finds the same promotion set — and processes lines in
    // ascending address order, skipping ones already promoted, so the
    // spare assignment is deterministic across interrupt/resume.
    if (promoteInto) {
        std::vector<Addr> bad_lines;
        for (std::uint64_t i = 0; i < slots; ++i) {
            if (info[i].cls != SlotClass::Torn &&
                info[i].cls != SlotClass::CrcFail)
                continue;
            Addr line = (slot0 + i * LogRecord::kSlotBytes) &
                        ~static_cast<Addr>(kLineBytes - 1);
            if (bad_lines.empty() || bad_lines.back() != line)
                bad_lines.push_back(line);
        }
        bool grew = false;
        for (Addr line : bad_lines) {
            if (promoteInto->find(line) || promoteInto->full())
                continue;
            // Copy the line's current bytes to the spare *before*
            // the mapping exists (afterwards reads of the line would
            // follow the mapping), then record it.
            std::uint8_t buf[kLineBytes];
            io.read(line, kLineBytes, buf);
            std::optional<Addr> spare = promoteInto->add(line);
            SNF_ASSERT(spare, "remap add failed on unmapped line");
            io.write(*spare, kLineBytes, buf);
            grew = true;
            ++report.promotedLines;
        }
        if (grew) {
            // One durable table update per region; goes through the
            // counted writer so the sweep can interrupt it at any
            // chunk (the half-written bank stays CRC-invalid).
            promoteInto->persist(
                [&io](Addr a, std::uint64_t n, const void *d) {
                    io.write(a, n, d);
                });
        }
    }

    // Step 7: truncate the log: clear every slot (damaged ones too).
    // The flag raised first makes the whole step atomic from a
    // resumed recovery's point of view.
    if (opts.truncateLog) {
        std::uint64_t raised = 1;
        io.write(log_base + LogRegion::kTruncFlagOffset,
                 sizeof(raised), &raised);
        zeroAllSlots();
    }
    return report;
}

} // namespace

} // namespace snf::persist
