#include "persist/recovery.hh"

#include <algorithm>
#include <cstring>
#include <functional>
#include <map>
#include <vector>

#include "persist/log_record.hh"
#include "persist/log_region.hh"
#include "sim/logging.hh"

namespace snf::persist
{

namespace
{

struct ParsedSlot
{
    LogRecord rec;
    bool torn;
};

} // namespace

RecoveryReport
Recovery::run(mem::BackingStore &image, const AddressMap &map,
              bool truncateLog)
{
    RecoveryOptions opts;
    opts.truncateLog = truncateLog;
    return run(image, map, opts);
}

RecoveryReport
Recovery::run(mem::BackingStore &image, const AddressMap &map,
              const RecoveryOptions &opts)
{
    // With distributed logs, each partition is an independent
    // circular log holding complete transactions (transactions are
    // thread-private, Section III-F), so partitions recover
    // independently and the reports sum.
    std::uint32_t partitions = std::max(map.logPartitions, 1u);
    std::uint64_t part_bytes = map.logSize / partitions;
    RecoveryReport total;
    for (std::uint32_t p = 0; p < partitions; ++p) {
        RecoveryReport r =
            recoverRegion(image, map.logBase() + p * part_bytes,
                          part_bytes, opts);
        total.headerValid |= r.headerValid;
        total.slotsScanned += r.slotsScanned;
        total.validRecords += r.validRecords;
        total.committedTxns += r.committedTxns;
        total.uncommittedTxns += r.uncommittedTxns;
        total.redoApplied += r.redoApplied;
        total.undoApplied += r.undoApplied;
    }
    return total;
}

RecoveryReport
Recovery::recoverRegion(mem::BackingStore &image, Addr logBase,
                        std::uint64_t logSize, bool truncateLog)
{
    RecoveryOptions opts;
    opts.truncateLog = truncateLog;
    return recoverRegion(image, logBase, logSize, opts);
}

RecoveryReport
Recovery::recoverRegion(mem::BackingStore &image, Addr logBase,
                        std::uint64_t logSize,
                        const RecoveryOptions &opts)
{
    RecoveryReport report;

    // Step 1: read the log header (geometry) from NVRAM.
    Addr log_base = logBase;
    std::uint64_t magic = image.read64(log_base);
    std::uint64_t slots = image.read64(log_base + 8);
    if (magic != LogRegion::kMagic || slots == 0 ||
        slots > (logSize - LogRegion::kHeaderBytes) /
                    LogRecord::kSlotBytes) {
        warn("recovery: invalid log header, nothing to recover");
        return report;
    }
    report.headerValid = true;

    // Step 2: parse every slot and find the torn-bit window boundary.
    Addr slot0 = log_base + LogRegion::kHeaderBytes;
    std::vector<std::optional<ParsedSlot>> parsed(slots);
    for (std::uint64_t i = 0; i < slots; ++i) {
        std::uint8_t img[LogRecord::kSlotBytes];
        image.read(slot0 + i * LogRecord::kSlotBytes,
                   LogRecord::kSlotBytes, img);
        bool torn = false;
        auto rec = LogRecord::deserialize(img, torn);
        if (rec)
            parsed[i] = ParsedSlot{*rec, torn};
        ++report.slotsScanned;
    }

    // The slot array holds records of at most two adjacent passes:
    // [0, boundary) is the current pass, [boundary, N) the previous
    // one. The boundary is the first slot whose torn bit differs
    // from slot 0's (or that was never written).
    std::vector<std::uint64_t> window;
    if (parsed[0]) {
        bool t0 = parsed[0]->torn;
        std::uint64_t boundary = slots; // uniform => full, oldest at 0
        for (std::uint64_t i = 1; i < slots; ++i) {
            if (!parsed[i] || parsed[i]->torn != t0) {
                boundary = i;
                break;
            }
        }
        if (boundary != slots) {
            for (std::uint64_t i = boundary; i < slots; ++i)
                if (parsed[i] && parsed[i]->torn != t0)
                    window.push_back(i); // previous pass (older)
        }
        for (std::uint64_t i = 0; i < (boundary == slots ? slots
                                                         : boundary);
             ++i)
            window.push_back(i); // current pass (newer)
    }
    report.validRecords = window.size();

    // Step 3: group records by transaction generation. A commit
    // record closes the current generation of its 16-bit txid; a
    // later record with the same txid starts a new generation.
    struct Generation
    {
        std::vector<std::uint64_t> updates; // window indices
        bool committed = false;
    };
    std::vector<Generation> generations;
    std::map<std::uint16_t, std::size_t> open_gen;
    std::vector<const ParsedSlot *> ordered;
    ordered.reserve(window.size());
    for (std::uint64_t slot : window)
        ordered.push_back(&*parsed[slot]);

    std::vector<std::size_t> gen_of(ordered.size(), SIZE_MAX);
    for (std::size_t i = 0; i < ordered.size(); ++i) {
        const LogRecord &rec = ordered[i]->rec;
        auto it = open_gen.find(rec.tx);
        if (it == open_gen.end()) {
            generations.push_back({});
            it = open_gen.emplace(rec.tx, generations.size() - 1)
                     .first;
        }
        if (rec.isCommit) {
            generations[it->second].committed = true;
            open_gen.erase(it);
        } else {
            generations[it->second].updates.push_back(i);
            gen_of[i] = it->second;
        }
    }

    // Step 4: replay. Redo committed transactions' updates in global
    // log order; undo uncommitted ones in global reverse log order.
    // Writes are functional (the caches are volatile and reset after
    // the crash).
    for (const auto &gen : generations)
        if (gen.committed)
            ++report.committedTxns;
    for (std::size_t i = 0;
         !opts.faultSkipRedo && i < ordered.size(); ++i) {
        if (gen_of[i] == SIZE_MAX ||
            !generations[gen_of[i]].committed)
            continue;
        const LogRecord &rec = ordered[i]->rec;
        if (rec.hasRedo && image.contains(rec.addr, rec.size)) {
            image.write(rec.addr, rec.size, &rec.redo);
            ++report.redoApplied;
        }
    }
    std::vector<std::uint64_t> undo_order;
    for (const auto &gen : generations) {
        if (gen.committed)
            continue;
        ++report.uncommittedTxns;
        undo_order.insert(undo_order.end(), gen.updates.begin(),
                          gen.updates.end());
    }
    std::sort(undo_order.begin(), undo_order.end(),
              std::greater<>());
    if (opts.faultSkipUndo)
        undo_order.clear();
    for (std::uint64_t idx : undo_order) {
        const LogRecord &rec = ordered[idx]->rec;
        if (rec.hasUndo && image.contains(rec.addr, rec.size)) {
            image.write(rec.addr, rec.size, &rec.undo);
            ++report.undoApplied;
        }
    }

    // Step 5: truncate the log: clear every slot's written marker.
    if (opts.truncateLog) {
        std::uint8_t zeros[LogRecord::kSlotBytes] = {};
        for (std::uint64_t i = 0; i < slots; ++i)
            image.write(slot0 + i * LogRecord::kSlotBytes,
                        LogRecord::kSlotBytes, zeros);
    }
    return report;
}

} // namespace snf::persist
