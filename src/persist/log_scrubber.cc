#include "persist/log_scrubber.hh"

#include <algorithm>
#include <cstring>

#include "mem/mem_device.hh"
#include "persist/log_record.hh"
#include "persist/log_region.hh"
#include "sim/logging.hh"

namespace snf::persist
{

LogScrubber::LogScrubber(mem::MemDevice &nvram,
                         const PersistConfig &config)
    : nvram(nvram),
      cfg(config),
      statGroup("scrub"),
      steps(statGroup.counter("steps")),
      slotsScanned(statGroup.counter("slots_scanned")),
      readBytes(statGroup.counter("read_bytes")),
      writeBytes(statGroup.counter("write_bytes")),
      repairs(statGroup.counter("repairs")),
      zeroed(statGroup.counter("zeroed")),
      uncorrectable(statGroup.counter("uncorrectable")),
      promotions(statGroup.counter("promotions")),
      bankRepairs(statGroup.counter("bank_repairs"))
{
}

void
LogScrubber::addRegion(LogRegion *region)
{
    regions.push_back(region);
}

std::uint64_t
LogScrubber::totalSlots() const
{
    std::uint64_t n = 0;
    for (const LogRegion *r : regions)
        n += r->slotCount();
    return n;
}

LogScrubber::SlotRef
LogScrubber::slotRef(std::uint64_t globalIndex) const
{
    for (LogRegion *r : regions) {
        if (globalIndex < r->slotCount())
            return SlotRef{r, globalIndex, r->slotAddr(globalIndex)};
        globalIndex -= r->slotCount();
    }
    SNF_ASSERT(false, "scrub index out of range");
    return SlotRef{nullptr, 0, 0};
}

std::uint32_t
LogScrubber::errorStreak(Addr line) const
{
    auto it = streaks.find(line);
    return it == streaks.end() ? 0 : it->second;
}

void
LogScrubber::scrubSlot(const SlotRef &ref, Tick now)
{
    std::uint8_t img[LogRecord::kSlotBytes];
    nvram.access(false, ref.addr, sizeof(img), nullptr, img, now);
    readBytes.inc(sizeof(img));
    slotsScanned.inc();

    SlotInfo si = classifySlot(img);
    if (si.cls == SlotClass::Empty || si.cls == SlotClass::Valid)
        return;

    // Damage observed: count it against the line. (Torn here means a
    // nonzero slot without its written marker — a flipped marker bit
    // looks torn, so both damage classes get a correction attempt.)
    Addr line = ref.addr & ~static_cast<Addr>(63);
    std::uint32_t streak = ++streaks[line];

    // Attempt single-bit correction: flip each of the 256 slot bits
    // and accept the unique flip that makes the slot parse and its
    // CRC check out. The corrected bytes equal what was logged, so
    // rewriting a live slot is safe by construction.
    bool corrected = false;
    for (std::uint32_t bit = 0;
         !corrected && bit < LogRecord::kSlotBytes * 8; ++bit) {
        img[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        if (classifySlot(img).cls == SlotClass::Valid)
            corrected = true;
        else
            img[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }

    if (corrected) {
        nvram.access(true, ref.addr, sizeof(img), img, nullptr, now,
                     true, PersistOrigin::Meta);
        writeBytes.inc(sizeof(img));
        repairs.inc();
    } else if (!ref.region->slotLive(ref.slot)) {
        // Multi-bit damage in a dead slot: zero it so recovery sees a
        // clean hole instead of noise to bridge.
        std::uint8_t zeros[LogRecord::kSlotBytes] = {};
        nvram.access(true, ref.addr, sizeof(zeros), zeros, nullptr,
                     now, true, PersistOrigin::Meta);
        writeBytes.inc(sizeof(zeros));
        zeroed.inc();
    } else {
        // Live and uncorrectable: recovery's salvage/quarantine logic
        // owns the verdict; destroying the slot would destroy it.
        uncorrectable.inc();
    }

    if (cfg.scrubPromoteThreshold != 0 &&
        streak >= cfg.scrubPromoteThreshold) {
        if (nvram.remapLine(line, now)) {
            promotions.inc();
            // remapLine's table persist is priority write traffic.
            writeBytes.inc(mem::RemapTable::kLineBytes);
        }
        streaks.erase(line);
    }
}

void
LogScrubber::checkRemapRedundancy(Tick now)
{
    mem::RemapTable *remap = nvram.remap();
    // A never-persisted table has nothing to protect; repairing it
    // would spuriously create bank 1 of an empty mapping.
    if (!remap || remap->seq() == 0)
        return;
    if (remap->validBanks(nvram.store()) >= 2)
        return;
    // One bank lost its CRC (decay, a crash mid-update that was
    // since resolved, or scribble): re-publish the current state into
    // the inactive bank to restore dual-bank redundancy.
    bool ok = remap->persist(
        [this, now](Addr a, std::uint64_t n, const void *d) {
            nvram.access(true, a, n, d, nullptr, now, true,
                         PersistOrigin::Meta);
            writeBytes.inc(n);
        });
    SNF_ASSERT(ok, "uncapped bank repair cannot fail");
    bankRepairs.inc();
}

void
LogScrubber::step(Tick now)
{
    std::uint64_t total = totalSlots();
    if (total == 0)
        return;
    steps.inc();
    // Default chunk: one full walk of the log every 256 scan periods.
    // The FWB period is T_wrap/8 (a full-bandwidth rewrite of the
    // log takes 8 periods), so walking the log in 256 periods keeps
    // scrub reads around a percent of device bandwidth — scanning
    // total/8 per step would re-read the log as fast as it can be
    // written and starve the workload behind scrub traffic.
    std::uint64_t chunk = cfg.scrubChunkSlots != 0
                              ? cfg.scrubChunkSlots
                              : std::max<std::uint64_t>(1, total / 256);
    chunk = std::min(chunk, total);
    for (std::uint64_t i = 0; i < chunk; ++i) {
        scrubSlot(slotRef(cursor), now);
        cursor = (cursor + 1) % total;
    }
    checkRemapRedundancy(now);
}

void
LogScrubber::scrubAll(Tick now)
{
    std::uint64_t total = totalSlots();
    for (std::uint64_t i = 0; i < total; ++i) {
        scrubSlot(slotRef(cursor), now);
        cursor = (cursor + 1) % total;
    }
    checkRemapRedundancy(now);
}

void
LogScrubber::start(sim::EventQueue &events, Tick period, Tick now)
{
    SNF_ASSERT(period > 0, "scrub period must be positive");
    running = true;
    stepPeriod = period;
    scheduleNext(events, now);
}

void
LogScrubber::scheduleNext(sim::EventQueue &events, Tick now)
{
    events.schedule(now + stepPeriod, [this, &events](Tick when) {
        if (!running)
            return;
        step(when);
        scheduleNext(events, when);
    });
}

} // namespace snf::persist
