#include "persist/txn_tracker.hh"

#include "sim/logging.hh"

namespace snf::persist
{

TxnTracker::TxnTracker()
    : statGroup("txn"),
      begun(statGroup.counter("begun")),
      committed(statGroup.counter("committed")),
      aborted(statGroup.counter("aborted")),
      abortRequests(statGroup.counter("abort_requests")),
      abortEscalations(statGroup.counter("abort_escalations"))
{
}

std::uint64_t
TxnTracker::begin(CoreId thread)
{
    std::uint64_t seq = nextSeq++;
    Txn t;
    t.thread = thread;
    active.emplace(seq, std::move(t));
    begun.inc();
    return seq;
}

void
TxnTracker::commit(std::uint64_t seq)
{
    auto it = active.find(seq);
    SNF_ASSERT(it != active.end(), "commit of unknown txn %llu",
               static_cast<unsigned long long>(seq));
    // A successful commit proves the thread is making progress:
    // reset its victim streak.
    victimStreaks.erase(it->second.thread);
    active.erase(it);
    committed.inc();
}

void
TxnTracker::abort(std::uint64_t seq)
{
    auto it = active.find(seq);
    if (it == active.end())
        return;
    if (it->second.abortRequested)
        ++victimStreaks[it->second.thread];
    active.erase(it);
    aborted.inc();
}

void
TxnTracker::noteLogRecord(std::uint64_t seq)
{
    auto it = active.find(seq);
    if (it != active.end())
        ++it->second.logRecords;
}

std::uint32_t
TxnTracker::logRecordCount(std::uint64_t seq) const
{
    auto it = active.find(seq);
    return it == active.end() ? 0 : it->second.logRecords;
}

bool
TxnTracker::requestAbort(std::uint64_t seq)
{
    auto it = active.find(seq);
    if (it == active.end())
        return true; // already gone; nothing blocks the caller
    if (it->second.abortRequested)
        return true; // duplicate request, already granted
    auto vs = victimStreaks.find(it->second.thread);
    if (abortRetryCap != 0 && vs != victimStreaks.end() &&
        vs->second >= abortRetryCap) {
        abortEscalations.inc();
        return false;
    }
    it->second.abortRequested = true;
    abortRequests.inc();
    return true;
}

std::uint32_t
TxnTracker::victimStreak(CoreId thread) const
{
    auto it = victimStreaks.find(thread);
    return it == victimStreaks.end() ? 0 : it->second;
}

bool
TxnTracker::abortRequested(std::uint64_t seq) const
{
    auto it = active.find(seq);
    return it != active.end() && it->second.abortRequested;
}

bool
TxnTracker::isActive(std::uint64_t seq) const
{
    return active.count(seq) != 0;
}

void
TxnTracker::recordWrite(std::uint64_t seq, Addr lineAddr)
{
    auto it = active.find(seq);
    SNF_ASSERT(it != active.end(), "write in unknown txn %llu",
               static_cast<unsigned long long>(seq));
    if (it->second.seen.insert(lineAddr).second)
        it->second.writeLines.push_back(lineAddr);
}

const std::vector<Addr> &
TxnTracker::writeSet(std::uint64_t seq) const
{
    auto it = active.find(seq);
    return it == active.end() ? emptySet : it->second.writeLines;
}

} // namespace snf::persist
