#include "persist/txn_tracker.hh"

#include "sim/logging.hh"

namespace snf::persist
{

TxnTracker::TxnTracker()
    : statGroup("txn"),
      begun(statGroup.counter("begun")),
      committed(statGroup.counter("committed")),
      aborted(statGroup.counter("aborted")),
      abortRequests(statGroup.counter("abort_requests")),
      abortEscalations(statGroup.counter("abort_escalations")),
      lockAcquires(statGroup.counter("cc_lock_acquires")),
      lockWaits(statGroup.counter("cc_lock_waits")),
      deadlockAborts(statGroup.counter("cc_deadlock_aborts")),
      validationFailures(statGroup.counter("cc_validation_failures"))
{
}

std::uint64_t
TxnTracker::begin(CoreId thread)
{
    std::uint64_t seq = nextSeq++;
    Txn t;
    t.thread = thread;
    active.emplace(seq, std::move(t));
    begun.inc();
    return seq;
}

void
TxnTracker::commit(std::uint64_t seq)
{
    auto it = active.find(seq);
    SNF_ASSERT(it != active.end(), "commit of unknown txn %llu",
               static_cast<unsigned long long>(seq));
    // A successful commit proves the thread is making progress:
    // reset its victim streak.
    victimStreaks.erase(it->second.thread);
    releaseCc(it->second, seq, true);
    active.erase(it);
    committed.inc();
}

void
TxnTracker::abort(std::uint64_t seq)
{
    auto it = active.find(seq);
    if (it == active.end())
        return;
    if (it->second.abortRequested)
        ++victimStreaks[it->second.thread];
    releaseCc(it->second, seq, false);
    active.erase(it);
    aborted.inc();
}

void
TxnTracker::noteLogRecord(std::uint64_t seq)
{
    auto it = active.find(seq);
    if (it != active.end())
        ++it->second.logRecords;
}

std::uint32_t
TxnTracker::logRecordCount(std::uint64_t seq) const
{
    auto it = active.find(seq);
    return it == active.end() ? 0 : it->second.logRecords;
}

void
TxnTracker::noteShardRecord(std::uint64_t seq, std::uint32_t shard)
{
    auto it = active.find(seq);
    if (it == active.end())
        return;
    it->second.shardMask |= 1ULL << shard;
    if (it->second.shardRecords.size() <= shard)
        it->second.shardRecords.resize(shard + 1, 0);
    ++it->second.shardRecords[shard];
}

std::uint64_t
TxnTracker::shardMaskOf(std::uint64_t seq) const
{
    auto it = active.find(seq);
    return it == active.end() ? 0 : it->second.shardMask;
}

std::uint32_t
TxnTracker::shardRecordCount(std::uint64_t seq,
                             std::uint32_t shard) const
{
    auto it = active.find(seq);
    if (it == active.end() || it->second.shardRecords.size() <= shard)
        return 0;
    return it->second.shardRecords[shard];
}

bool
TxnTracker::requestAbort(std::uint64_t seq)
{
    auto it = active.find(seq);
    if (it == active.end())
        return true; // already gone; nothing blocks the caller
    if (it->second.abortRequested)
        return true; // duplicate request, already granted
    auto vs = victimStreaks.find(it->second.thread);
    if (abortRetryCap != 0 && vs != victimStreaks.end() &&
        vs->second >= abortRetryCap) {
        abortEscalations.inc();
        return false;
    }
    it->second.abortRequested = true;
    abortRequests.inc();
    return true;
}

std::uint32_t
TxnTracker::victimStreak(CoreId thread) const
{
    auto it = victimStreaks.find(thread);
    return it == victimStreaks.end() ? 0 : it->second;
}

bool
TxnTracker::abortRequested(std::uint64_t seq) const
{
    auto it = active.find(seq);
    return it != active.end() && it->second.abortRequested;
}

bool
TxnTracker::isActive(std::uint64_t seq) const
{
    return active.count(seq) != 0;
}

void
TxnTracker::recordWrite(std::uint64_t seq, Addr lineAddr)
{
    auto it = active.find(seq);
    SNF_ASSERT(it != active.end(), "write in unknown txn %llu",
               static_cast<unsigned long long>(seq));
    if (it->second.seen.insert(lineAddr).second)
        it->second.writeLines.push_back(lineAddr);
}

const std::vector<Addr> &
TxnTracker::writeSet(std::uint64_t seq) const
{
    auto it = active.find(seq);
    return it == active.end() ? emptySet : it->second.writeLines;
}

CcDecision
TxnTracker::acquireLine(std::uint64_t seq, Addr line, bool forWrite)
{
    SNF_ASSERT(ccModeV != CcMode::None,
               "CC acquire with concurrency control disabled");
    auto it = active.find(seq);
    SNF_ASSERT(it != active.end(), "CC acquire in unknown txn %llu",
               static_cast<unsigned long long>(seq));
    Txn &txn = it->second;
    if (txn.abortRequested)
        return CcDecision::Abort; // doomed already; don't queue up

    auto own = lockOwner.find(line);
    if (own != lockOwner.end() && own->second != seq) {
        // Held by someone else. Park on the waits-for edge unless
        // that would close a cycle.
        waitsFor[seq] = own->second;
        if (wouldDeadlock(seq)) {
            waitsFor.erase(seq);
            deadlockAborts.inc();
            return CcDecision::Abort;
        }
        lockWaits.inc();
        return CcDecision::Wait;
    }
    waitsFor.erase(seq);

    if (forWrite || ccModeV == CcMode::TwoPhase) {
        if (own == lockOwner.end()) {
            lockOwner.emplace(line, seq);
            txn.locksHeld.push_back(line);
            lockAcquires.inc();
        }
    } else {
        // TL2 read of an unlocked (or self-locked) line: record the
        // version seen at first read for commit-time validation.
        if (txn.readSeen.insert(line).second)
            txn.readSet.emplace_back(line, lineVersion(line));
    }
    return CcDecision::Granted;
}

bool
TxnTracker::wouldDeadlock(std::uint64_t seq) const
{
    // Each transaction has at most one outgoing waits-for edge, so
    // the reachable set is a chain; a cycle through the new edge must
    // lead back to the requester.
    auto it = waitsFor.find(seq);
    std::size_t hops = 0;
    while (it != waitsFor.end() && hops++ <= active.size()) {
        if (it->second == seq)
            return true;
        it = waitsFor.find(it->second);
    }
    return false;
}

bool
TxnTracker::validateReads(std::uint64_t seq)
{
    auto it = active.find(seq);
    if (it == active.end())
        return true;
    for (const auto &[line, version] : it->second.readSet) {
        auto own = lockOwner.find(line);
        if (own != lockOwner.end() && own->second != seq) {
            validationFailures.inc();
            return false;
        }
        if (lineVersion(line) != version) {
            validationFailures.inc();
            return false;
        }
    }
    return true;
}

std::size_t
TxnTracker::readSetSize(std::uint64_t seq) const
{
    auto it = active.find(seq);
    return it == active.end() ? 0 : it->second.readSet.size();
}

std::uint64_t
TxnTracker::lineVersion(Addr line) const
{
    auto it = lineVersions.find(line);
    return it == lineVersions.end() ? 0 : it->second;
}

std::uint64_t
TxnTracker::lockOwnerOf(Addr line) const
{
    auto it = lockOwner.find(line);
    return it == lockOwner.end() ? 0 : it->second;
}

void
TxnTracker::releaseCc(const Txn &txn, std::uint64_t seq,
                      bool committing)
{
    if (committing && ccModeV != CcMode::None) {
        // Bump the written lines' versions so TL2 readers with older
        // versions fail validation.
        for (Addr line : txn.writeLines)
            lineVersions[line] = ++versionClock;
    }
    for (Addr line : txn.locksHeld) {
        auto it = lockOwner.find(line);
        if (it != lockOwner.end() && it->second == seq)
            lockOwner.erase(it);
    }
    waitsFor.erase(seq);
}

} // namespace snf::persist
