#include "persist/txn_tracker.hh"

#include "sim/logging.hh"

namespace snf::persist
{

TxnTracker::TxnTracker()
    : statGroup("txn"),
      begun(statGroup.counter("begun")),
      committed(statGroup.counter("committed")),
      aborted(statGroup.counter("aborted")),
      abortRequests(statGroup.counter("abort_requests"))
{
}

std::uint64_t
TxnTracker::begin(CoreId thread)
{
    std::uint64_t seq = nextSeq++;
    Txn t;
    t.thread = thread;
    active.emplace(seq, std::move(t));
    begun.inc();
    return seq;
}

void
TxnTracker::commit(std::uint64_t seq)
{
    auto it = active.find(seq);
    SNF_ASSERT(it != active.end(), "commit of unknown txn %llu",
               static_cast<unsigned long long>(seq));
    active.erase(it);
    committed.inc();
}

void
TxnTracker::abort(std::uint64_t seq)
{
    if (active.erase(seq) != 0)
        aborted.inc();
}

void
TxnTracker::noteLogRecord(std::uint64_t seq)
{
    auto it = active.find(seq);
    if (it != active.end())
        ++it->second.logRecords;
}

std::uint32_t
TxnTracker::logRecordCount(std::uint64_t seq) const
{
    auto it = active.find(seq);
    return it == active.end() ? 0 : it->second.logRecords;
}

void
TxnTracker::requestAbort(std::uint64_t seq)
{
    auto it = active.find(seq);
    if (it != active.end() && !it->second.abortRequested) {
        it->second.abortRequested = true;
        abortRequests.inc();
    }
}

bool
TxnTracker::abortRequested(std::uint64_t seq) const
{
    auto it = active.find(seq);
    return it != active.end() && it->second.abortRequested;
}

bool
TxnTracker::isActive(std::uint64_t seq) const
{
    return active.count(seq) != 0;
}

void
TxnTracker::recordWrite(std::uint64_t seq, Addr lineAddr)
{
    auto it = active.find(seq);
    SNF_ASSERT(it != active.end(), "write in unknown txn %llu",
               static_cast<unsigned long long>(seq));
    if (it->second.seen.insert(lineAddr).second)
        it->second.writeLines.push_back(lineAddr);
}

const std::vector<Addr> &
TxnTracker::writeSet(std::uint64_t seq) const
{
    auto it = active.find(seq);
    return it == active.end() ? emptySet : it->second.writeLines;
}

} // namespace snf::persist
