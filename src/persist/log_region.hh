/**
 * @file
 * The single-producer single-consumer circular undo+redo log living in
 * NVRAM (paper Section III-A), with Lamport-style concurrent append/
 * truncate, torn-bit pass tracking, and reclamation hazard checks
 * (invariant I4: no live log entry may be overwritten while the
 * working data it protects is still volatile).
 */

#ifndef SNF_PERSIST_LOG_REGION_HH
#define SNF_PERSIST_LOG_REGION_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/system_config.hh"
#include "persist/log_record.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace snf::mem
{
class MemDevice;
} // namespace snf::mem

namespace snf::persist
{

/**
 * Manages slot allocation in the circular log. The volatile head and
 * tail pointers model the special registers of Section IV-B; a small
 * persisted header at the log base records the geometry (and is
 * refreshed on truncation). The torn bit of each record flips on each
 * pass over the log so recovery can find the window boundary without
 * a persisted tail pointer (Section IV-F).
 */
class LogRegion
{
  public:
    static constexpr std::uint64_t kMagic = 0x534e464c4f470001ULL;
    static constexpr std::uint32_t kHeaderBytes = 64;

    struct Reservation
    {
        std::uint64_t slot;
        Addr addr;
        bool torn;
    };

    /** A log region over [base, base+size) in NVRAM. */
    LogRegion(Addr base, std::uint64_t size, mem::MemDevice &nvram,
              const std::string &statName = "log");

    /** Convenience: the (centralized) log region of an address map. */
    LogRegion(const AddressMap &map, mem::MemDevice &nvram);

    /** Write the persistent header (log_create()). */
    void create();

    /**
     * Reserve the next slot for @p rec, reclaiming the oldest entry
     * when the log has wrapped. @p now is the append tick, used for
     * reclamation-hazard evaluation.
     */
    Reservation reserve(const LogRecord &rec, Tick now);

    /**
     * Truncate the whole log (log_truncate()): every entry becomes
     * dead and the persisted header is refreshed.
     */
    void truncate(Tick now);

    /**
     * Resize the log (log_grow()). Only legal while no transaction is
     * active; resets the log to empty.
     */
    void grow(std::uint64_t newBytes, Tick now);

    std::uint64_t slotCount() const { return slots; }

    std::uint64_t tailSlot() const { return tail; }

    std::uint64_t passNumber() const { return pass; }

    Addr slotAddr(std::uint64_t slot) const;

    /** Current torn-bit value for new appends. */
    bool currentTorn() const { return (pass & 1) != 0; }

    /**
     * Predicate: is the line containing this address persistent (was
     * it written back to NVRAM after the given tick)? Wired by the
     * System to the memory hierarchy + bus monitor.
     */
    using PersistedSincePred = std::function<bool(Addr, Tick)>;
    using TxActivePred = std::function<bool(std::uint64_t)>;
    using HazardSink = std::function<void()>;

    void setPersistedSince(PersistedSincePred p) { persistedSince = p; }

    void setTxActive(TxActivePred p) { txActive = p; }

    void setHazardSink(HazardSink h) { hazardSink = h; }

    /** Associate the just-reserved slot with a transaction sequence. */
    void bindSlotTx(std::uint64_t slot, std::uint64_t txSeq);

    sim::StatGroup &stats() { return statGroup; }

  private:
    sim::StatGroup statGroup; // must precede the counter references

  public:
    sim::Counter &appends;
    sim::Counter &wraps;
    sim::Counter &reclaims;
    sim::Counter &hazards;
    sim::Counter &truncates;

  private:
    /** Zero-fill the slot array's written markers in NVRAM. */
    void clearSlots(Tick now);

    struct SlotMeta
    {
        bool valid = false;
        bool isCommit = false;
        Addr addr = 0;
        Tick appendTick = 0;
        std::uint64_t txSeq = 0;
    };

    void persistHeader(Tick now);

    Addr regionBase;
    std::uint64_t regionSize;
    mem::MemDevice &nvram;
    std::uint64_t slots;
    std::uint64_t tail = 0;
    std::uint64_t pass = 1;
    std::vector<SlotMeta> meta;

    PersistedSincePred persistedSince;
    TxActivePred txActive;
    HazardSink hazardSink;
};

} // namespace snf::persist

#endif // SNF_PERSIST_LOG_REGION_HH
