/**
 * @file
 * The single-producer single-consumer circular undo+redo log living in
 * NVRAM (paper Section III-A), with Lamport-style concurrent append/
 * truncate, torn-bit pass tracking, and reclamation hazard checks
 * (invariant I4: no live log entry may be overwritten while the
 * working data it protects is still volatile).
 */

#ifndef SNF_PERSIST_LOG_REGION_HH
#define SNF_PERSIST_LOG_REGION_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/system_config.hh"
#include "persist/log_record.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace snf::mem
{
class MemDevice;
} // namespace snf::mem

namespace snf::persist
{

/**
 * Manages slot allocation in the circular log. The volatile head and
 * tail pointers model the special registers of Section IV-B; a small
 * persisted header at the log base records the geometry (and is
 * refreshed on truncation). The torn bit of each record flips on each
 * pass over the log so recovery can find the window boundary without
 * a persisted tail pointer (Section IV-F).
 */
class LogRegion
{
  public:
    static constexpr std::uint64_t kMagic = 0x534e464c4f470001ULL;
    static constexpr std::uint32_t kHeaderBytes = 64;
    /**
     * Header word recovery raises (with replay and promotion already
     * complete) before zeroing the slot array, and clears after it.
     * A recovery pass finding it set resumes the zeroing directly —
     * it must not reinterpret a partially truncated slot array. The
     * live system never sets it: persistHeader()/create() write zero.
     */
    static constexpr std::uint32_t kTruncFlagOffset = 32;

    struct Reservation
    {
        std::uint64_t slot;
        Addr addr;
        bool torn;
        /**
         * Earliest tick the append may proceed at. Equals the append
         * tick unless a log-full policy stalled the reservation
         * (forced write-backs, exponential backoff).
         */
        Tick readyAt;
    };

    /** A log region over [base, base+size) in NVRAM. */
    LogRegion(Addr base, std::uint64_t size, mem::MemDevice &nvram,
              const std::string &statName = "log");

    /** Convenience: the (centralized) log region of an address map. */
    LogRegion(const AddressMap &map, mem::MemDevice &nvram);

    /** Write the persistent header (log_create()). */
    void create();

    /**
     * Reserve the next slot for @p rec, reclaiming the oldest entry
     * when the log has wrapped. @p now is the append tick, used for
     * reclamation-hazard evaluation.
     */
    Reservation reserve(const LogRecord &rec, Tick now);

    /**
     * Truncate the whole log (log_truncate()): every entry becomes
     * dead and the persisted header is refreshed.
     */
    void truncate(Tick now);

    /**
     * Resize the log (log_grow()). Only legal while no transaction is
     * active; resets the log to empty.
     */
    void grow(std::uint64_t newBytes, Tick now);

    std::uint64_t slotCount() const { return slots; }

    std::uint64_t tailSlot() const { return tail; }

    std::uint64_t passNumber() const { return pass; }

    Addr slotAddr(std::uint64_t slot) const;

    /** Current torn-bit value for new appends. */
    bool currentTorn() const { return (pass & 1) != 0; }

    /** Is this slot's record live (not yet reclaimed/truncated)?
     *  The online scrubber only repairs-in-place live slots; dead
     *  damaged ones it may zero outright. */
    bool
    slotLive(std::uint64_t slot) const
    {
        return slot < meta.size() && meta[slot].valid;
    }

    /**
     * Predicate: is the line containing this address durable as of
     * @p now (a write-back COMPLETED in [appendTick, now])? A
     * write-back that has merely been issued — its completion tick
     * lies beyond @p now — does not count: the data is still in
     * flight and a crash before completion loses it. Wired by the
     * System to the memory hierarchy + bus monitor.
     * Arguments: (addr, appendTick, now).
     */
    using PersistedSincePred = std::function<bool(Addr, Tick, Tick)>;
    using TxActivePred = std::function<bool(std::uint64_t)>;
    using HazardSink = std::function<void()>;
    /** Force the line holding an address back to NVRAM; returns the
     *  completion tick. Wired by the System to a cache flush. */
    using ForceWriteback = std::function<Tick(Addr, Tick)>;
    /**
     * Ask the owner of a transaction to abort (abort-retry). Returns
     * false when the request is denied by the livelock guard (the
     * victim has been aborted too many consecutive times); the append
     * must then fall back to stall-style waiting instead of asking
     * again.
     */
    using AbortRequestSink = std::function<bool(std::uint64_t)>;

    void setPersistedSince(PersistedSincePred p) { persistedSince = p; }

    void setTxActive(TxActivePred p) { txActive = p; }

    void setHazardSink(HazardSink h) { hazardSink = h; }

    void setForceWriteback(ForceWriteback f) { forceWriteback = f; }

    void setAbortRequestSink(AbortRequestSink s) { abortRequest = s; }

    /** Select the log-full policy (default: legacy Reclaim). */
    void
    setLogFullPolicy(LogFullPolicy p, std::uint32_t retries,
                     Tick backoffBase)
    {
        policy = p;
        policyRetries = retries;
        policyBackoffBase = backoffBase;
    }

    /** Associate the just-reserved slot with a transaction sequence. */
    void bindSlotTx(std::uint64_t slot, std::uint64_t txSeq);

    /** One in-log undo value of a transaction (tx_abort rollback). */
    struct UndoEntry
    {
        std::uint64_t seqNo; ///< append order, for reverse rollback
        Addr addr;
        std::uint8_t size;
        std::uint64_t undo;
    };

    /**
     * Collect the undo values of every drained, still-bound record of
     * @p txSeq, newest first (the order tx_abort must apply them in).
     * Reads the slots functionally; records still in a volatile log
     * buffer are invisible, so the caller must drain buffers first.
     */
    std::vector<UndoEntry> collectUndo(std::uint64_t txSeq) const;

    sim::StatGroup &stats() { return statGroup; }

  private:
    sim::StatGroup statGroup; // must precede the counter references

  public:
    sim::Counter &appends;
    sim::Counter &wraps;
    sim::Counter &reclaims;
    sim::Counter &hazards;
    sim::Counter &truncates;
    // Log-full policy activity (zero under the legacy Reclaim policy).
    sim::Counter &logFullStalls;
    sim::Counter &logFullStallCycles;
    sim::Counter &forcedWritebacks;

  private:
    /** Zero-fill the slot array's written markers in NVRAM. */
    void clearSlots(Tick now);

    struct SlotMeta
    {
        bool valid = false;
        bool isCommit = false;
        Addr addr = 0;
        Tick appendTick = 0;
        std::uint64_t txSeq = 0;
        std::uint64_t seqNo = 0; ///< global append order
    };

    void persistHeader(Tick now);

    Addr regionBase;
    std::uint64_t regionSize;
    mem::MemDevice &nvram;
    std::uint64_t slots;
    std::uint64_t tail = 0;
    std::uint64_t pass = 1;
    std::uint64_t nextSeqNo = 1;
    std::vector<SlotMeta> meta;

    LogFullPolicy policy = LogFullPolicy::Reclaim;
    std::uint32_t policyRetries = 8;
    Tick policyBackoffBase = 64;

    PersistedSincePred persistedSince;
    TxActivePred txActive;
    HazardSink hazardSink;
    ForceWriteback forceWriteback;
    AbortRequestSink abortRequest;
};

} // namespace snf::persist

#endif // SNF_PERSIST_LOG_REGION_HH
