/**
 * @file
 * The optional volatile log buffer in the memory controller (paper
 * Section IV-C): a small FIFO that receives HWL log records, coalesces
 * records that fall into the same NVRAM line (consecutive slots), and
 * drains them to the circular log region in order.
 *
 * With N entries, a record takes roughly N cycles to reach the NVRAM
 * bus, so N is bounded by the minimum time a data store needs to
 * traverse the cache hierarchy — this preserves the inherent
 * log-before-data ordering guarantee (Section III-B).
 */

#ifndef SNF_PERSIST_LOG_BUFFER_HH
#define SNF_PERSIST_LOG_BUFFER_HH

#include <deque>
#include <vector>

#include "persist/log_record.hh"
#include "persist/log_region.hh"
#include "sim/probe.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace snf::mem
{
class MemDevice;
class BusMonitor;
} // namespace snf::mem

namespace snf::persist
{

/** See file comment. */
class LogBuffer
{
  public:
    /**
     * @param entries FIFO capacity; 0 models "no log buffer": every
     *        record is forced onto the NVRAM bus immediately and the
     *        store stalls until the bus accepts it.
     * @param tornTestMode drain records word-by-word with distinct
     *        completion ticks so crash tests can observe torn records.
     */
    LogBuffer(LogRegion &region, mem::MemDevice &nvram,
              mem::BusMonitor *monitor, std::uint32_t entries,
              std::uint32_t nvramLineBytes, bool tornTestMode = false);

    /**
     * Append one record.
     * @return the tick at which the triggering store may proceed
     *         (== @p now unless the buffer exerts back-pressure).
     */
    Tick append(const LogRecord &rec, Tick now);

    /** Reservation slot of the most recent append (for tx binding). */
    std::uint64_t lastSlot() const { return lastReservedSlot; }

    /** Flush everything; returns the last drain-completion tick. */
    Tick drainAll(Tick now);

    /** Drop buffered, un-drained records (crash model). */
    void dropAll();

    /** Records currently buffered or in flight at @p now. */
    std::size_t occupancy(Tick now) const;

    /**
     * Crash-tooling probe: emits LogDrain at each group's NVRAM
     * completion and CommitDurable for every commit record the group
     * carried (src/crashlab harvests these as crash points).
     */
    void setProbe(sim::ProbeFn p) { probe = std::move(p); }

    sim::StatGroup &stats() { return statGroup; }

  private:
    struct Group
    {
        Addr lineAddr; ///< NVRAM line the group's slots fall in
        Addr base;     ///< first byte address of the group
        std::vector<std::uint8_t> bytes;
        /** Data lines covered, for bus-monitor bookkeeping. */
        std::vector<std::pair<Addr, Tick>> covered;
        /** Commit records in the group (txids), for the probe. */
        std::vector<TxId> commits;
        std::uint32_t records = 0;
    };

    /** Issue the open group to the NVRAM bus; returns completion. */
    Tick flushGroup(Tick now);

    LogRegion &region;
    mem::MemDevice &nvram;
    mem::BusMonitor *monitor;
    std::uint32_t capacity;
    std::uint32_t lineBytes;
    bool tornTest;

    Group open;
    bool hasOpen = false;
    Tick lastDrainDone = 0;
    std::uint64_t lastReservedSlot = 0;
    /** (recordCount, doneTick) of issued groups still in flight. */
    mutable std::deque<std::pair<std::uint32_t, Tick>> inflight;
    sim::ProbeFn probe;

    sim::StatGroup statGroup;

  public:
    sim::Counter &recordsAppended;
    sim::Counter &groupsDrained;
    sim::Counter &bytesDrained;
    sim::Counter &stalls;
    sim::Counter &stallCycles;
};

} // namespace snf::persist

#endif // SNF_PERSIST_LOG_BUFFER_HH
