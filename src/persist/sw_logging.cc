#include "persist/sw_logging.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace snf::persist
{

SwLogging::SwLogging(PersistMode m, mem::MemorySystem &memory,
                     std::vector<LogRegion *> logRegions,
                     TxnTracker &tracker, std::uint32_t logShards,
                     bool injectSkipShardMask)
    : mode(m),
      mem(memory),
      regions(std::move(logRegions)),
      txns(tracker),
      shards(logShards > 0 ? logShards : 1),
      skipShardMask(injectSkipShardMask),
      statGroup("sw_log"),
      updateRecords(statGroup.counter("update_records")),
      commitRecords(statGroup.counter("commit_records")),
      injectedInstructions(statGroup.counter("injected_instructions")),
      crossShardCommits(statGroup.counter("cross_shard_commits")),
      prepareRecords(statGroup.counter("prepare_records"))
{
    SNF_ASSERT(isSoftwareLogging(m), "SW logging with mode %s",
               persistModeName(m));
    SNF_ASSERT(!regions.empty() &&
                   (shards == 1 || regions.size() == shards),
               "SW logging: %zu regions for %u shards",
               regions.size(), shards);
}

void
SwLogging::writeRecordViaWcb(LogRegion &region, const LogRecord &rec,
                             std::uint64_t txSeq, Result &res, Tick now)
{
    auto reservation = region.reserve(rec, now);
    region.bindSlotTx(reservation.slot, txSeq);

    std::uint8_t img[LogRecord::kSlotBytes];
    rec.serialize(img, reservation.torn);

    // One uncacheable store per 8-byte word of the record payload.
    std::uint32_t bytes = rec.payloadBytes();
    Tick t = std::max({res.done, now, reservation.readyAt});
    for (std::uint32_t off = 0; off < bytes; off += 8) {
        std::uint32_t n = std::min<std::uint32_t>(8, bytes - off);
        t = std::max(t, mem.uncacheableWrite(reservation.addr + off, n,
                                             img + off, t));
        res.instructions += 1;
        res.logStores += 1;
    }
    res.done = t;
}

namespace
{
// Software logging is a library call per store: log-pointer
// arithmetic, bounds/overflow checks, record formatting (paper
// Figure 2(a) micro-ops). These instructions retire alongside the
// log loads/stores counted separately.
constexpr std::uint32_t kLogMgmtInstrPerStore = 8;
constexpr std::uint32_t kLogMgmtInstrPerCommit = 4;
} // namespace

SwLogging::Result
SwLogging::logStore(CoreId core, std::uint64_t txSeq, Addr addr,
                    std::uint32_t size, std::uint64_t newVal, Tick now)
{
    Result res;
    res.done = now + kLogMgmtInstrPerStore / 4;
    res.instructions += kLogMgmtInstrPerStore;

    std::uint64_t old_val = 0;
    if (wantsUndo()) {
        // The undo value must be read from the cache hierarchy
        // explicitly (extra load instruction and memory traffic).
        auto lr = mem.load(core, addr, size, &old_val, res.done);
        res.done = lr.done;
        res.instructions += 1;
        res.logLoads += 1;
    }

    LogRecord rec = LogRecord::update(
        static_cast<std::uint8_t>(core), TxnTracker::txIdOf(txSeq),
        addr, static_cast<std::uint8_t>(size),
        wantsUndo() ? std::optional<std::uint64_t>(old_val)
                    : std::nullopt,
        wantsRedo() ? std::optional<std::uint64_t>(newVal)
                    : std::nullopt);
    std::uint32_t idx = shardOf(addr);
    writeRecordViaWcb(*regions[idx], rec, txSeq, res, now);
    txns.noteLogRecord(txSeq);
    if (shards > 1)
        txns.noteShardRecord(txSeq, idx);
    updateRecords.inc();

    if (needsPreStoreBarrier()) {
        // Redo logging: the log entry must be durable before the
        // in-place data write may proceed (Figure 1(b) dashed line).
        res.done = std::max(res.done, mem.drainWcb(res.done));
        res.instructions += 1;
        res.fences += 1;
    }

    injectedInstructions.inc(res.instructions);
    return res;
}

SwLogging::Result
SwLogging::logCommit(CoreId core, std::uint64_t txSeq, Tick now)
{
    Result res;
    res.done = now + kLogMgmtInstrPerCommit / 4;
    res.instructions += kLogMgmtInstrPerCommit;

    std::uint64_t mask = shards > 1 ? txns.shardMaskOf(txSeq) : 0;
    bool multi = mask != 0 && (mask & (mask - 1)) != 0;
    if (!multi) {
        std::uint32_t idx = 0;
        if (mask != 0)
            while (!(mask & (1ULL << idx)))
                ++idx;
        LogRecord rec = LogRecord::commit(
            static_cast<std::uint8_t>(core), TxnTracker::txIdOf(txSeq),
            txns.logRecordCount(txSeq));
        writeRecordViaWcb(*regions[idx], rec, txSeq, res, now);
        commitRecords.inc();
        if (shards > 1) {
            // Commit-ordering interlock (see commitFence). The
            // fence drain folds into res.done: the caller's commit
            // fence assumes the record is durable by then, exactly
            // like the unsharded fence-at-commit sequence.
            commitFence =
                mem.drainWcb(std::max(res.done, commitFence));
            res.done = std::max(res.done, commitFence);
            res.instructions += 1;
            res.fences += 1;
        }
        injectedInstructions.inc(res.instructions);
        return res;
    }

    // Cross-shard two-phase commit, same wire protocol as the HWL
    // engine: prepares close every non-owner participant shard, a
    // WCB drain makes them durable, and only then does the masked
    // commit record reach the owner shard — the atomic commit point
    // is never concurrently pending with a prepare.
    std::uint32_t owner = 0;
    while (!(mask & (1ULL << owner)))
        ++owner;
    TxId txid = TxnTracker::txIdOf(txSeq);
    for (std::uint32_t s = 0; s < shards; ++s) {
        if (s == owner || !(mask & (1ULL << s)))
            continue;
        LogRecord prep = LogRecord::prepare(
            static_cast<std::uint8_t>(core), txid,
            txns.shardRecordCount(txSeq, s), txSeq);
        writeRecordViaWcb(*regions[s], prep, txSeq, res, now);
        prepareRecords.inc();
    }
    res.done = std::max(res.done, mem.drainWcb(res.done));
    res.instructions += 1;
    res.fences += 1;

    std::uint64_t commitMask = skipShardMask ? (1ULL << owner) : mask;
    LogRecord rec = LogRecord::commitMasked(
        static_cast<std::uint8_t>(core), txid,
        txns.shardRecordCount(txSeq, owner), txSeq, commitMask);
    writeRecordViaWcb(*regions[owner], rec, txSeq, res, now);
    commitRecords.inc();
    crossShardCommits.inc();
    // Commit-ordering interlock (see commitFence): the masked commit
    // drains eagerly, issued after every earlier commit's durable
    // tick, and res.done covers the drain so the caller's commit
    // fence semantics (durable by res.done) still hold.
    commitFence = mem.drainWcb(std::max(res.done, commitFence));
    res.done = std::max(res.done, commitFence);
    res.instructions += 1;
    res.fences += 1;
    injectedInstructions.inc(res.instructions);
    return res;
}

} // namespace snf::persist
