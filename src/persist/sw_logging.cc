#include "persist/sw_logging.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace snf::persist
{

SwLogging::SwLogging(PersistMode m, mem::MemorySystem &memory,
                     LogRegion &logRegion, TxnTracker &tracker)
    : mode(m),
      mem(memory),
      region(logRegion),
      txns(tracker),
      statGroup("sw_log"),
      updateRecords(statGroup.counter("update_records")),
      commitRecords(statGroup.counter("commit_records")),
      injectedInstructions(statGroup.counter("injected_instructions"))
{
    SNF_ASSERT(isSoftwareLogging(m), "SW logging with mode %s",
               persistModeName(m));
}

void
SwLogging::writeRecordViaWcb(const LogRecord &rec, std::uint64_t txSeq,
                             Result &res, Tick now)
{
    auto reservation = region.reserve(rec, now);
    region.bindSlotTx(reservation.slot, txSeq);

    std::uint8_t img[LogRecord::kSlotBytes];
    rec.serialize(img, reservation.torn);

    // One uncacheable store per 8-byte word of the record payload.
    std::uint32_t bytes = rec.payloadBytes();
    Tick t = std::max({res.done, now, reservation.readyAt});
    for (std::uint32_t off = 0; off < bytes; off += 8) {
        std::uint32_t n = std::min<std::uint32_t>(8, bytes - off);
        t = std::max(t, mem.uncacheableWrite(reservation.addr + off, n,
                                             img + off, t));
        res.instructions += 1;
        res.logStores += 1;
    }
    res.done = t;
}

namespace
{
// Software logging is a library call per store: log-pointer
// arithmetic, bounds/overflow checks, record formatting (paper
// Figure 2(a) micro-ops). These instructions retire alongside the
// log loads/stores counted separately.
constexpr std::uint32_t kLogMgmtInstrPerStore = 8;
constexpr std::uint32_t kLogMgmtInstrPerCommit = 4;
} // namespace

SwLogging::Result
SwLogging::logStore(CoreId core, std::uint64_t txSeq, Addr addr,
                    std::uint32_t size, std::uint64_t newVal, Tick now)
{
    Result res;
    res.done = now + kLogMgmtInstrPerStore / 4;
    res.instructions += kLogMgmtInstrPerStore;

    std::uint64_t old_val = 0;
    if (wantsUndo()) {
        // The undo value must be read from the cache hierarchy
        // explicitly (extra load instruction and memory traffic).
        auto lr = mem.load(core, addr, size, &old_val, res.done);
        res.done = lr.done;
        res.instructions += 1;
        res.logLoads += 1;
    }

    LogRecord rec = LogRecord::update(
        static_cast<std::uint8_t>(core), TxnTracker::txIdOf(txSeq),
        addr, static_cast<std::uint8_t>(size),
        wantsUndo() ? std::optional<std::uint64_t>(old_val)
                    : std::nullopt,
        wantsRedo() ? std::optional<std::uint64_t>(newVal)
                    : std::nullopt);
    writeRecordViaWcb(rec, txSeq, res, now);
    txns.noteLogRecord(txSeq);
    updateRecords.inc();

    if (needsPreStoreBarrier()) {
        // Redo logging: the log entry must be durable before the
        // in-place data write may proceed (Figure 1(b) dashed line).
        res.done = std::max(res.done, mem.drainWcb(res.done));
        res.instructions += 1;
        res.fences += 1;
    }

    injectedInstructions.inc(res.instructions);
    return res;
}

SwLogging::Result
SwLogging::logCommit(CoreId core, std::uint64_t txSeq, Tick now)
{
    Result res;
    res.done = now + kLogMgmtInstrPerCommit / 4;
    res.instructions += kLogMgmtInstrPerCommit;
    LogRecord rec = LogRecord::commit(static_cast<std::uint8_t>(core),
                                      TxnTracker::txIdOf(txSeq),
                                      txns.logRecordCount(txSeq));
    writeRecordViaWcb(rec, txSeq, res, now);
    commitRecords.inc();
    injectedInstructions.inc(res.instructions);
    return res;
}

} // namespace snf::persist
