#include "persist/log_buffer.hh"

#include <algorithm>
#include <cstring>

#include "mem/bus_monitor.hh"
#include "mem/mem_device.hh"
#include "sim/logging.hh"

namespace snf::persist
{

LogBuffer::LogBuffer(LogRegion &logRegion, mem::MemDevice &dev,
                     mem::BusMonitor *busMonitor, std::uint32_t entries,
                     std::uint32_t nvramLineBytes, bool tornTestMode)
    : region(logRegion),
      nvram(dev),
      monitor(busMonitor),
      capacity(entries),
      lineBytes(nvramLineBytes),
      tornTest(tornTestMode),
      statGroup("log_buffer"),
      recordsAppended(statGroup.counter("records")),
      groupsDrained(statGroup.counter("groups")),
      bytesDrained(statGroup.counter("bytes")),
      stalls(statGroup.counter("stalls")),
      stallCycles(statGroup.counter("stall_cycles"))
{
}

Tick
LogBuffer::flushGroup(Tick now)
{
    SNF_ASSERT(hasOpen, "flush with no open group");
    Tick issue = std::max(now, lastDrainDone);
    Tick done;
    if (tornTest) {
        // Per-slot split drain with distinct completion ticks so a
        // crash can land inside a record (torn-bit tests, I5). The
        // payload bytes [8..32) are written before the header word
        // [0..8) that carries the written marker and torn bit, so a
        // partially-arrived record is never mistaken for a valid one.
        done = issue;
        std::uint32_t slot_bytes = LogRecord::kSlotBytes;
        for (std::size_t s = 0; s * slot_bytes < open.bytes.size();
             ++s) {
            Addr slot_base = open.base + s * slot_bytes;
            const std::uint8_t *src =
                open.bytes.data() + s * slot_bytes;
            auto r1 = nvram.access(true, slot_base + 8,
                                   slot_bytes - 8, src + 8, nullptr,
                                   done, true,
                                   PersistOrigin::LogDrain);
            auto r2 = nvram.access(true, slot_base, 8, src, nullptr,
                                   r1.done, true,
                                   PersistOrigin::LogDrain);
            done = r2.done;
        }
    } else {
        auto res = nvram.access(true, open.base, open.bytes.size(),
                                open.bytes.data(), nullptr, issue,
                                true, PersistOrigin::LogDrain);
        done = res.done;
    }
    lastDrainDone = done;
    groupsDrained.inc();
    bytesDrained.inc(open.bytes.size());
    if (monitor) {
        for (auto &[dataLine, appendTick] : open.covered)
            monitor->onLogDrain(dataLine, appendTick, done);
    }
    if (probe) {
        probe(sim::ProbeEvent::LogDrain, done, open.records);
        for (TxId tx : open.commits)
            probe(sim::ProbeEvent::CommitDurable, done, tx);
    }
    inflight.emplace_back(open.records, done);
    hasOpen = false;
    open = Group{};
    return done;
}

std::size_t
LogBuffer::occupancy(Tick now) const
{
    while (!inflight.empty() && inflight.front().second <= now)
        inflight.pop_front();
    std::size_t n = hasOpen ? open.records : 0;
    for (auto &[records, done] : inflight)
        n += records;
    return n;
}

Tick
LogBuffer::append(const LogRecord &rec, Tick now)
{
    auto reservation = region.reserve(rec, now);
    lastReservedSlot = reservation.slot;

    std::uint8_t slot_img[LogRecord::kSlotBytes];
    rec.serialize(slot_img, reservation.torn);

    Addr line = reservation.addr & ~static_cast<Addr>(lineBytes - 1);
    bool contiguous =
        hasOpen && line == open.lineAddr &&
        reservation.addr == open.base + open.bytes.size();
    if (hasOpen && !contiguous)
        flushGroup(now);

    if (!hasOpen) {
        hasOpen = true;
        open.lineAddr = line;
        open.base = reservation.addr;
    }
    open.bytes.insert(open.bytes.end(), slot_img,
                      slot_img + LogRecord::kSlotBytes);
    open.records += 1;
    recordsAppended.inc();

    // Commit and prepare records guard no data line; feeding their
    // zero address to the bus monitor would poison its coverage map.
    Addr data_line = rec.addr & ~static_cast<Addr>(lineBytes - 1);
    if (monitor && !rec.isCommit && !rec.isPrepare) {
        monitor->onLogAppend(data_line, now);
        open.covered.emplace_back(data_line, now);
    }
    if (rec.isCommit)
        open.commits.push_back(rec.tx);

    // A log-full policy may have stalled the reservation (forced
    // write-backs, backoff); the store cannot proceed before then.
    Tick proceed = std::max(now, reservation.readyAt);
    if (capacity == 0) {
        // No log buffer: the record is forced onto the NVRAM bus and
        // the store waits for the bus to accept it.
        Tick issue = std::max(now, lastDrainDone);
        flushGroup(now);
        proceed = std::max(proceed, issue);
        if (issue > now)
            stalls.inc();
    } else if (occupancy(now) > capacity) {
        // FIFO full: stall the store until the oldest group retires.
        if (hasOpen)
            flushGroup(now);
        while (occupancy(proceed) > capacity && !inflight.empty()) {
            proceed = inflight.front().second;
            inflight.pop_front();
        }
        if (proceed > now) {
            stalls.inc();
            stallCycles.inc(proceed - now);
        }
    }
    return proceed;
}

Tick
LogBuffer::drainAll(Tick now)
{
    Tick done = lastDrainDone;
    if (hasOpen)
        done = flushGroup(now);
    return std::max(done, now);
}

void
LogBuffer::dropAll()
{
    hasOpen = false;
    open = Group{};
    inflight.clear();
}

} // namespace snf::persist
