/**
 * @file
 * Online log scrubber (lifelab): a background walker that piggybacks
 * on the FWB scan cadence (or an equivalent self-scheduled period
 * under non-FWB modes) and CRC-checks a bounded chunk of the log's
 * slot array per step, plus the remap table's bank redundancy.
 *
 * Per damaged slot the scrubber:
 *  - repairs in place when the damage is a single flipped bit (brute
 *    force over the 256 slot bits, accepting the unique flip that
 *    makes the CRC check out — the rewritten bytes are exactly the
 *    originally-logged ones, so repairing a *live* slot is safe);
 *  - zeroes the slot when it is uncorrectable but dead (reclaimed or
 *    truncated), so post-crash recovery sees a clean hole instead of
 *    noise it must bridge;
 *  - leaves live uncorrectable slots for recovery's quarantine logic.
 *
 * Every observation of damage increments the 64-byte line's error
 * streak; a line reaching the promote threshold is pushed into the
 * MemDevice's persistent bad-line remap table and its traffic moves
 * to a spare line — repeated transient errors are treated as the
 * early signature of a failing cell.
 *
 * All scrubber traffic goes through timed device accesses, so its
 * overhead shows up in the NVRAM read/write counters and the run's
 * timing — and is additionally totalled in the scrubber's own stat
 * group so EXPERIMENTS.md can quote the bounded overhead directly.
 */

#ifndef SNF_PERSIST_LOG_SCRUBBER_HH
#define SNF_PERSIST_LOG_SCRUBBER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/system_config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace snf::mem
{
class MemDevice;
} // namespace snf::mem

namespace snf::persist
{

class LogRegion;

/** See file comment. */
class LogScrubber
{
  public:
    LogScrubber(mem::MemDevice &nvram, const PersistConfig &config);

    /** Register a log region (one per partition) to be walked. */
    void addRegion(LogRegion *region);

    /**
     * Scrub the next chunk (scrubChunkSlots slots, default 1/256th
     * of the total) and check remap-bank redundancy. Called from the
     * FWB scan hook or the self-scheduled event.
     */
    void step(Tick now);

    /** Walk every slot once (tests and final sweeps). */
    void scrubAll(Tick now);

    /**
     * Self-scheduling for non-FWB modes: run one step every
     * @p period ticks until stop().
     */
    void start(sim::EventQueue &events, Tick period, Tick now);

    void stop() { running = false; }

    /** Current error streak of a 64-byte line (tests). */
    std::uint32_t errorStreak(Addr line) const;

    sim::StatGroup &stats() { return statGroup; }

  private:
    struct SlotRef
    {
        LogRegion *region;
        std::uint64_t slot;
        Addr addr;
    };

    void scheduleNext(sim::EventQueue &events, Tick now);
    void scrubSlot(const SlotRef &ref, Tick now);
    void checkRemapRedundancy(Tick now);
    std::uint64_t totalSlots() const;
    SlotRef slotRef(std::uint64_t globalIndex) const;

    mem::MemDevice &nvram;
    PersistConfig cfg;
    std::vector<LogRegion *> regions;
    std::uint64_t cursor = 0;
    std::unordered_map<Addr, std::uint32_t> streaks;
    bool running = false;
    Tick stepPeriod = 0;
    sim::StatGroup statGroup; // must precede the counter references

  public:
    sim::Counter &steps;
    sim::Counter &slotsScanned;
    sim::Counter &readBytes;
    sim::Counter &writeBytes;
    /** Slots whose single-bit damage was rewritten in place. */
    sim::Counter &repairs;
    /** Dead uncorrectable slots zeroed. */
    sim::Counter &zeroed;
    /** Live uncorrectable slots left for recovery to judge. */
    sim::Counter &uncorrectable;
    /** Lines promoted into the bad-line remap table. */
    sim::Counter &promotions;
    /** Remap-table bank redundancy restorations. */
    sim::Counter &bankRepairs;
};

} // namespace snf::persist

#endif // SNF_PERSIST_LOG_SCRUBBER_HH
