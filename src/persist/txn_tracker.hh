/**
 * @file
 * Bookkeeping for active persistent-memory transactions: physical
 * transaction IDs (the 8-bit special register of Section IV-B),
 * globally unique sequence numbers, and per-transaction write-sets
 * (the lines that clwb-based commit modes must flush).
 */

#ifndef SNF_PERSIST_TXN_TRACKER_HH
#define SNF_PERSIST_TXN_TRACKER_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/system_config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace snf::persist
{

/** Outcome of one CC line-acquire attempt (see acquireLine). */
enum class CcDecision
{
    Granted, ///< proceed with the access
    Wait,    ///< line held by another transaction; back off and retry
    Abort,   ///< waiting would deadlock (or tx already doomed): roll back
};

/** See file comment. */
class TxnTracker
{
  public:
    TxnTracker();

    /** Begin a transaction on @p thread; returns its sequence. */
    std::uint64_t begin(CoreId thread);

    /** Commit the transaction with sequence @p seq. */
    void commit(std::uint64_t seq);

    /** Abort bookkeeping (crash modeling / tests). */
    void abort(std::uint64_t seq);

    /** Is the transaction with this sequence still active? */
    bool isActive(std::uint64_t seq) const;

    /** The 16-bit log-record transaction ID for a sequence. */
    static TxId
    txIdOf(std::uint64_t seq)
    {
        return static_cast<TxId>(seq & 0xffff);
    }

    /** Record a written line for the write-set. */
    void recordWrite(std::uint64_t seq, Addr lineAddr);

    /** Distinct lines written by the transaction, append order. */
    const std::vector<Addr> &writeSet(std::uint64_t seq) const;

    /**
     * Count one appended update log record for the transaction; the
     * total goes into the commit record so the salvaging recovery
     * scanner can tell reclaimed records from damaged ones.
     */
    void noteLogRecord(std::uint64_t seq);

    /** Update log records appended by the transaction so far. */
    std::uint32_t logRecordCount(std::uint64_t seq) const;

    /**
     * Shard accounting (shardlab): note one appended update record
     * landing in log shard @p shard, so commit can compute the
     * participation mask and per-shard prepare counts.
     */
    void noteShardRecord(std::uint64_t seq, std::uint32_t shard);

    /** Participation mask: bit s = tx appended records in shard s. */
    std::uint64_t shardMaskOf(std::uint64_t seq) const;

    /** Update records the transaction appended in @p shard. */
    std::uint32_t shardRecordCount(std::uint64_t seq,
                                   std::uint32_t shard) const;

    /**
     * Mark the transaction as an abort victim (log-full abort-retry
     * policy). The owning thread observes this at commit and rolls
     * back instead.
     *
     * Livelock guard: once the same thread has been victimized
     * abortRetryCap consecutive times without committing, further
     * requests against it are *denied* (returns false, counts an
     * escalation) and the caller must fall back to the stall path —
     * an adversarial workload can't abort one victim forever.
     */
    bool requestAbort(std::uint64_t seq);

    /** Set the consecutive-victim cap (0 disables the guard). */
    void setAbortRetryCap(std::uint32_t cap) { abortRetryCap = cap; }

    /** Consecutive times @p thread was aborted as a victim without
     *  committing in between (livelock-guard state, for tests). */
    std::uint32_t victimStreak(CoreId thread) const;

    /** Has an abort been requested for this transaction? */
    bool abortRequested(std::uint64_t seq) const;

    std::size_t activeCount() const { return active.size(); }

    // ----- concurrency control (the CC layer) --------------------

    /** Select the CC scheme; None (the default) disables the layer. */
    void setCcMode(CcMode m) { ccModeV = m; }

    CcMode ccMode() const { return ccModeV; }

    /**
     * One encounter-time acquire of @p line by transaction @p seq.
     * Writes (and 2PL reads) take the line's exclusive lock, held to
     * commit/abort. A conflicting holder yields Wait — unless parking
     * this waiter would close a cycle in the waits-for graph, in
     * which case the *requester* gets Abort (deterministic deadlock
     * avoidance: the holder keeps running, so progress is
     * guaranteed). TL2 reads of unlocked lines record the line's
     * commit version for validateReads() instead of locking.
     */
    CcDecision acquireLine(std::uint64_t seq, Addr line, bool forWrite);

    /**
     * TL2 commit-time validation: every read line must still carry
     * the version it had at first read and must not be write-locked
     * by another transaction. Trivially true outside Tl2 mode.
     */
    bool validateReads(std::uint64_t seq);

    /** Recorded TL2 read-set size (validation cost modeling). */
    std::size_t readSetSize(std::uint64_t seq) const;

    /** Commit version of @p line (bumped by each committed writer). */
    std::uint64_t lineVersion(Addr line) const;

    /** Owning transaction of @p line's lock (0 = unlocked). */
    std::uint64_t lockOwnerOf(Addr line) const;

    sim::StatGroup &stats() { return statGroup; }

  private:
    struct Txn
    {
        CoreId thread = 0;
        std::vector<Addr> writeLines;
        std::unordered_set<Addr> seen;
        std::uint32_t logRecords = 0;
        /** Bit s set = the tx appended update records in shard s. */
        std::uint64_t shardMask = 0;
        /** Update-record count per shard (indexed by shard). */
        std::vector<std::uint32_t> shardRecords;
        bool abortRequested = false;
        /** Line locks held (2PL reads + all-mode writes). */
        std::vector<Addr> locksHeld;
        /** TL2 read-set: (line, version at first read). */
        std::vector<std::pair<Addr, std::uint64_t>> readSet;
        std::unordered_set<Addr> readSeen;
    };

    /** Would parking @p seq on its waitsFor edge close a cycle? */
    bool wouldDeadlock(std::uint64_t seq) const;

    /** Drop locks, the waits-for edge and (on commit) bump the
     *  versions of the written lines. */
    void releaseCc(const Txn &txn, std::uint64_t seq, bool committing);

    std::uint64_t nextSeq = 1;
    std::unordered_map<std::uint64_t, Txn> active;
    std::vector<Addr> emptySet;
    std::uint32_t abortRetryCap = 0;
    std::unordered_map<CoreId, std::uint32_t> victimStreaks;
    CcMode ccModeV = CcMode::None;
    /** Line -> holding transaction sequence. */
    std::unordered_map<Addr, std::uint64_t> lockOwner;
    /** Waiter seq -> holder seq (at most one outgoing edge each). */
    std::unordered_map<std::uint64_t, std::uint64_t> waitsFor;
    /** Line -> commit version (absent = never committed-to). */
    std::unordered_map<Addr, std::uint64_t> lineVersions;
    std::uint64_t versionClock = 0;
    sim::StatGroup statGroup; // must precede the counter references

  public:
    sim::Counter &begun;
    sim::Counter &committed;
    sim::Counter &aborted;
    sim::Counter &abortRequests;
    /** Abort requests denied by the livelock guard (the log-full
     *  path escalated to stalling instead). */
    sim::Counter &abortEscalations;
    sim::Counter &lockAcquires;
    sim::Counter &lockWaits;
    /** Requester self-aborts that broke a waits-for cycle. */
    sim::Counter &deadlockAborts;
    /** TL2 commit validations that failed (stale read versions). */
    sim::Counter &validationFailures;
};

} // namespace snf::persist

#endif // SNF_PERSIST_TXN_TRACKER_HH
