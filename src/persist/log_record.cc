#include "persist/log_record.hh"

#include <cstring>

#include "sim/logging.hh"

namespace snf::persist
{

LogRecord
LogRecord::update(std::uint8_t thread, std::uint16_t tx, Addr addr,
                  std::uint8_t size,
                  std::optional<std::uint64_t> undoVal,
                  std::optional<std::uint64_t> redoVal)
{
    SNF_ASSERT(size > 0 && size <= 8, "log record size %u", size);
    SNF_ASSERT(undoVal || redoVal, "log record without values");
    LogRecord r;
    r.thread = thread;
    r.tx = tx;
    r.addr = addr & 0x0000ffffffffffffULL;
    r.size = size;
    if (undoVal) {
        r.hasUndo = true;
        r.undo = *undoVal;
    }
    if (redoVal) {
        r.hasRedo = true;
        r.redo = *redoVal;
    }
    return r;
}

LogRecord
LogRecord::commit(std::uint8_t thread, std::uint16_t tx)
{
    LogRecord r;
    r.thread = thread;
    r.tx = tx;
    r.isCommit = true;
    r.size = 0;
    return r;
}

std::uint32_t
LogRecord::payloadBytes() const
{
    std::uint32_t n = kHeaderBytes;
    if (hasUndo)
        n += 8;
    if (hasRedo)
        n += 8;
    return n;
}

void
LogRecord::serialize(std::uint8_t out[kSlotBytes], bool torn) const
{
    std::memset(out, 0, kSlotBytes);
    std::uint8_t flags = kFlagWritten;
    if (torn)
        flags |= kFlagTorn;
    if (hasUndo)
        flags |= kFlagHasUndo;
    if (hasRedo)
        flags |= kFlagHasRedo;
    if (isCommit)
        flags |= kFlagCommit;
    out[0] = flags;
    out[1] = thread;
    std::memcpy(out + 2, &tx, 2);
    out[4] = size;
    std::uint64_t a = addr & 0x0000ffffffffffffULL;
    std::memcpy(out + 8, &a, 8);
    std::uint32_t off = kHeaderBytes;
    if (hasUndo) {
        std::memcpy(out + off, &undo, 8);
        off += 8;
    }
    if (hasRedo)
        std::memcpy(out + off, &redo, 8);
}

std::optional<LogRecord>
LogRecord::deserialize(const std::uint8_t in[kSlotBytes], bool &tornOut)
{
    std::uint8_t flags = in[0];
    if (!(flags & kFlagWritten))
        return std::nullopt;
    tornOut = (flags & kFlagTorn) != 0;
    LogRecord r;
    r.thread = in[1];
    std::memcpy(&r.tx, in + 2, 2);
    r.size = in[4];
    std::uint64_t a = 0;
    std::memcpy(&a, in + 8, 8);
    r.addr = a;
    r.hasUndo = (flags & kFlagHasUndo) != 0;
    r.hasRedo = (flags & kFlagHasRedo) != 0;
    r.isCommit = (flags & kFlagCommit) != 0;
    std::uint32_t off = kHeaderBytes;
    if (r.hasUndo) {
        std::memcpy(&r.undo, in + off, 8);
        off += 8;
    }
    if (r.hasRedo)
        std::memcpy(&r.redo, in + off, 8);
    return r;
}

} // namespace snf::persist
