#include "persist/log_record.hh"

#include <array>
#include <cstring>

#include "sim/logging.hh"

namespace snf::persist
{

const char *
slotClassName(SlotClass cls)
{
    switch (cls) {
      case SlotClass::Empty:
        return "empty";
      case SlotClass::Torn:
        return "torn";
      case SlotClass::CrcFail:
        return "crc-fail";
      case SlotClass::Valid:
        return "valid";
    }
    return "?";
}

LogRecord
LogRecord::update(std::uint8_t thread, std::uint16_t tx, Addr addr,
                  std::uint8_t size,
                  std::optional<std::uint64_t> undoVal,
                  std::optional<std::uint64_t> redoVal)
{
    SNF_ASSERT(size > 0 && size <= 8, "log record size %u", size);
    SNF_ASSERT(undoVal || redoVal, "log record without values");
    LogRecord r;
    r.thread = thread;
    r.tx = tx;
    r.addr = addr & 0x0000ffffffffffffULL;
    r.size = size;
    if (undoVal) {
        r.hasUndo = true;
        r.undo = *undoVal;
    }
    if (redoVal) {
        r.hasRedo = true;
        r.redo = *redoVal;
    }
    return r;
}

LogRecord
LogRecord::commit(std::uint8_t thread, std::uint16_t tx,
                  std::uint32_t nUpdates)
{
    LogRecord r;
    r.thread = thread;
    r.tx = tx;
    r.isCommit = true;
    r.size = 0;
    r.nUpdates = nUpdates;
    return r;
}

LogRecord
LogRecord::prepare(std::uint8_t thread, std::uint16_t tx,
                   std::uint32_t nUpdatesInShard,
                   std::uint64_t commitSeq)
{
    LogRecord r;
    r.thread = thread;
    r.tx = tx;
    r.isPrepare = true;
    r.size = 0;
    r.nUpdates = nUpdatesInShard;
    r.commitSeq = commitSeq;
    return r;
}

LogRecord
LogRecord::commitMasked(std::uint8_t thread, std::uint16_t tx,
                        std::uint32_t nUpdatesInShard,
                        std::uint64_t commitSeq,
                        std::uint64_t shardMask)
{
    SNF_ASSERT(shardMask != 0, "masked commit with empty mask");
    LogRecord r;
    r.thread = thread;
    r.tx = tx;
    r.isCommit = true;
    r.hasShardMask = true;
    r.size = 0;
    r.nUpdates = nUpdatesInShard;
    r.commitSeq = commitSeq;
    r.shardMask = shardMask;
    return r;
}

std::uint32_t
LogRecord::payloadBytes() const
{
    // Prepare records append the 8-byte commit sequence number to the
    // header; masked commits append the sequence number and the
    // participation mask. Neither carries undo/redo values.
    if (isPrepare)
        return kHeaderBytes + 8;
    if (hasShardMask)
        return kHeaderBytes + 16;
    std::uint32_t n = kHeaderBytes;
    if (hasUndo)
        n += 8;
    if (hasRedo)
        n += 8;
    return n;
}

std::uint32_t
LogRecord::crc32(const std::uint8_t *data, std::uint32_t n)
{
    // Table-driven, same polynomial (and therefore same values) as
    // the original bitwise loop. The recovery scan CRCs every written
    // log slot, which puts this on the crash sweep's critical path.
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int b = 0; b < 8; ++b)
                c = (c >> 1) ^ (0xedb88320u & (~(c & 1) + 1));
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t crc = 0xffffffffu;
    for (std::uint32_t i = 0; i < n; ++i)
        crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xffu];
    return ~crc;
}

void
LogRecord::serialize(std::uint8_t out[kSlotBytes], bool torn) const
{
    std::memset(out, 0, kSlotBytes);
    std::uint8_t flags = kFlagWritten;
    if (torn)
        flags |= kFlagTorn;
    if (hasUndo)
        flags |= kFlagHasUndo;
    if (hasRedo)
        flags |= kFlagHasRedo;
    if (isCommit)
        flags |= kFlagCommit;
    if (isPrepare)
        flags |= kFlagPrepare;
    if (hasShardMask)
        flags |= kFlagShardMask;
    out[0] = flags;
    out[1] = thread;
    std::memcpy(out + 2, &tx, 2);
    out[4] = size;
    out[5] = kFormatVersion;
    if (isCommit || isPrepare) {
        std::memcpy(out + 6, &nUpdates, 4);
    } else {
        std::uint64_t a = addr & 0x0000ffffffffffffULL;
        std::memcpy(out + 6, &a, 6);
    }
    if (isPrepare || hasShardMask) {
        std::memcpy(out + kHeaderBytes, &commitSeq, 8);
        if (hasShardMask)
            std::memcpy(out + kHeaderBytes + 8, &shardMask, 8);
    } else {
        std::uint32_t off = kHeaderBytes;
        if (hasUndo) {
            std::memcpy(out + off, &undo, 8);
            off += 8;
        }
        if (hasRedo)
            std::memcpy(out + off, &redo, 8);
    }
    // The CRC covers the entire written payload (torn bit included)
    // with the CRC field itself as zero; it goes in last.
    std::uint32_t crc = crc32(out, payloadBytes());
    std::memcpy(out + 12, &crc, 4);
}

std::optional<LogRecord>
LogRecord::deserialize(const std::uint8_t in[kSlotBytes], bool &tornOut)
{
    std::uint8_t flags = in[0];
    if (!(flags & kFlagWritten))
        return std::nullopt;
    tornOut = (flags & kFlagTorn) != 0;
    LogRecord r;
    r.thread = in[1];
    std::memcpy(&r.tx, in + 2, 2);
    r.size = in[4];
    r.hasUndo = (flags & kFlagHasUndo) != 0;
    r.hasRedo = (flags & kFlagHasRedo) != 0;
    r.isCommit = (flags & kFlagCommit) != 0;
    r.isPrepare = (flags & kFlagPrepare) != 0;
    r.hasShardMask = (flags & kFlagShardMask) != 0;
    if (r.isCommit || r.isPrepare) {
        std::memcpy(&r.nUpdates, in + 6, 4);
    } else {
        std::uint64_t a = 0;
        std::memcpy(&a, in + 6, 6);
        r.addr = a;
    }
    if (r.isPrepare || r.hasShardMask) {
        std::memcpy(&r.commitSeq, in + kHeaderBytes, 8);
        if (r.hasShardMask)
            std::memcpy(&r.shardMask, in + kHeaderBytes + 8, 8);
    } else {
        std::uint32_t off = kHeaderBytes;
        if (r.hasUndo) {
            std::memcpy(&r.undo, in + off, 8);
            off += 8;
        }
        if (r.hasRedo)
            std::memcpy(&r.redo, in + off, 8);
    }
    return r;
}

SlotInfo
classifySlot(const std::uint8_t in[LogRecord::kSlotBytes])
{
    SlotInfo info;
    if (!(in[0] & LogRecord::kFlagWritten)) {
        bool anySet = false;
        for (std::uint32_t i = 0; i < LogRecord::kSlotBytes; ++i)
            anySet |= in[i] != 0;
        info.cls = anySet ? SlotClass::Torn : SlotClass::Empty;
        return info;
    }
    if (in[5] != LogRecord::kFormatVersion) {
        info.cls = SlotClass::CrcFail;
        return info;
    }
    bool torn = false;
    auto rec = LogRecord::deserialize(in, torn);
    // A damaged size field could push payloadBytes() past the slot;
    // reject before computing the CRC over out-of-range bytes.
    if (!rec || rec->payloadBytes() > LogRecord::kSlotBytes ||
        (rec->isCommit && rec->isPrepare) ||
        (rec->hasShardMask && !rec->isCommit) ||
        ((rec->isPrepare || rec->hasShardMask) &&
         (rec->hasUndo || rec->hasRedo || rec->size != 0)) ||
        (!rec->isCommit && !rec->isPrepare &&
         (rec->size == 0 || rec->size > 8))) {
        info.cls = SlotClass::CrcFail;
        return info;
    }
    std::uint8_t img[LogRecord::kSlotBytes];
    std::memcpy(img, in, LogRecord::kSlotBytes);
    std::uint32_t stored = 0;
    std::memcpy(&stored, img + 12, 4);
    std::memset(img + 12, 0, 4);
    if (LogRecord::crc32(img, rec->payloadBytes()) != stored) {
        info.cls = SlotClass::CrcFail;
        return info;
    }
    info.cls = SlotClass::Valid;
    info.torn = torn;
    info.rec = *rec;
    return info;
}

} // namespace snf::persist
