/**
 * @file
 * Analytic dynamic-energy model (McPAT-lite). NVRAM energy comes
 * straight from the device counters (paper Table II pJ/bit PCM
 * coefficients); core and cache energy use per-event coefficients
 * calibrated to the same order of magnitude as McPAT's output for an
 * Intel-Core-i7-class 22 nm processor. The paper reports *relative*
 * dynamic energy, which these coefficients preserve.
 */

#ifndef SNF_ENERGY_ENERGY_MODEL_HH
#define SNF_ENERGY_ENERGY_MODEL_HH

#include <cstdint>

namespace snf::mem
{
class MemorySystem;
} // namespace snf::mem

namespace snf::energy
{

/** Per-event energy coefficients (picojoules). */
struct EnergyCoefficients
{
    double perInstructionPj = 120.0; ///< core pipeline energy
    double l1AccessPj = 22.0;
    double l2AccessPj = 160.0;
};

/** Dynamic energy totals of one run, in picojoules. */
struct EnergyBreakdown
{
    double nvramReadPj = 0;
    double nvramWritePj = 0;
    double dramPj = 0;
    double l1Pj = 0;
    double l2Pj = 0;
    double corePj = 0;

    /** Memory dynamic energy (the paper's Figure 8/10 metric). */
    double
    memoryDynamicPj() const
    {
        return nvramReadPj + nvramWritePj + dramPj;
    }

    double
    processorDynamicPj() const
    {
        return corePj + l1Pj + l2Pj;
    }

    double
    totalPj() const
    {
        return memoryDynamicPj() + processorDynamicPj();
    }
};

/** See file comment. */
class EnergyModel
{
  public:
    static EnergyBreakdown
    compute(const mem::MemorySystem &memory,
            std::uint64_t instructions,
            const EnergyCoefficients &coeff = EnergyCoefficients{});
};

} // namespace snf::energy

#endif // SNF_ENERGY_ENERGY_MODEL_HH
