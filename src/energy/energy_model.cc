#include "energy/energy_model.hh"

#include "mem/memory_system.hh"

namespace snf::energy
{

EnergyBreakdown
EnergyModel::compute(const mem::MemorySystem &memory,
                     std::uint64_t instructions,
                     const EnergyCoefficients &coeff)
{
    EnergyBreakdown e;

    e.nvramReadPj = memory.nvram().readEnergyPj.value();
    e.nvramWritePj = memory.nvram().writeEnergyPj.value();
    e.dramPj = memory.dram().readEnergyPj.value() +
               memory.dram().writeEnergyPj.value();

    // Hit/miss counts include the caches' unflushed hot-path
    // accumulators so a const computation is exact at any instant.
    std::uint64_t l1_accesses = 0;
    for (std::uint32_t c = 0; c < memory.config().numCores; ++c) {
        const auto &l1 = memory.l1(c);
        l1_accesses += l1.hits.value() + l1.misses.value() +
                       l1.pendingHits + l1.pendingMisses;
    }
    const auto &l2 = memory.l2Cache();
    std::uint64_t l2_accesses = l2.hits.value() + l2.misses.value() +
                                l2.pendingHits + l2.pendingMisses;

    e.l1Pj = static_cast<double>(l1_accesses) * coeff.l1AccessPj;
    e.l2Pj = static_cast<double>(l2_accesses) * coeff.l2AccessPj;
    e.corePj =
        static_cast<double>(instructions) * coeff.perInstructionPj;
    return e;
}

} // namespace snf::energy
