/**
 * @file
 * Sweep reporting: a human-readable per-cell summary and a JSON
 * report of the full workload × mode × seed matrix, written by
 * tools/snfcrash. The JSON carries everything needed to reproduce a
 * failure: the cell parameters, every violated invariant with its
 * crash tick, and the minimized earliest-failing tick (feed it back
 * through `snfsim --crash-at TICK` or a focused sweep).
 */

#ifndef SNF_CRASHLAB_REPORT_HH
#define SNF_CRASHLAB_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "crashlab/sweep.hh"

namespace snf::crashlab
{

/** One matrix cell: its configuration and its sweep result. */
struct CellResult
{
    std::string workload;
    PersistMode mode = PersistMode::NonPers;
    std::uint64_t seed = 0;
    std::uint32_t threads = 0;
    std::uint64_t txPerThread = 0;
    SweepResult sweep;
};

/** One-paragraph human summary of a cell. */
void writeTextSummary(std::ostream &os, const CellResult &cell);

/** Per-phase timing + snapshot-engine counter lines of a cell. */
void writePerfSummary(std::ostream &os, const CellResult &cell);

/** The whole matrix as a JSON document. */
void writeJsonReport(std::ostream &os,
                     const std::vector<CellResult> &cells);

/**
 * The perf trajectory document (BENCH_sweep.json, --bench-json): one
 * record per cell with the phase wall-clocks and snapshot-engine
 * counters of its sweep, schema-stable so CI can archive and diff it
 * across commits.
 */
void writeBenchJson(std::ostream &os, const std::string &tool,
                    const std::vector<CellResult> &cells);

/** JSON string escaping (exposed for tests). */
std::string jsonEscape(const std::string &s);

} // namespace snf::crashlab

#endif // SNF_CRASHLAB_REPORT_HH
