#include "crashlab/reorder.hh"

#include <algorithm>
#include <cstdio>
#include <set>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace snf::crashlab
{

namespace
{

/** Canonical apply order: completion tick, then journal order. */
bool
canonicalLess(const PendingPersist &a, const PendingPersist &b)
{
    if (a.done != b.done)
        return a.done < b.done;
    return a.seq < b.seq;
}

void
appendEntryDesc(std::string &out, const PendingPersist &p)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "#%u %s 0x%llx+%u", p.seq,
                  persistOriginName(p.origin),
                  static_cast<unsigned long long>(p.addr), p.size);
    out += buf;
}

} // namespace

bool
reorderEdge(const PendingPersist &earlier, const PendingPersist &later)
{
    // Rule 1: log drains, WCB flushes and device metadata share the
    // serialized priority channel — one FIFO acceptance queue at the
    // controller — so two pending non-data writes land in order.
    if (earlier.origin != PersistOrigin::Data &&
        later.origin != PersistOrigin::Data)
        return true;
    // Rule 2: overlapping byte ranges land in completion order (the
    // media serializes writes to the same cells).
    if (earlier.addr < later.addr + later.size &&
        later.addr < earlier.addr + earlier.size)
        return true;
    // Rule 3: independent lines are unordered. Barrier-enforced
    // pairs (fence, log-drain-before-data-writeback) never reach
    // here: the barrier separates issue after done, so the two are
    // never concurrently pending.
    return false;
}

PendingCursor::PendingCursor(const mem::BackingStore &store)
{
    store.forEachJournalRecord(
        [this](const mem::BackingStore::JournalRecord &r) {
            if (r.issue >= r.done)
                return; // never observable as pending
            PendingPersist p;
            p.issue = r.issue;
            p.done = r.done;
            p.addr = r.addr;
            p.size = r.size;
            p.origin = r.origin;
            p.seq = r.seq;
            p.data.assign(r.data, r.data + r.size);
            all.push_back(std::move(p));
        });
    std::sort(all.begin(), all.end(),
              [](const PendingPersist &a, const PendingPersist &b) {
                  if (a.issue != b.issue)
                      return a.issue < b.issue;
                  return a.seq < b.seq;
              });
}

std::vector<PendingPersist>
PendingCursor::pendingAt(Tick t)
{
    SNF_ASSERT(!started || t >= lastTick,
               "PendingCursor ticks must be non-decreasing "
               "(%llu after %llu)",
               static_cast<unsigned long long>(t),
               static_cast<unsigned long long>(lastTick));
    started = true;
    lastTick = t;

    while (pos < all.size() && all[pos].issue <= t)
        live.push_back(pos++);
    live.erase(std::remove_if(live.begin(), live.end(),
                              [&](std::size_t i) {
                                  return all[i].done <= t;
                              }),
               live.end());

    std::vector<PendingPersist> out;
    out.reserve(live.size());
    for (std::size_t i : live)
        out.push_back(all[i]);
    std::sort(out.begin(), out.end(), canonicalLess);
    return out;
}

std::vector<PendingPersist>
pendingPersistsAt(const mem::BackingStore &store, Tick t)
{
    PendingCursor cursor(store);
    return cursor.pendingAt(t);
}

std::string
ReorderImage::describe(
    const std::vector<PendingPersist> &pending) const
{
    std::string out;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "ideal %zu/%zu: [",
                  applied.size() + (tornIndex >= 0 ? 1 : 0),
                  pending.size());
    out += buf;
    std::size_t shown = 0;
    for (std::uint32_t idx : applied) {
        if (shown++ == 8) {
            out += ", ...";
            break;
        }
        if (shown > 1)
            out += ", ";
        appendEntryDesc(out, pending[idx]);
    }
    out += "]";
    if (tornIndex >= 0) {
        out += " torn ";
        appendEntryDesc(out, pending[tornIndex]);
        std::snprintf(buf, sizeof(buf), " at %u/%uB", tornBytes,
                      pending[tornIndex].size);
        out += buf;
    }
    return out;
}

std::vector<ReorderImage>
planReorderImages(const std::vector<PendingPersist> &pending,
                  const ReorderConfig &cfg, Tick tick)
{
    std::vector<ReorderImage> plans;
    std::size_t n = pending.size();
    if (n == 0 || cfg.maxImagesPerPoint == 0)
        return plans;

    // Predecessor adjacency under the enforced edges. Pending sets
    // are small (bounded by in-flight hardware state), so the O(n^2)
    // pair scan is cheap.
    std::vector<std::vector<std::uint32_t>> preds(n);
    for (std::size_t j = 0; j < n; ++j)
        for (std::size_t i = 0; i < j; ++i)
            if (reorderEdge(pending[i], pending[j]))
                preds[j].push_back(static_cast<std::uint32_t>(i));

    std::set<std::vector<std::uint32_t>> seen;
    auto addSubset = [&](std::vector<std::uint32_t> subset) {
        if (plans.size() >= cfg.maxImagesPerPoint)
            return;
        if (!seen.insert(subset).second)
            return;
        ReorderImage img;
        img.applied = std::move(subset);
        plans.push_back(std::move(img));
    };

    if (n <= cfg.exhaustiveBound && n < 20) {
        // Every non-empty order ideal, by bitmask: downward-closed
        // iff each member's predecessors are all members.
        std::vector<std::uint32_t> predMask(n, 0);
        for (std::size_t j = 0; j < n; ++j)
            for (std::uint32_t i : preds[j])
                predMask[j] |= 1u << i;
        for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
            bool closed = true;
            for (std::size_t j = 0; closed && j < n; ++j)
                if ((mask >> j) & 1u)
                    closed = (predMask[j] & ~mask) == 0;
            if (!closed)
                continue;
            std::vector<std::uint32_t> subset;
            for (std::size_t j = 0; j < n; ++j)
                if ((mask >> j) & 1u)
                    subset.push_back(static_cast<std::uint32_t>(j));
            addSubset(std::move(subset));
        }
    } else {
        // Seeded random linearization cuts: draw a random linear
        // extension prefix of random length — every such prefix is an
        // order ideal, and repeated draws cover the ideal lattice
        // without enumerating it.
        sim::Rng rng(cfg.seed ^ (tick * 0x9e3779b97f4a7c15ULL));
        std::vector<std::uint32_t> indeg(n);
        for (std::size_t s = 0; s < cfg.samples; ++s) {
            for (std::size_t j = 0; j < n; ++j)
                indeg[j] =
                    static_cast<std::uint32_t>(preds[j].size());
            std::vector<std::uint32_t> ready, chosen;
            for (std::size_t j = 0; j < n; ++j)
                if (indeg[j] == 0)
                    ready.push_back(static_cast<std::uint32_t>(j));
            std::size_t cut =
                static_cast<std::size_t>(rng.range(1, n));
            while (chosen.size() < cut && !ready.empty()) {
                std::size_t pick =
                    static_cast<std::size_t>(rng.below(ready.size()));
                std::uint32_t j = ready[pick];
                ready[pick] = ready.back();
                ready.pop_back();
                chosen.push_back(j);
                // Unlock successors of j.
                for (std::size_t k = 0; k < n; ++k) {
                    if (std::find(preds[k].begin(), preds[k].end(),
                                  j) == preds[k].end())
                        continue;
                    if (--indeg[k] == 0)
                        ready.push_back(
                            static_cast<std::uint32_t>(k));
                }
            }
            std::sort(chosen.begin(), chosen.end());
            addSubset(std::move(chosen));
        }
    }

    // Torn-line variants: tear each planned ideal's canonically last
    // element at 8-byte boundaries (64-byte FIFO-prefix boundaries
    // for multi-line drains). The remainder S \ {q} is itself an
    // ideal — q is maximal in S — so the torn image is legal.
    if (cfg.tornLines) {
        std::size_t base = plans.size();
        for (std::size_t p = 0;
             p < base && plans.size() < cfg.maxImagesPerPoint; ++p) {
            if (plans[p].applied.empty())
                continue;
            std::uint32_t q = plans[p].applied.back();
            std::uint32_t step = pending[q].size <= 64 ? 8 : 64;
            for (std::uint32_t off = step; off < pending[q].size;
                 off += step) {
                if (plans.size() >= cfg.maxImagesPerPoint)
                    break;
                ReorderImage img;
                img.applied.assign(plans[p].applied.begin(),
                                   plans[p].applied.end() - 1);
                img.tornIndex = static_cast<std::int32_t>(q);
                img.tornBytes = off;
                plans.push_back(std::move(img));
            }
        }
    }
    return plans;
}

void
applyReorderImage(mem::BackingStore &image,
                  const std::vector<PendingPersist> &pending,
                  const ReorderImage &plan)
{
    for (std::uint32_t idx : plan.applied) {
        const PendingPersist &p = pending[idx];
        image.write(p.addr, p.size, p.data.data());
    }
    if (plan.tornIndex >= 0) {
        const PendingPersist &p = pending[plan.tornIndex];
        SNF_ASSERT(plan.tornBytes > 0 && plan.tornBytes < p.size,
                   "torn split %u outside (0, %u)", plan.tornBytes,
                   p.size);
        image.write(p.addr, plan.tornBytes, p.data.data());
    }
}

} // namespace snf::crashlab
