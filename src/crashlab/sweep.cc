#include "crashlab/sweep.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <utility>

#include "crashlab/lifecycle.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace snf::crashlab
{

namespace
{

/**
 * Deterministically keep @p keep of @p points. Each point draws a
 * sort key from its own Rng stream seeded by (sampleSeed, tick), and
 * the @p keep smallest keys win; a point's fate therefore depends
 * only on its tick and the seed, never on how many other points the
 * harvest produced around it.
 */
std::vector<CrashPoint>
samplePoints(std::vector<CrashPoint> points, std::size_t keep,
             std::uint64_t seed)
{
    if (keep == 0 || points.size() <= keep)
        return points;
    std::vector<std::pair<std::uint64_t, CrashPoint>> keyed;
    keyed.reserve(points.size());
    for (const CrashPoint &p : points) {
        sim::Rng rng(seed ^ (p.tick * 0x9e3779b97f4a7c15ULL));
        keyed.emplace_back(rng.next(), p);
    }
    std::nth_element(keyed.begin(), keyed.begin() + keep - 1,
                     keyed.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    keyed.resize(keep);
    points.clear();
    for (const auto &kp : keyed)
        points.push_back(kp.second);
    std::sort(points.begin(), points.end(),
              [](const CrashPoint &a, const CrashPoint &b) {
                  return a.tick < b.tick;
              });
    return points;
}

} // namespace

SweepResult
runCrashSweep(const SweepConfig &cfg)
{
    SweepResult res;

    SystemConfig sysCfg = cfg.run.sys;
    sysCfg.persist.crashJournal = true; // the sweep depends on it
    if (cfg.run.params.threads > sysCfg.numCores)
        fatal("%u threads but only %u cores", cfg.run.params.threads,
              sysCfg.numCores);

    // Reference run, instrumented.
    System sys(sysCfg, cfg.run.mode);
    auto workload = workloads::makeWorkload(cfg.run.workload);
    workload->setup(sys, cfg.run.params);

    CrashTrace trace;
    sys.setProbe(trace.collector());
    for (CoreId c = 0; c < cfg.run.params.threads; ++c) {
        sys.spawn(c, [&](Thread &t) -> sim::Co<void> {
            return workload->thread(sys, t, cfg.run.params);
        });
    }
    res.endTick = sys.run();
    // Detach before the graceful flush: write-backs issued after the
    // run's end are not crash candidates.
    sys.setProbe({});

    RunStats refStats = sys.collectStats(res.endTick);
    res.refCommittedTx = refStats.committedTx;
    res.refLogWraps = refStats.logWraps;

    sys.flushAll(res.endTick);
    res.refVerified = workload->verify(sys.mem().nvram().store(),
                                       &res.refVerifyMessage);

    trace.finalize();
    std::vector<CrashPoint> points = trace.harvest(res.endTick);
    res.pointsHarvested = points.size();
    points = samplePoints(std::move(points), cfg.maxPoints,
                          cfg.sampleSeed);
    res.pointsTested = points.size();

    const System &csys = sys;
    auto factsAt = [&](Tick t) {
        CrashFacts f;
        f.tick = t;
        f.txBegun = trace.begunBy(t);
        // Aborts close with a commit record under undo-capable
        // modes, so they join the commit-record upper bound.
        f.txCommitted = trace.committedBy(t) + trace.abortedBy(t);
        f.txDurableCommits = trace.durableBy(t);
        f.threads = cfg.run.params.threads;
        f.logWraps = res.refLogWraps;
        f.mode = cfg.run.mode;
        return f;
    };
    auto evaluate = [&](Tick t, persist::RecoveryReport *rep,
                        ImageFaultPlan *plan) {
        mem::BackingStore image = csys.crashSnapshot(t);
        std::vector<Violation> violations;
        if (cfg.imageFaults.enabled()) {
            violations = checkFaultedCrashPoint(
                image, csys.config().map, cfg.imageFaults, factsAt(t),
                cfg.recovery, rep, plan);
        } else {
            violations =
                checkCrashPoint(image, csys.config().map, *workload,
                                factsAt(t), cfg.recovery, rep);
        }
        // Crash-during-recovery (I8 extension): recovery of this
        // snapshot, interrupted at any interior write and re-run,
        // must converge with the uninterrupted pass.
        if (cfg.recoverySweepStride != 0) {
            if (cfg.imageFaults.enabled())
                applyImageFaults(image, csys.config().map,
                                 cfg.imageFaults, t);
            persist::RecoveryOptions canon = cfg.recovery;
            canon.truncateLog = true;
            canon.promoteBadLines =
                csys.config().map.remapSize != 0;
            std::vector<Violation> v = checkRecoveryReentrancy(
                image, csys.config().map, canon,
                cfg.recoverySweepStride);
            violations.insert(violations.end(), v.begin(), v.end());
        }
        return violations;
    };

    // Parallel evaluation. Workers only read the (const) System and
    // trace, and write disjoint slots of the outcome vector.
    std::vector<PointOutcome> outcomes(points.size());
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (std::size_t i = next.fetch_add(1); i < points.size();
             i = next.fetch_add(1)) {
            outcomes[i].point = points[i];
            outcomes[i].violations =
                evaluate(points[i].tick, &outcomes[i].report,
                         &outcomes[i].plan);
        }
    };
    std::size_t jobs = std::max<std::size_t>(cfg.jobs, 1);
    if (jobs == 1 || points.size() <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        for (std::size_t j = 0; j < jobs; ++j)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }

    for (auto &o : outcomes) {
        res.totalSalvaged += o.report.salvagedTxns;
        res.totalQuarantined += o.report.quarantinedTxns;
        res.totalSlotsFaulted += o.plan.slotsFaulted;
        if (!o.violations.empty()) {
            ++res.pointsFailed;
            res.failures.push_back(std::move(o));
        }
    }

    // Minimize: bisect down from the earliest observed failure to the
    // earliest failing tick. Snapshot evaluation is cheap, so probing
    // arbitrary mid ticks (not just harvested ones) is fine.
    if (!res.failures.empty() && cfg.minimizeFailures) {
        Tick lo = 0;
        Tick hi = res.failures.front().point.tick; // known failing
        while (lo < hi) {
            Tick mid = lo + (hi - lo) / 2;
            if (!evaluate(mid, nullptr, nullptr).empty())
                hi = mid;
            else
                lo = mid + 1;
        }
        res.minimizedTick = hi;

        persist::RecoveryReport rep;
        auto violations = evaluate(hi, &rep, nullptr);
        CrashFacts f = factsAt(hi);
        std::string detail;
        char line[256];
        std::snprintf(line, sizeof(line),
                      "earliest failing tick %llu (begun=%llu "
                      "committed=%llu durable=%llu wraps=%llu)\n",
                      static_cast<unsigned long long>(hi),
                      static_cast<unsigned long long>(f.txBegun),
                      static_cast<unsigned long long>(f.txCommitted),
                      static_cast<unsigned long long>(
                          f.txDurableCommits),
                      static_cast<unsigned long long>(f.logWraps));
        detail += line;
        for (const auto &v : violations)
            detail += "  " + v.invariant + ": " + v.detail + "\n";
        std::snprintf(line, sizeof(line),
                      "recovery: header=%d records=%llu committed="
                      "%llu uncommitted=%llu redo=%llu undo=%llu\n",
                      rep.headerValid ? 1 : 0,
                      static_cast<unsigned long long>(
                          rep.validRecords),
                      static_cast<unsigned long long>(
                          rep.committedTxns),
                      static_cast<unsigned long long>(
                          rep.uncommittedTxns),
                      static_cast<unsigned long long>(rep.redoApplied),
                      static_cast<unsigned long long>(
                          rep.undoApplied));
        detail += line;
        if (cfg.imageFaults.enabled() || rep.damagedSlots() != 0) {
            std::snprintf(
                line, sizeof(line),
                "salvage: salvaged=%llu quarantined=%llu torn=%llu "
                "crc-fail=%llu stale=%llu first-bad=0x%llx\n",
                static_cast<unsigned long long>(rep.salvagedTxns),
                static_cast<unsigned long long>(rep.quarantinedTxns),
                static_cast<unsigned long long>(rep.tornSlots),
                static_cast<unsigned long long>(rep.crcFailSlots),
                static_cast<unsigned long long>(rep.stalePassSlots),
                static_cast<unsigned long long>(rep.firstBadSlotAddr));
            detail += line;
        }
        detail += describeLogWindow(csys.crashSnapshot(hi),
                                    csys.config().map);
        res.minimizedDetail = std::move(detail);
    }

    return res;
}

} // namespace snf::crashlab
