#include "crashlab/sweep.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "crashlab/lifecycle.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace snf::crashlab
{

namespace
{

/**
 * Deterministically keep @p keep of @p points. Each point draws a
 * sort key from its own Rng stream seeded by (sampleSeed, tick), and
 * the @p keep smallest keys win; a point's fate therefore depends
 * only on its tick and the seed, never on how many other points the
 * harvest produced around it.
 */
std::vector<CrashPoint>
samplePoints(std::vector<CrashPoint> points, std::size_t keep,
             std::uint64_t seed)
{
    if (keep == 0 || points.size() <= keep)
        return points;
    std::vector<std::pair<std::uint64_t, CrashPoint>> keyed;
    keyed.reserve(points.size());
    for (const CrashPoint &p : points) {
        sim::Rng rng(seed ^ (p.tick * 0x9e3779b97f4a7c15ULL));
        keyed.emplace_back(rng.next(), p);
    }
    std::nth_element(keyed.begin(), keyed.begin() + keep - 1,
                     keyed.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    keyed.resize(keep);
    points.clear();
    for (const auto &kp : keyed)
        points.push_back(kp.second);
    std::sort(points.begin(), points.end(),
              [](const CrashPoint &a, const CrashPoint &b) {
                  return a.tick < b.tick;
              });
    return points;
}

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

std::size_t
resolveJobs(std::size_t requested)
{
    if (requested != 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

SweepResult
runCrashSweep(const SweepConfig &cfg)
{
    SweepResult res;
    Clock::time_point tTotal = Clock::now();

    SystemConfig sysCfg = cfg.run.sys;
    sysCfg.persist.crashJournal = true; // the sweep depends on it
    if (cfg.run.params.threads > sysCfg.numCores)
        fatal("%u threads but only %u cores", cfg.run.params.threads,
              sysCfg.numCores);

    // Reference run, instrumented.
    Clock::time_point tRef = Clock::now();
    System sys(sysCfg, cfg.run.mode);
    auto workload = workloads::makeWorkload(cfg.run.workload);
    workload->setup(sys, cfg.run.params);

    CrashTrace trace;
    sys.setProbe(trace.collector());
    for (CoreId c = 0; c < cfg.run.params.threads; ++c) {
        sys.spawn(c, [&](Thread &t) -> sim::Co<void> {
            return workload->thread(sys, t, cfg.run.params);
        });
    }
    res.endTick = sys.run();
    // Detach before the graceful flush: write-backs issued after the
    // run's end are not crash candidates.
    sys.setProbe({});

    RunStats refStats = sys.collectStats(res.endTick);
    res.refCommittedTx = refStats.committedTx;
    res.refLogWraps = refStats.logWraps;

    sys.flushAll(res.endTick);
    res.refVerified = workload->verify(sys.mem().nvram().store(),
                                       &res.refVerifyMessage);
    res.perf.refRunSec = secondsSince(tRef);

    Clock::time_point tHarvest = Clock::now();
    trace.finalize();
    std::vector<CrashPoint> points = trace.harvest(res.endTick);
    res.pointsHarvested = points.size();
    points = samplePoints(std::move(points), cfg.maxPoints,
                          cfg.sampleSeed);
    res.pointsTested = points.size();
    res.perf.harvestSec = secondsSince(tHarvest);

    const System &csys = sys;
    const mem::BackingStore &store = csys.mem().nvram().store();

    // Build the journal index + checkpoints once, up front, so the
    // cost shows as its own phase instead of inside the first
    // evaluated point, and so parallel workers never contend on it.
    Clock::time_point tIndex = Clock::now();
    store.buildSnapshotIndex();
    res.perf.indexSec = secondsSince(tIndex);
    res.perf.journalEntries = store.journalSize();
    res.perf.checkpointsBuilt = store.checkpointCount();

    auto factsAt = [&](Tick t) {
        CrashFacts f;
        f.tick = t;
        f.txBegun = trace.begunBy(t);
        // Aborts close with a commit record under undo-capable
        // modes, so they join the commit-record upper bound.
        f.txCommitted = trace.committedBy(t) + trace.abortedBy(t);
        f.txDurableCommits = trace.durableBy(t);
        f.threads = cfg.run.params.threads;
        f.logWraps = res.refLogWraps;
        f.mode = cfg.run.mode;
        return f;
    };
    // Evaluate one crash image. @p skipReentrancy drops the
    // interrupted-recovery sweep (each probe multiplies the cost by
    // the interior-write budget count) — the bisection minimizer uses
    // it for its interior probes and re-runs the full set only at the
    // final minimized tick.
    auto evaluate = [&](mem::BackingStore image, Tick t,
                        persist::RecoveryReport *rep,
                        ImageFaultPlan *plan, bool skipReentrancy) {
        std::vector<Violation> violations;
        if (cfg.imageFaults.enabled()) {
            violations = checkFaultedCrashPoint(
                image, csys.config().map, cfg.imageFaults, factsAt(t),
                cfg.recovery, rep, plan);
        } else {
            violations =
                checkCrashPoint(image, csys.config().map, *workload,
                                factsAt(t), cfg.recovery, rep);
        }
        // Crash-during-recovery (I8 extension): recovery of this
        // snapshot, interrupted at any interior write and re-run,
        // must converge with the uninterrupted pass.
        if (cfg.recoverySweepStride != 0 && !skipReentrancy) {
            if (cfg.imageFaults.enabled())
                applyImageFaults(image, csys.config().map,
                                 cfg.imageFaults, t);
            persist::RecoveryOptions canon = cfg.recovery;
            canon.truncateLog = true;
            canon.promoteBadLines =
                csys.config().map.remapSize != 0;
            std::vector<Violation> v = checkRecoveryReentrancy(
                image, csys.config().map, canon,
                cfg.recoverySweepStride);
            violations.insert(violations.end(), v.begin(), v.end());
        }
        return violations;
    };

    // Parallel evaluation: the sampled points are in ascending tick
    // order, so each worker takes a contiguous chunk and advances one
    // copy-on-write image through it with a monotone cursor — the
    // whole sweep replays the journal once per worker instead of once
    // per point. Workers only read the (const) System and trace, and
    // write disjoint slots of the outcome vector.
    std::vector<PointOutcome> outcomes(points.size());
    std::size_t jobs = resolveJobs(cfg.jobs);
    if (!points.empty())
        jobs = std::min(jobs, points.size());
    jobs = std::max<std::size_t>(jobs, 1);
    res.perf.jobsUsed = jobs;

    struct WorkerPerf
    {
        std::uint64_t snapshotNs = 0;
        std::uint64_t evalNs = 0;
        std::uint64_t recoverNs = 0;
        std::uint64_t reorderImages = 0;
        std::uint64_t reorderPointsWithPending = 0;
        std::uint64_t reorderMaxPending = 0;
    };
    std::vector<WorkerPerf> workerPerf(jobs);
    std::size_t chunk = points.empty()
                            ? 0
                            : (points.size() + jobs - 1) / jobs;
    auto worker = [&](std::size_t w) {
        std::size_t begin = w * chunk;
        std::size_t end = std::min(points.size(), begin + chunk);
        if (begin >= end)
            return;
        WorkerPerf &perf = workerPerf[w];
        persist::RecoveryTimerScope recoveryTimer(&perf.recoverNs);
        mem::BackingStore::Cursor cursor(store);
        // Worker-local pending-set cursor (reorderlab): one journal
        // scan per worker, advanced monotonically with the points.
        std::optional<PendingCursor> pendingCursor;
        if (cfg.reorder.enabled)
            pendingCursor.emplace(store);
        for (std::size_t i = begin; i < end; ++i) {
            Clock::time_point t0 = Clock::now();
            mem::BackingStore image = cursor.imageAt(points[i].tick);
            Clock::time_point t1 = Clock::now();
            outcomes[i].point = points[i];
            outcomes[i].violations =
                evaluate(image, points[i].tick, &outcomes[i].report,
                         &outcomes[i].plan, false);
            // The adversary: every legal subset/linearization of the
            // pending persist set lands on top of the prefix image
            // (COW copies, so each variant is O(pages) to set up) and
            // runs through the same checker pipeline. The first
            // failing ordering is recorded; re-entrancy is skipped
            // for variants (the prefix pass above covers it).
            if (cfg.reorder.enabled &&
                outcomes[i].violations.empty()) {
                std::vector<PendingPersist> pending =
                    pendingCursor->pendingAt(points[i].tick);
                perf.reorderMaxPending = std::max<std::uint64_t>(
                    perf.reorderMaxPending, pending.size());
                if (!pending.empty()) {
                    ++perf.reorderPointsWithPending;
                    for (const ReorderImage &plan : planReorderImages(
                             pending, cfg.reorder, points[i].tick)) {
                        mem::BackingStore variant = image;
                        applyReorderImage(variant, pending, plan);
                        ++perf.reorderImages;
                        persist::RecoveryReport vrep;
                        ImageFaultPlan vplan;
                        std::vector<Violation> v =
                            evaluate(std::move(variant),
                                     points[i].tick, &vrep, &vplan,
                                     true);
                        if (!v.empty()) {
                            outcomes[i].violations = std::move(v);
                            outcomes[i].report = vrep;
                            outcomes[i].plan = vplan;
                            outcomes[i].reorderDetail =
                                plan.describe(pending);
                            break;
                        }
                    }
                }
            }
            Clock::time_point t2 = Clock::now();
            perf.snapshotNs += std::chrono::duration_cast<
                                   std::chrono::nanoseconds>(t1 - t0)
                                   .count();
            perf.evalNs += std::chrono::duration_cast<
                               std::chrono::nanoseconds>(t2 - t1)
                               .count();
        }
    };
    if (jobs == 1 || points.size() <= 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (std::size_t j = 0; j < jobs; ++j)
            pool.emplace_back(worker, j);
        for (auto &t : pool)
            t.join();
    }
    res.reorderEnabled = cfg.reorder.enabled;
    for (const WorkerPerf &perf : workerPerf) {
        res.perf.snapshotSec += perf.snapshotNs * 1e-9;
        res.perf.recoverSec += perf.recoverNs * 1e-9;
        res.perf.checkSec +=
            (perf.evalNs - std::min(perf.evalNs, perf.recoverNs)) *
            1e-9;
        res.reorderImagesTested += perf.reorderImages;
        res.reorderPointsWithPending += perf.reorderPointsWithPending;
        res.reorderMaxPending = std::max(res.reorderMaxPending,
                                         perf.reorderMaxPending);
    }

    for (auto &o : outcomes) {
        res.totalSalvaged += o.report.salvagedTxns;
        res.totalQuarantined += o.report.quarantinedTxns;
        res.totalSlotsFaulted += o.plan.slotsFaulted;
        res.totalDeadShardAborted += o.report.deadShardAborted;
        if (res.shardTotals.size() < o.report.shards.size())
            res.shardTotals.resize(o.report.shards.size());
        for (std::size_t s = 0; s < o.report.shards.size(); ++s) {
            const persist::ShardSummary &sum = o.report.shards[s];
            SweepResult::ShardTotals &tot = res.shardTotals[s];
            tot.shard = sum.shard;
            tot.validRecords += sum.validRecords;
            tot.salvagedTxns += sum.salvagedTxns;
            tot.quarantinedTxns += sum.quarantinedTxns;
            tot.abortedDeadShard += sum.abortedDeadShard;
            tot.deadPoints += sum.dead ? 1 : 0;
        }
        if (!o.violations.empty()) {
            ++res.pointsFailed;
            res.failures.push_back(std::move(o));
        }
    }

    // Minimize: bisect down from the earliest observed failure to the
    // earliest failing tick. Checkpointed snapshot reconstruction is
    // cheap, so probing arbitrary mid ticks (not just harvested ones)
    // is fine. Interior probes skip the re-entrancy sweep; the full
    // checker set re-runs at the final minimized tick below.
    if (!res.failures.empty() && cfg.minimizeFailures) {
        Clock::time_point tMin = Clock::now();
        // Probe one tick through the full adversary: the prefix image
        // first, then (reorder sweeps) every legal pending-set image,
        // so a failure only reachable through an out-of-order landing
        // still bisects to its earliest tick and reports the ordering
        // that exposes it.
        auto evaluateTick = [&](Tick t, persist::RecoveryReport *rep,
                                bool skipReentrancy,
                                std::string *reorderOut) {
            mem::BackingStore prefix = csys.crashSnapshot(t);
            std::vector<Violation> v =
                evaluate(prefix, t, rep, nullptr, skipReentrancy);
            if (!v.empty() || !cfg.reorder.enabled)
                return v;
            std::vector<PendingPersist> pending =
                pendingPersistsAt(store, t);
            for (const ReorderImage &plan :
                 planReorderImages(pending, cfg.reorder, t)) {
                mem::BackingStore variant = prefix;
                applyReorderImage(variant, pending, plan);
                v = evaluate(std::move(variant), t, rep, nullptr,
                             true);
                if (!v.empty()) {
                    if (reorderOut)
                        *reorderOut = plan.describe(pending);
                    return v;
                }
            }
            return std::vector<Violation>{};
        };
        Tick lo = 0;
        Tick hi = res.failures.front().point.tick; // known failing
        while (lo < hi) {
            Tick mid = lo + (hi - lo) / 2;
            if (!evaluateTick(mid, nullptr, true, nullptr).empty())
                hi = mid;
            else
                lo = mid + 1;
        }
        res.minimizedTick = hi;

        persist::RecoveryReport rep;
        std::string minReorder;
        auto violations = evaluateTick(hi, &rep, false, &minReorder);
        CrashFacts f = factsAt(hi);
        std::string detail;
        char line[256];
        std::snprintf(line, sizeof(line),
                      "earliest failing tick %llu (begun=%llu "
                      "committed=%llu durable=%llu wraps=%llu)\n",
                      static_cast<unsigned long long>(hi),
                      static_cast<unsigned long long>(f.txBegun),
                      static_cast<unsigned long long>(f.txCommitted),
                      static_cast<unsigned long long>(
                          f.txDurableCommits),
                      static_cast<unsigned long long>(f.logWraps));
        detail += line;
        for (const auto &v : violations)
            detail += "  " + v.invariant + ": " + v.detail + "\n";
        if (!minReorder.empty())
            detail += "  ordering: " + minReorder + "\n";
        std::snprintf(line, sizeof(line),
                      "recovery: header=%d records=%llu committed="
                      "%llu uncommitted=%llu redo=%llu undo=%llu\n",
                      rep.headerValid ? 1 : 0,
                      static_cast<unsigned long long>(
                          rep.validRecords),
                      static_cast<unsigned long long>(
                          rep.committedTxns),
                      static_cast<unsigned long long>(
                          rep.uncommittedTxns),
                      static_cast<unsigned long long>(rep.redoApplied),
                      static_cast<unsigned long long>(
                          rep.undoApplied));
        detail += line;
        if (cfg.imageFaults.enabled() || rep.damagedSlots() != 0) {
            std::snprintf(
                line, sizeof(line),
                "salvage: salvaged=%llu quarantined=%llu torn=%llu "
                "crc-fail=%llu stale=%llu first-bad=0x%llx\n",
                static_cast<unsigned long long>(rep.salvagedTxns),
                static_cast<unsigned long long>(rep.quarantinedTxns),
                static_cast<unsigned long long>(rep.tornSlots),
                static_cast<unsigned long long>(rep.crcFailSlots),
                static_cast<unsigned long long>(rep.stalePassSlots),
                static_cast<unsigned long long>(rep.firstBadSlotAddr));
            detail += line;
        }
        detail += describeLogWindow(csys.crashSnapshot(hi),
                                    csys.config().map);
        res.minimizedDetail = std::move(detail);
        res.perf.minimizeSec = secondsSince(tMin);
    }

    res.perf.entriesReplayed = store.entriesReplayed();
    res.perf.pagesCloned = store.pagesCloned();
    res.perf.totalSec = secondsSince(tTotal);
    return res;
}

} // namespace snf::crashlab
