/**
 * @file
 * Lifecycle — the multi-generation crash → salvaging-recover → resume
 * driver (lifelab). Each generation runs a resumable workload on the
 * image the previous generation's recovery produced, crashes it at a
 * deterministically chosen instant, optionally damages the snapshot
 * (faultlab image faults, which persist across generations via the
 * bad-line remap table), recovers with promotion + write collection,
 * and re-checks the crashlab invariant library plus the lifecycle's
 * own checks:
 *
 *  - I1–I8            the per-crash-point checkers of invariants.hh /
 *                     faultlab.hh, evaluated every generation
 *  - recovery-reentrant (I8 extension) recovery interrupted after any
 *                     number of NVRAM line writes and then re-run
 *                     converges byte-for-byte with an uninterrupted
 *                     pass — including the remap region
 *  - recovered-durable (I9) a byte recovered in generation k is never
 *                     lost in a later generation: the post-recovery
 *                     image may differ from the image the generation
 *                     adopted only at lines the generation's journaled
 *                     writes (done <= crash tick) or the recovery pass
 *                     itself touched
 *  - remap-table-valid the persistent remap table loads from at least
 *                     one CRC-valid bank every generation
 *  - superblock-continuity the generation number stamped in the
 *                     superblock advances by exactly one per resume
 */

#ifndef SNF_CRASHLAB_LIFECYCLE_HH
#define SNF_CRASHLAB_LIFECYCLE_HH

#include <cstdint>
#include <vector>

#include "crashlab/faultlab.hh"
#include "crashlab/invariants.hh"
#include "crashlab/sweep.hh"
#include "workloads/driver.hh"

namespace snf::crashlab
{

/** One soak: N generations of one workload cell. */
struct LifecycleConfig
{
    static constexpr std::uint32_t kNoSabotage = ~0u;

    /**
     * The workload cell each generation executes. crashAt is ignored
     * (the driver picks its own crash instant per generation) and
     * crashJournal is forced on. The workload must be resumable().
     * A zero map.remapSize is replaced by the lifelab default
     * geometry (16 KB table, 32 KB spares).
     */
    workloads::RunSpec run;
    /** Generations to execute (run + crash + recover each). */
    std::uint32_t generations = 5;
    /** Seed of the per-generation crash-instant choice. */
    std::uint64_t seed = 1;
    /** Snapshot damage applied before every recovery (faultlab). */
    ImageFaultConfig imageFaults;
    /**
     * WILL_FAIL self-test hook: corrupt both remap-table banks of the
     * crash image at this generation; the soak must report a
     * remap-table-valid violation and stop. kNoSabotage disables.
     */
    std::uint32_t sabotageGeneration = kNoSabotage;
    /** Run the interrupted-recovery re-entrancy check per generation. */
    bool checkReentrancy = true;
    /** Interior write budgets probed by the re-entrancy check. */
    std::uint64_t reentrancyBudgets = 4;
    /**
     * Worker threads for the re-entrancy budget probes (each probe
     * recovers an independent COW copy); 0 = one per hardware thread
     * (resolveJobs).
     */
    std::size_t jobs = 0;
};

/** What one generation did and found. */
struct GenerationResult
{
    std::uint32_t generation = 0;
    Tick endTick = 0;
    Tick crashTick = 0;
    std::uint64_t committedTx = 0;
    std::uint64_t logWraps = 0;
    /** Log slots the image-fault pass damaged this generation. */
    std::uint64_t slotsFaulted = 0;
    /** Remap-table entries after this generation's recovery. */
    std::uint64_t remapEntries = 0;
    std::uint64_t scrubRepairs = 0;
    std::uint64_t scrubPromotions = 0;
    persist::RecoveryReport recovery;
    std::vector<Violation> violations;
};

/** Everything one soak produced. */
struct LifecycleResult
{
    std::vector<GenerationResult> generations;
    /** True when the soak stopped early (untrusted remap table). */
    bool aborted = false;
    /**
     * Phase timing + snapshot-engine counters summed over every
     * generation (refRunSec = simulation, snapshotSec = crash-image
     * reconstruction, recoverSec = recovery passes, checkSec =
     * checker work minus recovery; journal/replay/clone counters from
     * each generation's store). Shares the sweep's struct so snfsoak
     * --bench-json emits the same schema as snfcrash.
     */
    SweepPerf perf;

    std::uint64_t
    totalViolations() const
    {
        std::uint64_t n = 0;
        for (const GenerationResult &g : generations)
            n += g.violations.size();
        return n;
    }

    bool passed() const { return totalViolations() == 0 && !aborted; }
};

/** Run one soak. fatal() on misconfiguration. */
LifecycleResult runLifecycle(const LifecycleConfig &cfg);

/**
 * I8 extension: prove recovery of @p image is re-entrant. Runs one
 * uninterrupted reference pass on a copy, then for every interior
 * write budget that is a multiple of @p stride (stride 1 = every
 * interior point) runs an interrupted pass followed by a completing
 * pass and requires the result to be byte-identical to the reference
 * over the whole NVRAM range — remap region included. Also checks
 * that writesIssued is identical across passes (recovery's write plan
 * depends only on pre-write reads). @p opts should be the canonical
 * recovery options (promotion + truncation). @p image is not
 * modified. @p jobs > 1 probes the (independent) budgets on that many
 * threads; the reported violations are those of the lowest failing
 * budget either way.
 */
std::vector<Violation>
checkRecoveryReentrancy(const mem::BackingStore &image,
                        const AddressMap &map,
                        const persist::RecoveryOptions &opts,
                        std::uint64_t stride, std::size_t jobs = 1);

} // namespace snf::crashlab

#endif // SNF_CRASHLAB_LIFECYCLE_HH
