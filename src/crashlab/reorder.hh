/**
 * @file
 * reorderlab — the persist-ordering adversary.
 *
 * The plain crash sweep tests exactly one image per crash tick: the
 * linear prefix of writes that *completed* by then
 * (BackingStore::snapshotAt). Real NVM at power failure exposes any
 * state consistent with the ordering the hardware actually enforces
 * over the writes still in flight — a strictly larger space, and the
 * one the paper's whole correctness argument (log persists before
 * data) lives in.
 *
 * The in-flight persist set at tick t is recovered from the NVRAM
 * write journal: a write is *pending* iff it was accepted onto the
 * channel but not yet ADR-durable (issue <= t < done). The enforced
 * ordering edges between two pending writes are:
 *
 *  1. Serialized priority channel: log-buffer drains, WCB flushes and
 *     device metadata share one FIFO acceptance queue at the memory
 *     controller, so any two pending non-Data writes land in
 *     completion order.
 *  2. Same-bytes serialization: overlapping byte ranges land in
 *     completion order (the bank writes a cell once per pass).
 *  3. Nothing else: independent dirty-data lines are unordered with
 *     respect to each other and to disjoint log traffic. Fences and
 *     drain barriers never appear as edges because they separate
 *     *issue after done* — a barrier-ordered pair is simply never
 *     concurrently pending.
 *
 * A legal crash image is then the prefix snapshot plus any order
 * ideal (downward-closed subset under those edges) of the pending
 * set, optionally with its last element torn at an 8-byte boundary.
 * planReorderImages() enumerates those ideals exhaustively when the
 * pending set is small and samples seeded random linearization cuts
 * otherwise; every image flows through the same invariant library and
 * faultlab injection as the prefix image.
 */

#ifndef SNF_CRASHLAB_REORDER_HH
#define SNF_CRASHLAB_REORDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/backing_store.hh"
#include "sim/types.hh"

namespace snf::crashlab
{

/** One in-flight (issued, not yet durable) NVRAM write. */
struct PendingPersist
{
    Tick issue = 0;
    Tick done = 0;
    Addr addr = 0;
    std::uint32_t size = 0;
    PersistOrigin origin = PersistOrigin::Data;
    /** Journal issue-order index (the snapshot replay tiebreak). */
    std::uint32_t seq = 0;
    std::vector<std::uint8_t> data;
};

/** Adversary knobs (SweepConfig::reorder, snfcrash --reorder). */
struct ReorderConfig
{
    bool enabled = false;
    /** Enumerate every order ideal when pending <= this bound. */
    std::size_t exhaustiveBound = 6;
    /** Sampled linearization cuts above the bound. */
    std::size_t samples = 32;
    /** Also tear each image's last pending line at 8B boundaries. */
    bool tornLines = true;
    /** Seed of the sampled-orderings stream (mixed with the tick). */
    std::uint64_t seed = 1;
    /** Hard cap on images per crash point (subsets + torn). */
    std::size_t maxImagesPerPoint = 256;
};

/**
 * One crash image, as a plan over a pending set: apply @p applied
 * (indices into the canonically (done, seq)-sorted pending vector) in
 * that order, then — if @p tornIndex >= 0 — the first @p tornBytes
 * bytes of pending[tornIndex]. The subset alone determines the final
 * bytes: unordered pending pairs touch disjoint ranges by edge rule
 * 2, so any linearization of the same ideal lands the same image.
 */
struct ReorderImage
{
    std::vector<std::uint32_t> applied;
    std::int32_t tornIndex = -1;
    std::uint32_t tornBytes = 0;

    /** Human-readable ordering description for failure reports. */
    std::string
    describe(const std::vector<PendingPersist> &pending) const;
};

/**
 * Must @p earlier persist before @p later? Both pending, @p earlier
 * preceding @p later in (done, seq) order. Edge rules 1 and 2 above.
 */
bool reorderEdge(const PendingPersist &earlier,
                 const PendingPersist &later);

/**
 * The pending set at @p t, in canonical (done, seq) apply order. One
 * journal scan per call — sweeps over many ticks use PendingCursor.
 */
std::vector<PendingPersist>
pendingPersistsAt(const mem::BackingStore &store, Tick t);

/**
 * Incremental pending-set extraction for monotone tick sequences
 * (the same contract as BackingStore::Cursor): one journal scan per
 * sweep worker instead of one per crash point.
 */
class PendingCursor
{
  public:
    explicit PendingCursor(const mem::BackingStore &store);

    /** Pending set at @p t (>= the previous call's tick). */
    std::vector<PendingPersist> pendingAt(Tick t);

  private:
    /** Pending-capable (issue < done) writes, sorted by issue. */
    std::vector<PendingPersist> all;
    /** Indices into `all` issued but possibly not yet retired. */
    std::vector<std::size_t> live;
    std::size_t pos = 0;
    Tick lastTick = 0;
    bool started = false;
};

/**
 * Enumerate legal crash images of @p pending (canonically sorted, as
 * returned by pendingAt): every non-empty order ideal when
 * |pending| <= cfg.exhaustiveBound, otherwise cfg.samples seeded
 * random linearization cuts (deduplicated); plus torn-line variants
 * when cfg.tornLines. The empty ideal is omitted — it is the prefix
 * image the plain sweep already tests. Capped at
 * cfg.maxImagesPerPoint.
 */
std::vector<ReorderImage>
planReorderImages(const std::vector<PendingPersist> &pending,
                  const ReorderConfig &cfg, Tick tick);

/** Apply one planned image on top of a prefix snapshot. */
void applyReorderImage(mem::BackingStore &image,
                       const std::vector<PendingPersist> &pending,
                       const ReorderImage &plan);

} // namespace snf::crashlab

#endif // SNF_CRASHLAB_REORDER_HH
