#include "crashlab/trace.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace snf::crashlab
{

sim::ProbeFn
CrashTrace::collector()
{
    return [this](sim::ProbeEvent kind, Tick tick, std::uint64_t arg) {
        stream.push_back(Event{kind, tick, arg});
    };
}

void
CrashTrace::finalize()
{
    SNF_ASSERT(!finalized, "CrashTrace finalized twice");
    finalized = true;
    std::stable_sort(stream.begin(), stream.end(),
                     [](const Event &a, const Event &b) {
                         return a.tick < b.tick;
                     });
    for (const Event &e : stream) {
        switch (e.kind) {
          case sim::ProbeEvent::TxBegin:
            beginTicks.push_back(e.tick);
            break;
          case sim::ProbeEvent::TxCommit:
            commitTicks.push_back(e.tick);
            break;
          case sim::ProbeEvent::CommitDurable:
            durableTicks.push_back(e.tick);
            break;
          case sim::ProbeEvent::TxAbort:
            abortTicks.push_back(e.tick);
            break;
          default:
            break;
        }
    }
}

std::vector<CrashPoint>
CrashTrace::harvest(Tick endTick) const
{
    SNF_ASSERT(finalized, "harvest() before finalize()");
    std::vector<CrashPoint> points;
    points.reserve(stream.size() * 2);
    for (const Event &e : stream) {
        if (e.tick > endTick)
            continue;
        // WcbDrop announces state the crash model already discarded
        // (the drop *is* the crash); it never changes the durable
        // image, so it yields no crash point of its own.
        if (e.kind == sim::ProbeEvent::WcbDrop)
            continue;
        if (e.tick > 0)
            points.push_back(CrashPoint{e.tick - 1, e.kind, true});
        points.push_back(CrashPoint{e.tick, e.kind, false});
    }
    std::stable_sort(points.begin(), points.end(),
                     [](const CrashPoint &a, const CrashPoint &b) {
                         return a.tick < b.tick;
                     });
    points.erase(std::unique(points.begin(), points.end(),
                             [](const CrashPoint &a,
                                const CrashPoint &b) {
                                 return a.tick == b.tick;
                             }),
                 points.end());
    return points;
}

namespace
{

std::uint64_t
countLE(const std::vector<Tick> &sorted, Tick t)
{
    return static_cast<std::uint64_t>(
        std::upper_bound(sorted.begin(), sorted.end(), t) -
        sorted.begin());
}

} // namespace

std::uint64_t
CrashTrace::begunBy(Tick t) const
{
    SNF_ASSERT(finalized, "begunBy() before finalize()");
    return countLE(beginTicks, t);
}

std::uint64_t
CrashTrace::committedBy(Tick t) const
{
    SNF_ASSERT(finalized, "committedBy() before finalize()");
    return countLE(commitTicks, t);
}

std::uint64_t
CrashTrace::durableBy(Tick t) const
{
    SNF_ASSERT(finalized, "durableBy() before finalize()");
    return countLE(durableTicks, t);
}

std::uint64_t
CrashTrace::abortedBy(Tick t) const
{
    SNF_ASSERT(finalized, "abortedBy() before finalize()");
    return countLE(abortTicks, t);
}

} // namespace snf::crashlab
