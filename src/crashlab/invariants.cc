#include "crashlab/invariants.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "persist/log_record.hh"
#include "persist/log_region.hh"

namespace snf::crashlab
{

namespace
{

std::string
format(const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return buf;
}

void
fail(std::vector<Violation> &out, const char *invariant,
     std::string detail)
{
    out.push_back(Violation{invariant, std::move(detail)});
}

} // namespace

bool
guaranteesFailureAtomicity(PersistMode mode)
{
    switch (mode) {
      case PersistMode::RedoClwb:
      case PersistMode::UndoClwb:
      case PersistMode::Hwl:
      case PersistMode::Fwb:
        return true;
      case PersistMode::NonPers:
      case PersistMode::UnsafeRedo:
      case PersistMode::UnsafeUndo:
      case PersistMode::HwRlog:
      case PersistMode::HwUlog:
        return false;
    }
    return false;
}

std::vector<Violation>
checkCrashPoint(const mem::BackingStore &image, const AddressMap &map,
                const workloads::Workload &wl, const CrashFacts &facts,
                const persist::RecoveryOptions &recOpts,
                persist::RecoveryReport *reportOut)
{
    std::vector<Violation> out;

    // replay-idempotent (I6): two non-truncating replays of the same
    // crash image must agree byte for byte — redo/undo values are
    // absolute, so applying them twice is a no-op.
    persist::RecoveryOptions replayOpts = recOpts;
    replayOpts.truncateLog = false;
    mem::BackingStore once = image;
    persist::Recovery::run(once, map, replayOpts);
    mem::BackingStore twice = once;
    persist::Recovery::run(twice, map, replayOpts);
    if (auto diff = once.firstDifference(twice, once.base(),
                                         once.size())) {
        fail(out, "replay-idempotent",
             format("second replay changed the image, first "
                    "difference at 0x%llx",
                    static_cast<unsigned long long>(*diff)));
    }

    // Canonical recovery: replay and truncate, as a real restart
    // would.
    persist::RecoveryOptions canonOpts = recOpts;
    canonOpts.truncateLog = true;
    mem::BackingStore recovered = image;
    persist::RecoveryReport rep =
        persist::Recovery::run(recovered, map, canonOpts);
    if (reportOut)
        *reportOut = rep;

    // header-valid: the header is persisted before the workload runs
    // and is never overwritten, so no crash instant may lose it.
    if (facts.mode != PersistMode::NonPers && !rep.headerValid) {
        fail(out, "header-valid",
             "recovery rejected the log header after the crash");
    }

    // truncate-idempotent (I6): recovering the recovered image must
    // find a truncated (empty) log and leave every byte alone.
    mem::BackingStore again = recovered;
    persist::RecoveryReport rep2 =
        persist::Recovery::run(again, map, canonOpts);
    if (rep2.validRecords != 0) {
        fail(out, "truncate-idempotent",
             format("%llu live records survived truncation",
                    static_cast<unsigned long long>(
                        rep2.validRecords)));
    }
    if (auto diff = recovered.firstDifference(again, recovered.base(),
                                              recovered.size())) {
        fail(out, "truncate-idempotent",
             format("re-recovery changed the image, first difference "
                    "at 0x%llx",
                    static_cast<unsigned long long>(*diff)));
    }

    // verify: the workload's structural consistency check over the
    // recovered image. Only failure-atomic modes promise this; the
    // unsafe/partial baselines lose data by design.
    if (guaranteesFailureAtomicity(facts.mode)) {
        std::string why;
        if (!wl.verify(recovered, &why))
            fail(out, "verify", why);
    }

    // Counting invariants against the probe trace. Upper bound first:
    // a commit record can only exist for a commit that initiated.
    if (rep.committedTxns > facts.txCommitted) {
        fail(out, "committed-upper",
             format("recovered %llu committed txns but only %llu "
                    "commits had initiated by tick %llu",
                    static_cast<unsigned long long>(rep.committedTxns),
                    static_cast<unsigned long long>(facts.txCommitted),
                    static_cast<unsigned long long>(facts.tick)));
    }

    // The lower bound and the uncommitted bound need every record of
    // the run still in the log: once the log wraps, reclamation
    // erases old commit records and the counts legitimately shrink.
    if (facts.logWraps == 0) {
        if (rep.headerValid &&
            rep.committedTxns < facts.txDurableCommits) {
            fail(out, "committed-durable",
                 format("%llu commit records were durable by tick "
                        "%llu but recovery found only %llu",
                        static_cast<unsigned long long>(
                            facts.txDurableCommits),
                        static_cast<unsigned long long>(facts.tick),
                        static_cast<unsigned long long>(
                            rep.committedTxns)));
        }
        // An uncommitted generation is either a transaction still
        // open at the crash (at most one per thread) or one whose
        // commit initiated but whose commit record had not drained.
        std::uint64_t bound =
            facts.threads +
            (facts.txCommitted - facts.txDurableCommits);
        if (rep.uncommittedTxns > bound) {
            fail(out, "uncommitted-bound",
                 format("recovery found %llu uncommitted txns; at "
                        "most %llu (threads + in-flight commits) can "
                        "exist at tick %llu",
                        static_cast<unsigned long long>(
                            rep.uncommittedTxns),
                        static_cast<unsigned long long>(bound),
                        static_cast<unsigned long long>(facts.tick)));
        }
    }

    return out;
}

std::string
describeLogWindow(const mem::BackingStore &image, const AddressMap &map)
{
    std::string out;
    std::uint32_t partitions = map.logRegionCount();
    std::uint64_t part_bytes = map.logSize / partitions;
    for (std::uint32_t p = 0; p < partitions; ++p) {
        Addr base = map.logBase() + p * part_bytes;
        std::uint64_t magic = image.read64(base);
        std::uint64_t slots = image.read64(base + 8);
        out += format("log[%u] @0x%llx magic=%s slots=%llu\n", p,
                      static_cast<unsigned long long>(base),
                      magic == persist::LogRegion::kMagic ? "ok"
                                                          : "BAD",
                      static_cast<unsigned long long>(slots));
        if (magic != persist::LogRegion::kMagic ||
            slots > (part_bytes - persist::LogRegion::kHeaderBytes) /
                        persist::LogRecord::kSlotBytes)
            continue;
        Addr slot0 = base + persist::LogRegion::kHeaderBytes;
        for (std::uint64_t i = 0; i < slots; ++i) {
            std::uint8_t img[persist::LogRecord::kSlotBytes];
            image.read(slot0 + i * persist::LogRecord::kSlotBytes,
                       persist::LogRecord::kSlotBytes, img);
            bool torn = false;
            auto rec = persist::LogRecord::deserialize(img, torn);
            if (!rec)
                continue;
            out += format("  slot %4llu torn=%d tx=%u %s",
                          static_cast<unsigned long long>(i),
                          torn ? 1 : 0, rec->tx,
                          rec->isPrepare ? "PREPARE"
                          : rec->isCommit ? "COMMIT"
                                          : "update");
            if (rec->isPrepare || rec->hasShardMask) {
                out += format(" seq=%llu",
                              static_cast<unsigned long long>(
                                  rec->commitSeq));
                if (rec->hasShardMask)
                    out += format(" mask=0x%llx",
                                  static_cast<unsigned long long>(
                                      rec->shardMask));
            } else if (!rec->isCommit) {
                out += format(" addr=0x%llx size=%u%s%s",
                              static_cast<unsigned long long>(
                                  rec->addr),
                              rec->size, rec->hasUndo ? " undo" : "",
                              rec->hasRedo ? " redo" : "");
            }
            out += "\n";
        }
    }
    return out;
}

} // namespace snf::crashlab
