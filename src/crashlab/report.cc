#include "crashlab/report.hh"

#include <cstdio>
#include <ostream>

#include "sim/probe.hh"

namespace snf::crashlab
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeTextSummary(std::ostream &os, const CellResult &cell)
{
    os << cell.workload << " / " << persistModeName(cell.mode)
       << " / seed " << cell.seed << ": " << cell.sweep.pointsTested
       << "/" << cell.sweep.pointsHarvested << " crash points, "
       << cell.sweep.pointsFailed << " violations ("
       << cell.sweep.refCommittedTx << " txns, "
       << cell.sweep.refLogWraps << " log wraps, end tick "
       << cell.sweep.endTick << ")\n";
    if (cell.sweep.totalSlotsFaulted != 0 ||
        cell.sweep.totalQuarantined != 0) {
        os << "  faults: " << cell.sweep.totalSlotsFaulted
           << " slots damaged across points, "
           << cell.sweep.totalSalvaged << " txns salvaged, "
           << cell.sweep.totalQuarantined << " quarantined\n";
    }
    if (!cell.sweep.refVerified) {
        os << "  reference run FAILED verification: "
           << cell.sweep.refVerifyMessage << "\n";
    }
    for (const auto &f : cell.sweep.failures) {
        os << "  tick " << f.point.tick << " ("
           << sim::probeEventName(f.point.kind)
           << (f.point.before ? "-1" : "") << "):\n";
        for (const auto &v : f.violations)
            os << "    " << v.invariant << ": " << v.detail << "\n";
    }
    if (cell.sweep.minimizedTick) {
        os << "  minimized to tick " << *cell.sweep.minimizedTick
           << ":\n";
        os << cell.sweep.minimizedDetail;
    }
}

namespace
{

void
writeCell(std::ostream &os, const CellResult &cell,
          const char *indent)
{
    const SweepResult &sw = cell.sweep;
    os << indent << "{\n";
    os << indent << "  \"workload\": \""
       << jsonEscape(cell.workload) << "\",\n";
    os << indent << "  \"mode\": \"" << persistModeName(cell.mode)
       << "\",\n";
    os << indent << "  \"seed\": " << cell.seed << ",\n";
    os << indent << "  \"threads\": " << cell.threads << ",\n";
    os << indent << "  \"tx_per_thread\": " << cell.txPerThread
       << ",\n";
    os << indent << "  \"end_tick\": " << sw.endTick << ",\n";
    os << indent << "  \"committed_tx\": " << sw.refCommittedTx
       << ",\n";
    os << indent << "  \"log_wraps\": " << sw.refLogWraps << ",\n";
    os << indent << "  \"reference_verified\": "
       << (sw.refVerified ? "true" : "false") << ",\n";
    os << indent << "  \"points_harvested\": " << sw.pointsHarvested
       << ",\n";
    os << indent << "  \"points_tested\": " << sw.pointsTested
       << ",\n";
    os << indent << "  \"points_failed\": " << sw.pointsFailed
       << ",\n";
    os << indent << "  \"slots_faulted\": " << sw.totalSlotsFaulted
       << ",\n";
    os << indent << "  \"txns_salvaged\": " << sw.totalSalvaged
       << ",\n";
    os << indent << "  \"txns_quarantined\": " << sw.totalQuarantined
       << ",\n";
    os << indent << "  \"failures\": [";
    for (std::size_t i = 0; i < sw.failures.size(); ++i) {
        const PointOutcome &f = sw.failures[i];
        os << (i ? ",\n" : "\n");
        os << indent << "    {\"tick\": " << f.point.tick
           << ", \"event\": \"" << sim::probeEventName(f.point.kind)
           << "\", \"before_event\": "
           << (f.point.before ? "true" : "false")
           << ", \"violations\": [";
        for (std::size_t j = 0; j < f.violations.size(); ++j) {
            os << (j ? ", " : "");
            os << "{\"invariant\": \""
               << jsonEscape(f.violations[j].invariant)
               << "\", \"detail\": \""
               << jsonEscape(f.violations[j].detail) << "\"}";
        }
        os << "]}";
    }
    os << (sw.failures.empty() ? "]" : ("\n" + std::string(indent) +
                                        "  ]"))
       << ",\n";
    if (sw.minimizedTick) {
        os << indent << "  \"minimized_tick\": " << *sw.minimizedTick
           << ",\n";
        os << indent << "  \"minimized_detail\": \""
           << jsonEscape(sw.minimizedDetail) << "\",\n";
    }
    os << indent << "  \"passed\": "
       << (sw.passed() ? "true" : "false") << "\n";
    os << indent << "}";
}

} // namespace

void
writeJsonReport(std::ostream &os,
                const std::vector<CellResult> &cells)
{
    std::size_t failed = 0;
    for (const auto &c : cells)
        if (!c.sweep.passed())
            ++failed;
    os << "{\n";
    os << "  \"tool\": \"snfcrash\",\n";
    os << "  \"cells\": [";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        os << (i ? ",\n" : "\n");
        writeCell(os, cells[i], "    ");
    }
    os << (cells.empty() ? "]" : "\n  ]") << ",\n";
    os << "  \"cells_total\": " << cells.size() << ",\n";
    os << "  \"cells_failed\": " << failed << "\n";
    os << "}\n";
}

} // namespace snf::crashlab
