#include "crashlab/report.hh"

#include <cstdio>
#include <ostream>

#include "sim/probe.hh"

namespace snf::crashlab
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeTextSummary(std::ostream &os, const CellResult &cell)
{
    os << cell.workload << " / " << persistModeName(cell.mode)
       << " / seed " << cell.seed << ": " << cell.sweep.pointsTested
       << "/" << cell.sweep.pointsHarvested << " crash points, "
       << cell.sweep.pointsFailed << " violations ("
       << cell.sweep.refCommittedTx << " txns, "
       << cell.sweep.refLogWraps << " log wraps, end tick "
       << cell.sweep.endTick << ")\n";
    if (cell.sweep.totalSlotsFaulted != 0 ||
        cell.sweep.totalQuarantined != 0) {
        os << "  faults: " << cell.sweep.totalSlotsFaulted
           << " slots damaged across points, "
           << cell.sweep.totalSalvaged << " txns salvaged, "
           << cell.sweep.totalQuarantined << " quarantined\n";
    }
    for (const auto &t : cell.sweep.shardTotals) {
        os << "  shard " << t.shard << ": " << t.validRecords
           << " records, " << t.salvagedTxns << " salvaged, "
           << t.quarantinedTxns << " quarantined";
        if (t.abortedDeadShard != 0 || t.deadPoints != 0) {
            os << ", " << t.abortedDeadShard
               << " dead-shard aborts, dead at " << t.deadPoints
               << " points";
        }
        os << "\n";
    }
    if (cell.sweep.totalDeadShardAborted != 0) {
        os << "  degraded: " << cell.sweep.totalDeadShardAborted
           << " txns aborted across a dead shard\n";
    }
    if (cell.sweep.reorderEnabled) {
        os << "  reorder: " << cell.sweep.reorderImagesTested
           << " images tested across "
           << cell.sweep.reorderPointsWithPending
           << " points with pending persists (max pending set "
           << cell.sweep.reorderMaxPending << ")\n";
    }
    if (!cell.sweep.refVerified) {
        os << "  reference run FAILED verification: "
           << cell.sweep.refVerifyMessage << "\n";
    }
    for (const auto &f : cell.sweep.failures) {
        os << "  tick " << f.point.tick << " ("
           << sim::probeEventName(f.point.kind)
           << (f.point.before ? "-1" : "") << "):\n";
        for (const auto &v : f.violations)
            os << "    " << v.invariant << ": " << v.detail << "\n";
        if (!f.reorderDetail.empty())
            os << "    ordering: " << f.reorderDetail << "\n";
    }
    if (cell.sweep.minimizedTick) {
        os << "  minimized to tick " << *cell.sweep.minimizedTick
           << ":\n";
        os << cell.sweep.minimizedDetail;
    }
}

void
writePerfSummary(std::ostream &os, const CellResult &cell)
{
    const SweepPerf &p = cell.sweep.perf;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  perf: total %.3fs = ref-run %.3fs + harvest "
                  "%.3fs + index %.3fs + eval (jobs=%zu)\n",
                  p.totalSec, p.refRunSec, p.harvestSec, p.indexSec,
                  p.jobsUsed);
    os << line;
    std::snprintf(line, sizeof(line),
                  "  perf: eval worker-sec: snapshot %.3f, recover "
                  "%.3f, check %.3f; minimize %.3fs\n",
                  p.snapshotSec, p.recoverSec, p.checkSec,
                  p.minimizeSec);
    os << line;
    std::snprintf(
        line, sizeof(line),
        "  perf: journal %llu entries, %llu checkpoints, %llu "
        "replayed, %llu pages cloned\n",
        static_cast<unsigned long long>(p.journalEntries),
        static_cast<unsigned long long>(p.checkpointsBuilt),
        static_cast<unsigned long long>(p.entriesReplayed),
        static_cast<unsigned long long>(p.pagesCloned));
    os << line;
}

namespace
{

void
writePerfJson(std::ostream &os, const SweepPerf &p,
              const char *indent)
{
    char line[192];
    os << indent << "\"perf\": {\n";
    auto secs = [&](const char *key, double v, bool comma = true) {
        std::snprintf(line, sizeof(line), "%s  \"%s_sec\": %.6f%s\n",
                      indent, key, v, comma ? "," : "");
        os << line;
    };
    secs("ref_run", p.refRunSec);
    secs("harvest", p.harvestSec);
    secs("index", p.indexSec);
    secs("snapshot", p.snapshotSec);
    secs("recover", p.recoverSec);
    secs("check", p.checkSec);
    secs("minimize", p.minimizeSec);
    secs("total", p.totalSec);
    os << indent << "  \"journal_entries\": " << p.journalEntries
       << ",\n";
    os << indent << "  \"checkpoints_built\": " << p.checkpointsBuilt
       << ",\n";
    os << indent << "  \"entries_replayed\": " << p.entriesReplayed
       << ",\n";
    os << indent << "  \"pages_cloned\": " << p.pagesCloned << ",\n";
    os << indent << "  \"jobs\": " << p.jobsUsed << "\n";
    os << indent << "}";
}

void
writeCell(std::ostream &os, const CellResult &cell,
          const char *indent)
{
    const SweepResult &sw = cell.sweep;
    os << indent << "{\n";
    os << indent << "  \"workload\": \""
       << jsonEscape(cell.workload) << "\",\n";
    os << indent << "  \"mode\": \"" << persistModeName(cell.mode)
       << "\",\n";
    os << indent << "  \"seed\": " << cell.seed << ",\n";
    os << indent << "  \"threads\": " << cell.threads << ",\n";
    os << indent << "  \"tx_per_thread\": " << cell.txPerThread
       << ",\n";
    os << indent << "  \"end_tick\": " << sw.endTick << ",\n";
    os << indent << "  \"committed_tx\": " << sw.refCommittedTx
       << ",\n";
    os << indent << "  \"log_wraps\": " << sw.refLogWraps << ",\n";
    os << indent << "  \"reference_verified\": "
       << (sw.refVerified ? "true" : "false") << ",\n";
    os << indent << "  \"points_harvested\": " << sw.pointsHarvested
       << ",\n";
    os << indent << "  \"points_tested\": " << sw.pointsTested
       << ",\n";
    os << indent << "  \"points_failed\": " << sw.pointsFailed
       << ",\n";
    os << indent << "  \"slots_faulted\": " << sw.totalSlotsFaulted
       << ",\n";
    os << indent << "  \"txns_salvaged\": " << sw.totalSalvaged
       << ",\n";
    os << indent << "  \"txns_quarantined\": " << sw.totalQuarantined
       << ",\n";
    // Shard fields only when the log was sharded: unsharded reports
    // stay byte-identical to the pre-shardlab format.
    if (!sw.shardTotals.empty()) {
        os << indent << "  \"dead_shard_aborted\": "
           << sw.totalDeadShardAborted << ",\n";
        os << indent << "  \"shards\": [";
        for (std::size_t i = 0; i < sw.shardTotals.size(); ++i) {
            const SweepResult::ShardTotals &t = sw.shardTotals[i];
            os << (i ? ",\n" : "\n");
            os << indent << "    {\"shard\": " << t.shard
               << ", \"valid_records\": " << t.validRecords
               << ", \"salvaged\": " << t.salvagedTxns
               << ", \"quarantined\": " << t.quarantinedTxns
               << ", \"aborted_dead_shard\": " << t.abortedDeadShard
               << ", \"dead_points\": " << t.deadPoints << "}";
        }
        os << "\n" << indent << "  ],\n";
    }
    // Reorder fields only when the adversary ran: reorder-off
    // reports stay byte-identical to the pre-reorderlab format.
    if (sw.reorderEnabled) {
        os << indent << "  \"reorder_images_tested\": "
           << sw.reorderImagesTested << ",\n";
        os << indent << "  \"reorder_points_with_pending\": "
           << sw.reorderPointsWithPending << ",\n";
        os << indent << "  \"reorder_max_pending\": "
           << sw.reorderMaxPending << ",\n";
    }
    os << indent << "  \"failures\": [";
    for (std::size_t i = 0; i < sw.failures.size(); ++i) {
        const PointOutcome &f = sw.failures[i];
        os << (i ? ",\n" : "\n");
        os << indent << "    {\"tick\": " << f.point.tick
           << ", \"event\": \"" << sim::probeEventName(f.point.kind)
           << "\", \"before_event\": "
           << (f.point.before ? "true" : "false")
           << ", \"violations\": [";
        for (std::size_t j = 0; j < f.violations.size(); ++j) {
            os << (j ? ", " : "");
            os << "{\"invariant\": \""
               << jsonEscape(f.violations[j].invariant)
               << "\", \"detail\": \""
               << jsonEscape(f.violations[j].detail) << "\"}";
        }
        os << "]";
        if (!f.reorderDetail.empty())
            os << ", \"reorder\": \""
               << jsonEscape(f.reorderDetail) << "\"";
        os << "}";
    }
    os << (sw.failures.empty() ? "]" : ("\n" + std::string(indent) +
                                        "  ]"))
       << ",\n";
    if (sw.minimizedTick) {
        os << indent << "  \"minimized_tick\": " << *sw.minimizedTick
           << ",\n";
        os << indent << "  \"minimized_detail\": \""
           << jsonEscape(sw.minimizedDetail) << "\",\n";
    }
    writePerfJson(os, sw.perf,
                  (std::string(indent) + "  ").c_str());
    os << ",\n";
    os << indent << "  \"passed\": "
       << (sw.passed() ? "true" : "false") << "\n";
    os << indent << "}";
}

} // namespace

void
writeJsonReport(std::ostream &os,
                const std::vector<CellResult> &cells)
{
    std::size_t failed = 0;
    for (const auto &c : cells)
        if (!c.sweep.passed())
            ++failed;
    os << "{\n";
    os << "  \"tool\": \"snfcrash\",\n";
    os << "  \"cells\": [";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        os << (i ? ",\n" : "\n");
        writeCell(os, cells[i], "    ");
    }
    os << (cells.empty() ? "]" : "\n  ]") << ",\n";
    os << "  \"cells_total\": " << cells.size() << ",\n";
    os << "  \"cells_failed\": " << failed << "\n";
    os << "}\n";
}

void
writeBenchJson(std::ostream &os, const std::string &tool,
               const std::vector<CellResult> &cells)
{
    os << "{\n";
    os << "  \"schema\": \"snf-bench-sweep-v1\",\n";
    os << "  \"tool\": \"" << jsonEscape(tool) << "\",\n";
    os << "  \"cells\": [";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const CellResult &c = cells[i];
        os << (i ? ",\n" : "\n");
        os << "    {\n";
        os << "      \"workload\": \"" << jsonEscape(c.workload)
           << "\",\n";
        os << "      \"mode\": \"" << persistModeName(c.mode)
           << "\",\n";
        os << "      \"seed\": " << c.seed << ",\n";
        os << "      \"threads\": " << c.threads << ",\n";
        os << "      \"tx_per_thread\": " << c.txPerThread << ",\n";
        os << "      \"points_tested\": " << c.sweep.pointsTested
           << ",\n";
        writePerfJson(os, c.sweep.perf, "      ");
        os << "\n    }";
    }
    os << (cells.empty() ? "]" : "\n  ]") << "\n";
    os << "}\n";
}

} // namespace snf::crashlab
