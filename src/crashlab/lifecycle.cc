#include "crashlab/lifecycle.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <optional>
#include <thread>
#include <unordered_set>
#include <utility>

#include "crashlab/trace.hh"
#include "mem/remap_table.hh"
#include "persist/recovery.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace snf::crashlab
{

namespace
{

constexpr std::uint64_t kLine = mem::RemapTable::kLineBytes;

// Default lifelab geometry: a 16 KB dual-bank table (~500 entries)
// backed by 32 KB of spare lines.
constexpr std::uint64_t kDefaultRemapBytes = 16 * 1024;
constexpr std::uint64_t kDefaultSpareBytes = 32 * 1024;

std::string
format(const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return buf;
}

void
fail(std::vector<Violation> &out, const char *invariant,
     std::string detail)
{
    out.push_back(Violation{invariant, std::move(detail)});
}

} // namespace

std::vector<Violation>
checkRecoveryReentrancy(const mem::BackingStore &image,
                        const AddressMap &map,
                        const persist::RecoveryOptions &opts,
                        std::uint64_t stride, std::size_t jobs)
{
    persist::RecoveryOptions full = opts;
    full.crashAfterWrites = ~0ULL;
    full.collectWrites = false;

    mem::BackingStore ref = image;
    persist::RecoveryReport refRep =
        persist::Recovery::run(ref, map, full);
    std::uint64_t total = refRep.writesIssued;
    if (total < 2)
        return {}; // no interior point to interrupt at
    if (stride == 0)
        stride = std::max<std::uint64_t>(1, total / 5);

    // One probe per interior budget: interrupt, resume, compare. The
    // probes recover independent COW copies, so they parallelize;
    // like the serial loop, only the lowest failing budget reports.
    std::vector<std::uint64_t> budgets;
    for (std::uint64_t budget = stride; budget < total;
         budget += stride)
        budgets.push_back(budget);
    std::vector<std::vector<Violation>> probeOut(budgets.size());

    auto probeAt = [&](std::size_t i) {
        std::uint64_t budget = budgets[i];
        std::vector<Violation> &out = probeOut[i];
        persist::RecoveryOptions cut = full;
        cut.crashAfterWrites = budget;
        mem::BackingStore probe = image;
        persist::RecoveryReport r1 =
            persist::Recovery::run(probe, map, cut);
        if (r1.writesIssued != total) {
            fail(out, "recovery-reentrant",
                 format("pass interrupted at budget %llu planned %llu "
                        "line writes but the uninterrupted pass "
                        "planned %llu: recovery's write plan must "
                        "depend only on pre-write reads",
                        static_cast<unsigned long long>(budget),
                        static_cast<unsigned long long>(
                            r1.writesIssued),
                        static_cast<unsigned long long>(total)));
            return;
        }
        persist::Recovery::run(probe, map, full);
        if (auto diff = probe.firstDifference(ref, probe.base(),
                                              probe.size())) {
            fail(out, "recovery-reentrant",
                 format("recovery interrupted after %llu/%llu line "
                        "writes then re-run diverges from the "
                        "uninterrupted pass at 0x%llx",
                        static_cast<unsigned long long>(budget),
                        static_cast<unsigned long long>(total),
                        static_cast<unsigned long long>(*diff)));
        }
    };

    jobs = std::max<std::size_t>(1, std::min(jobs, budgets.size()));
    if (jobs == 1) {
        for (std::size_t i = 0; i < budgets.size(); ++i) {
            probeAt(i);
            if (!probeOut[i].empty())
                break; // matches the parallel path's report
        }
    } else {
        std::atomic<std::size_t> next{0};
        std::atomic<std::uint64_t> poolRecoverNs{0};
        auto drain = [&] {
            std::uint64_t ns = 0;
            persist::RecoveryTimerScope scope(&ns);
            for (std::size_t i = next.fetch_add(1);
                 i < budgets.size(); i = next.fetch_add(1))
                probeAt(i);
            poolRecoverNs.fetch_add(ns);
        };
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (std::size_t j = 0; j < jobs; ++j)
            pool.emplace_back(drain);
        for (auto &t : pool)
            t.join();
        // Credit the probes' recovery time to the caller's timer (the
        // thread-local scope does not span the pool threads).
        if (std::uint64_t *sink = persist::activeRecoveryTimerSink())
            *sink += poolRecoverNs.load();
    }
    for (auto &out : probeOut)
        if (!out.empty())
            return std::move(out);
    return {};
}

LifecycleResult
runLifecycle(const LifecycleConfig &cfg)
{
    using Clock = std::chrono::steady_clock;
    auto secondsSince = [](Clock::time_point start) {
        return std::chrono::duration<double>(Clock::now() - start)
            .count();
    };

    LifecycleResult res;
    Clock::time_point tTotal = Clock::now();
    std::size_t jobs = resolveJobs(cfg.jobs);
    res.perf.jobsUsed = jobs;

    // Every Recovery::run under this frame (checkers, canonical pass,
    // re-entrancy probes — including pooled ones, which credit back)
    // accumulates here; checkSec below is checker wall minus this.
    std::uint64_t recoverNs = 0;
    std::uint64_t checkWallNs = 0;
    persist::RecoveryTimerScope recoveryTimer(&recoverNs);

    SystemConfig sysCfg = cfg.run.sys;
    sysCfg.persist.crashJournal = true; // snapshots depend on it
    if (sysCfg.map.remapSize == 0) {
        sysCfg.map.remapSize = kDefaultRemapBytes;
        sysCfg.map.spareSize = kDefaultSpareBytes;
    }
    sysCfg.validate();

    if (cfg.run.params.threads > sysCfg.numCores)
        fatal("%u threads but only %u cores", cfg.run.params.threads,
              sysCfg.numCores);
    if (cfg.generations == 0)
        fatal("lifecycle needs at least one generation");

    auto workload = workloads::makeWorkload(cfg.run.workload);
    if (!workload->resumable())
        fatal("workload %s cannot resume on a recovered image",
              workload->name().c_str());

    const bool liveFaults = sysCfg.nvram.faults.enabled();
    const AddressMap &map = sysCfg.map;
    const Addr nvEnd = map.nvramBase + map.nvramSize;

    // The image the current generation adopted (the previous
    // generation's recovered image); empty for generation 0, whose
    // baseline is the all-zero store underneath the journal.
    std::optional<mem::BackingStore> adopted;

    for (std::uint32_t g = 0; g < cfg.generations; ++g) {
        GenerationResult gr;
        gr.generation = g;

        Clock::time_point tRun = Clock::now();
        System sys(sysCfg, cfg.run.mode);
        if (g == 0) {
            workload->setup(sys, cfg.run.params);
            sys.mem().nvram().updateSuperblock(sys.heap().allocated(),
                                               0);
        } else {
            sys.adoptNvramImage(*adopted);
            mem::RemapTable *table = sys.mem().nvram().remap();
            if (table->generation != g - 1) {
                fail(gr.violations, "superblock-continuity",
                     format("superblock carries generation %llu at "
                            "the start of generation %u",
                            static_cast<unsigned long long>(
                                table->generation),
                            g));
            }
            sys.heap().resumeTo(table->heapCursor);
            sys.mem().nvram().updateSuperblock(table->heapCursor, g);
        }

        // Same structure, fresh transaction stream per generation.
        workloads::WorkloadParams params = cfg.run.params;
        params.seed = cfg.run.params.seed + g * 7919;

        CrashTrace trace;
        sys.setProbe(trace.collector());
        for (CoreId c = 0; c < params.threads; ++c) {
            sys.spawn(c, [&](Thread &t) -> sim::Co<void> {
                return workload->thread(sys, t, params);
            });
        }
        gr.endTick = sys.run();
        sys.setProbe({});
        trace.finalize();

        RunStats stats = sys.collectStats(gr.endTick);
        gr.committedTx = stats.committedTx;
        gr.logWraps = stats.logWraps;
        gr.scrubRepairs = stats.scrubRepairs;
        gr.scrubPromotions = stats.scrubPromotions;
        res.perf.refRunSec += secondsSince(tRun);

        // Crash instant: a harvested point from the middle half of
        // the run, varied per generation by the soak seed.
        std::vector<CrashPoint> points = trace.harvest(gr.endTick);
        if (points.empty()) {
            gr.crashTick = std::max<Tick>(1, gr.endTick / 2);
        } else {
            sim::Rng rng(cfg.seed ^
                         ((g + 1) * 0x9e3779b97f4a7c15ULL));
            std::size_t lo = points.size() / 4;
            std::size_t hi = std::max<std::size_t>(
                lo + 1, (points.size() * 3) / 4);
            gr.crashTick = points[lo + rng.next() % (hi - lo)].tick;
        }

        Clock::time_point tSnap = Clock::now();
        mem::BackingStore image = sys.crashSnapshot(gr.crashTick);
        res.perf.snapshotSec += secondsSince(tSnap);
        Clock::time_point tCheck = Clock::now();

        CrashFacts facts;
        facts.tick = gr.crashTick;
        facts.txBegun = trace.begunBy(gr.crashTick);
        // Aborts close with a commit record under undo-capable modes,
        // so they join the commit-record upper bound.
        facts.txCommitted = trace.committedBy(gr.crashTick) +
                            trace.abortedBy(gr.crashTick);
        facts.txDurableCommits = trace.durableBy(gr.crashTick);
        facts.threads = params.threads;
        facts.logWraps = stats.logWraps;
        facts.mode = cfg.run.mode;

        // I1-I8 on private copies of the (still clean) snapshot. A
        // run under live media faults has a damaged reference image,
        // which voids both checker sets' premises; the lifecycle
        // checks below still apply there.
        if (!liveFaults) {
            persist::RecoveryOptions checkOpts;
            std::vector<Violation> v =
                cfg.imageFaults.enabled()
                    ? checkFaultedCrashPoint(image, map,
                                             cfg.imageFaults, facts,
                                             checkOpts)
                    : checkCrashPoint(image, map, *workload, facts,
                                      checkOpts);
            gr.violations.insert(gr.violations.end(), v.begin(),
                                 v.end());
        }

        // Damage the resume image exactly as the checkers' private
        // copy was damaged (a pure function of seed, slot address and
        // crash tick), so the soak carries the damage forward.
        if (cfg.imageFaults.enabled()) {
            gr.slotsFaulted =
                applyImageFaults(image, map, cfg.imageFaults,
                                 gr.crashTick)
                    .slotsFaulted;
        }

        const bool sabotaged = g == cfg.sabotageGeneration;
        if (sabotaged)
            mem::RemapTable::sabotage(image, map.remapBase(),
                                      map.remapSize);

        persist::RecoveryOptions canon;
        canon.promoteBadLines = true;
        canon.collectWrites = true;

        std::optional<mem::BackingStore> preRecovery;
        if (cfg.checkReentrancy && !sabotaged)
            preRecovery.emplace(image);

        gr.recovery = persist::Recovery::run(image, map, canon);

        if (gr.recovery.remapCorrupt) {
            fail(gr.violations, "remap-table-valid",
                 format("generation %u: both remap-table banks failed "
                        "their CRC over a nonzero region; the mapping "
                        "is lost and the image cannot be trusted",
                        g));
        }

        if (preRecovery && gr.recovery.writesIssued >= 2 &&
            !gr.recovery.remapCorrupt) {
            std::uint64_t stride = std::max<std::uint64_t>(
                1, gr.recovery.writesIssued /
                       (cfg.reentrancyBudgets + 1));
            std::vector<Violation> v = checkRecoveryReentrancy(
                *preRecovery, map, canon, stride, jobs);
            gr.violations.insert(gr.violations.end(), v.begin(),
                                 v.end());
        }

        {
            mem::RemapTable table(map.remapBase(), map.remapSize,
                                  map.spareBase(), map.spareSize);
            table.load(image);
            gr.remapEntries = table.size();
        }

        // I9 (recovered-durable): the post-recovery image may differ
        // from the image this generation adopted only at lines the
        // generation's journaled writes (done <= crash tick) or the
        // recovery pass itself touched. Transitively, a byte
        // recovered in generation k survives until something
        // legitimately overwrites it.
        if (!sabotaged && !gr.recovery.remapCorrupt) {
            std::unordered_set<Addr> allowed;
            sys.mem().nvram().store().forEachJournalWrite(
                gr.crashTick, [&](Addr a, std::uint64_t n) {
                    for (Addr l = a & ~(kLine - 1); l < a + n;
                         l += kLine)
                        allowed.insert(l);
                });
            for (Addr l : gr.recovery.touchedLines)
                allowed.insert(l);

            const mem::BackingStore genesis(image.base(),
                                            image.size());
            const mem::BackingStore &prev =
                adopted ? *adopted : genesis;
            Addr from = map.heapBase();
            while (from < nvEnd) {
                auto diff =
                    image.firstDifference(prev, from, nvEnd - from);
                if (!diff)
                    break;
                Addr line = *diff & ~(kLine - 1);
                if (!allowed.count(line)) {
                    fail(gr.violations, "recovered-durable",
                         format("generation %u lost recovered bytes "
                                "at 0x%llx: the line differs from the "
                                "adopted image but was written "
                                "neither by the generation's "
                                "journaled writes nor by recovery",
                                g,
                                static_cast<unsigned long long>(
                                    line)));
                    break;
                }
                from = line + kLine;
            }
        }

        checkWallNs += static_cast<std::uint64_t>(
            secondsSince(tCheck) * 1e9);
        const mem::BackingStore &st = sys.mem().nvram().store();
        res.perf.journalEntries += st.journalSize();
        res.perf.entriesReplayed += st.entriesReplayed();
        res.perf.pagesCloned += st.pagesCloned();

        const bool stop = sabotaged || gr.recovery.remapCorrupt;
        if (gr.recovery.remapCorrupt)
            res.aborted = true; // image untrusted: end the soak
        res.generations.push_back(std::move(gr));
        if (stop)
            break;

        adopted.emplace(std::move(image));
    }

    res.perf.recoverSec = recoverNs * 1e-9;
    res.perf.checkSec =
        (checkWallNs - std::min(checkWallNs, recoverNs)) * 1e-9;
    res.perf.totalSec = secondsSince(tTotal);
    return res;
}

} // namespace snf::crashlab
