/**
 * @file
 * faultlab — NVRAM media-fault injection into crash snapshots, plus
 * the invariant checkers for recovery under damage.
 *
 * The live fault model (mem/fault_model.hh) damages writes as a run
 * executes; this module instead damages the *snapshot image* a crash
 * sweep evaluates. Faulting the image keeps the single journaled
 * reference run clean (so one simulation still serves every crash
 * point) while exercising exactly the recovery-facing surface: the
 * log slots. Damage is a pure hash of (seed, slot address, crash
 * tick), so every evaluated point is bit-exact reproducible.
 *
 * The faulted checkers replace the clean-image invariant set:
 *
 *  - header-valid      faults never touch the log header, so recovery
 *                      must still accept it
 *  - salvage-idempotent (I8) two non-truncating salvage passes over
 *                      the same damaged image agree byte for byte
 *  - committed-upper   damage can only destroy commit records, never
 *                      forge them (CRC), so the recovered committed
 *                      count keeps its trace upper bound
 *  - quarantine-sound  (I7) every quarantined transaction is one whose
 *                      records the plan actually damaged (unwrapped
 *                      log only)
 *  - undamaged-oracle  recovering the damaged image agrees with
 *                      recovering the clean image on every heap byte
 *                      not written by a damaged or quarantined
 *                      transaction: salvage never falsely replays
 *                      (unwrapped log only)
 */

#ifndef SNF_CRASHLAB_FAULTLAB_HH
#define SNF_CRASHLAB_FAULTLAB_HH

#include <cstdint>
#include <vector>

#include "crashlab/invariants.hh"
#include "mem/backing_store.hh"

namespace snf::crashlab
{

/**
 * Snapshot-image fault rates. Probabilities are per non-empty,
 * well-formed log slot (32 bytes); empty and already-damaged slots
 * are left alone so the injected-damage set is exactly known.
 */
struct ImageFaultConfig
{
    std::uint64_t seed = 1;
    double bitFlipProb = 0.0;  ///< flip one of the slot's 256 bits
    double multiBitProb = 0.0; ///< flip two distinct bits
    double dropSlotProb = 0.0; ///< slot write lost entirely (zeroed)
    double tornSlotProb = 0.0; ///< header word lost, payload landed
    /**
     * Kill one whole log shard (shardlab degraded mode): the shard's
     * header is wiped so recovery must treat its slice as lost,
     * salvage the survivors, and abort every transaction whose
     * participation mask intersects it. -1 = off.
     */
    std::int32_t killShard = -1;

    bool
    enabled() const
    {
        return bitFlipProb > 0.0 || multiBitProb > 0.0 ||
               dropSlotProb > 0.0 || tornSlotProb > 0.0 ||
               killShard >= 0;
    }

    /** Rare single-bit upsets (the common PCM field-failure mode). */
    static ImageFaultConfig
    light(std::uint64_t seed)
    {
        ImageFaultConfig f;
        f.seed = seed;
        f.bitFlipProb = 5e-3;
        return f;
    }

    /** Aggressive mixed-mode damage for soak testing (snfsoak
     *  --fault-preset heavy). */
    static ImageFaultConfig
    heavy(std::uint64_t seed)
    {
        ImageFaultConfig f;
        f.seed = seed;
        f.bitFlipProb = 2e-2;
        f.multiBitProb = 5e-3;
        f.dropSlotProb = 5e-3;
        f.tornSlotProb = 5e-3;
        return f;
    }
};

/** Exactly what applyImageFaults() damaged, for soundness oracles. */
struct ImageFaultPlan
{
    std::uint64_t slotsFaulted = 0;
    std::uint64_t bitFlipSlots = 0;
    std::uint64_t multiBitSlots = 0;
    std::uint64_t droppedSlots = 0;
    std::uint64_t tornSlots = 0;
    /** Shard whose header was wiped (-1 = none). Its records' txids
     *  are all recorded in damagedTxIds before the wipe. */
    std::int32_t killedShard = -1;
    /** txids of every record damaged, sorted and deduplicated. */
    std::vector<std::uint16_t> damagedTxIds;

    bool damaged(std::uint16_t tx) const;
};

/**
 * Damage the log slots of @p image in place, deterministically per
 * (cfg.seed, slot address, @p crashTick). Only slots that classify
 * as Valid before injection are candidates; the returned plan lists
 * the affected transactions.
 */
ImageFaultPlan applyImageFaults(mem::BackingStore &image,
                                const AddressMap &map,
                                const ImageFaultConfig &cfg,
                                Tick crashTick);

/**
 * Evaluate one crash point under injected media faults (see file
 * comment for the checker set). The clean-image workload verify and
 * counting lower bounds do not apply: damage legitimately loses
 * transactions, and the point of salvage is bounding the loss to the
 * damaged set.
 */
std::vector<Violation>
checkFaultedCrashPoint(const mem::BackingStore &image,
                       const AddressMap &map,
                       const ImageFaultConfig &faults,
                       const CrashFacts &facts,
                       const persist::RecoveryOptions &recOpts,
                       persist::RecoveryReport *reportOut = nullptr,
                       ImageFaultPlan *planOut = nullptr);

} // namespace snf::crashlab

#endif // SNF_CRASHLAB_FAULTLAB_HH
