/**
 * @file
 * Failure-atomicity invariant checkers evaluated against one crash
 * snapshot. Each checker recovers private copies of the image and
 * compares the outcome with facts extracted from the reference run's
 * probe trace:
 *
 *  - header-valid        the log header survives every crash instant
 *  - replay-idempotent   replaying the log twice (no truncation)
 *                        yields a byte-identical image (I6)
 *  - truncate-idempotent recovering the already-recovered image finds
 *                        an empty log and changes nothing (I6)
 *  - verify              the workload's own structural check passes
 *                        on the recovered image (committed effects
 *                        durable, uncommitted rolled back) — only
 *                        enforced for modes that guarantee failure
 *                        atomicity
 *  - committed-upper     recovery never resurrects a transaction
 *                        whose commit had not executed by the crash
 *  - committed-durable   every commit record durable by the crash is
 *                        recovered as committed (needs an unwrapped
 *                        log: reclamation may erase old records)
 *  - uncommitted-bound   uncommitted generations are bounded by the
 *                        open-transaction count plus commits still in
 *                        flight (unwrapped log only)
 */

#ifndef SNF_CRASHLAB_INVARIANTS_HH
#define SNF_CRASHLAB_INVARIANTS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/system_config.hh"
#include "mem/backing_store.hh"
#include "persist/recovery.hh"
#include "workloads/workload.hh"

namespace snf::crashlab
{

/** One failed invariant at one crash point. */
struct Violation
{
    std::string invariant; ///< short checker name (see file comment)
    std::string detail;    ///< human-readable diagnosis
};

/** Reference-run facts as of the crash tick. */
struct CrashFacts
{
    Tick tick = 0;
    std::uint64_t txBegun = 0;          ///< begins executed by tick
    std::uint64_t txCommitted = 0;      ///< commits initiated by tick
    std::uint64_t txDurableCommits = 0; ///< commit records durable
    std::uint32_t threads = 0;
    std::uint64_t logWraps = 0; ///< wraps over the whole run
    PersistMode mode = PersistMode::NonPers;
};

/** True when @p mode promises full failure atomicity on recovery. */
bool guaranteesFailureAtomicity(PersistMode mode);

/**
 * Run every applicable checker against the crash snapshot @p image.
 * @param image      NVRAM image at the crash instant (not modified;
 *                   checkers recover private copies)
 * @param map        the run's address map
 * @param wl         the workload, for its verify() check
 * @param facts      trace facts at the crash tick
 * @param recOpts    recovery knobs (fault injection passes through
 *                   so snfcrash --inject-* exercises the checkers)
 * @param reportOut  if non-null, receives the recovery report of the
 *                   canonical (truncating) pass
 * @return all violations found; empty means the crash point passed.
 */
std::vector<Violation>
checkCrashPoint(const mem::BackingStore &image, const AddressMap &map,
                const workloads::Workload &wl, const CrashFacts &facts,
                const persist::RecoveryOptions &recOpts,
                persist::RecoveryReport *reportOut = nullptr);

/**
 * Debug dump of the log window in @p image: header fields plus the
 * per-slot written/torn/commit summary of every non-empty slot.
 * Attached to minimized failure reports.
 */
std::string describeLogWindow(const mem::BackingStore &image,
                              const AddressMap &map);

} // namespace snf::crashlab

#endif // SNF_CRASHLAB_INVARIANTS_HH
