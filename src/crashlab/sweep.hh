/**
 * @file
 * The crash-point sweep: run one workload cell once with probe
 * instrumentation and the NVRAM write journal enabled, harvest the
 * interesting crash instants from the probe trace, then evaluate
 * every harvested point in parallel — snapshot the NVRAM image at
 * that tick, recover it, and run the invariant checker library
 * (crashlab/invariants.hh). Failing points are minimized to the
 * earliest failing tick by bisection.
 *
 * Key property making this cheap: BackingStore::snapshotAt(t) over
 * the single journaled reference run reproduces exactly the image a
 * run stopped at tick t would leave, so one simulation supports an
 * arbitrary number of crash points, and evaluation parallelizes over
 * a const System.
 */

#ifndef SNF_CRASHLAB_SWEEP_HH
#define SNF_CRASHLAB_SWEEP_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crashlab/faultlab.hh"
#include "crashlab/invariants.hh"
#include "crashlab/reorder.hh"
#include "crashlab/trace.hh"
#include "workloads/driver.hh"

namespace snf::crashlab
{

/** One sweep cell: a RunSpec plus sweep-specific knobs. */
struct SweepConfig
{
    /**
     * The workload cell to sweep. crashAt is ignored (the sweep
     * picks its own crash points); crashJournal is forced on.
     */
    workloads::RunSpec run;
    /** Worker threads evaluating crash points; 0 = one per core. */
    std::size_t jobs = 0;
    /** Cap on evaluated points; 0 = all harvested. */
    std::size_t maxPoints = 0;
    /** Seed of the deterministic down-sampling of crash points. */
    std::uint64_t sampleSeed = 1;
    /** Recovery knobs, including snfcrash's fault injection. */
    persist::RecoveryOptions recovery;
    /** Bisect the earliest failing tick when a point fails. */
    bool minimizeFailures = true;
    /**
     * Media-fault injection into each evaluated crash snapshot
     * (faultlab). When enabled() the sweep evaluates the faulted
     * checker set (salvage idempotence, quarantine soundness, the
     * undamaged-set oracle) instead of the clean-image set.
     */
    ImageFaultConfig imageFaults;
    /**
     * Crash-during-recovery coverage (lifelab, extends I8): when
     * nonzero, every evaluated crash point additionally proves that
     * recovery is re-entrant — the pass is interrupted at every NVRAM
     * line-write budget that is a multiple of this stride, re-run,
     * and required to converge byte-for-byte with an uninterrupted
     * pass (1 = every interior write; see checkRecoveryReentrancy).
     */
    std::uint64_t recoverySweepStride = 0;
    /**
     * Persist-ordering adversary (reorderlab): when enabled, every
     * evaluated crash point additionally tests each legal
     * subset/linearization image of the pending persist set (plus
     * torn-line variants) through the same checker pipeline. Off by
     * default — reorder-off sweeps are bit-identical to the plain
     * prefix model.
     */
    ReorderConfig reorder;
};

/** Outcome of one evaluated crash point (kept for failures only). */
struct PointOutcome
{
    CrashPoint point;
    std::vector<Violation> violations;
    persist::RecoveryReport report;
    /** What the faulted evaluation damaged (empty when clean). */
    ImageFaultPlan plan;
    /**
     * The failing pending-persist ordering (ReorderImage::describe),
     * empty when the plain prefix image failed or reorder is off.
     */
    std::string reorderDetail;
};

/**
 * Per-phase wall-clock and engine counters of one sweep.
 * refRun/harvest/index/minimize/total are wall-clock; snapshot,
 * recover and check are summed across the evaluation workers (worker
 * CPU seconds), so with J jobs their sum can exceed totalSec.
 */
struct SweepPerf
{
    double refRunSec = 0;   ///< instrumented reference simulation
    double harvestSec = 0;  ///< trace finalize + harvest + sampling
    double indexSec = 0;    ///< journal sort + checkpoint build
    double snapshotSec = 0; ///< crash-image reconstruction (workers)
    double recoverSec = 0;  ///< recovery passes inside checkers
    double checkSec = 0;    ///< checker work minus recovery
    double minimizeSec = 0; ///< bisection of the earliest failure
    double totalSec = 0;    ///< whole runCrashSweep call
    /** Journaled NVRAM writes of the reference run. */
    std::uint64_t journalEntries = 0;
    /** Checkpoints the snapshot index materialized. */
    std::uint64_t checkpointsBuilt = 0;
    /** Journal entries replayed across every snapshot taken. */
    std::uint64_t entriesReplayed = 0;
    /** Pages cloned by copy-on-write across the sweep. */
    std::uint64_t pagesCloned = 0;
    /** Worker threads actually used (after resolveJobs). */
    std::size_t jobsUsed = 0;
};

/** Everything one sweep produced. */
struct SweepResult
{
    Tick endTick = 0;
    std::size_t pointsHarvested = 0;
    std::size_t pointsTested = 0;
    std::size_t pointsFailed = 0;
    /** Failing points, in tick order. */
    std::vector<PointOutcome> failures;
    /** Reference (no-crash) run result. */
    bool refVerified = true;
    std::string refVerifyMessage;
    std::uint64_t refCommittedTx = 0;
    std::uint64_t refLogWraps = 0;
    /** Earliest failing tick found by the minimizer. */
    std::optional<Tick> minimizedTick;
    /** Violations + recovery report + log window at minimizedTick. */
    std::string minimizedDetail;
    /** Faulted sweeps: totals across every evaluated point. */
    std::uint64_t totalSalvaged = 0;
    std::uint64_t totalQuarantined = 0;
    std::uint64_t totalSlotsFaulted = 0;
    /** Sharded sweeps (logShards > 1): per-shard salvage totals
     *  across every evaluated point; empty otherwise. */
    struct ShardTotals
    {
        std::uint32_t shard = 0;
        std::uint64_t validRecords = 0;
        std::uint64_t salvagedTxns = 0;
        std::uint64_t quarantinedTxns = 0;
        std::uint64_t abortedDeadShard = 0;
        /** Evaluated points at which this shard was dead. */
        std::uint64_t deadPoints = 0;
    };
    std::vector<ShardTotals> shardTotals;
    /** Transactions aborted across all points because a dead shard
     *  intersected their participation mask. */
    std::uint64_t totalDeadShardAborted = 0;
    /** Reorder sweeps: adversary coverage accounting. */
    bool reorderEnabled = false;
    /** Reorder images evaluated across every crash point. */
    std::uint64_t reorderImagesTested = 0;
    /** Crash points with at least one pending persist. */
    std::uint64_t reorderPointsWithPending = 0;
    /** Largest pending set seen at any evaluated point. */
    std::uint64_t reorderMaxPending = 0;

    /** Phase timing and snapshot-engine counters. */
    SweepPerf perf;

    bool passed() const { return pointsFailed == 0 && refVerified; }
};

/**
 * Resolve a requested worker count: 0 means one per hardware thread
 * (std::thread::hardware_concurrency(), at least 1). Tools print the
 * resolved value in their report headers.
 */
std::size_t resolveJobs(std::size_t requested);

/** Run one sweep cell. fatal() on misconfiguration. */
SweepResult runCrashSweep(const SweepConfig &cfg);

} // namespace snf::crashlab

#endif // SNF_CRASHLAB_SWEEP_HH
