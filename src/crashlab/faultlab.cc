#include "crashlab/faultlab.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include <optional>

#include "mem/fault_model.hh"
#include "mem/remap_table.hh"
#include "persist/log_record.hh"
#include "persist/log_region.hh"

namespace snf::crashlab
{

namespace
{

std::string
format(const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return buf;
}

void
fail(std::vector<Violation> &out, const char *invariant,
     std::string detail)
{
    out.push_back(Violation{invariant, std::move(detail)});
}

double
unit(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/**
 * A slot's live bytes move to its spare line once the persistent
 * remap table promotes the line (lifelab), so slot reads and the
 * damage writes must go through the image's table — otherwise faults
 * would land on the stale pre-promotion copy and remapped lines would
 * silently become immune. Decision hashes stay keyed on the logical
 * slot address, which is stable across promotion. Log headers and
 * slots never cross a 64-byte line, so one translation per access
 * suffices.
 */
struct SlotView
{
    SlotView(const mem::BackingStore &image, const AddressMap &map)
    {
        if (map.remapSize == 0)
            return;
        table.emplace(map.remapBase(), map.remapSize, map.spareBase(),
                      map.spareSize);
        table->load(image); // fresh/corrupt loads empty == identity
    }

    Addr
    translate(Addr a) const
    {
        if (!table)
            return a;
        Addr line =
            a & ~static_cast<Addr>(mem::RemapTable::kLineBytes - 1);
        if (auto spare = table->find(line))
            return *spare + (a - line);
        return a;
    }

    std::optional<mem::RemapTable> table;
};

// Distinct decision streams per slot (mixed into the hash seed).
constexpr std::uint64_t kSaltDrop = 0x11;
constexpr std::uint64_t kSaltTorn = 0x12;
constexpr std::uint64_t kSaltMulti = 0x13;
constexpr std::uint64_t kSaltFlip = 0x14;
constexpr std::uint64_t kSaltBitPos = 0x15;
constexpr std::uint64_t kSaltBitPos2 = 0x16;

} // namespace

bool
ImageFaultPlan::damaged(std::uint16_t tx) const
{
    return std::binary_search(damagedTxIds.begin(),
                              damagedTxIds.end(), tx);
}

ImageFaultPlan
applyImageFaults(mem::BackingStore &image, const AddressMap &map,
                 const ImageFaultConfig &cfg, Tick crashTick)
{
    ImageFaultPlan plan;
    if (!cfg.enabled())
        return plan;

    auto draw = [&](std::uint64_t salt, Addr slotAddr) {
        return mem::FaultInjector::hash(cfg.seed ^ salt, slotAddr,
                                        crashTick);
    };
    SlotView view(image, map);

    std::uint32_t partitions = map.logRegionCount();
    std::uint64_t part_bytes = map.logSize / partitions;
    for (std::uint32_t p = 0; p < partitions; ++p) {
        Addr base = map.logBase() + p * part_bytes;
        if (image.read64(view.translate(base)) !=
            persist::LogRegion::kMagic)
            continue;
        std::uint64_t slots = image.read64(view.translate(base + 8));
        std::uint64_t max_slots =
            (part_bytes - persist::LogRegion::kHeaderBytes) /
            persist::LogRecord::kSlotBytes;
        if (slots > max_slots)
            continue;

        Addr slot0 = base + persist::LogRegion::kHeaderBytes;
        if (cfg.killShard >= 0 &&
            p == static_cast<std::uint32_t>(cfg.killShard)) {
            // Shard death (degraded mode): every record the shard
            // held is damage by definition — record the txids first,
            // then wipe the header so recovery cannot trust the
            // slice at all.
            for (std::uint64_t i = 0; i < slots; ++i) {
                std::uint8_t img[persist::LogRecord::kSlotBytes];
                image.read(view.translate(
                               slot0 +
                               i * persist::LogRecord::kSlotBytes),
                           persist::LogRecord::kSlotBytes, img);
                persist::SlotInfo info = persist::classifySlot(img);
                if (info.cls == persist::SlotClass::Valid)
                    plan.damagedTxIds.push_back(info.rec.tx);
            }
            std::uint8_t zeros[persist::LogRegion::kHeaderBytes] = {};
            image.write(view.translate(base),
                        persist::LogRegion::kHeaderBytes, zeros);
            plan.killedShard = cfg.killShard;
            continue;
        }
        for (std::uint64_t i = 0; i < slots; ++i) {
            Addr a = slot0 + i * persist::LogRecord::kSlotBytes;
            std::uint8_t img[persist::LogRecord::kSlotBytes];
            image.read(view.translate(a),
                       persist::LogRecord::kSlotBytes, img);
            // Only well-formed slots are candidates, so the damaged
            // set below is exactly the transactions we touched.
            persist::SlotInfo info = persist::classifySlot(img);
            if (info.cls != persist::SlotClass::Valid)
                continue;

            std::uint64_t touched = 0;
            if (unit(draw(kSaltDrop, a)) < cfg.dropSlotProb) {
                // The slot's write never reached the media.
                std::memset(img, 0, sizeof(img));
                plan.droppedSlots += 1;
                touched = 1;
            } else if (unit(draw(kSaltTorn, a)) < cfg.tornSlotProb) {
                // Power cut mid-program: the payload half landed, the
                // header word (written last) did not.
                std::memset(img, 0, 8);
                plan.tornSlots += 1;
                touched = 1;
            } else if (unit(draw(kSaltMulti, a)) < cfg.multiBitProb) {
                std::uint64_t b1 = draw(kSaltBitPos, a) % 256;
                std::uint64_t b2 = draw(kSaltBitPos2, a) % 255;
                if (b2 >= b1)
                    b2 += 1;
                img[b1 / 8] ^= static_cast<std::uint8_t>(1u << (b1 % 8));
                img[b2 / 8] ^= static_cast<std::uint8_t>(1u << (b2 % 8));
                plan.multiBitSlots += 1;
                touched = 1;
            } else if (unit(draw(kSaltFlip, a)) < cfg.bitFlipProb) {
                std::uint64_t b = draw(kSaltBitPos, a) % 256;
                img[b / 8] ^= static_cast<std::uint8_t>(1u << (b % 8));
                plan.bitFlipSlots += 1;
                touched = 1;
            }
            if (touched) {
                image.write(view.translate(a),
                            persist::LogRecord::kSlotBytes, img);
                plan.slotsFaulted += 1;
                plan.damagedTxIds.push_back(info.rec.tx);
            }
        }
    }

    std::sort(plan.damagedTxIds.begin(), plan.damagedTxIds.end());
    plan.damagedTxIds.erase(std::unique(plan.damagedTxIds.begin(),
                                        plan.damagedTxIds.end()),
                            plan.damagedTxIds.end());
    return plan;
}

namespace
{

/** Heap byte ranges written by records of the given transactions,
 *  gathered from the clean image's log slots. */
std::vector<std::pair<Addr, Addr>>
coveredRanges(const mem::BackingStore &image, const AddressMap &map,
              const ImageFaultPlan &plan,
              const std::vector<std::uint16_t> &quarantined)
{
    auto interesting = [&](std::uint16_t tx) {
        return plan.damaged(tx) ||
               std::find(quarantined.begin(), quarantined.end(), tx) !=
                   quarantined.end();
    };

    std::vector<std::pair<Addr, Addr>> ranges;
    SlotView view(image, map);
    std::uint32_t partitions = map.logRegionCount();
    std::uint64_t part_bytes = map.logSize / partitions;
    for (std::uint32_t p = 0; p < partitions; ++p) {
        Addr base = map.logBase() + p * part_bytes;
        if (image.read64(view.translate(base)) !=
            persist::LogRegion::kMagic)
            continue;
        std::uint64_t slots = image.read64(view.translate(base + 8));
        Addr slot0 = base + persist::LogRegion::kHeaderBytes;
        for (std::uint64_t i = 0; i < slots; ++i) {
            std::uint8_t img[persist::LogRecord::kSlotBytes];
            image.read(view.translate(
                           slot0 +
                           i * persist::LogRecord::kSlotBytes),
                       persist::LogRecord::kSlotBytes, img);
            persist::SlotInfo info = persist::classifySlot(img);
            if (info.cls != persist::SlotClass::Valid ||
                info.rec.isCommit || info.rec.isPrepare ||
                !interesting(info.rec.tx))
                continue;
            ranges.emplace_back(info.rec.addr,
                                info.rec.addr + info.rec.size);
        }
    }
    std::sort(ranges.begin(), ranges.end());
    return ranges;
}

/** End of a range covering @p a, or 0 if none covers it. */
Addr
coveringEnd(const std::vector<std::pair<Addr, Addr>> &ranges, Addr a)
{
    auto it = std::upper_bound(
        ranges.begin(), ranges.end(), a,
        [](Addr x, const std::pair<Addr, Addr> &r) {
            return x < r.first;
        });
    Addr end = 0;
    // Ranges are tiny (<= 8 bytes) but may share a start address, so
    // walk the preceding entries that could still span @p a.
    while (it != ranges.begin()) {
        --it;
        if (it->second > a)
            end = std::max(end, it->second);
        if (it->first + 8 < a)
            break;
    }
    return end;
}

} // namespace

std::vector<Violation>
checkFaultedCrashPoint(const mem::BackingStore &image,
                       const AddressMap &map,
                       const ImageFaultConfig &faults,
                       const CrashFacts &facts,
                       const persist::RecoveryOptions &recOpts,
                       persist::RecoveryReport *reportOut,
                       ImageFaultPlan *planOut)
{
    std::vector<Violation> out;

    mem::BackingStore faulted = image;
    ImageFaultPlan plan =
        applyImageFaults(faulted, map, faults, facts.tick);
    if (planOut)
        *planOut = plan;

    // salvage-idempotent (I8): two non-truncating salvage passes over
    // the same damaged image must agree byte for byte.
    persist::RecoveryOptions replayOpts = recOpts;
    replayOpts.truncateLog = false;
    mem::BackingStore once = faulted;
    persist::Recovery::run(once, map, replayOpts);
    mem::BackingStore twice = once;
    persist::Recovery::run(twice, map, replayOpts);
    if (auto diff = once.firstDifference(twice, once.base(),
                                         once.size())) {
        fail(out, "salvage-idempotent",
             format("second salvage pass changed the image, first "
                    "difference at 0x%llx",
                    static_cast<unsigned long long>(*diff)));
    }

    // Canonical faulted recovery: salvage, quarantine, truncate.
    persist::RecoveryOptions canonOpts = recOpts;
    canonOpts.truncateLog = true;
    mem::BackingStore recovered = faulted;
    persist::RecoveryReport rep =
        persist::Recovery::run(recovered, map, canonOpts);
    if (reportOut)
        *reportOut = rep;

    // header-valid: injection never touches the log header.
    if (facts.mode != PersistMode::NonPers && !rep.headerValid) {
        fail(out, "header-valid",
             "recovery rejected the log header under media faults");
    }

    // committed-upper: damage can destroy commit records but never
    // forge one (the CRC rejects mutated slots), so the trace upper
    // bound survives injection.
    if (rep.committedTxns > facts.txCommitted) {
        fail(out, "committed-upper",
             format("recovered %llu committed txns under faults but "
                    "only %llu commits had initiated by tick %llu",
                    static_cast<unsigned long long>(rep.committedTxns),
                    static_cast<unsigned long long>(facts.txCommitted),
                    static_cast<unsigned long long>(facts.tick)));
    }

    // The soundness oracles need every record of the run still in the
    // log; after a wrap, reclamation legitimately erases history.
    if (facts.logWraps != 0)
        return out;

    // quarantine-sound (I7): recovery may only quarantine
    // transactions whose records the plan actually damaged.
    for (std::uint16_t tx : rep.quarantinedTxIds) {
        if (!plan.damaged(tx)) {
            fail(out, "quarantine-sound",
                 format("tx %u quarantined but none of its slots "
                        "were damaged",
                        tx));
        }
    }

    // undamaged-oracle: recover the *clean* image with the default
    // scanner and compare heap bytes. Any divergence must lie inside
    // an address written by a damaged or quarantined transaction;
    // anything else is a false replay (e.g. trusting a corrupt
    // record) or a false skip.
    mem::BackingStore cleanRec = image;
    persist::Recovery::run(cleanRec, map, persist::RecoveryOptions{});
    // Dead-shard aborts roll a committed transaction back on its
    // surviving shards, so their write sets legitimately diverge from
    // the clean recovery too.
    std::vector<std::uint16_t> excused = rep.quarantinedTxIds;
    excused.insert(excused.end(), rep.deadShardAbortTxIds.begin(),
                   rep.deadShardAbortTxIds.end());
    auto ranges = coveredRanges(image, map, plan, excused);
    Addr from = map.heapBase();
    Addr end = map.nvramBase + map.nvramSize;
    while (from < end) {
        auto diff =
            cleanRec.firstDifference(recovered, from, end - from);
        if (!diff)
            break;
        Addr cover = coveringEnd(ranges, *diff);
        if (cover == 0) {
            fail(out, "undamaged-oracle",
                 format("faulted recovery diverges from clean "
                        "recovery at 0x%llx, outside every damaged "
                        "or quarantined transaction's write set",
                        static_cast<unsigned long long>(*diff)));
            break;
        }
        from = cover;
    }

    return out;
}

} // namespace snf::crashlab
