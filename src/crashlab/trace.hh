/**
 * @file
 * CrashTrace — records the probe-event stream of one instrumented
 * reference run and turns it into (a) the harvested list of
 * interesting crash points and (b) per-tick transaction facts the
 * invariant checkers compare recovery results against.
 *
 * The harvest replaces blind tick sweeps: the NVRAM image only
 * changes when a journaled write completes, so the instants worth
 * crashing at are the completions of log-buffer drains, data
 * write-backs and WCB flushes, FWB pass boundaries, and the
 * volatile-state edges at tx-begin/tx-commit. For each event tick t
 * the harvest emits both t-1 (just before the effect lands) and t
 * (just after), which brackets every torn/partial state the event
 * could expose.
 */

#ifndef SNF_CRASHLAB_TRACE_HH
#define SNF_CRASHLAB_TRACE_HH

#include <cstdint>
#include <vector>

#include "sim/probe.hh"
#include "sim/types.hh"

namespace snf::crashlab
{

/** One candidate crash instant and the event that nominated it. */
struct CrashPoint
{
    Tick tick = 0;
    sim::ProbeEvent kind = sim::ProbeEvent::LogDrain;
    /** True for the t-1 "just before the event lands" sibling. */
    bool before = false;
};

/** See file comment. */
class CrashTrace
{
  public:
    struct Event
    {
        sim::ProbeEvent kind;
        Tick tick;
        std::uint64_t arg;
    };

    /**
     * The collector to install with System::setProbe(). Captures
     * `this`; the trace must outlive the probe.
     */
    sim::ProbeFn collector();

    /**
     * Sort the recorded stream and build the count indices. Call
     * once, after the reference run and before any query below.
     */
    void finalize();

    const std::vector<Event> &events() const { return stream; }

    /**
     * Harvested crash points with tick <= @p endTick, deduplicated
     * and sorted by tick. Requires finalize().
     */
    std::vector<CrashPoint> harvest(Tick endTick) const;

    /** Transactions begun with begin-tick <= @p t. */
    std::uint64_t begunBy(Tick t) const;

    /** Transactions whose commit *initiated* by @p t. */
    std::uint64_t committedBy(Tick t) const;

    /** Transactions whose commit record was *durable* by @p t. */
    std::uint64_t durableBy(Tick t) const;

    /**
     * Transactions whose abort initiated by @p t. Under undo-capable
     * modes the rollback closes with a commit record, so these count
     * toward the commit-record upper bound.
     */
    std::uint64_t abortedBy(Tick t) const;

  private:
    std::vector<Event> stream;
    std::vector<Tick> beginTicks;   // sorted
    std::vector<Tick> commitTicks;  // sorted
    std::vector<Tick> durableTicks; // sorted
    std::vector<Tick> abortTicks;   // sorted
    bool finalized = false;
};

} // namespace snf::crashlab

#endif // SNF_CRASHLAB_TRACE_HH
