/**
 * @file
 * WHISPER "echo" workload equivalent: a persistent, per-thread
 * append-only message queue (the scalable timestamped KV-store of
 * echo reduced to its persistent-append core). Each transaction
 * appends a timestamped 4-word message and advances the queue head.
 *
 * Invariant: head equals the number of fully-written messages, every
 * message is stamped with its sequence number, and its checksum word
 * matches its body — torn appends break it.
 */

#ifndef SNF_WORKLOADS_WHISPER_ECHO_HH
#define SNF_WORKLOADS_WHISPER_ECHO_HH

#include "workloads/workload.hh"

namespace snf::workloads
{

/** See file comment. */
class WhisperEcho : public Workload
{
  public:
    std::string name() const override { return "echo"; }

    void setup(System &sys, const WorkloadParams &params) override;

    sim::Co<void> thread(System &sys, Thread &t,
                         const WorkloadParams &params) override;

    bool verify(const mem::BackingStore &nvram,
                std::string *why) const override;

  private:
    // Message: seq(8) | body(3 x 8) | checksum(8).
    static constexpr std::uint64_t kMsgBytes = 40;

    Addr queueHeadAddr(std::uint32_t tid) const
    {
        return heads + tid * 8;
    }

    Addr msgAddr(std::uint32_t tid, std::uint64_t i) const
    {
        return slots + (tid * perThread + i) * kMsgBytes;
    }

    Addr heads = 0;
    Addr slots = 0;
    Addr connState = 0;
    std::uint64_t perThread = 0;
    std::uint32_t nthreads = 1;
};

} // namespace snf::workloads

#endif // SNF_WORKLOADS_WHISPER_ECHO_HH
