#include "workloads/whisper_ycsb.hh"

#include "sim/logging.hh"

namespace snf::workloads
{

void
WhisperYcsb::setup(System &sys, const WorkloadParams &params)
{
    nrecords = params.footprint != 0 ? params.footprint : 2048;
    records = sys.heap().alloc(nrecords * kRecordBytes, 64);
    locks = sys.dramHeap().alloc(nrecords * 8, 64);
    index = sys.dramHeap().alloc(nrecords * 16, 64);
    for (std::uint64_t k = 0; k < nrecords; ++k) {
        sys.heap().prewrite64(recordAddr(k), 1);
        for (std::uint64_t w = 0; w < kPayloadWords; ++w)
            sys.heap().prewrite64(recordAddr(k) + 8 + w * 8, 1);
    }
}

sim::Co<void>
WhisperYcsb::thread(System &sys, Thread &t,
                    const WorkloadParams &params)
{
    (void)sys;
    sim::Rng rng(params.seed * 7127 + t.id());
    sim::Zipf zipf(nrecords, 0.8);

    for (std::uint64_t n = 0; n < params.txPerThread; ++n) {
        std::uint64_t k = zipf.sample(rng);
        Addr rec = recordAddr(k);
        Addr lock = locks + k * 8;

        // Volatile index probe and request parsing (the DB engine
        // work around the persistent record access).
        co_await t.load64(index + k * 16);
        co_await t.load64(index + k * 16 + 8);
        co_await t.compute(70);

        if (rng.chance(0.5)) {
            // Read: whole-record scan (outside any transaction).
            co_await t.txBegin();
            for (std::uint64_t w = 0; w <= kPayloadWords; ++w)
                co_await t.load64(rec + w * 8);
            co_await t.compute(10);
            co_await t.txCommit();
        } else {
            // Update: lock, bump version, rewrite the payload.
            co_await t.lockAcquire(lock);
            co_await t.txBegin();
            std::uint64_t v = co_await t.load64(rec);
            std::uint64_t nv = v + 1;
            co_await t.store64(rec, nv);
            for (std::uint64_t w = 0; w < kPayloadWords; ++w)
                co_await t.store64(rec + 8 + w * 8, nv);
            co_await t.compute(12);
            co_await t.txCommit();
            co_await t.lockRelease(lock);
        }
    }
}

bool
WhisperYcsb::verify(const mem::BackingStore &nvram,
                    std::string *why) const
{
    for (std::uint64_t k = 0; k < nrecords; ++k) {
        Addr rec = recordAddr(k);
        std::uint64_t v = nvram.read64(rec);
        if (v == 0) {
            if (why)
                *why = strfmt("record %llu: zero version",
                              static_cast<unsigned long long>(k));
            return false;
        }
        for (std::uint64_t w = 0; w < kPayloadWords; ++w) {
            std::uint64_t pw = nvram.read64(rec + 8 + w * 8);
            if (pw != v) {
                if (why)
                    *why = strfmt("record %llu word %llu: %llu != "
                                  "version %llu (torn update)",
                                  static_cast<unsigned long long>(k),
                                  static_cast<unsigned long long>(w),
                                  static_cast<unsigned long long>(pw),
                                  static_cast<unsigned long long>(v));
                return false;
            }
        }
    }
    return true;
}

} // namespace snf::workloads
