/**
 * @file
 * WHISPER "hashmap" workload (N-store hashmap equivalent): the same
 * open-chain hash engine as the Hash microbenchmark, but with the
 * read-heavy operation mix of a key-value cache (70% lookups, 30%
 * mutations).
 */

#ifndef SNF_WORKLOADS_WHISPER_HASHMAP_HH
#define SNF_WORKLOADS_WHISPER_HASHMAP_HH

#include "workloads/hash.hh"

namespace snf::workloads
{

/** See file comment. */
class WhisperHashmap : public OpenChainHashBase
{
  public:
    std::string name() const override { return "hashmap"; }

  protected:
    double lookupFraction() const override { return 0.7; }
};

} // namespace snf::workloads

#endif // SNF_WORKLOADS_WHISPER_HASHMAP_HH
