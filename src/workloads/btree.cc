#include "workloads/btree.hh"

#include "sim/logging.hh"

namespace snf::workloads
{

Addr
BTree::allocNode(System &sys, bool leaf) const
{
    Addr n = sys.heap().alloc(nodeBytes(), 8);
    sys.heap().prewrite64(n + kIsLeaf, leaf ? 1 : 0);
    sys.heap().prewrite64(n + kNKeys, 0);
    return n;
}

void
BTree::setup(System &sys, const WorkloadParams &params)
{
    std::uint64_t elements =
        params.footprint != 0 ? params.footprint : 2048;
    nthreads = params.threads;
    valueWords = params.stringValues ? 8 : 1;
    keyspacePerThread = 2 * elements / nthreads;

    headers = sys.heap().alloc(nthreads * 16, 64);

    for (std::uint32_t tid = 0; tid < nthreads; ++tid) {
        // Preload odd keys into leaves functionally, then build the
        // internal levels bottom-up (half-full leaves).
        std::uint64_t n_init = keyspacePerThread / 2;
        std::vector<Addr> level;
        std::vector<std::uint64_t> firsts;
        std::uint64_t per_leaf = 4;
        Addr prev_leaf = 0;
        std::uint64_t count = 0;
        for (std::uint64_t k = 0; k < n_init;) {
            Addr leaf = allocNode(sys, true);
            std::uint64_t n = std::min(per_leaf, n_init - k);
            for (std::uint64_t i = 0; i < n; ++i) {
                std::uint64_t key = 2 * (k + i) + 1;
                sys.heap().prewrite64(keyAddr(leaf, i), key);
                for (std::uint64_t w = 0; w < valueWords; ++w)
                    sys.heap().prewrite64(valueAddr(leaf, i) + w * 8,
                                          key * 17 + w);
            }
            sys.heap().prewrite64(leaf + kNKeys, n);
            sys.heap().prewrite64(nextAddr(leaf), 0);
            if (prev_leaf != 0)
                sys.heap().prewrite64(nextAddr(prev_leaf), leaf);
            prev_leaf = leaf;
            level.push_back(leaf);
            firsts.push_back(2 * k + 1);
            count += n;
            k += n;
        }
        if (level.empty()) {
            level.push_back(allocNode(sys, true));
            firsts.push_back(0);
        }

        while (level.size() > 1) {
            std::vector<Addr> parents;
            std::vector<std::uint64_t> parent_firsts;
            std::uint64_t fanout = 4;
            for (std::uint64_t i = 0; i < level.size();) {
                std::uint64_t n =
                    std::min<std::uint64_t>(fanout, level.size() - i);
                if (level.size() - i - n == 1)
                    ++n; // avoid a single-child rightmost parent
                Addr node = allocNode(sys, false);
                sys.heap().prewrite64(node + kNKeys, n - 1);
                for (std::uint64_t c = 0; c < n; ++c) {
                    sys.heap().prewrite64(childAddr(node, c),
                                          level[i + c]);
                    if (c > 0)
                        sys.heap().prewrite64(keyAddr(node, c - 1),
                                              firsts[i + c]);
                }
                parents.push_back(node);
                parent_firsts.push_back(firsts[i]);
                i += n;
            }
            level = std::move(parents);
            firsts = std::move(parent_firsts);
        }

        sys.heap().prewrite64(headerAddr(tid) + 0, level[0]);
        sys.heap().prewrite64(headerAddr(tid) + 8, count);
    }
}

sim::Co<BTree::SplitResult>
BTree::insertRec(System &sys, Thread &t, Addr node, std::uint64_t key,
                 sim::Rng &rng)
{
    SplitResult out;
    bool is_leaf = (co_await t.load64(node + kIsLeaf)) != 0;
    std::uint64_t n = co_await t.load64(node + kNKeys);

    if (is_leaf) {
        // Find position.
        std::uint64_t pos = 0;
        while (pos < n) {
            std::uint64_t k = co_await t.load64(keyAddr(node, pos));
            co_await t.compute(2);
            if (k == key) {
                // Already present: nothing to do (caller removes).
                out.inserted = false;
                co_return out;
            }
            if (k > key)
                break;
            ++pos;
        }
        // Shift keys and values right.
        for (std::uint64_t i = n; i > pos; --i) {
            std::uint64_t k = co_await t.load64(keyAddr(node, i - 1));
            co_await t.store64(keyAddr(node, i), k);
            for (std::uint64_t w = 0; w < valueWords; ++w) {
                std::uint64_t v = co_await t.load64(
                    valueAddr(node, i - 1) + w * 8);
                co_await t.store64(valueAddr(node, i) + w * 8, v);
            }
        }
        co_await t.store64(keyAddr(node, pos), key);
        for (std::uint64_t w = 0; w < valueWords; ++w)
            co_await t.store64(valueAddr(node, pos) + w * 8,
                               rng.next());
        ++n;
        co_await t.store64(node + kNKeys, n);
        out.inserted = true;

        if (n > kMaxKeys) {
            // Split the leaf: right half moves to a new node.
            Addr right = sys.heap().alloc(nodeBytes(), 8);
            std::uint64_t half = n / 2;
            co_await t.store64(right + kIsLeaf, 1);
            for (std::uint64_t i = half; i < n; ++i) {
                std::uint64_t k =
                    co_await t.load64(keyAddr(node, i));
                co_await t.store64(keyAddr(right, i - half), k);
                for (std::uint64_t w = 0; w < valueWords; ++w) {
                    std::uint64_t v = co_await t.load64(
                        valueAddr(node, i) + w * 8);
                    co_await t.store64(
                        valueAddr(right, i - half) + w * 8, v);
                }
            }
            co_await t.store64(right + kNKeys, n - half);
            co_await t.store64(node + kNKeys, half);
            std::uint64_t next = co_await t.load64(nextAddr(node));
            co_await t.store64(nextAddr(right), next);
            co_await t.store64(nextAddr(node), right);
            out.split = true;
            out.key = co_await t.load64(keyAddr(right, 0));
            out.right = right;
        }
        co_return out;
    }

    // Internal node: descend.
    std::uint64_t pos = 0;
    while (pos < n) {
        std::uint64_t k = co_await t.load64(keyAddr(node, pos));
        co_await t.compute(2);
        if (key < k)
            break;
        ++pos;
    }
    Addr child = co_await t.load64(childAddr(node, pos));
    SplitResult sub = co_await insertRec(sys, t, child, key, rng);
    out.inserted = sub.inserted;
    if (!sub.split)
        co_return out;

    // Insert (sub.key, sub.right) after position pos.
    for (std::uint64_t i = n; i > pos; --i) {
        std::uint64_t k = co_await t.load64(keyAddr(node, i - 1));
        co_await t.store64(keyAddr(node, i), k);
        Addr c = co_await t.load64(childAddr(node, i));
        co_await t.store64(childAddr(node, i + 1), c);
    }
    co_await t.store64(keyAddr(node, pos), sub.key);
    co_await t.store64(childAddr(node, pos + 1), sub.right);
    ++n;
    co_await t.store64(node + kNKeys, n);

    if (n > kMaxKeys) {
        // Split the internal node; the middle key moves up.
        Addr right = sys.heap().alloc(nodeBytes(), 8);
        std::uint64_t mid = n / 2;
        co_await t.store64(right + kIsLeaf, 0);
        std::uint64_t moved = n - mid - 1;
        for (std::uint64_t i = 0; i < moved; ++i) {
            std::uint64_t k =
                co_await t.load64(keyAddr(node, mid + 1 + i));
            co_await t.store64(keyAddr(right, i), k);
        }
        for (std::uint64_t i = 0; i <= moved; ++i) {
            Addr c = co_await t.load64(childAddr(node, mid + 1 + i));
            co_await t.store64(childAddr(right, i), c);
        }
        co_await t.store64(right + kNKeys, moved);
        out.key = co_await t.load64(keyAddr(node, mid));
        co_await t.store64(node + kNKeys, mid);
        out.split = true;
        out.right = right;
    }
    co_return out;
}

sim::Co<bool>
BTree::removeFromLeaf(Thread &t, Addr node, std::uint64_t key)
{
    std::uint64_t n = co_await t.load64(node + kNKeys);
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t k = co_await t.load64(keyAddr(node, i));
        co_await t.compute(2);
        if (k != key)
            continue;
        // Shift left (lazy deletion: no rebalancing).
        for (std::uint64_t j = i + 1; j < n; ++j) {
            std::uint64_t kk = co_await t.load64(keyAddr(node, j));
            co_await t.store64(keyAddr(node, j - 1), kk);
            for (std::uint64_t w = 0; w < valueWords; ++w) {
                std::uint64_t v =
                    co_await t.load64(valueAddr(node, j) + w * 8);
                co_await t.store64(valueAddr(node, j - 1) + w * 8,
                                   v);
            }
        }
        co_await t.store64(node + kNKeys, n - 1);
        co_return true;
    }
    co_return false;
}

sim::Co<void>
BTree::thread(System &sys, Thread &t, const WorkloadParams &params)
{
    sim::Rng rng(params.seed * 31337 + t.id());
    Addr hdr = headerAddr(t.id());

    for (std::uint64_t n = 0; n < params.txPerThread; ++n) {
        std::uint64_t key = rng.below(keyspacePerThread) + 1;

        co_await t.txBegin();
        co_await t.compute(10);

        // Descend to the leaf for `key`.
        Addr root = co_await t.load64(hdr + 0);
        Addr node = root;
        while ((co_await t.load64(node + kIsLeaf)) == 0) {
            std::uint64_t nk = co_await t.load64(node + kNKeys);
            std::uint64_t pos = 0;
            while (pos < nk) {
                std::uint64_t k =
                    co_await t.load64(keyAddr(node, pos));
                co_await t.compute(2);
                if (key < k)
                    break;
                ++pos;
            }
            node = co_await t.load64(childAddr(node, pos));
        }

        bool removed = co_await removeFromLeaf(t, node, key);
        if (removed) {
            std::uint64_t count = co_await t.load64(hdr + 8);
            co_await t.store64(hdr + 8, count - 1);
        } else {
            SplitResult res =
                co_await insertRec(sys, t, root, key, rng);
            if (res.split) {
                // Grow a new root.
                Addr new_root = sys.heap().alloc(nodeBytes(), 8);
                co_await t.store64(new_root + kIsLeaf, 0);
                co_await t.store64(new_root + kNKeys, 1);
                co_await t.store64(keyAddr(new_root, 0), res.key);
                co_await t.store64(childAddr(new_root, 0), root);
                co_await t.store64(childAddr(new_root, 1),
                                   res.right);
                co_await t.store64(hdr + 0, new_root);
            }
            if (res.inserted) {
                std::uint64_t count = co_await t.load64(hdr + 8);
                co_await t.store64(hdr + 8, count + 1);
            }
        }
        co_await t.txCommit();
    }
}

int
BTree::checkNode(const mem::BackingStore &nvram, Addr node,
                 std::uint64_t lo, std::uint64_t hi,
                 std::uint64_t &leafKeys, std::string *why) const
{
    bool is_leaf = nvram.read64(node + kIsLeaf) != 0;
    std::uint64_t n = nvram.read64(node + kNKeys);
    if (n > kMaxKeys) {
        if (why)
            *why = strfmt("node with %llu keys",
                          static_cast<unsigned long long>(n));
        return -1;
    }
    std::uint64_t prev = lo;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t k = nvram.read64(keyAddr(node, i));
        if (k < prev || k >= hi || (i > 0 && k == prev)) {
            if (why)
                *why = strfmt("key order violated (key %llu)",
                              static_cast<unsigned long long>(k));
            return -1;
        }
        prev = k;
    }
    if (is_leaf) {
        leafKeys += n;
        return 1;
    }
    int depth = -2;
    for (std::uint64_t c = 0; c <= n; ++c) {
        Addr child = nvram.read64(childAddr(node, c));
        if (child == 0) {
            if (why)
                *why = "null child in internal node";
            return -1;
        }
        std::uint64_t c_lo =
            c == 0 ? lo : nvram.read64(keyAddr(node, c - 1));
        std::uint64_t c_hi =
            c == n ? hi : nvram.read64(keyAddr(node, c));
        int d = checkNode(nvram, child, c_lo, c_hi, leafKeys, why);
        if (d < 0)
            return -1;
        if (depth == -2)
            depth = d;
        else if (d != depth) {
            if (why)
                *why = "non-uniform leaf depth";
            return -1;
        }
    }
    return depth + 1;
}

bool
BTree::verify(const mem::BackingStore &nvram, std::string *why) const
{
    for (std::uint32_t tid = 0; tid < nthreads; ++tid) {
        Addr hdr = headerAddr(tid);
        Addr root = nvram.read64(hdr + 0);
        std::uint64_t expected = nvram.read64(hdr + 8);
        std::uint64_t leaf_keys = 0;
        if (checkNode(nvram, root, 0, ~0ULL, leaf_keys, why) < 0)
            return false;
        if (leaf_keys != expected) {
            if (why)
                *why = strfmt("tree %u: %llu keys but count %llu",
                              tid,
                              static_cast<unsigned long long>(
                                  leaf_keys),
                              static_cast<unsigned long long>(
                                  expected));
            return false;
        }
    }
    return true;
}

} // namespace snf::workloads
