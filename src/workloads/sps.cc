#include "workloads/sps.hh"

#include <vector>

#include "sim/logging.hh"

namespace snf::workloads
{

void
Sps::setup(System &sys, const WorkloadParams &params)
{
    count = params.footprint != 0 ? params.footprint : 4096;
    // String variant: each element is a 64-byte value (one line);
    // integer variant: one word.
    wordsPerElement = params.stringValues ? 8 : 1;
    base = sys.heap().alloc(count * wordsPerElement * 8, 64);

    expectedSum = 0;
    expectedXor = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        // Every word of an element carries the element's value so the
        // invariant covers multi-word swaps.
        for (std::uint64_t w = 0; w < wordsPerElement; ++w)
            sys.heap().prewrite64(base + (i * wordsPerElement + w) * 8,
                                  i + 1);
        expectedSum += i + 1;
        expectedXor ^= i + 1;
    }
}

sim::Co<void>
Sps::thread(System &sys, Thread &t, const WorkloadParams &params)
{
    (void)sys;
    sim::Rng rng(params.seed * 1000003 + t.id());
    // Threads swap within disjoint partitions: the multiset invariant
    // must hold without inter-thread synchronization, exactly as the
    // one-transaction-per-thread pattern of paper Figure 4.
    std::uint64_t share = count / params.threads;
    SNF_ASSERT(share > 1, "sps partition too small");
    std::uint64_t lo = t.id() * share;
    for (std::uint64_t n = 0; n < params.txPerThread; ++n) {
        std::uint64_t i = lo + rng.below(share);
        std::uint64_t j = lo + rng.below(share);
        Addr ai = base + i * wordsPerElement * 8;
        Addr aj = base + j * wordsPerElement * 8;

        co_await t.txBegin();
        co_await t.compute(12); // index arithmetic, bounds checks
        for (std::uint64_t w = 0; w < wordsPerElement; ++w) {
            std::uint64_t vi = co_await t.load64(ai + w * 8);
            std::uint64_t vj = co_await t.load64(aj + w * 8);
            co_await t.store64(ai + w * 8, vj);
            co_await t.store64(aj + w * 8, vi);
        }
        co_await t.txCommit();
    }
}

bool
Sps::verify(const mem::BackingStore &nvram, std::string *why) const
{
    std::uint64_t sum = 0;
    std::uint64_t x = 0;
    // One bulk read of the whole array: verification runs once per
    // crash image, and a word-at-a-time loop was the hottest call
    // site of BackingStore::read in sweep profiles.
    std::vector<std::uint64_t> words(count * wordsPerElement);
    nvram.read(base, words.size() * 8, words.data());
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t first = words[i * wordsPerElement];
        sum += first;
        x ^= first;
        // All words of one element must agree (swap atomicity).
        for (std::uint64_t w = 1; w < wordsPerElement; ++w) {
            std::uint64_t v = words[i * wordsPerElement + w];
            if (v != first) {
                if (why)
                    *why = strfmt("element %llu word %llu: %llu != "
                                  "%llu (torn swap)",
                                  static_cast<unsigned long long>(i),
                                  static_cast<unsigned long long>(w),
                                  static_cast<unsigned long long>(v),
                                  static_cast<unsigned long long>(
                                      first));
                return false;
            }
        }
    }
    if (sum != expectedSum || x != expectedXor) {
        if (why)
            *why = strfmt("aggregate mismatch: sum %llu/%llu xor "
                          "%llu/%llu",
                          static_cast<unsigned long long>(sum),
                          static_cast<unsigned long long>(expectedSum),
                          static_cast<unsigned long long>(x),
                          static_cast<unsigned long long>(expectedXor));
        return false;
    }
    return true;
}

} // namespace snf::workloads
