/**
 * @file
 * Program-driven workload adapter: runs a conformlab transaction
 * program (fixed or generated from the run seed) through the standard
 * Workload interface, so random programs plug into the driver, the
 * crash sweep, and the differential runner unchanged.
 */

#ifndef SNF_WORKLOADS_PROG_HH
#define SNF_WORKLOADS_PROG_HH

#include <memory>
#include <vector>

#include "conformlab/oracle.hh"
#include "conformlab/program.hh"
#include "workloads/workload.hh"

namespace snf::workloads
{

/** See file comment. */
class ProgWorkload : public Workload
{
  public:
    /** Generate the program from WorkloadParams at setup() time
     *  (snfsim/snfcrash `--workload prog`): params.seed is the
     *  program seed, params.threads the thread count, and
     *  params.footprint (if nonzero) the partition size. */
    ProgWorkload() = default;

    /** Run a fixed program (conformlab differential runner). */
    explicit ProgWorkload(conformlab::Program p);

    std::string name() const override { return "prog"; }

    void setup(System &sys, const WorkloadParams &params) override;

    sim::Co<void> thread(System &sys, Thread &t,
                         const WorkloadParams &params) override;

    /**
     * Model-consistency check: every thread partition must equal the
     * oracle applied to some prefix of that thread's committed
     * transactions. Sound for graceful images (the full prefix) and
     * recovered crash images alike; the differential runner layers
     * the durable/initiated bounds on top via txSeqOf().
     */
    bool verify(const mem::BackingStore &nvram,
                std::string *why) const override;

    const conformlab::Program &program() const { return prog; }

    const conformlab::ModelOracle &oracle() const { return *model; }

    /** NVRAM address of a global slot (valid after setup). */
    Addr
    slotAddr(std::uint32_t globalSlot) const
    {
        return base + static_cast<Addr>(globalSlot) * 8;
    }

    /**
     * Tracker sequence number the run assigned to program tx @p i
     * (0 until that tx_begin executed). Lets the differential runner
     * match probe events back to program transactions.
     */
    std::uint64_t txSeqOf(std::size_t i) const { return txSeqs[i]; }

  private:
    conformlab::Program prog;
    bool fixedProgram = false;
    std::unique_ptr<conformlab::ModelOracle> model;
    Addr base = 0;
    std::vector<std::uint64_t> txSeqs;
};

} // namespace snf::workloads

#endif // SNF_WORKLOADS_PROG_HH
