/**
 * @file
 * Program-driven workload adapter: runs a conformlab transaction
 * program (fixed or generated from the run seed) through the standard
 * Workload interface, so random programs plug into the driver, the
 * crash sweep, and the differential runner unchanged.
 *
 * Layout: private slots are packed 8 bytes apart (partition
 * boundaries may share a cache line — under a CC scheme that only
 * costs false-conflict waits). Each shared slot sits on its own
 * 64-byte line, so the tracker's per-line locks are per-slot locks
 * and deadlock/conflict structure in a program survives translation
 * to addresses exactly.
 *
 * Execution: ops go through the CC-aware txStore64/txLoad64. When an
 * access reports deadlock, or txCommit() diverts to rollback
 * (log-full victim or TL2 validation failure), the transaction is
 * retried from tx_begin with exponential backoff — the standard
 * abort-retry discipline. txSeqOf() reports the *final* attempt's
 * tracker sequence.
 */

#ifndef SNF_WORKLOADS_PROG_HH
#define SNF_WORKLOADS_PROG_HH

#include <memory>
#include <vector>

#include "conformlab/oracle.hh"
#include "conformlab/program.hh"
#include "workloads/workload.hh"

namespace snf::workloads
{

/** See file comment. */
class ProgWorkload : public Workload
{
  public:
    /** Generate the program from WorkloadParams at setup() time
     *  (snfsim/snfcrash `--workload prog`): params.seed is the
     *  program seed, params.threads the thread count,
     *  params.footprint (if nonzero) the partition size, and
     *  params.conflictRate the shared-region targeting rate. */
    ProgWorkload() = default;

    /** Run a fixed program (conformlab differential runner). */
    explicit ProgWorkload(conformlab::Program p);

    std::string name() const override { return "prog"; }

    void setup(System &sys, const WorkloadParams &params) override;

    sim::Co<void> thread(System &sys, Thread &t,
                         const WorkloadParams &params) override;

    /**
     * Model-consistency check: every thread partition must equal the
     * oracle applied to some prefix of that thread's committed
     * transactions, and every shared slot must hold one of its
     * candidate values (init or some committed transaction's last
     * write). Sound for graceful images (the full prefix) and
     * recovered crash images alike; the differential runner layers
     * the durable/initiated bounds — and the exact commit-order
     * serializability check for shared slots — on top via txSeqOf().
     */
    bool verify(const mem::BackingStore &nvram,
                std::string *why) const override;

    const conformlab::Program &program() const { return prog; }

    const conformlab::ModelOracle &oracle() const { return *model; }

    /** NVRAM address of a global slot (valid after setup). */
    Addr
    slotAddr(std::uint32_t globalSlot) const
    {
        if (globalSlot < prog.privateSlots())
            return base + static_cast<Addr>(globalSlot) * 8;
        return sharedBase +
               static_cast<Addr>(globalSlot - prog.privateSlots()) *
                   64;
    }

    /** First heap byte the program touches (valid after setup). */
    Addr heapBase() const { return base; }

    /** Bytes from heapBase() to one past the last slot. */
    std::uint64_t
    heapSpanBytes() const
    {
        Addr end = prog.sharedSlots != 0
                       ? sharedBase + static_cast<Addr>(
                                          prog.sharedSlots - 1) *
                                          64 +
                             8
                       : base + static_cast<Addr>(
                                    prog.privateSlots()) *
                                    8;
        return end - base;
    }

    /**
     * Tracker sequence number the run assigned to program tx @p i
     * (0 until that tx_begin executed; the final attempt after
     * abort-retry). Lets the differential runner match probe events
     * back to program transactions.
     */
    std::uint64_t txSeqOf(std::size_t i) const { return txSeqs[i]; }

    /**
     * Values the final attempt of program tx @p i loaded, one entry
     * per op (non-load positions hold 0). Feed to
     * SerialOracle::checkReads.
     */
    const std::vector<std::uint64_t> &
    readsOf(std::size_t i) const
    {
        return readObs[i];
    }

  private:
    conformlab::Program prog;
    bool fixedProgram = false;
    std::unique_ptr<conformlab::ModelOracle> model;
    Addr base = 0;
    Addr sharedBase = 0;
    std::vector<std::uint64_t> txSeqs;
    std::vector<std::vector<std::uint64_t>> readObs;
};

} // namespace snf::workloads

#endif // SNF_WORKLOADS_PROG_HH
