#include "workloads/whisper_tpcc.hh"

#include "sim/logging.hh"

namespace snf::workloads
{

void
WhisperTpcc::setup(System &sys, const WorkloadParams &params)
{
    nthreads = params.threads;
    // Two districts per thread; each thread serves its own districts
    // (TPC-C's home-warehouse affinity).
    ndistricts = 2 * nthreads;
    maxOrdersPerDistrict =
        params.txPerThread + 16; // worst case: all to one district

    districts = sys.heap().alloc(ndistricts * kDistrictBytes, 64);
    // Volatile item/stock tables live in DRAM (non-persistent reads
    // dominate real TPC-C; WHISPER reports only a small fraction of
    // accesses touch persistent memory).
    itemTable = sys.dramHeap().alloc(kItemTableBytes, 64);
    orders = sys.heap().alloc(
        ndistricts * maxOrdersPerDistrict * kOrderBytes, 64);
    for (std::uint64_t d = 0; d < ndistricts; ++d) {
        sys.heap().prewrite64(districtAddr(d) + 0, 0);
        sys.heap().prewrite64(districtAddr(d) + 8, 0);
    }
}

sim::Co<void>
WhisperTpcc::thread(System &sys, Thread &t,
                    const WorkloadParams &params)
{
    (void)sys;
    sim::Rng rng(params.seed * 2971 + t.id());

    for (std::uint64_t n = 0; n < params.txPerThread; ++n) {
        std::uint64_t d = 2 * t.id() + rng.below(2);
        std::uint64_t nlines = rng.range(5, kMaxLines);

        co_await t.txBegin();
        co_await t.compute(120); // input parsing, customer lookup

        // Read the district, allocate the order id.
        std::uint64_t oid = co_await t.load64(districtAddr(d) + 0);
        std::uint64_t ytd = co_await t.load64(districtAddr(d) + 8);

        Addr order = orderAddr(d, oid);
        std::uint64_t total = 0;
        for (std::uint64_t l = 0; l < nlines; ++l) {
            std::uint64_t item = rng.range(1, 100000);
            std::uint64_t amount = rng.range(1, 9999);
            // Item and stock lookups in volatile DRAM tables.
            co_await t.load64(itemTable +
                              (item * 64) % kItemTableBytes);
            co_await t.load64(itemTable +
                              (item * 128 + 32) % kItemTableBytes);
            co_await t.compute(45); // pricing, tax, stock math
            co_await t.store64(order + 24 + l * 16, item);
            co_await t.store64(order + 24 + l * 16 + 8, amount);
            total += amount;
        }
        co_await t.store64(order + 8, nlines);
        co_await t.store64(order + 16, total);
        co_await t.store64(order + 0, oid + 1); // stamp: oid+1 != 0

        co_await t.store64(districtAddr(d) + 0, oid + 1);
        co_await t.store64(districtAddr(d) + 8, ytd + total);

        co_await t.txCommit();
    }
}

bool
WhisperTpcc::verify(const mem::BackingStore &nvram,
                    std::string *why) const
{
    for (std::uint64_t d = 0; d < ndistricts; ++d) {
        std::uint64_t next_oid = nvram.read64(districtAddr(d) + 0);
        std::uint64_t ytd = nvram.read64(districtAddr(d) + 8);
        std::uint64_t sum = 0;
        for (std::uint64_t oid = 0; oid < next_oid; ++oid) {
            Addr order = orderAddr(d, oid);
            std::uint64_t stamp = nvram.read64(order + 0);
            std::uint64_t nlines = nvram.read64(order + 8);
            std::uint64_t total = nvram.read64(order + 16);
            if (stamp != oid + 1) {
                if (why)
                    *why = strfmt("district %llu order %llu: missing "
                                  "or misstamped record",
                                  static_cast<unsigned long long>(d),
                                  static_cast<unsigned long long>(
                                      oid));
                return false;
            }
            if (nlines < 5 || nlines > kMaxLines) {
                if (why)
                    *why = strfmt("district %llu order %llu: bad "
                                  "line count",
                                  static_cast<unsigned long long>(d),
                                  static_cast<unsigned long long>(
                                      oid));
                return false;
            }
            std::uint64_t line_sum = 0;
            for (std::uint64_t l = 0; l < nlines; ++l)
                line_sum += nvram.read64(order + 24 + l * 16 + 8);
            if (line_sum != total) {
                if (why)
                    *why = strfmt("district %llu order %llu: line "
                                  "sum mismatch",
                                  static_cast<unsigned long long>(d),
                                  static_cast<unsigned long long>(
                                      oid));
                return false;
            }
            sum += total;
        }
        if (sum != ytd) {
            if (why)
                *why = strfmt("district %llu: ytd %llu != order sum "
                              "%llu",
                              static_cast<unsigned long long>(d),
                              static_cast<unsigned long long>(ytd),
                              static_cast<unsigned long long>(sum));
            return false;
        }
        // Orders beyond next_oid must not be stamped (no phantom
        // commits after a crash).
        if (next_oid < maxOrdersPerDistrict &&
            nvram.read64(orderAddr(d, next_oid)) != 0) {
            if (why)
                *why = strfmt("district %llu: phantom order %llu",
                              static_cast<unsigned long long>(d),
                              static_cast<unsigned long long>(
                                  next_oid));
            return false;
        }
    }
    return true;
}

} // namespace snf::workloads
