#include "workloads/whisper_echo.hh"

#include "sim/logging.hh"

namespace snf::workloads
{

void
WhisperEcho::setup(System &sys, const WorkloadParams &params)
{
    nthreads = params.threads;
    perThread = params.txPerThread;
    heads = sys.heap().alloc(nthreads * 8, 64);
    connState = sys.dramHeap().alloc(nthreads * 4096, 64);
    slots = sys.heap().alloc(nthreads * perThread * kMsgBytes, 64);
    for (std::uint32_t tid = 0; tid < nthreads; ++tid)
        sys.heap().prewrite64(queueHeadAddr(tid), 0);
}

sim::Co<void>
WhisperEcho::thread(System &sys, Thread &t,
                    const WorkloadParams &params)
{
    (void)sys;
    sim::Rng rng(params.seed * 15013 + t.id());

    for (std::uint64_t n = 0; n < params.txPerThread; ++n) {
        // Parse and checksum the message against volatile
        // connection state before the persistent append.
        co_await t.load64(connState + t.id() * 4096 +
                          (n * 64) % 4096);
        co_await t.load64(connState + t.id() * 4096 +
                          ((n * 192 + 64) % 4096));
        co_await t.load64(connState + t.id() * 4096 +
                          ((n * 320 + 128) % 4096));
        co_await t.compute(1200); // epoch + allocation + hashing

        co_await t.txBegin();

        std::uint64_t head =
            co_await t.load64(queueHeadAddr(t.id()));
        Addr msg = msgAddr(t.id(), head);

        std::uint64_t body0 = rng.next();
        std::uint64_t body1 = rng.next();
        std::uint64_t body2 = rng.next();
        co_await t.store64(msg + 0, head + 1); // seq stamp
        co_await t.store64(msg + 8, body0);
        co_await t.store64(msg + 16, body1);
        co_await t.store64(msg + 24, body2);
        co_await t.store64(msg + 32, body0 ^ body1 ^ body2);
        co_await t.store64(queueHeadAddr(t.id()), head + 1);

        co_await t.txCommit();
    }
}

bool
WhisperEcho::verify(const mem::BackingStore &nvram,
                    std::string *why) const
{
    for (std::uint32_t tid = 0; tid < nthreads; ++tid) {
        std::uint64_t head = nvram.read64(queueHeadAddr(tid));
        if (head > perThread) {
            if (why)
                *why = strfmt("queue %u: head %llu out of range", tid,
                              static_cast<unsigned long long>(head));
            return false;
        }
        for (std::uint64_t i = 0; i < head; ++i) {
            Addr msg = msgAddr(tid, i);
            std::uint64_t seq = nvram.read64(msg + 0);
            std::uint64_t b0 = nvram.read64(msg + 8);
            std::uint64_t b1 = nvram.read64(msg + 16);
            std::uint64_t b2 = nvram.read64(msg + 24);
            std::uint64_t sum = nvram.read64(msg + 32);
            if (seq != i + 1 || sum != (b0 ^ b1 ^ b2)) {
                if (why)
                    *why = strfmt("queue %u msg %llu: torn append",
                                  tid,
                                  static_cast<unsigned long long>(i));
                return false;
            }
        }
        // The slot past the head must be unstamped.
        if (head < perThread &&
            nvram.read64(msgAddr(tid, head)) != 0) {
            if (why)
                *why = strfmt("queue %u: phantom message", tid);
            return false;
        }
    }
    return true;
}

} // namespace snf::workloads
