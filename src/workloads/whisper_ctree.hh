/**
 * @file
 * WHISPER "ctree" workload (pmemobj ctree equivalent): an unbalanced
 * binary search tree in persistent memory with insert-if-absent /
 * remove-if-found transactions. Structurally simpler than the RBTree
 * microbenchmark (no rebalancing, as in pmem's crit-bit tree), with a
 * per-thread tree and a persistent node count.
 */

#ifndef SNF_WORKLOADS_WHISPER_CTREE_HH
#define SNF_WORKLOADS_WHISPER_CTREE_HH

#include "workloads/workload.hh"

namespace snf::workloads
{

/** See file comment. */
class WhisperCtree : public Workload
{
  public:
    std::string name() const override { return "ctree"; }

    void setup(System &sys, const WorkloadParams &params) override;

    sim::Co<void> thread(System &sys, Thread &t,
                         const WorkloadParams &params) override;

    bool verify(const mem::BackingStore &nvram,
                std::string *why) const override;

  private:
    // Node layout: key(8) | left(8) | right(8) | value...
    static constexpr std::uint64_t kKey = 0;
    static constexpr std::uint64_t kLeft = 8;
    static constexpr std::uint64_t kRight = 16;
    static constexpr std::uint64_t kValue = 24;

    std::uint64_t nodeBytes() const { return 24 + valueWords * 8; }

    Addr headerAddr(std::uint32_t tid) const
    {
        return headers + tid * 16; // root(8) | count(8)
    }

    bool checkSubtree(const mem::BackingStore &nvram, Addr node,
                      std::uint64_t lo, std::uint64_t hi,
                      std::uint64_t &count, std::string *why) const;

    Addr headers = 0;
    std::uint32_t nthreads = 1;
    std::uint64_t valueWords = 1;
    std::uint64_t keyspacePerThread = 0;
};

} // namespace snf::workloads

#endif // SNF_WORKLOADS_WHISPER_CTREE_HH
