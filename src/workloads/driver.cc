#include "workloads/driver.hh"

#include "sim/logging.hh"

namespace snf::workloads
{

RunOutcome
runWorkload(const RunSpec &spec)
{
    RunOutcome out;

    SystemConfig cfg = spec.sys;
    if (spec.params.threads > cfg.numCores)
        fatal("%u threads but only %u cores", spec.params.threads,
              cfg.numCores);
    if (spec.crashAt && !cfg.persist.crashJournal)
        fatal("crash runs need PersistConfig::crashJournal");

    System sys(cfg, spec.mode);
    auto workload = makeWorkload(spec.workload);
    workload->setup(sys, spec.params);

    for (CoreId c = 0; c < spec.params.threads; ++c) {
        sys.spawn(c, [&](Thread &t) -> sim::Co<void> {
            return workload->thread(sys, t, spec.params);
        });
    }

    Tick stop = spec.crashAt ? *spec.crashAt : kTickNever;
    out.endTick = sys.run(stop);

    if (spec.crashAt && out.endTick >= *spec.crashAt) {
        out.crashed = true;
        // Power failure: volatile state (caches, log buffer, WCB,
        // store buffers) is lost; the NVRAM image is whatever had
        // completed by the crash instant.
        mem::BackingStore image = sys.crashSnapshot(*spec.crashAt);
        out.recovery = persist::Recovery::run(image, sys.config().map,
                                              spec.recovery);
        if (spec.verifyAtEnd)
            out.verified = workload->verify(image,
                                            &out.verifyMessage);
        out.stats = sys.collectStats(out.endTick);
        return out;
    }

    // Statistics reflect the measured run only; the final flush
    // exists to expose a complete NVRAM image for verification and
    // is NOT part of the workload's execution time (the paper
    // measures steady-state transaction throughput).
    out.stats = sys.collectStats(out.endTick);
    if (spec.flushAtEnd) {
        sys.flushAll(out.endTick);
        // Media faults are diagnostics, not timing statistics: the
        // final flush writes every dirty line, so damage injected
        // there must show in the count the verifier's image reflects.
        out.stats.faultsInjected =
            sys.collectStats(out.endTick).faultsInjected;
    }
    if (spec.verifyAtEnd)
        out.verified = workload->verify(sys.mem().nvram().store(),
                                        &out.verifyMessage);
    return out;
}

} // namespace snf::workloads
