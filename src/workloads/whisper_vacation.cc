#include "workloads/whisper_vacation.hh"

#include "sim/logging.hh"

namespace snf::workloads
{

void
WhisperVacation::setup(System &sys, const WorkloadParams &params)
{
    nthreads = params.threads;
    nresources = params.footprint != 0 ? params.footprint : 256;
    ncustomers = 8 * nthreads;

    resources = sys.heap().alloc(nresources * kResourceBytes, 64);
    customers = sys.heap().alloc(ncustomers * kCustomerBytes, 64);
    locks = sys.dramHeap().alloc(nresources * 8, 64);
    searchCache = sys.dramHeap().alloc(nresources * 32, 64);

    sim::Rng rng(params.seed);
    for (std::uint64_t r = 0; r < nresources; ++r) {
        std::uint64_t total = rng.range(50, 200);
        sys.heap().prewrite64(resourceAddr(r) + 0, total);
        sys.heap().prewrite64(resourceAddr(r) + 8, total);
        sys.heap().prewrite64(resourceAddr(r) + 16,
                              rng.range(50, 500));
    }
    for (std::uint64_t c = 0; c < ncustomers; ++c)
        sys.heap().prewrite64(customerAddr(c), 0);
}

sim::Co<void>
WhisperVacation::thread(System &sys, Thread &t,
                        const WorkloadParams &params)
{
    (void)sys;
    sim::Rng rng(params.seed * 9176 + t.id());
    sim::Zipf zipf(nresources, 0.7);
    std::uint64_t cust_per_thread = ncustomers / nthreads;
    std::uint64_t cust_lo = t.id() * cust_per_thread;

    for (std::uint64_t n = 0; n < params.txPerThread; ++n) {
        std::uint64_t c = cust_lo + rng.below(cust_per_thread);
        Addr cust = customerAddr(c);
        bool reserve = rng.chance(0.75);

        if (reserve) {
            std::uint64_t r = zipf.sample(rng);
            Addr res = resourceAddr(r);
            // Itinerary search over the volatile price cache.
            for (int probe = 0; probe < 4; ++probe)
                co_await t.load64(searchCache +
                                  ((r + probe * 37) % nresources) *
                                      32);
            co_await t.compute(90);
            co_await t.lockAcquire(locks + r * 8);
            co_await t.txBegin();
            co_await t.compute(25); // final pricing

            std::uint64_t avail = co_await t.load64(res + 8);
            std::uint64_t count = co_await t.load64(cust);
            co_await t.load64(res + 16); // price
            if (avail > 0 && count < kMaxReservations) {
                co_await t.store64(res + 8, avail - 1);
                co_await t.store64(cust + 8 + count * 8, r + 1);
                co_await t.store64(cust, count + 1);
            }
            co_await t.txCommit();
            co_await t.lockRelease(locks + r * 8);
        } else {
            // Cancel the customer's most recent reservation.
            std::uint64_t count =
                sys.heap().peek64(cust); // pre-probe for lock choice
            if (count == 0)
                continue;
            std::uint64_t rid =
                sys.heap().peek64(cust + 8 + (count - 1) * 8);
            if (rid == 0)
                continue;
            std::uint64_t r = rid - 1;
            Addr res = resourceAddr(r);
            co_await t.lockAcquire(locks + r * 8);
            co_await t.txBegin();
            co_await t.compute(15);

            std::uint64_t cur_count = co_await t.load64(cust);
            if (cur_count > 0) {
                std::uint64_t cur_rid = co_await t.load64(
                    cust + 8 + (cur_count - 1) * 8);
                if (cur_rid == rid) {
                    std::uint64_t avail = co_await t.load64(res + 8);
                    co_await t.store64(res + 8, avail + 1);
                    co_await t.store64(
                        cust + 8 + (cur_count - 1) * 8, 0);
                    co_await t.store64(cust, cur_count - 1);
                }
            }
            co_await t.txCommit();
            co_await t.lockRelease(locks + r * 8);
        }
    }
}

bool
WhisperVacation::verify(const mem::BackingStore &nvram,
                        std::string *why) const
{
    std::vector<std::uint64_t> held(nresources, 0);
    for (std::uint64_t c = 0; c < ncustomers; ++c) {
        std::uint64_t count = nvram.read64(customerAddr(c));
        if (count > kMaxReservations) {
            if (why)
                *why = strfmt("customer %llu: count %llu",
                              static_cast<unsigned long long>(c),
                              static_cast<unsigned long long>(count));
            return false;
        }
        for (std::uint64_t i = 0; i < count; ++i) {
            std::uint64_t rid =
                nvram.read64(customerAddr(c) + 8 + i * 8);
            if (rid == 0 || rid > nresources) {
                if (why)
                    *why = strfmt("customer %llu entry %llu: bad "
                                  "resource id",
                                  static_cast<unsigned long long>(c),
                                  static_cast<unsigned long long>(i));
                return false;
            }
            ++held[rid - 1];
        }
    }
    for (std::uint64_t r = 0; r < nresources; ++r) {
        std::uint64_t total = nvram.read64(resourceAddr(r) + 0);
        std::uint64_t avail = nvram.read64(resourceAddr(r) + 8);
        if (avail + held[r] != total) {
            if (why)
                *why = strfmt("resource %llu: %llu available + %llu "
                              "held != %llu total",
                              static_cast<unsigned long long>(r),
                              static_cast<unsigned long long>(avail),
                              static_cast<unsigned long long>(
                                  held[r]),
                              static_cast<unsigned long long>(total));
            return false;
        }
    }
    return true;
}

} // namespace snf::workloads
