#include "workloads/workload.hh"

#include "sim/logging.hh"
#include "workloads/btree.hh"
#include "workloads/hash.hh"
#include "workloads/prog.hh"
#include "workloads/rbtree.hh"
#include "workloads/sps.hh"
#include "workloads/ssca2.hh"
#include "workloads/whisper_ctree.hh"
#include "workloads/whisper_echo.hh"
#include "workloads/whisper_hashmap.hh"
#include "workloads/whisper_tpcc.hh"
#include "workloads/whisper_vacation.hh"
#include "workloads/whisper_ycsb.hh"

#include "oltp/tpcc.hh"
#include "oltp/ycsb.hh"

namespace snf::workloads
{

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    if (name == "sps")
        return std::make_unique<Sps>();
    if (name == "hash")
        return std::make_unique<HashMicro>();
    if (name == "rbtree")
        return std::make_unique<RbTree>();
    if (name == "btree")
        return std::make_unique<BTree>();
    if (name == "ssca2")
        return std::make_unique<Ssca2>();
    if (name == "prog")
        return std::make_unique<ProgWorkload>();
    if (name == "ctree")
        return std::make_unique<WhisperCtree>();
    if (name == "hashmap")
        return std::make_unique<WhisperHashmap>();
    if (name == "tpcc")
        return std::make_unique<WhisperTpcc>();
    if (name == "ycsb")
        return std::make_unique<WhisperYcsb>();
    if (name == "echo")
        return std::make_unique<WhisperEcho>();
    if (name == "vacation")
        return std::make_unique<WhisperVacation>();
    if (name == "oltp-tpcc")
        return std::make_unique<oltp::TpccEngine>();
    if (name == "oltp-ycsb")
        return std::make_unique<oltp::YcsbEngine>();
    fatal("unknown workload '%s'", name.c_str());
}

const std::vector<std::string> &
microbenchNames()
{
    static const std::vector<std::string> names = {
        "hash", "rbtree", "sps", "btree", "ssca2",
    };
    return names;
}

const std::vector<std::string> &
whisperNames()
{
    static const std::vector<std::string> names = {
        "ctree", "hashmap", "tpcc", "ycsb", "echo", "vacation",
    };
    return names;
}

const std::vector<std::string> &
oltpNames()
{
    static const std::vector<std::string> names = {
        "oltp-tpcc", "oltp-ycsb",
    };
    return names;
}

std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> all = microbenchNames();
    const auto &w = whisperNames();
    all.insert(all.end(), w.begin(), w.end());
    const auto &o = oltpNames();
    all.insert(all.end(), o.begin(), o.end());
    // conformlab's program-driven adapter: a random transaction
    // program generated from the run seed.
    all.push_back("prog");
    return all;
}

} // namespace snf::workloads
