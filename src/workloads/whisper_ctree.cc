#include "workloads/whisper_ctree.hh"

#include "sim/logging.hh"

namespace snf::workloads
{

void
WhisperCtree::setup(System &sys, const WorkloadParams &params)
{
    std::uint64_t elements =
        params.footprint != 0 ? params.footprint : 2048;
    nthreads = params.threads;
    valueWords = params.stringValues ? 8 : 1;
    keyspacePerThread = 2 * elements / nthreads;

    headers = sys.heap().alloc(nthreads * 16, 64);
    sim::Rng rng(params.seed);

    for (std::uint32_t tid = 0; tid < nthreads; ++tid) {
        // Preload odd keys in random order to get a bushy BST.
        std::uint64_t n_init = keyspacePerThread / 2;
        std::vector<std::uint64_t> keys;
        keys.reserve(n_init);
        for (std::uint64_t k = 0; k < n_init; ++k)
            keys.push_back(2 * k + 1);
        for (std::uint64_t k = n_init; k > 1; --k)
            std::swap(keys[k - 1], keys[rng.below(k)]);

        Addr root = 0;
        std::uint64_t count = 0;
        for (std::uint64_t key : keys) {
            Addr node = sys.heap().alloc(nodeBytes(), 8);
            sys.heap().prewrite64(node + kKey, key);
            sys.heap().prewrite64(node + kLeft, 0);
            sys.heap().prewrite64(node + kRight, 0);
            for (std::uint64_t w = 0; w < valueWords; ++w)
                sys.heap().prewrite64(node + kValue + w * 8,
                                      key * 13 + w);
            if (root == 0) {
                root = node;
            } else {
                Addr cur = root;
                while (true) {
                    std::uint64_t ck =
                        sys.heap().peek64(cur + kKey);
                    Addr next = sys.heap().peek64(
                        cur + (key < ck ? kLeft : kRight));
                    if (next == 0) {
                        sys.heap().prewrite64(
                            cur + (key < ck ? kLeft : kRight), node);
                        break;
                    }
                    cur = next;
                }
            }
            ++count;
        }
        sys.heap().prewrite64(headerAddr(tid) + 0, root);
        sys.heap().prewrite64(headerAddr(tid) + 8, count);
    }
}

sim::Co<void>
WhisperCtree::thread(System &sys, Thread &t,
                     const WorkloadParams &params)
{
    sim::Rng rng(params.seed * 48611 + t.id());
    Addr hdr = headerAddr(t.id());

    for (std::uint64_t n = 0; n < params.txPerThread; ++n) {
        std::uint64_t key = rng.below(keyspacePerThread) + 1;

        co_await t.txBegin();
        co_await t.compute(8);

        // Search, remembering the parent link.
        Addr parent_link = hdr + 0; // address of the pointer to cur
        Addr cur = co_await t.load64(hdr + 0);
        Addr found = 0;
        while (cur != 0) {
            std::uint64_t k = co_await t.load64(cur + kKey);
            co_await t.compute(2);
            if (k == key) {
                found = cur;
                break;
            }
            parent_link = cur + (key < k ? kLeft : kRight);
            cur = co_await t.load64(parent_link);
        }

        if (found == 0) {
            // Insert at the found null link.
            Addr node = sys.heap().alloc(nodeBytes(), 8);
            co_await t.store64(node + kKey, key);
            co_await t.store64(node + kLeft, 0);
            co_await t.store64(node + kRight, 0);
            for (std::uint64_t w = 0; w < valueWords; ++w)
                co_await t.store64(node + kValue + w * 8,
                                   rng.next());
            co_await t.store64(parent_link, node);
            std::uint64_t count = co_await t.load64(hdr + 8);
            co_await t.store64(hdr + 8, count + 1);
        } else {
            // BST delete.
            Addr left = co_await t.load64(found + kLeft);
            Addr right = co_await t.load64(found + kRight);
            if (left == 0 || right == 0) {
                co_await t.store64(parent_link,
                                   left != 0 ? left : right);
            } else {
                // Replace with the successor (min of right subtree).
                Addr succ_link = found + kRight;
                Addr succ = right;
                while (true) {
                    Addr sl = co_await t.load64(succ + kLeft);
                    if (sl == 0)
                        break;
                    succ_link = succ + kLeft;
                    succ = sl;
                }
                if (succ != right) {
                    Addr succ_right =
                        co_await t.load64(succ + kRight);
                    co_await t.store64(succ_link, succ_right);
                    co_await t.store64(succ + kRight, right);
                }
                co_await t.store64(succ + kLeft, left);
                co_await t.store64(parent_link, succ);
            }
            std::uint64_t count = co_await t.load64(hdr + 8);
            co_await t.store64(hdr + 8, count - 1);
        }
        co_await t.txCommit();
    }
}

bool
WhisperCtree::checkSubtree(const mem::BackingStore &nvram, Addr node,
                           std::uint64_t lo, std::uint64_t hi,
                           std::uint64_t &count,
                           std::string *why) const
{
    if (node == 0)
        return true;
    if (++count > (1u << 22)) {
        if (why)
            *why = "node explosion (cycle?)";
        return false;
    }
    std::uint64_t key = nvram.read64(node + kKey);
    if (key <= lo || key >= hi) {
        if (why)
            *why = strfmt("BST order violated at key %llu",
                          static_cast<unsigned long long>(key));
        return false;
    }
    return checkSubtree(nvram, nvram.read64(node + kLeft), lo, key,
                        count, why) &&
           checkSubtree(nvram, nvram.read64(node + kRight), key, hi,
                        count, why);
}

bool
WhisperCtree::verify(const mem::BackingStore &nvram,
                     std::string *why) const
{
    for (std::uint32_t tid = 0; tid < nthreads; ++tid) {
        Addr hdr = headerAddr(tid);
        std::uint64_t expected = nvram.read64(hdr + 8);
        std::uint64_t count = 0;
        if (!checkSubtree(nvram, nvram.read64(hdr + 0), 0, ~0ULL,
                          count, why))
            return false;
        if (count != expected) {
            if (why)
                *why = strfmt("tree %u: %llu nodes but count %llu",
                              tid,
                              static_cast<unsigned long long>(count),
                              static_cast<unsigned long long>(
                                  expected));
            return false;
        }
    }
    return true;
}

} // namespace snf::workloads
