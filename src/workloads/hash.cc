#include "workloads/hash.hh"

#include <unordered_set>

#include "sim/logging.hh"

namespace snf::workloads
{

std::uint64_t
OpenChainHashBase::mixKey(std::uint64_t key)
{
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdULL;
    key ^= key >> 33;
    return key;
}

void
OpenChainHashBase::setup(System &sys, const WorkloadParams &params)
{
    std::uint64_t elements =
        params.footprint != 0 ? params.footprint : 4096;
    nthreads = params.threads;
    valueWords = params.stringValues ? 8 : 1;
    nbuckets = std::max<std::uint64_t>(elements / 4, nthreads * 4);
    // Keep per-thread bucket shares equal.
    nbuckets -= nbuckets % nthreads;
    keyspacePerThread = 2 * elements / nthreads;

    buckets = sys.heap().alloc(nbuckets * kBucketBytes, 64);
    for (std::uint64_t b = 0; b < nbuckets; ++b) {
        sys.heap().prewrite64(bucketAddr(b), 0);
        sys.heap().prewrite64(bucketAddr(b) + 8, 0);
    }

    // Preload half of each thread's keyspace functionally, so the
    // run starts with populated chains (~50% hit rate).
    std::uint64_t share = nbuckets / nthreads;
    sim::Rng rng(params.seed);
    for (std::uint32_t tid = 0; tid < nthreads; ++tid) {
        for (std::uint64_t k = 0; k < keyspacePerThread; k += 2) {
            std::uint64_t key =
                (static_cast<std::uint64_t>(tid) << 48) | (k + 1);
            std::uint64_t b =
                tid * share + mixKey(key) % share;
            Addr node = sys.heap().alloc(nodeBytes(), 8);
            sys.heap().prewrite64(node + kKeyOff, key);
            sys.heap().prewrite64(node + kNextOff,
                                  sys.heap().peek64(bucketAddr(b)));
            for (std::uint64_t w = 0; w < valueWords; ++w)
                sys.heap().prewrite64(node + kValueOff + w * 8,
                                      rng.next());
            sys.heap().prewrite64(bucketAddr(b), node);
            sys.heap().prewrite64(bucketAddr(b) + 8,
                                  sys.heap().peek64(bucketAddr(b) + 8) +
                                      1);
        }
    }
}

sim::Co<void>
OpenChainHashBase::thread(System &sys, Thread &t,
                          const WorkloadParams &params)
{
    sim::Rng rng(params.seed * 7919 + t.id());
    std::uint64_t share = nbuckets / nthreads;
    std::uint64_t bucket_lo = t.id() * share;

    for (std::uint64_t n = 0; n < params.txPerThread; ++n) {
        std::uint64_t key =
            (static_cast<std::uint64_t>(t.id()) << 48) |
            (rng.below(keyspacePerThread) + 1);
        std::uint64_t b = bucket_lo + mixKey(key) % share;
        bool lookup_only = rng.chance(lookupFraction());

        co_await t.txBegin();
        co_await t.compute(20); // hashing the key

        // Chain search.
        Addr prev = 0;
        Addr cur = co_await t.load64(bucketAddr(b));
        bool found = false;
        while (cur != 0) {
            std::uint64_t k = co_await t.load64(cur + kKeyOff);
            co_await t.compute(3);
            if (k == key) {
                found = true;
                break;
            }
            prev = cur;
            cur = co_await t.load64(cur + kNextOff);
        }

        if (lookup_only) {
            if (found) {
                // Read the value (consume it).
                for (std::uint64_t w = 0; w < valueWords; ++w)
                    co_await t.load64(cur + kValueOff + w * 8);
            }
        } else if (found) {
            // Remove: unlink and decrement the chain count.
            std::uint64_t next = co_await t.load64(cur + kNextOff);
            if (prev == 0)
                co_await t.store64(bucketAddr(b), next);
            else
                co_await t.store64(prev + kNextOff, next);
            std::uint64_t cnt = co_await t.load64(bucketAddr(b) + 8);
            co_await t.store64(bucketAddr(b) + 8, cnt - 1);
        } else {
            // Insert at head (allocation is modeled functionally;
            // node initialization is transactional).
            Addr node = sys.heap().alloc(nodeBytes(), 8);
            co_await t.store64(node + kKeyOff, key);
            std::uint64_t head = co_await t.load64(bucketAddr(b));
            co_await t.store64(node + kNextOff, head);
            for (std::uint64_t w = 0; w < valueWords; ++w)
                co_await t.store64(node + kValueOff + w * 8,
                                   rng.next());
            co_await t.store64(bucketAddr(b), node);
            std::uint64_t cnt = co_await t.load64(bucketAddr(b) + 8);
            co_await t.store64(bucketAddr(b) + 8, cnt + 1);
        }
        co_await t.txCommit();
    }
}

bool
OpenChainHashBase::verify(const mem::BackingStore &nvram,
                          std::string *why) const
{
    for (std::uint64_t b = 0; b < nbuckets; ++b) {
        std::uint64_t expected = nvram.read64(bucketAddr(b) + 8);
        std::uint64_t walked = 0;
        std::unordered_set<std::uint64_t> keys;
        Addr cur = nvram.read64(bucketAddr(b));
        while (cur != 0) {
            if (++walked > expected + 8) {
                if (why)
                    *why = strfmt("bucket %llu: chain longer than "
                                  "count %llu (cycle or torn link)",
                                  static_cast<unsigned long long>(b),
                                  static_cast<unsigned long long>(
                                      expected));
                return false;
            }
            std::uint64_t key = nvram.read64(cur + kKeyOff);
            if (key == 0 || !keys.insert(key).second) {
                if (why)
                    *why = strfmt("bucket %llu: bad or duplicate key",
                                  static_cast<unsigned long long>(b));
                return false;
            }
            cur = nvram.read64(cur + kNextOff);
        }
        if (walked != expected) {
            if (why)
                *why = strfmt("bucket %llu: chain length %llu != "
                              "count %llu",
                              static_cast<unsigned long long>(b),
                              static_cast<unsigned long long>(walked),
                              static_cast<unsigned long long>(
                                  expected));
            return false;
        }
    }
    return true;
}

} // namespace snf::workloads
