// WhisperHashmap is header-only over OpenChainHashBase; this
// translation unit exists to anchor the vtable.
#include "workloads/whisper_hashmap.hh"

namespace snf::workloads
{
} // namespace snf::workloads
