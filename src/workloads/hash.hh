/**
 * @file
 * Hash microbenchmark (paper Table III, from NV-heaps [29]): an
 * open-chain hash table in persistent memory. Each transaction
 * searches for a key, inserting it if absent and removing it if
 * found.
 *
 * Each bucket stores a head pointer and a chain count updated in the
 * same transaction as the chain mutation; verification walks every
 * chain and checks it against the count, which any non-atomic
 * insert/remove would break.
 *
 * Threads own disjoint bucket ranges (one independent persistent
 * transaction stream per thread, as in paper Figure 4).
 */

#ifndef SNF_WORKLOADS_HASH_HH
#define SNF_WORKLOADS_HASH_HH

#include "workloads/workload.hh"

namespace snf::workloads
{

/**
 * Shared open-chain hash-table engine; the microbenchmark (Hash) and
 * the WHISPER hashmap workload differ only in their operation mix.
 */
class OpenChainHashBase : public Workload
{
  public:
    void setup(System &sys, const WorkloadParams &params) override;

    sim::Co<void> thread(System &sys, Thread &t,
                         const WorkloadParams &params) override;

    bool verify(const mem::BackingStore &nvram,
                std::string *why) const override;

  protected:
    /** Fraction of transactions that are pure lookups. */
    virtual double lookupFraction() const { return 0.0; }

    // Node layout: key(8) | next(8) | value(valueWords * 8).
    static constexpr std::uint64_t kKeyOff = 0;
    static constexpr std::uint64_t kNextOff = 8;
    static constexpr std::uint64_t kValueOff = 16;

    // Bucket layout: head(8) | count(8).
    static constexpr std::uint64_t kBucketBytes = 16;

    std::uint64_t nodeBytes() const { return 16 + valueWords * 8; }

    Addr bucketAddr(std::uint64_t b) const
    {
        return buckets + b * kBucketBytes;
    }

    static std::uint64_t mixKey(std::uint64_t key);

    Addr buckets = 0;
    std::uint64_t nbuckets = 0;
    std::uint64_t valueWords = 1;
    std::uint64_t keyspacePerThread = 0;
    std::uint32_t nthreads = 1;
};

/** The paper's Hash microbenchmark. */
class HashMicro : public OpenChainHashBase
{
  public:
    std::string name() const override { return "hash"; }
};

} // namespace snf::workloads

#endif // SNF_WORKLOADS_HASH_HH
