/**
 * @file
 * WHISPER "tpcc" workload equivalent: TPC-C New-Order style
 * transactions against persistent district and order tables. Each
 * transaction reads its district, allocates the next order id,
 * writes an order record with 5-15 order lines, and updates the
 * district's year-to-date totals — a large-write-set, write-intensive
 * transaction profile.
 *
 * Invariants verified: per district, the next-order-id counter equals
 * the number of fully-written order records; every order record's
 * stored line count matches its stamped lines; ytd equals the sum of
 * order totals.
 */

#ifndef SNF_WORKLOADS_WHISPER_TPCC_HH
#define SNF_WORKLOADS_WHISPER_TPCC_HH

#include "workloads/workload.hh"

namespace snf::workloads
{

/** See file comment. */
class WhisperTpcc : public Workload
{
  public:
    std::string name() const override { return "tpcc"; }

    void setup(System &sys, const WorkloadParams &params) override;

    sim::Co<void> thread(System &sys, Thread &t,
                         const WorkloadParams &params) override;

    bool verify(const mem::BackingStore &nvram,
                std::string *why) const override;

  private:
    static constexpr std::uint64_t kMaxLines = 15;

    // District: nextOid(8) | ytd(8).
    static constexpr std::uint64_t kDistrictBytes = 16;
    // Order: oidStamp(8) | nlines(8) | total(8) |
    //        lines[15]{item(8), amount(8)}.
    static constexpr std::uint64_t kOrderBytes = 24 + kMaxLines * 16;

    Addr districtAddr(std::uint64_t d) const
    {
        return districts + d * kDistrictBytes;
    }

    Addr orderAddr(std::uint64_t d, std::uint64_t oid) const
    {
        return orders + (d * maxOrdersPerDistrict + oid) * kOrderBytes;
    }

    static constexpr std::uint64_t kItemTableBytes = 1 << 20;

    Addr districts = 0;
    Addr orders = 0;
    Addr itemTable = 0;
    std::uint64_t ndistricts = 0;
    std::uint64_t maxOrdersPerDistrict = 0;
    std::uint32_t nthreads = 1;
};

} // namespace snf::workloads

#endif // SNF_WORKLOADS_WHISPER_TPCC_HH
