/**
 * @file
 * WHISPER "vacation" workload equivalent (STAMP vacation): a travel
 * reservation system with persistent resource tables (cars, rooms,
 * flights) and customer records. A reservation transaction decrements
 * a resource's availability and appends the reservation to the
 * customer's record; a cancellation does the reverse.
 *
 * Conservation invariant: for every resource,
 *   total == available + (reservations held across all customers),
 * which any torn reservation breaks.
 */

#ifndef SNF_WORKLOADS_WHISPER_VACATION_HH
#define SNF_WORKLOADS_WHISPER_VACATION_HH

#include "workloads/workload.hh"

namespace snf::workloads
{

/** See file comment. */
class WhisperVacation : public Workload
{
  public:
    std::string name() const override { return "vacation"; }

    void setup(System &sys, const WorkloadParams &params) override;

    sim::Co<void> thread(System &sys, Thread &t,
                         const WorkloadParams &params) override;

    bool verify(const mem::BackingStore &nvram,
                std::string *why) const override;

  private:
    static constexpr std::uint64_t kMaxReservations = 64;

    // Resource: total(8) | available(8) | price(8).
    static constexpr std::uint64_t kResourceBytes = 24;
    // Customer: count(8) | entries[kMaxReservations](8) — resource id
    // + 1 per entry.
    static constexpr std::uint64_t kCustomerBytes =
        8 + kMaxReservations * 8;

    Addr resourceAddr(std::uint64_t r) const
    {
        return resources + r * kResourceBytes;
    }

    Addr customerAddr(std::uint64_t c) const
    {
        return customers + c * kCustomerBytes;
    }

    Addr resources = 0;
    Addr customers = 0;
    Addr locks = 0; ///< DRAM spinlock per resource
    Addr searchCache = 0; ///< DRAM itinerary price cache
    std::uint64_t nresources = 0;
    std::uint64_t ncustomers = 0;
    std::uint32_t nthreads = 1;
};

} // namespace snf::workloads

#endif // SNF_WORKLOADS_WHISPER_VACATION_HH
