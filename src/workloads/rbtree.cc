#include "workloads/rbtree.hh"

#include "sim/logging.hh"

namespace snf::workloads
{

namespace
{
constexpr std::uint64_t kRed = 1;
constexpr std::uint64_t kBlack = 0;
} // namespace

Addr
RbTree::prealloc(System &sys, Addr nil, std::uint64_t key) const
{
    Addr n = sys.heap().alloc(nodeBytes(), 8);
    sys.heap().prewrite64(n + kKey, key);
    sys.heap().prewrite64(n + kColor, kBlack);
    sys.heap().prewrite64(n + kLeft, nil);
    sys.heap().prewrite64(n + kRight, nil);
    sys.heap().prewrite64(n + kParent, nil);
    for (std::uint64_t w = 0; w < valueWords; ++w)
        sys.heap().prewrite64(n + kValue + w * 8, key * 31 + w);
    return n;
}

void
RbTree::setup(System &sys, const WorkloadParams &params)
{
    std::uint64_t elements =
        params.footprint != 0 ? params.footprint : 2048;
    nthreads = params.threads;
    valueWords = params.stringValues ? 8 : 1;
    keyspacePerThread = 2 * elements / nthreads;

    headers = sys.heap().alloc(nthreads * kHeaderBytes, 64);
    sim::Rng rng(params.seed);

    for (std::uint32_t tid = 0; tid < nthreads; ++tid) {
        Addr nil = prealloc(sys, 0, 0);
        sys.heap().prewrite64(nil + kLeft, nil);
        sys.heap().prewrite64(nil + kRight, nil);
        sys.heap().prewrite64(nil + kParent, nil);

        // Build a balanced initial tree functionally: insert a
        // sorted key sample as a perfectly balanced BST, all black
        // (which satisfies every red-black invariant).
        std::uint64_t n_init = keyspacePerThread / 2;
        std::vector<std::uint64_t> keys;
        keys.reserve(n_init);
        for (std::uint64_t k = 0; k < n_init; ++k)
            keys.push_back(2 * k + 1); // odd keys preloaded

        struct Range
        {
            std::uint64_t lo, hi;
            Addr parent;
            bool left;
            std::uint32_t depth;
        };
        // The deepest (possibly incomplete) level is painted red so
        // every root-to-nil path has the same black count; all other
        // levels are black.
        std::uint32_t max_depth = 0; // floor(log2(n))
        for (std::uint64_t s = keys.size(); s > 1; s >>= 1)
            ++max_depth;

        Addr root = nil;
        std::vector<Range> stack;
        if (!keys.empty())
            stack.push_back({0, keys.size(), nil, false, 0});
        std::uint64_t count = 0;
        while (!stack.empty()) {
            Range r = stack.back();
            stack.pop_back();
            if (r.lo >= r.hi)
                continue;
            std::uint64_t mid = (r.lo + r.hi) / 2;
            Addr node = prealloc(sys, nil, keys[mid]);
            ++count;
            if (r.depth == max_depth)
                sys.heap().prewrite64(node + kColor, 1 /* red */);
            sys.heap().prewrite64(node + kParent, r.parent);
            if (r.parent == nil)
                root = node;
            else
                sys.heap().prewrite64(
                    r.parent + (r.left ? kLeft : kRight), node);
            stack.push_back({r.lo, mid, node, true, r.depth + 1});
            stack.push_back(
                {mid + 1, r.hi, node, false, r.depth + 1});
        }

        sys.heap().prewrite64(headerAddr(tid) + 0, root);
        sys.heap().prewrite64(headerAddr(tid) + 8, count);
        sys.heap().prewrite64(headerAddr(tid) + 16, nil);
    }
    (void)rng;
}

sim::Co<void>
RbTree::leftRotate(Thread &t, Addr hdr, Addr nil, Addr x)
{
    Addr y = co_await t.load64(x + kRight);
    Addr yl = co_await t.load64(y + kLeft);
    co_await t.store64(x + kRight, yl);
    if (yl != nil)
        co_await t.store64(yl + kParent, x);
    Addr xp = co_await t.load64(x + kParent);
    co_await t.store64(y + kParent, xp);
    if (xp == nil) {
        co_await t.store64(hdr + 0, y);
    } else {
        Addr xpl = co_await t.load64(xp + kLeft);
        if (x == xpl)
            co_await t.store64(xp + kLeft, y);
        else
            co_await t.store64(xp + kRight, y);
    }
    co_await t.store64(y + kLeft, x);
    co_await t.store64(x + kParent, y);
}

sim::Co<void>
RbTree::rightRotate(Thread &t, Addr hdr, Addr nil, Addr x)
{
    Addr y = co_await t.load64(x + kLeft);
    Addr yr = co_await t.load64(y + kRight);
    co_await t.store64(x + kLeft, yr);
    if (yr != nil)
        co_await t.store64(yr + kParent, x);
    Addr xp = co_await t.load64(x + kParent);
    co_await t.store64(y + kParent, xp);
    if (xp == nil) {
        co_await t.store64(hdr + 0, y);
    } else {
        Addr xpr = co_await t.load64(xp + kRight);
        if (x == xpr)
            co_await t.store64(xp + kRight, y);
        else
            co_await t.store64(xp + kLeft, y);
    }
    co_await t.store64(y + kRight, x);
    co_await t.store64(x + kParent, y);
}

sim::Co<void>
RbTree::insertFixup(Thread &t, Addr hdr, Addr nil, Addr z)
{
    while (true) {
        Addr zp = co_await t.load64(z + kParent);
        if (zp == nil ||
            (co_await t.load64(zp + kColor)) != kRed)
            break;
        Addr zpp = co_await t.load64(zp + kParent);
        Addr zppl = co_await t.load64(zpp + kLeft);
        if (zp == zppl) {
            Addr y = co_await t.load64(zpp + kRight);
            if (y != nil &&
                (co_await t.load64(y + kColor)) == kRed) {
                co_await t.store64(zp + kColor, kBlack);
                co_await t.store64(y + kColor, kBlack);
                co_await t.store64(zpp + kColor, kRed);
                z = zpp;
            } else {
                Addr zpr = co_await t.load64(zp + kRight);
                if (z == zpr) {
                    z = zp;
                    co_await leftRotate(t, hdr, nil, z);
                    zp = co_await t.load64(z + kParent);
                    zpp = co_await t.load64(zp + kParent);
                }
                co_await t.store64(zp + kColor, kBlack);
                co_await t.store64(zpp + kColor, kRed);
                co_await rightRotate(t, hdr, nil, zpp);
            }
        } else {
            Addr y = zppl;
            if (y != nil &&
                (co_await t.load64(y + kColor)) == kRed) {
                co_await t.store64(zp + kColor, kBlack);
                co_await t.store64(y + kColor, kBlack);
                co_await t.store64(zpp + kColor, kRed);
                z = zpp;
            } else {
                Addr zpl = co_await t.load64(zp + kLeft);
                if (z == zpl) {
                    z = zp;
                    co_await rightRotate(t, hdr, nil, z);
                    zp = co_await t.load64(z + kParent);
                    zpp = co_await t.load64(zp + kParent);
                }
                co_await t.store64(zp + kColor, kBlack);
                co_await t.store64(zpp + kColor, kRed);
                co_await leftRotate(t, hdr, nil, zpp);
            }
        }
    }
    Addr root = co_await t.load64(hdr + 0);
    co_await t.store64(root + kColor, kBlack);
}

sim::Co<void>
RbTree::transplant(Thread &t, Addr hdr, Addr nil, Addr u, Addr v)
{
    Addr up = co_await t.load64(u + kParent);
    if (up == nil) {
        co_await t.store64(hdr + 0, v);
    } else {
        Addr upl = co_await t.load64(up + kLeft);
        if (u == upl)
            co_await t.store64(up + kLeft, v);
        else
            co_await t.store64(up + kRight, v);
    }
    co_await t.store64(v + kParent, up);
}

sim::Co<Addr>
RbTree::treeMinimum(Thread &t, Addr nil, Addr x)
{
    while (true) {
        Addr l = co_await t.load64(x + kLeft);
        if (l == nil)
            co_return x;
        x = l;
    }
}

sim::Co<void>
RbTree::deleteFixup(Thread &t, Addr hdr, Addr nil, Addr x)
{
    while (true) {
        Addr root = co_await t.load64(hdr + 0);
        if (x == root ||
            (co_await t.load64(x + kColor)) == kRed)
            break;
        Addr xp = co_await t.load64(x + kParent);
        Addr xpl = co_await t.load64(xp + kLeft);
        if (x == xpl) {
            Addr w = co_await t.load64(xp + kRight);
            if ((co_await t.load64(w + kColor)) == kRed) {
                co_await t.store64(w + kColor, kBlack);
                co_await t.store64(xp + kColor, kRed);
                co_await leftRotate(t, hdr, nil, xp);
                w = co_await t.load64(xp + kRight);
            }
            Addr wl = co_await t.load64(w + kLeft);
            Addr wr = co_await t.load64(w + kRight);
            bool wl_black =
                (co_await t.load64(wl + kColor)) == kBlack;
            bool wr_black =
                (co_await t.load64(wr + kColor)) == kBlack;
            if (wl_black && wr_black) {
                co_await t.store64(w + kColor, kRed);
                x = xp;
            } else {
                if (wr_black) {
                    co_await t.store64(wl + kColor, kBlack);
                    co_await t.store64(w + kColor, kRed);
                    co_await rightRotate(t, hdr, nil, w);
                    w = co_await t.load64(xp + kRight);
                }
                std::uint64_t xp_color =
                    co_await t.load64(xp + kColor);
                co_await t.store64(w + kColor, xp_color);
                co_await t.store64(xp + kColor, kBlack);
                Addr wr2 = co_await t.load64(w + kRight);
                co_await t.store64(wr2 + kColor, kBlack);
                co_await leftRotate(t, hdr, nil, xp);
                x = co_await t.load64(hdr + 0);
            }
        } else {
            Addr w = co_await t.load64(xp + kLeft);
            if ((co_await t.load64(w + kColor)) == kRed) {
                co_await t.store64(w + kColor, kBlack);
                co_await t.store64(xp + kColor, kRed);
                co_await rightRotate(t, hdr, nil, xp);
                w = co_await t.load64(xp + kLeft);
            }
            Addr wl = co_await t.load64(w + kLeft);
            Addr wr = co_await t.load64(w + kRight);
            bool wl_black =
                (co_await t.load64(wl + kColor)) == kBlack;
            bool wr_black =
                (co_await t.load64(wr + kColor)) == kBlack;
            if (wl_black && wr_black) {
                co_await t.store64(w + kColor, kRed);
                x = xp;
            } else {
                if (wl_black) {
                    co_await t.store64(wr + kColor, kBlack);
                    co_await t.store64(w + kColor, kRed);
                    co_await leftRotate(t, hdr, nil, w);
                    w = co_await t.load64(xp + kLeft);
                }
                std::uint64_t xp_color =
                    co_await t.load64(xp + kColor);
                co_await t.store64(w + kColor, xp_color);
                co_await t.store64(xp + kColor, kBlack);
                Addr wl2 = co_await t.load64(w + kLeft);
                co_await t.store64(wl2 + kColor, kBlack);
                co_await rightRotate(t, hdr, nil, xp);
                x = co_await t.load64(hdr + 0);
            }
        }
    }
    co_await t.store64(x + kColor, kBlack);
}

sim::Co<void>
RbTree::insertNode(System &sys, Thread &t, Addr hdr, Addr nil,
                   std::uint64_t key, sim::Rng &rng)
{
    Addr z = sys.heap().alloc(nodeBytes(), 8);
    co_await t.store64(z + kKey, key);
    for (std::uint64_t w = 0; w < valueWords; ++w)
        co_await t.store64(z + kValue + w * 8, rng.next());

    Addr y = nil;
    Addr x = co_await t.load64(hdr + 0);
    while (x != nil) {
        y = x;
        std::uint64_t xk = co_await t.load64(x + kKey);
        co_await t.compute(2);
        x = co_await t.load64(x + (key < xk ? kLeft : kRight));
    }
    co_await t.store64(z + kParent, y);
    if (y == nil) {
        co_await t.store64(hdr + 0, z);
    } else {
        std::uint64_t yk = co_await t.load64(y + kKey);
        co_await t.store64(y + (key < yk ? kLeft : kRight), z);
    }
    co_await t.store64(z + kLeft, nil);
    co_await t.store64(z + kRight, nil);
    co_await t.store64(z + kColor, kRed);
    co_await insertFixup(t, hdr, nil, z);

    std::uint64_t count = co_await t.load64(hdr + 8);
    co_await t.store64(hdr + 8, count + 1);
}

sim::Co<void>
RbTree::deleteNode(Thread &t, Addr hdr, Addr nil, Addr z)
{
    Addr y = z;
    std::uint64_t y_orig = co_await t.load64(y + kColor);
    Addr x;
    Addr zl = co_await t.load64(z + kLeft);
    Addr zr = co_await t.load64(z + kRight);
    if (zl == nil) {
        x = zr;
        co_await transplant(t, hdr, nil, z, zr);
    } else if (zr == nil) {
        x = zl;
        co_await transplant(t, hdr, nil, z, zl);
    } else {
        y = co_await treeMinimum(t, nil, zr);
        y_orig = co_await t.load64(y + kColor);
        x = co_await t.load64(y + kRight);
        Addr yp = co_await t.load64(y + kParent);
        if (yp == z) {
            co_await t.store64(x + kParent, y);
        } else {
            Addr yr = co_await t.load64(y + kRight);
            co_await transplant(t, hdr, nil, y, yr);
            co_await t.store64(y + kRight, zr);
            co_await t.store64(zr + kParent, y);
        }
        co_await transplant(t, hdr, nil, z, y);
        co_await t.store64(y + kLeft, zl);
        co_await t.store64(zl + kParent, y);
        std::uint64_t zc = co_await t.load64(z + kColor);
        co_await t.store64(y + kColor, zc);
    }
    if (y_orig == kBlack)
        co_await deleteFixup(t, hdr, nil, x);

    std::uint64_t count = co_await t.load64(hdr + 8);
    co_await t.store64(hdr + 8, count - 1);
}

sim::Co<void>
RbTree::thread(System &sys, Thread &t, const WorkloadParams &params)
{
    sim::Rng rng(params.seed * 104729 + t.id());
    Addr hdr = headerAddr(t.id());
    Addr nil = sys.heap().peek64(hdr + 16);

    for (std::uint64_t n = 0; n < params.txPerThread; ++n) {
        std::uint64_t key = rng.below(keyspacePerThread) + 1;

        co_await t.txBegin();
        co_await t.compute(10);

        // Search.
        Addr cur = co_await t.load64(hdr + 0);
        Addr found = 0;
        while (cur != nil) {
            std::uint64_t k = co_await t.load64(cur + kKey);
            co_await t.compute(2);
            if (k == key) {
                found = cur;
                break;
            }
            cur = co_await t.load64(cur + (key < k ? kLeft : kRight));
        }

        if (found != 0)
            co_await deleteNode(t, hdr, nil, found);
        else
            co_await insertNode(sys, t, hdr, nil, key, rng);

        co_await t.txCommit();
    }
}

int
RbTree::checkSubtree(const mem::BackingStore &nvram, Addr nil,
                     Addr node, Addr parent, std::uint64_t lo,
                     std::uint64_t hi, std::uint64_t &count,
                     std::string *why) const
{
    if (node == nil)
        return 1;
    if (count > (1u << 22)) {
        if (why)
            *why = "node count explosion (cycle?)";
        return -1;
    }
    std::uint64_t key = nvram.read64(node + kKey);
    std::uint64_t color = nvram.read64(node + kColor);
    Addr left = nvram.read64(node + kLeft);
    Addr right = nvram.read64(node + kRight);
    Addr par = nvram.read64(node + kParent);

    if (par != parent) {
        if (why)
            *why = strfmt("bad parent pointer at key %llu",
                          static_cast<unsigned long long>(key));
        return -1;
    }
    if (key <= lo || key >= hi) {
        if (why)
            *why = strfmt("BST order violated at key %llu",
                          static_cast<unsigned long long>(key));
        return -1;
    }
    if (color == kRed) {
        if ((left != nil && nvram.read64(left + kColor) == kRed) ||
            (right != nil && nvram.read64(right + kColor) == kRed)) {
            if (why)
                *why = strfmt("red-red violation at key %llu",
                              static_cast<unsigned long long>(key));
            return -1;
        }
    }
    ++count;
    int bh_l =
        checkSubtree(nvram, nil, left, node, lo, key, count, why);
    if (bh_l < 0)
        return -1;
    int bh_r =
        checkSubtree(nvram, nil, right, node, key, hi, count, why);
    if (bh_r < 0)
        return -1;
    if (bh_l != bh_r) {
        if (why)
            *why = strfmt("black-height mismatch at key %llu",
                          static_cast<unsigned long long>(key));
        return -1;
    }
    return bh_l + (color == kBlack ? 1 : 0);
}

bool
RbTree::verify(const mem::BackingStore &nvram, std::string *why) const
{
    for (std::uint32_t tid = 0; tid < nthreads; ++tid) {
        Addr hdr = headerAddr(tid);
        Addr root = nvram.read64(hdr + 0);
        std::uint64_t expected = nvram.read64(hdr + 8);
        Addr nil = nvram.read64(hdr + 16);
        if (root != nil && nvram.read64(root + kColor) != kBlack) {
            if (why)
                *why = strfmt("tree %u: red root", tid);
            return false;
        }
        std::uint64_t count = 0;
        if (checkSubtree(nvram, nil, root, nil, 0, ~0ULL, count,
                         why) < 0)
            return false;
        if (count != expected) {
            if (why)
                *why = strfmt("tree %u: %llu nodes but count %llu",
                              tid,
                              static_cast<unsigned long long>(count),
                              static_cast<unsigned long long>(
                                  expected));
            return false;
        }
    }
    return true;
}

} // namespace snf::workloads
