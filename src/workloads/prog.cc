#include "workloads/prog.hh"

#include "conformlab/proggen.hh"
#include "sim/logging.hh"

namespace snf::workloads
{

using conformlab::ModelOracle;
using conformlab::Program;
using conformlab::ProgStore;
using conformlab::ProgTx;

ProgWorkload::ProgWorkload(Program p)
    : prog(std::move(p)), fixedProgram(true)
{
}

void
ProgWorkload::setup(System &sys, const WorkloadParams &params)
{
    if (!fixedProgram) {
        conformlab::ProgGenConfig gen;
        gen.threads = params.threads;
        if (params.footprint != 0)
            gen.slotsPerThread =
                static_cast<std::uint32_t>(params.footprint);
        if (params.txPerThread != 0)
            gen.txPerThread =
                static_cast<std::uint32_t>(params.txPerThread);
        prog = conformlab::generateProgram(params.seed, gen);
    }
    SNF_ASSERT(prog.threads == params.threads,
               "program has %u threads but the run spawns %u",
               prog.threads, params.threads);

    model = std::make_unique<ModelOracle>(prog);
    txSeqs.assign(prog.txs.size(), 0);
    base = sys.heap().alloc(
        static_cast<std::uint64_t>(prog.totalSlots()) * 8, 64);
    for (std::uint32_t g = 0; g < prog.totalSlots(); ++g)
        sys.heap().prewrite64(slotAddr(g), conformlab::initValue(g));
}

sim::Co<void>
ProgWorkload::thread(System &sys, Thread &t,
                     const WorkloadParams &params)
{
    (void)params;
    // Aborting transactions need undo values to roll back; under the
    // redo-only and non-persistent modes tx_abort() would leave the
    // stolen stores in place, so those transactions are skipped — the
    // oracle's "aborted transactions apply nothing" then still holds.
    bool canAbort = supportsAbort(sys.mode());
    for (std::size_t i = 0; i < prog.txs.size(); ++i) {
        const ProgTx &tx = prog.txs[i];
        if (tx.thread != t.id())
            continue;
        if (tx.aborts && !canAbort)
            continue;
        if (tx.delay != 0)
            co_await t.compute(tx.delay);
        co_await t.txBegin();
        txSeqs[i] = t.currentTxSeq();
        for (const ProgStore &st : tx.stores) {
            co_await t.store64(
                slotAddr(prog.globalSlot(tx.thread, st.slot)),
                st.value);
        }
        if (tx.aborts)
            co_await t.txAbort();
        else
            co_await t.txCommit();
    }
}

bool
ProgWorkload::verify(const mem::BackingStore &nvram,
                     std::string *why) const
{
    for (std::uint32_t t = 0; t < prog.threads; ++t) {
        std::vector<std::uint64_t> partition(prog.slotsPerThread);
        for (std::uint32_t s = 0; s < prog.slotsPerThread; ++s)
            partition[s] =
                nvram.read64(slotAddr(prog.globalSlot(t, s)));

        std::size_t m = model->committedTxs(t).size();
        bool matched = false;
        for (std::size_t k = 0; k <= m && !matched; ++k)
            matched = partition == model->prefixImage(t, k);
        if (!matched) {
            if (why)
                *why = strfmt("thread %u partition matches no "
                              "committed prefix (0..%zu)",
                              t, m);
            return false;
        }
    }
    return true;
}

} // namespace snf::workloads
