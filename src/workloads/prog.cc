#include "workloads/prog.hh"

#include <algorithm>

#include "conformlab/proggen.hh"
#include "sim/logging.hh"

namespace snf::workloads
{

using conformlab::ModelOracle;
using conformlab::ProgOp;
using conformlab::Program;
using conformlab::ProgTx;

namespace
{

/** Abort-retry attempts per transaction before declaring livelock. */
constexpr std::uint32_t kMaxTxAttempts = 200;

} // namespace

ProgWorkload::ProgWorkload(Program p)
    : prog(std::move(p)), fixedProgram(true)
{
}

void
ProgWorkload::setup(System &sys, const WorkloadParams &params)
{
    if (!fixedProgram) {
        conformlab::ProgGenConfig gen;
        gen.threads = params.threads;
        if (params.footprint != 0)
            gen.slotsPerThread =
                static_cast<std::uint32_t>(params.footprint);
        if (params.txPerThread != 0)
            gen.txPerThread =
                static_cast<std::uint32_t>(params.txPerThread);
        gen.conflictRate = params.conflictRate;
        prog = conformlab::generateProgram(params.seed, gen);
    }
    SNF_ASSERT(prog.threads == params.threads,
               "program has %u threads but the run spawns %u",
               prog.threads, params.threads);
    // Deadlock aborts (CC) and TL2 validation failures both resolve
    // through tx_abort's undo rollback; redo-only modes cannot run
    // under a CC scheme.
    SNF_ASSERT(sys.config().persist.ccMode == CcMode::None ||
                   supportsAbort(sys.mode()),
               "ccMode=%s needs rollback but mode %s cannot abort",
               ccModeName(sys.config().persist.ccMode),
               persistModeName(sys.mode()));
    model = std::make_unique<ModelOracle>(prog);
    txSeqs.assign(prog.txs.size(), 0);
    readObs.assign(prog.txs.size(), {});
    for (std::size_t i = 0; i < prog.txs.size(); ++i)
        readObs[i].assign(prog.txs[i].ops.size(), 0);

    base = sys.heap().alloc(
        static_cast<std::uint64_t>(prog.privateSlots()) * 8, 64);
    if (prog.sharedSlots != 0)
        sharedBase = sys.heap().alloc(
            static_cast<std::uint64_t>(prog.sharedSlots) * 64, 64);
    for (std::uint32_t g = 0; g < prog.totalSlots(); ++g)
        sys.heap().prewrite64(slotAddr(g), conformlab::initValue(g));
}

sim::Co<void>
ProgWorkload::thread(System &sys, Thread &t,
                     const WorkloadParams &params)
{
    (void)params;
    // Aborting transactions need undo values to roll back; under the
    // redo-only and non-persistent modes tx_abort() would leave the
    // stolen stores in place, so those transactions are skipped — the
    // oracle's "aborted transactions apply nothing" then still holds.
    bool canAbort = supportsAbort(sys.mode());
    for (std::size_t i = 0; i < prog.txs.size(); ++i) {
        const ProgTx &tx = prog.txs[i];
        if (tx.thread != t.id())
            continue;
        if (tx.aborts && !canAbort)
            continue;
        if (tx.delay != 0)
            co_await t.compute(tx.delay);

        std::uint32_t backoff = 16;
        for (std::uint32_t attempt = 0;; ++attempt) {
            SNF_ASSERT(attempt < kMaxTxAttempts,
                       "tx %zu livelocked after %u abort-retries", i,
                       kMaxTxAttempts);
            co_await t.txBegin();
            txSeqs[i] = t.currentTxSeq();

            bool doomed = false;
            for (std::size_t j = 0;
                 j < tx.ops.size() && !doomed; ++j) {
                const ProgOp &op = tx.ops[j];
                Addr a = slotAddr(prog.globalSlotOf(tx.thread, op));
                if (op.isLoad()) {
                    std::uint64_t v = 0;
                    doomed = !co_await t.txLoad64(a, &v);
                    readObs[i][j] = v;
                } else {
                    doomed = !co_await t.txStore64(a, op.value);
                }
            }

            if (doomed) {
                // Deadlock victim: roll back, back off, retry.
                co_await t.txAbort();
            } else if (tx.aborts) {
                co_await t.txAbort();
                break;
            } else {
                co_await t.txCommit();
                if (!t.lastTxAborted())
                    break;
                // Log-full victim or TL2 validation failure.
            }
            co_await t.compute(backoff + t.id());
            backoff = std::min<std::uint32_t>(backoff * 2, 2048);
        }
    }
}

bool
ProgWorkload::verify(const mem::BackingStore &nvram,
                     std::string *why) const
{
    for (std::uint32_t t = 0; t < prog.threads; ++t) {
        std::vector<std::uint64_t> partition(prog.slotsPerThread);
        for (std::uint32_t s = 0; s < prog.slotsPerThread; ++s)
            partition[s] =
                nvram.read64(slotAddr(prog.globalSlot(t, s)));

        std::size_t m = model->committedTxs(t).size();
        bool matched = false;
        for (std::size_t k = 0; k <= m && !matched; ++k)
            matched = partition == model->prefixImage(t, k);
        if (!matched) {
            if (why)
                *why = strfmt("thread %u partition matches no "
                              "committed prefix (0..%zu)",
                              t, m);
            return false;
        }
    }
    for (std::uint32_t s = 0; s < prog.sharedSlots; ++s) {
        std::uint64_t v =
            nvram.read64(slotAddr(prog.sharedGlobalSlot(s)));
        const auto &cands = model->sharedCandidates(s);
        if (std::find(cands.begin(), cands.end(), v) ==
            cands.end()) {
            if (why)
                *why = strfmt("shared slot %u holds 0x%llx, not a "
                              "candidate value of any committed tx",
                              s, static_cast<unsigned long long>(v));
            return false;
        }
    }
    return true;
}

} // namespace snf::workloads
