/**
 * @file
 * The experiment driver: runs one (workload, persistence mode,
 * thread-count) combination end to end — setup, simulation, optional
 * crash + recovery, verification — and returns the paper's metrics.
 */

#ifndef SNF_WORKLOADS_DRIVER_HH
#define SNF_WORKLOADS_DRIVER_HH

#include <optional>
#include <string>

#include "core/system.hh"
#include "persist/recovery.hh"
#include "workloads/workload.hh"

namespace snf::workloads
{

/** Everything needed to run one experiment cell. */
struct RunSpec
{
    std::string workload = "sps";
    PersistMode mode = PersistMode::NonPers;
    WorkloadParams params;
    SystemConfig sys = SystemConfig::scaled();
    /**
     * Crash the machine at this tick, then recover and verify from
     * the NVRAM snapshot (requires sys.persist.crashJournal).
     */
    std::optional<Tick> crashAt;
    /** Recovery knobs for crash runs (crashlab fault injection). */
    persist::RecoveryOptions recovery;
    /** Write back all volatile state at the end (graceful runs). */
    bool flushAtEnd = true;
    /** Run the consistency check at the end. */
    bool verifyAtEnd = true;
};

/** Result of one experiment cell. */
struct RunOutcome
{
    RunStats stats;
    Tick endTick = 0;
    bool crashed = false;
    bool verified = true;
    std::string verifyMessage;
    persist::RecoveryReport recovery;
};

/** Run one cell. fatal() on misconfiguration. */
RunOutcome runWorkload(const RunSpec &spec);

} // namespace snf::workloads

#endif // SNF_WORKLOADS_DRIVER_HH
