/**
 * @file
 * Workload framework: the interface every benchmark implements
 * (functional setup, a per-thread transaction coroutine, and a
 * post-run/post-recovery consistency check over the NVRAM image),
 * plus the by-name factory used by tests and benches.
 */

#ifndef SNF_WORKLOADS_WORKLOAD_HH
#define SNF_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "core/system.hh"
#include "sim/coro.hh"
#include "sim/rng.hh"

namespace snf::workloads
{

/** Knobs shared by all workloads. */
struct WorkloadParams
{
    std::uint32_t threads = 1;
    std::uint64_t txPerThread = 200;
    std::uint64_t seed = 1;
    /** String variant: multi-line values instead of one word. */
    bool stringValues = false;
    /** Elements in the initial structure; 0 = workload default. */
    std::uint64_t footprint = 0;
    /**
     * Shared-data contention knob for program-driven workloads: the
     * probability a generated op targets the shared conflict region
     * (conformlab::ProgGenConfig::conflictRate). 0 = conflict-free.
     */
    double conflictRate = 0.0;
    /**
     * TPC-C warehouses (oltp-tpcc): 0 = one per thread. With fewer
     * warehouses than threads the engine requires a CC scheme, since
     * threads then contend on shared warehouse rows.
     */
    std::uint64_t warehouses = 0;
    /** Zipf skew exponent for oltp-ycsb, in (0, 1); 0 = default. */
    double zipfTheta = 0.0;
};

/** See file comment. */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /**
     * Functionally preload the initial data structure into the
     * persistent heap (models data that existed before the run).
     */
    virtual void setup(System &sys, const WorkloadParams &params) = 0;

    /** The transaction loop executed by thread @p t. */
    virtual sim::Co<void> thread(System &sys, Thread &t,
                                 const WorkloadParams &params) = 0;

    /**
     * Check structural consistency of the NVRAM image (after a
     * graceful flush, or after crash + recovery).
     * @param why receives a diagnostic when the check fails.
     */
    virtual bool verify(const mem::BackingStore &nvram,
                        std::string *why) const = 0;

    /**
     * Can this workload resume on a recovered NVRAM image (lifelab)?
     * A resumable workload's thread() must operate correctly on the
     * structure left by a previous generation's setup()+run — the
     * lifecycle driver skips setup() after the first generation and
     * only restores the heap cursor, so the workload object's own
     * members (base addresses, expected aggregates) carry over.
     */
    virtual bool resumable() const { return false; }
};

/** Instantiate a workload by name; fatal() on unknown names. */
std::unique_ptr<Workload> makeWorkload(const std::string &name);

/** Names of the five paper microbenchmarks (Table III). */
const std::vector<std::string> &microbenchNames();

/** Names of the WHISPER-like workloads. */
const std::vector<std::string> &whisperNames();

/** Names of the production-scale OLTP engines (src/oltp). */
const std::vector<std::string> &oltpNames();

/** All workload names. */
std::vector<std::string> allWorkloadNames();

} // namespace snf::workloads

#endif // SNF_WORKLOADS_WORKLOAD_HH
