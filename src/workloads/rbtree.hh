/**
 * @file
 * RBTree microbenchmark (paper Table III, from Kiln [13]): a
 * red-black tree in persistent memory. Each transaction searches for
 * a key, inserting it if absent and removing it if found — full CLRS
 * insert and delete with rebalancing, executed transactionally.
 *
 * Each thread owns an independent tree (one persistent transaction
 * stream per thread). Verification re-checks every red-black
 * invariant on the NVRAM image: BST order, red nodes have black
 * children, equal black height on all paths, parent-pointer
 * consistency, and node count against a persistent size field.
 */

#ifndef SNF_WORKLOADS_RBTREE_HH
#define SNF_WORKLOADS_RBTREE_HH

#include "workloads/workload.hh"

namespace snf::workloads
{

/** See file comment. */
class RbTree : public Workload
{
  public:
    std::string name() const override { return "rbtree"; }

    void setup(System &sys, const WorkloadParams &params) override;

    sim::Co<void> thread(System &sys, Thread &t,
                         const WorkloadParams &params) override;

    bool verify(const mem::BackingStore &nvram,
                std::string *why) const override;

  private:
    // Node layout.
    static constexpr std::uint64_t kKey = 0;
    static constexpr std::uint64_t kColor = 8; ///< 1 = red, 0 = black
    static constexpr std::uint64_t kLeft = 16;
    static constexpr std::uint64_t kRight = 24;
    static constexpr std::uint64_t kParent = 32;
    static constexpr std::uint64_t kValue = 40;

    // Per-thread tree header layout: root(8) | count(8) | nil(8).
    static constexpr std::uint64_t kHeaderBytes = 24;

    std::uint64_t nodeBytes() const { return 40 + valueWords * 8; }

    Addr headerAddr(std::uint32_t tid) const
    {
        return headers + tid * kHeaderBytes;
    }

    /** Allocate and functionally initialize a node (setup only). */
    Addr prealloc(System &sys, Addr nil, std::uint64_t key) const;

    // Coroutine helpers; hdr is the owning tree's header address.
    sim::Co<void> leftRotate(Thread &t, Addr hdr, Addr nil, Addr x);
    sim::Co<void> rightRotate(Thread &t, Addr hdr, Addr nil, Addr x);
    sim::Co<void> insertFixup(Thread &t, Addr hdr, Addr nil, Addr z);
    sim::Co<void> transplant(Thread &t, Addr hdr, Addr nil, Addr u,
                             Addr v);
    sim::Co<void> deleteFixup(Thread &t, Addr hdr, Addr nil, Addr x);
    sim::Co<Addr> treeMinimum(Thread &t, Addr nil, Addr x);
    sim::Co<void> insertNode(System &sys, Thread &t, Addr hdr,
                             Addr nil, std::uint64_t key,
                             sim::Rng &rng);
    sim::Co<void> deleteNode(Thread &t, Addr hdr, Addr nil, Addr z);

    /** Recursive invariant check; returns black height or -1. */
    int checkSubtree(const mem::BackingStore &nvram, Addr nil,
                     Addr node, Addr parent, std::uint64_t lo,
                     std::uint64_t hi, std::uint64_t &count,
                     std::string *why) const;

    Addr headers = 0;
    std::uint32_t nthreads = 1;
    std::uint64_t valueWords = 1;
    std::uint64_t keyspacePerThread = 0;
};

} // namespace snf::workloads

#endif // SNF_WORKLOADS_RBTREE_HH
