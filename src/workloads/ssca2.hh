/**
 * @file
 * SSCA2 microbenchmark (paper Table III, from HPCS SSCA#2 [46]): a
 * transactional implementation of scale-free graph analysis. The
 * kernel-1-style transactions insert weighted directed edges into
 * per-vertex adjacency arrays (with a power-law target distribution);
 * analysis transactions scan a vertex's edges and accumulate weights.
 *
 * Per-vertex invariant: degree <= capacity and the stored weight sum
 * equals the sum of the stored edge weights — a torn edge insert
 * (edge written without the degree/sum update, or vice versa) breaks
 * it.
 */

#ifndef SNF_WORKLOADS_SSCA2_HH
#define SNF_WORKLOADS_SSCA2_HH

#include "workloads/workload.hh"

namespace snf::workloads
{

/** See file comment. */
class Ssca2 : public Workload
{
  public:
    std::string name() const override { return "ssca2"; }

    void setup(System &sys, const WorkloadParams &params) override;

    sim::Co<void> thread(System &sys, Thread &t,
                         const WorkloadParams &params) override;

    bool verify(const mem::BackingStore &nvram,
                std::string *why) const override;

  private:
    static constexpr std::uint64_t kEdgeCapacity = 30;

    // Vertex layout: degree(8) | weightSum(8) | edges[cap]{to, w}.
    static constexpr std::uint64_t kDegree = 0;
    static constexpr std::uint64_t kWeightSum = 8;
    static constexpr std::uint64_t kEdges = 16;

    static constexpr std::uint64_t kVertexBytes =
        16 + kEdgeCapacity * 16;

    Addr vertexAddr(std::uint64_t v) const
    {
        return vertices + v * kVertexBytes;
    }

    Addr vertices = 0;
    std::uint64_t nvertices = 0;
    std::uint32_t nthreads = 1;
};

} // namespace snf::workloads

#endif // SNF_WORKLOADS_SSCA2_HH
