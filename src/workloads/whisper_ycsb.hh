/**
 * @file
 * WHISPER "ycsb" workload equivalent: YCSB workload-A over a
 * persistent key-value table — zipfian key popularity, 50% reads /
 * 50% whole-record updates. Records are 104-byte values guarded by
 * per-record DRAM spinlocks (hot keys are shared across threads).
 *
 * Invariant: every record's payload words all carry the record's
 * version stamp — a torn (non-atomic) update breaks it.
 */

#ifndef SNF_WORKLOADS_WHISPER_YCSB_HH
#define SNF_WORKLOADS_WHISPER_YCSB_HH

#include "workloads/workload.hh"

namespace snf::workloads
{

/** See file comment. */
class WhisperYcsb : public Workload
{
  public:
    std::string name() const override { return "ycsb"; }

    void setup(System &sys, const WorkloadParams &params) override;

    sim::Co<void> thread(System &sys, Thread &t,
                         const WorkloadParams &params) override;

    bool verify(const mem::BackingStore &nvram,
                std::string *why) const override;

  private:
    static constexpr std::uint64_t kPayloadWords = 13; ///< 104 bytes

    // Record: version(8) | payload(13 x 8).
    static constexpr std::uint64_t kRecordBytes =
        8 + kPayloadWords * 8;

    Addr recordAddr(std::uint64_t k) const
    {
        return records + k * kRecordBytes;
    }

    Addr records = 0;
    Addr locks = 0; ///< DRAM spinlock per record
    Addr index = 0; ///< DRAM index (key -> slot metadata)
    std::uint64_t nrecords = 0;
};

} // namespace snf::workloads

#endif // SNF_WORKLOADS_WHISPER_YCSB_HH
