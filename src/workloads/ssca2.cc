#include "workloads/ssca2.hh"

#include "sim/logging.hh"

namespace snf::workloads
{

void
Ssca2::setup(System &sys, const WorkloadParams &params)
{
    nvertices = params.footprint != 0 ? params.footprint : 1024;
    nthreads = params.threads;
    nvertices -= nvertices % nthreads;

    vertices = sys.heap().alloc(nvertices * kVertexBytes, 64);
    // Preload a sparse seed graph: a few edges per vertex.
    sim::Rng rng(params.seed);
    sim::Zipf zipf(nvertices, 0.6);
    for (std::uint64_t v = 0; v < nvertices; ++v) {
        std::uint64_t deg = rng.below(4);
        std::uint64_t sum = 0;
        for (std::uint64_t e = 0; e < deg; ++e) {
            std::uint64_t to = zipf.sample(rng) + 1;
            std::uint64_t w = rng.range(1, 100);
            sys.heap().prewrite64(
                vertexAddr(v) + kEdges + e * 16, to);
            sys.heap().prewrite64(
                vertexAddr(v) + kEdges + e * 16 + 8, w);
            sum += w;
        }
        sys.heap().prewrite64(vertexAddr(v) + kDegree, deg);
        sys.heap().prewrite64(vertexAddr(v) + kWeightSum, sum);
    }
}

sim::Co<void>
Ssca2::thread(System &sys, Thread &t, const WorkloadParams &params)
{
    (void)sys;
    sim::Rng rng(params.seed * 65537 + t.id());
    sim::Zipf zipf(nvertices, 0.6);
    std::uint64_t share = nvertices / nthreads;
    std::uint64_t lo = t.id() * share;

    for (std::uint64_t n = 0; n < params.txPerThread; ++n) {
        std::uint64_t u = lo + rng.below(share);
        Addr va = vertexAddr(u);

        co_await t.txBegin();
        co_await t.compute(8);

        std::uint64_t deg = co_await t.load64(va + kDegree);
        if (rng.chance(0.8) && deg < kEdgeCapacity) {
            // Kernel 1: insert a weighted edge.
            std::uint64_t to = zipf.sample(rng) + 1;
            std::uint64_t w = rng.range(1, 100);
            co_await t.store64(va + kEdges + deg * 16, to);
            co_await t.store64(va + kEdges + deg * 16 + 8, w);
            std::uint64_t sum = co_await t.load64(va + kWeightSum);
            co_await t.store64(va + kWeightSum, sum + w);
            co_await t.store64(va + kDegree, deg + 1);
        } else {
            // Analysis: scan the adjacency list, chase one hop, and
            // accumulate weights (read-mostly transaction).
            std::uint64_t acc = 0;
            for (std::uint64_t e = 0; e < deg; ++e) {
                std::uint64_t to =
                    co_await t.load64(va + kEdges + e * 16);
                std::uint64_t w =
                    co_await t.load64(va + kEdges + e * 16 + 8);
                acc += w;
                co_await t.compute(4);
                if (e == 0 && to >= 1 && to <= nvertices) {
                    // One-hop neighbour degree probe.
                    co_await t.load64(vertexAddr(to - 1) + kDegree);
                }
            }
            (void)acc;
        }
        co_await t.txCommit();
    }
}

bool
Ssca2::verify(const mem::BackingStore &nvram, std::string *why) const
{
    for (std::uint64_t v = 0; v < nvertices; ++v) {
        Addr va = vertexAddr(v);
        std::uint64_t deg = nvram.read64(va + kDegree);
        std::uint64_t sum = nvram.read64(va + kWeightSum);
        if (deg > kEdgeCapacity) {
            if (why)
                *why = strfmt("vertex %llu: degree %llu > capacity",
                              static_cast<unsigned long long>(v),
                              static_cast<unsigned long long>(deg));
            return false;
        }
        std::uint64_t acc = 0;
        for (std::uint64_t e = 0; e < deg; ++e) {
            std::uint64_t to = nvram.read64(va + kEdges + e * 16);
            std::uint64_t w = nvram.read64(va + kEdges + e * 16 + 8);
            if (to == 0 || to > nvertices || w == 0 || w > 100) {
                if (why)
                    *why = strfmt("vertex %llu edge %llu malformed",
                                  static_cast<unsigned long long>(v),
                                  static_cast<unsigned long long>(e));
                return false;
            }
            acc += w;
        }
        if (acc != sum) {
            if (why)
                *why = strfmt("vertex %llu: weight sum %llu != %llu",
                              static_cast<unsigned long long>(v),
                              static_cast<unsigned long long>(acc),
                              static_cast<unsigned long long>(sum));
            return false;
        }
    }
    return true;
}

} // namespace snf::workloads
