/**
 * @file
 * SPS microbenchmark (paper Table III, from Kiln [13]): random swaps
 * between entries of a persistent vector. Each transaction swaps two
 * random elements — two loads and two stores — making it the most
 * write-intensive microbenchmark.
 *
 * Invariant: the multiset of values is a permutation of the initial
 * contents; verified via sum and xor aggregates, which atomic swaps
 * preserve across crashes.
 */

#ifndef SNF_WORKLOADS_SPS_HH
#define SNF_WORKLOADS_SPS_HH

#include "workloads/workload.hh"

namespace snf::workloads
{

/** See file comment. */
class Sps : public Workload
{
  public:
    std::string name() const override { return "sps"; }

    void setup(System &sys, const WorkloadParams &params) override;

    sim::Co<void> thread(System &sys, Thread &t,
                         const WorkloadParams &params) override;

    bool verify(const mem::BackingStore &nvram,
                std::string *why) const override;

    /** Swaps preserve the multiset invariant from any starting
     *  permutation, so SPS can resume on a recovered image. */
    bool resumable() const override { return true; }

    Addr arrayBase() const { return base; }

    std::uint64_t elements() const { return count; }

  private:
    Addr base = 0;
    std::uint64_t count = 0;
    std::uint64_t wordsPerElement = 1;
    std::uint64_t expectedSum = 0;
    std::uint64_t expectedXor = 0;
};

} // namespace snf::workloads

#endif // SNF_WORKLOADS_SPS_HH
