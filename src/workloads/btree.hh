/**
 * @file
 * BTree microbenchmark (paper Table III, STX B+Tree [45] inspired): a
 * B+ tree in persistent memory. Each transaction searches for a key,
 * inserting it (with node splits up to a new root) if absent and
 * removing it if found.
 *
 * Deletion is lazy (keys are removed from leaves without rebalancing;
 * underflowed leaves are permitted), which is a common simplification
 * in persistent B+-tree implementations and does not affect the
 * search/insert invariants that verification checks: sorted keys in
 * every node, separator consistency, a sorted global leaf chain, a
 * uniform leaf depth, and a persistent key count.
 */

#ifndef SNF_WORKLOADS_BTREE_HH
#define SNF_WORKLOADS_BTREE_HH

#include "workloads/workload.hh"

namespace snf::workloads
{

/** See file comment. */
class BTree : public Workload
{
  public:
    std::string name() const override { return "btree"; }

    void setup(System &sys, const WorkloadParams &params) override;

    sim::Co<void> thread(System &sys, Thread &t,
                         const WorkloadParams &params) override;

    bool verify(const mem::BackingStore &nvram,
                std::string *why) const override;

  private:
    static constexpr std::uint64_t kMaxKeys = 7;
    static constexpr std::uint64_t kMinChildren = 2;

    // Node layout.
    static constexpr std::uint64_t kIsLeaf = 0;
    static constexpr std::uint64_t kNKeys = 8;
    static constexpr std::uint64_t kKeys = 16; ///< 7 x 8 bytes
    static constexpr std::uint64_t kSlots = 72; ///< children / values
    // Leaf: values (kMaxKeys x valueWords x 8) then next pointer.
    // Internal: children (8 x 8 bytes).

    std::uint64_t
    nodeBytes() const
    {
        std::uint64_t leaf = kSlots + kMaxKeys * valueWords * 8 + 8;
        std::uint64_t internal = kSlots + (kMaxKeys + 1) * 8;
        return std::max(leaf, internal);
    }

    Addr
    valueAddr(Addr leaf, std::uint64_t i) const
    {
        return leaf + kSlots + i * valueWords * 8;
    }

    Addr
    nextAddr(Addr leaf) const
    {
        return leaf + kSlots + kMaxKeys * valueWords * 8;
    }

    static Addr
    childAddr(Addr node, std::uint64_t i)
    {
        return node + kSlots + i * 8;
    }

    static Addr
    keyAddr(Addr node, std::uint64_t i)
    {
        return node + kKeys + i * 8;
    }

    Addr headerAddr(std::uint32_t tid) const
    {
        return headers + tid * 16; // root(8) | count(8)
    }

    Addr allocNode(System &sys, bool leaf) const;

    struct SplitResult
    {
        bool split = false;
        std::uint64_t key = 0;
        Addr right = 0;
        bool inserted = false;
    };

    sim::Co<SplitResult> insertRec(System &sys, Thread &t, Addr node,
                                   std::uint64_t key, sim::Rng &rng);

    sim::Co<bool> removeFromLeaf(Thread &t, Addr node,
                                 std::uint64_t key);

    int checkNode(const mem::BackingStore &nvram, Addr node,
                  std::uint64_t lo, std::uint64_t hi,
                  std::uint64_t &leafKeys, std::string *why) const;

    Addr headers = 0;
    std::uint32_t nthreads = 1;
    std::uint64_t valueWords = 1;
    std::uint64_t keyspacePerThread = 0;
};

} // namespace snf::workloads

#endif // SNF_WORKLOADS_BTREE_HH
