#include "cpu/thread_context.hh"

#include <algorithm>

namespace snf::cpu
{

InstructionCounts &
InstructionCounts::operator+=(const InstructionCounts &o)
{
    total += o.total;
    loads += o.loads;
    stores += o.stores;
    compute += o.compute;
    logStores += o.logStores;
    logLoads += o.logLoads;
    clwbs += o.clwbs;
    fences += o.fences;
    atomics += o.atomics;
    txOverhead += o.txOverhead;
    return *this;
}

ThreadContext::ThreadContext(CoreId core, std::uint32_t width,
                             std::uint32_t storeBufferEntries)
    : coreId(core), issueWidth(width), sbCapacity(storeBufferEntries)
{
}

void
ThreadContext::retireCompute(std::uint64_t n)
{
    localTime += (n + issueWidth - 1) / issueWidth;
}

void
ThreadContext::noteStoreDrain(Tick done)
{
    // Retire entries that have already drained.
    while (!storeBuffer.empty() && storeBuffer.front() <= localTime)
        storeBuffer.pop_front();
    if (storeBuffer.size() >= sbCapacity) {
        // Full: the core stalls until the oldest entry drains.
        localTime = std::max(localTime, storeBuffer.front());
        storeBuffer.pop_front();
    }
    storeBuffer.push_back(done);
}

void
ThreadContext::notePendingPersist(Tick done)
{
    pendingPersists.push_back(done);
}

void
ThreadContext::drainForFence()
{
    for (Tick t : storeBuffer)
        localTime = std::max(localTime, t);
    storeBuffer.clear();
    for (Tick t : pendingPersists)
        localTime = std::max(localTime, t);
    pendingPersists.clear();
}

} // namespace snf::cpu
