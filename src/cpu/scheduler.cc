#include "cpu/scheduler.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace snf::cpu
{

Scheduler::Scheduler(sim::EventQueue &evq)
    : events(evq)
{
}

void
Scheduler::addThread(ThreadContext *tc)
{
    threads.push_back(tc);
}

ThreadContext *
Scheduler::pickNext() const
{
    ThreadContext *best = nullptr;
    for (ThreadContext *t : threads) {
        if (!t->runnable())
            continue;
        if (!best || t->localTime < best->localTime)
            best = t;
    }
    return best;
}

bool
Scheduler::allFinished() const
{
    return std::all_of(threads.begin(), threads.end(),
                       [](const ThreadContext *t) {
                           return t->finished;
                       });
}

Tick
Scheduler::run(Tick stopAt)
{
    while (ThreadContext *t = pickNext()) {
        if (t->localTime >= stopAt)
            break;

        // Fire time-triggered machinery (FWB scans, monitors) that
        // precedes this thread's next step. The guard jumps straight
        // to min(next runnable thread, next event): when no event is
        // due before this thread's tick there is nothing to step
        // through, so skip the queue entirely.
        if (events.nextEventTick() <= t->localTime)
            events.runUntil(t->localTime);

        if (!t->started) {
            t->started = true;
            SNF_ASSERT(t->rootHandle, "thread %u has no coroutine",
                       t->id());
            t->resumePoint = t->rootHandle;
        } else {
            SNF_ASSERT(t->pending != nullptr,
                       "runnable thread %u without pending op",
                       t->id());
            PendingOp *op = t->pending;
            t->pending = nullptr;
            op->execute();
        }

        t->resumePoint.resume();
        if (t->rootHandle.done())
            t->finished = true;
    }

    Tick max_time = 0;
    for (const ThreadContext *t : threads)
        max_time = std::max(max_time, t->localTime);
    return max_time;
}

} // namespace snf::cpu
