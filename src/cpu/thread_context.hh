/**
 * @file
 * Per-thread (1:1 per-core) execution state of the timing model: the
 * local cycle clock, the store buffer that hides store latency, the
 * set of outstanding persist operations a fence must await, and the
 * coroutine resume point used by the scheduler.
 */

#ifndef SNF_CPU_THREAD_CONTEXT_HH
#define SNF_CPU_THREAD_CONTEXT_HH

#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/types.hh"

namespace snf::cpu
{

/**
 * A simulated-memory operation parked by an awaiter, executed by the
 * scheduler when its thread is the globally earliest. Implementations
 * live in the awaiter objects inside coroutine frames.
 */
class PendingOp
{
  public:
    virtual void execute() = 0;

  protected:
    ~PendingOp() = default;
};

/** Instruction-count bookkeeping, by class. */
struct InstructionCounts
{
    std::uint64_t total = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t compute = 0;
    std::uint64_t logStores = 0;
    std::uint64_t logLoads = 0;
    std::uint64_t clwbs = 0;
    std::uint64_t fences = 0;
    std::uint64_t atomics = 0;
    std::uint64_t txOverhead = 0;

    InstructionCounts &operator+=(const InstructionCounts &o);
};

/** See file comment. */
class ThreadContext
{
  public:
    ThreadContext(CoreId coreId, std::uint32_t issueWidth,
                  std::uint32_t storeBufferEntries);

    CoreId id() const { return coreId; }

    /** Local cycle clock of this thread's core. */
    Tick localTime = 0;

    /** Instruction counters (by class). */
    InstructionCounts instr;

    // --- scheduler interface -------------------------------------

    bool started = false;
    bool finished = false;
    PendingOp *pending = nullptr;
    std::coroutine_handle<> resumePoint;
    std::coroutine_handle<> rootHandle;

    bool
    runnable() const
    {
        return !finished && (pending != nullptr || !started);
    }

    // --- timing helpers ------------------------------------------

    /** Retire @p n non-memory instructions. */
    void retireCompute(std::uint64_t n);

    /**
     * Record a store drain completing at @p done; stalls localTime if
     * the store buffer is full.
     */
    void noteStoreDrain(Tick done);

    /** Record an outstanding persist (clwb) completion tick. */
    void notePendingPersist(Tick done);

    /** Stall until all stores have drained and persists completed. */
    void drainForFence();

    std::uint32_t storeBufferCapacity() const { return sbCapacity; }

  private:
    CoreId coreId;
    std::uint32_t issueWidth;
    std::uint32_t sbCapacity;
    std::deque<Tick> storeBuffer;
    std::vector<Tick> pendingPersists;
};

} // namespace snf::cpu

#endif // SNF_CPU_THREAD_CONTEXT_HH
