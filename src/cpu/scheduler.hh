/**
 * @file
 * Conservative earliest-thread-first scheduler: repeatedly picks the
 * runnable thread with the smallest local clock, drains time-triggered
 * events (FWB scans) up to that instant, executes the thread's parked
 * memory operation, and resumes its coroutine until the next
 * operation. This yields a deterministic, causally-ordered global
 * interleaving across cores.
 */

#ifndef SNF_CPU_SCHEDULER_HH
#define SNF_CPU_SCHEDULER_HH

#include <vector>

#include "cpu/thread_context.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace snf::cpu
{

/** See file comment. */
class Scheduler
{
  public:
    explicit Scheduler(sim::EventQueue &events);

    void addThread(ThreadContext *tc);

    /**
     * Run until every thread finishes or the earliest runnable thread
     * reaches @p stopAt (crash modeling).
     * @return the largest local clock among all threads.
     */
    Tick run(Tick stopAt = kTickNever);

    /** True once every added thread has completed. */
    bool allFinished() const;

  private:
    ThreadContext *pickNext() const;

    sim::EventQueue &events;
    std::vector<ThreadContext *> threads;
};

} // namespace snf::cpu

#endif // SNF_CPU_SCHEDULER_HH
